// Simulated PS/2 keyboard with source attribution and an exclusivity gate.
//
// The trusted-path property on the input side: during a PAL session the
// PAL polls the keyboard controller directly, so software-injected
// keystrokes (malware synthesizing input) never reach it -- only scancodes
// from the physical device do. The simulation tags every event with its
// origin and drops host-injected events while a session is active,
// counting them as attack telemetry.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "devices/display.h"

namespace tp::devices {

/// Origin of a keystroke.
enum class KeySource : std::uint8_t {
  kPhysical = 0,  // the human at the machine
  kInjected = 1,  // synthesized by software on the untrusted host
};

struct KeyEvent {
  char ch;
  KeySource source;
};

class Keyboard {
 public:
  void press(KeySource source, char ch);
  /// Convenience: the characters of `line` followed by '\n'.
  void press_line(KeySource source, const std::string& line);

  /// Pops the next deliverable event. While exclusive (PAL session),
  /// injected events are silently discarded (and counted) exactly as the
  /// real hardware path would never carry them.
  std::optional<KeyEvent> poll();

  /// Reads characters until '\n' (consumed, not returned) or queue
  /// exhaustion; returns what was typed.
  std::string read_line();

  void acquire_exclusive();
  void release_exclusive();
  bool exclusive() const { return exclusive_; }

  void clear();
  bool empty() const { return queue_.empty(); }

  std::uint64_t blocked_injections() const { return blocked_; }

 private:
  std::deque<KeyEvent> queue_;
  bool exclusive_ = false;
  std::uint64_t blocked_ = 0;
};

}  // namespace tp::devices
