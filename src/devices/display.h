// Simulated text display with an exclusivity gate.
//
// The real PAL drives the VGA text console directly after late launch, so
// malware cannot alter what the user sees *during* a session (before a
// session it can spoof anything -- that asymmetry is exactly why the
// trusted path is "uni-directional"). The simulation reproduces the gate:
// while a PAL session holds the display, host writes are rejected and
// counted; outside a session the host draws freely, including spoofed
// content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace tp::devices {

/// Who is touching a device.
enum class DeviceAccess : std::uint8_t {
  kHost = 0,  // untrusted OS / applications / malware
  kPal = 1,   // the isolated environment during a DRTM session
};

/// What is on screen: plain text lines (the PAL uses a text console).
struct DisplayContent {
  std::vector<std::string> lines;

  bool operator==(const DisplayContent& other) const = default;

  /// First line starting with `prefix`, without the prefix; empty string
  /// if absent. Convention used by the confirmation screen ("TX: ...",
  /// "CODE: ...").
  std::string find_field(const std::string& prefix) const;
};

class Display {
 public:
  /// Draws `content`. Host access while the PAL holds the display is
  /// blocked (content unchanged) and returns kIsolationViolation.
  Status render(DeviceAccess access, const DisplayContent& content);

  const DisplayContent& content() const { return content_; }

  /// PAL session entry/exit.
  void acquire_exclusive();
  void release_exclusive();
  bool exclusive() const { return exclusive_; }

  /// How many host draws were blocked during PAL sessions (attack
  /// telemetry for the efficacy experiments).
  std::uint64_t blocked_host_renders() const { return blocked_; }

 private:
  DisplayContent content_;
  bool exclusive_ = false;
  std::uint64_t blocked_ = 0;
};

}  // namespace tp::devices
