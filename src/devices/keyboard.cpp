#include "devices/keyboard.h"

namespace tp::devices {

void Keyboard::press(KeySource source, char ch) {
  queue_.push_back(KeyEvent{ch, source});
}

void Keyboard::press_line(KeySource source, const std::string& line) {
  for (char ch : line) press(source, ch);
  press(source, '\n');
}

std::optional<KeyEvent> Keyboard::poll() {
  while (!queue_.empty()) {
    const KeyEvent ev = queue_.front();
    queue_.pop_front();
    if (exclusive_ && ev.source == KeySource::kInjected) {
      ++blocked_;
      continue;  // injected input never reaches the PAL
    }
    return ev;
  }
  return std::nullopt;
}

std::string Keyboard::read_line() {
  std::string out;
  while (auto ev = poll()) {
    if (ev->ch == '\n') break;
    out.push_back(ev->ch);
  }
  return out;
}

void Keyboard::acquire_exclusive() { exclusive_ = true; }

void Keyboard::release_exclusive() { exclusive_ = false; }

void Keyboard::clear() { queue_.clear(); }

}  // namespace tp::devices
