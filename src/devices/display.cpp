#include "devices/display.h"

namespace tp::devices {

std::string DisplayContent::find_field(const std::string& prefix) const {
  for (const std::string& line : lines) {
    if (line.rfind(prefix, 0) == 0) return line.substr(prefix.size());
  }
  return {};
}

Status Display::render(DeviceAccess access, const DisplayContent& content) {
  if (exclusive_ && access == DeviceAccess::kHost) {
    ++blocked_;
    return Error{Err::kIsolationViolation,
                 "display: host render blocked during PAL session"};
  }
  content_ = content;
  return Status::ok_status();
}

void Display::acquire_exclusive() { exclusive_ = true; }

void Display::release_exclusive() { exclusive_ = false; }

}  // namespace tp::devices
