// Parameterized human operator model.
//
// The human in the loop is what the service provider is actually buying
// with the trusted path: only a person at the physical keyboard can read
// the confirmation screen and re-type the code. The model covers the
// behaviours the experiments need:
//   - reaction + per-character typing time (drives end-to-end latency);
//   - typos (drives the retry machinery);
//   - attention: the probability of noticing that the transaction shown
//     on the trusted screen differs from what the user intended (drives
//     the transaction-substitution experiment);
//   - captcha solving ability and time (drives the captcha-comparison
//     experiment, F4).
// Parameters default to values in the range of the HCI literature on
// transcription typing and captcha solving.
#pragma once

#include <string>

#include "devices/display.h"
#include "devices/keyboard.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tp::devices {

struct HumanParams {
  double reaction_mean_s = 1.2;   // time to orient on a new screen
  double reaction_std_s = 0.4;
  double per_char_s = 0.28;       // transcription typing, incl. visual check
  double typo_prob = 0.02;        // per character
  double attention = 0.95;        // P(notice transaction mismatch)
  double captcha_solve_prob = 0.92;
  double captcha_solve_mean_s = 9.8;
  double captcha_solve_std_s = 3.1;
};

/// Screen-field conventions the confirmation PAL renders and the human
/// reads (see core/confirmation_pal.cpp).
inline constexpr char kFieldTransaction[] = "TX: ";
inline constexpr char kFieldCode[] = "CODE: ";
inline constexpr char kRejectLine[] = "reject";

class HumanModel {
 public:
  HumanModel(HumanParams params, SimRng rng)
      : params_(params), rng_(std::move(rng)) {}

  const HumanParams& params() const { return params_; }

  /// The human looks at the confirmation screen, compares the rendered
  /// transaction summary against what they intended, and either types the
  /// displayed code (with possible typos) or the reject line. Keystrokes
  /// go to `kb` as physical events; the returned duration is the human
  /// time spent (reaction + typing), to be charged by the caller.
  SimDuration respond_to_confirmation(const DisplayContent& screen,
                                      const std::string& intended_summary,
                                      Keyboard& kb);

  /// One captcha attempt: whether the human got it right.
  bool solves_captcha();
  /// Time spent on one captcha attempt.
  SimDuration captcha_time();

  /// Typing time for `n` characters including reaction (used by the
  /// human-cost benchmark to report components separately).
  SimDuration typing_time(std::size_t n);

 private:
  std::string transcribe(const std::string& text);

  HumanParams params_;
  SimRng rng_;
};

}  // namespace tp::devices
