#include "devices/human.h"

namespace tp::devices {

namespace {
// A typo replaces the intended character with a neighbour; any wrong
// character defeats the code check equally, so a fixed substitution
// keeps the model simple.
char typo_of(char ch) { return ch == 'x' ? 'y' : 'x'; }
}  // namespace

std::string HumanModel::transcribe(const std::string& text) {
  std::string typed;
  typed.reserve(text.size());
  for (char ch : text) {
    typed.push_back(rng_.chance(params_.typo_prob) ? typo_of(ch) : ch);
  }
  return typed;
}

SimDuration HumanModel::respond_to_confirmation(
    const DisplayContent& screen, const std::string& intended_summary,
    Keyboard& kb) {
  const std::string shown_tx = screen.find_field(kFieldTransaction);
  const std::string code = screen.find_field(kFieldCode);

  SimDuration elapsed = SimDuration::seconds(
      rng_.next_normal(params_.reaction_mean_s, params_.reaction_std_s, 0.1));

  const bool mismatch = shown_tx != intended_summary;
  if (code.empty() || (mismatch && rng_.chance(params_.attention))) {
    // No code on screen, or the user spotted a substituted transaction.
    kb.press_line(KeySource::kPhysical, kRejectLine);
    elapsed = elapsed + typing_time(sizeof(kRejectLine) - 1);
    return elapsed;
  }

  const std::string typed = transcribe(code);
  kb.press_line(KeySource::kPhysical, typed);
  return elapsed + typing_time(typed.size());
}

bool HumanModel::solves_captcha() {
  return rng_.chance(params_.captcha_solve_prob);
}

SimDuration HumanModel::captcha_time() {
  return SimDuration::seconds(rng_.next_normal(
      params_.captcha_solve_mean_s, params_.captcha_solve_std_s, 1.0));
}

SimDuration HumanModel::typing_time(std::size_t n) {
  return SimDuration::seconds(params_.per_char_s *
                              static_cast<double>(n));
}

}  // namespace tp::devices
