// The simulated client machine.
//
// One Platform bundles everything a physical box contributes to the
// system: a TPM chip, keyboard, display, the virtual clock the hardware
// charges time to, and the isolation state a DRTM session flips. The
// attack hooks (DMA writes, interrupt injection) are the interface the
// adversary models in src/host use; during a session the hardware blocks
// them, which is precisely the property SKINIT/SENTER buy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "devices/display.h"
#include "devices/keyboard.h"
#include "tpm/attestation.h"
#include "tpm/chip_profile.h"
#include "tpm/tpm2_device.h"
#include "tpm/tpm_device.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace tp::drtm {

/// Which late-launch technology the CPU implements. Both give the same
/// guarantee (measured, isolated execution rooted in a dynamic PCR), but
/// the measurement chains differ:
///   - AMD SKINIT: PCR17 <- H(PAL), PCR18 <- H(inputs);
///   - Intel TXT:  PCR17 <- H(SINIT ACM) then H(LCP policy),
///                 PCR18 <- H(PAL/MLE), PCR19 <- H(inputs).
/// The PAL's identity therefore lives in PCR 17 on AMD and PCR 18 on
/// Intel; code asks the platform via identity_pcr().
enum class DrtmTechnology { kAmdSkinit, kIntelTxt };

/// Intel-only launch artifacts: the chipset-matched SINIT authenticated
/// code module and the launch control policy. Synthetic stand-ins for
/// the signed Intel binaries; what matters is that they are measured.
struct TxtArtifacts {
  Bytes sinit_acm = bytes_of("SINIT-ACM v2.1 for simulated chipset");
  Bytes lcp_policy = bytes_of("LCP: any MLE, PS policy");
};

/// Cost model of the late-launch machinery itself (chip-independent CPU
/// costs; the TPM costs come from the chip profile). Values approximate
/// the published SKINIT measurements: the dominant term is the TPM-side
/// hashing of the PAL image, which scales with its size.
struct DrtmCosts {
  SimDuration state_save = SimDuration::millis(2);      // suspend OS
  SimDuration skinit_base = SimDuration::micros(80);    // the instruction
  SimDuration hash_per_kib = SimDuration::micros(160);  // PAL measurement
  SimDuration pal_setup = SimDuration::micros(500);     // env init inside PAL
  SimDuration state_restore = SimDuration::millis(3);   // resume OS
};

struct PlatformConfig {
  std::string platform_id = "client-0";
  std::string chip_name;        // empty -> default chip
  Bytes seed = bytes_of("platform-seed");
  std::size_t tpm_key_bits = 1024;
  /// Transient-fault model for this machine's TPM (disabled by default);
  /// see tpm::TpmFaultProfile.
  tpm::TpmFaultProfile tpm_faults;
  DrtmCosts drtm_costs;
  DrtmTechnology technology = DrtmTechnology::kAmdSkinit;
  TxtArtifacts txt;             // used only for kIntelTxt
  /// Which TPM generation this box ships: kTpm12 instantiates the 1.2
  /// device (SHA-1 bank, RSA AIK), kTpm2 the 2.0 device (SHA-256 bank,
  /// ECC AK). Exactly one device is constructed per platform.
  tpm::QuoteFormat backend = tpm::QuoteFormat::kTpm12;
};

class Platform {
 public:
  explicit Platform(PlatformConfig config);

  const std::string& id() const { return config_.platform_id; }
  SimClock& clock() { return clock_; }
  /// The quote format this platform's chip produces.
  tpm::QuoteFormat backend() const { return config_.backend; }
  /// The 1.2 device. Valid only when backend() == kTpm12.
  tpm::TpmDevice& tpm() { return *tpm_; }
  /// The 2.0 device. Valid only when backend() == kTpm2.
  tpm::Tpm2Device& tpm2() { return *tpm2_; }
  devices::Display& display() { return display_; }
  devices::Keyboard& keyboard() { return keyboard_; }
  const DrtmCosts& drtm_costs() const { return config_.drtm_costs; }

  /// True while a late-launch session is active.
  bool in_pal_session() const { return in_session_; }

  DrtmTechnology technology() const { return config_.technology; }
  const TxtArtifacts& txt_artifacts() const { return config_.txt; }

  /// The PCR that holds the launched PAL's identity after a measured
  /// launch: 17 on AMD SKINIT, 18 on Intel TXT.
  std::uint32_t identity_pcr() const {
    return config_.technology == DrtmTechnology::kAmdSkinit ? 17u : 18u;
  }

  /// The PCRs a remote verifier must see in a quote to judge the launch:
  /// {17} on AMD; {17, 18} on Intel (SINIT/policy chain + MLE identity).
  tpm::PcrSelection attestation_selection() const {
    return config_.technology == DrtmTechnology::kAmdSkinit
               ? tpm::PcrSelection::of({17})
               : tpm::PcrSelection::of({17, 18});
  }

  // ---- attack surface --------------------------------------------------
  /// A device (or malware programming a device) attempts a DMA write into
  /// PAL memory. Blocked during a session (the DEV / NoDMA protection),
  /// permitted -- and irrelevant -- outside one.
  Status attempt_dma_write(BytesView payload);

  /// Malware attempts to inject an interrupt/SMI to hijack control flow
  /// inside the session. Blocked: interrupts are disabled by SKINIT.
  Status attempt_interrupt_injection();

  /// Malware attempts to read PAL memory from the (suspended) host.
  /// Blocked during a session.
  Status attempt_pal_memory_read();

  std::uint64_t blocked_dma_writes() const { return blocked_dma_; }
  std::uint64_t blocked_interrupts() const { return blocked_irq_; }
  std::uint64_t blocked_memory_reads() const { return blocked_reads_; }

 private:
  friend class LateLaunch;
  friend class LaunchGuard;
  void set_in_session(bool v) { in_session_ = v; }

  PlatformConfig config_;
  SimClock clock_;
  std::unique_ptr<tpm::TpmDevice> tpm_;    // backend == kTpm12
  std::unique_ptr<tpm::Tpm2Device> tpm2_;  // backend == kTpm2
  devices::Display display_;
  devices::Keyboard keyboard_;
  bool in_session_ = false;
  std::uint64_t blocked_dma_ = 0;
  std::uint64_t blocked_irq_ = 0;
  std::uint64_t blocked_reads_ = 0;
};

}  // namespace tp::drtm
