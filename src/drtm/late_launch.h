// DRTM late launch (AMD SKINIT / Intel GETSEC[SENTER]) simulator.
//
// The hardware contract being reproduced:
//   - the CPU suspends the OS, disables interrupts and DMA into the
//     secure region, and asserts TPM locality 4;
//   - PCR 17 (and 18) are reset to zero -- something software can never
//     do -- and PCR 17 is extended with the hash of the launched code, so
//     the TPM state now *is* the identity of what runs;
//   - on exit, the DRTM PCRs are capped with a terminator extend so the
//     resumed OS cannot masquerade as the (finished) PAL.
//
// LaunchGuard is the RAII session window; everything that must hold
// "while isolated" (device exclusivity, attack blocking) keys off it.
#pragma once

#include "drtm/platform.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::drtm {

/// Identity of an AMD SKINIT launch: what PCR17/18 will contain. The
/// digests live in the bank of the platform's TPM generation: SHA-1 for
/// a 1.2 chip, SHA-256 for a 2.0 chip (tracked by `alg`).
struct Measurement {
  Bytes pal_digest;    // H(PAL image)        -> PCR 17
  Bytes input_digest;  // H(marshalled input) -> PCR 18
  crypto::HashAlg alg = crypto::HashAlg::kSha1;

  /// Predicts the post-launch PCR{17,18} values for golden-value
  /// computation by verifiers (H(zeros || digest) for each).
  std::vector<Bytes> predicted_pcr_values() const;
};

/// Value a freshly reset PCR holds after one extend with H(data):
/// the building block of every golden-measurement computation. `alg`
/// selects the PCR bank (SHA-1 for 1.2 chips, SHA-256 for 2.0).
Bytes predicted_extend_of(BytesView data,
                          crypto::HashAlg alg = crypto::HashAlg::kSha1);

/// Predicted PCR 17 after an Intel TXT launch: the SINIT ACM measurement
/// extended with the launch control policy.
Bytes predicted_txt_pcr17(const TxtArtifacts& artifacts,
                          crypto::HashAlg alg = crypto::HashAlg::kSha1);

/// RAII isolation window. Construction = the launch already happened;
/// destruction caps the DRTM PCRs, releases devices and resumes the OS.
class [[nodiscard]] LaunchGuard {
 public:
  LaunchGuard(LaunchGuard&& other) noexcept;
  LaunchGuard& operator=(LaunchGuard&&) = delete;
  LaunchGuard(const LaunchGuard&) = delete;
  ~LaunchGuard();

  tpm::Locality locality() const { return tpm::Locality::kPal; }

 private:
  friend class LateLaunch;
  explicit LaunchGuard(Platform* platform) : platform_(platform) {}

  Platform* platform_;
};

class LateLaunch {
 public:
  explicit LateLaunch(Platform& platform) : platform_(&platform) {}

  /// Performs the measured launch for the platform's technology: charges
  /// suspend + launch costs, resets and extends the DRTM PCRs per the
  /// SKINIT or TXT chain, flips the platform into session state and takes
  /// exclusive ownership of keyboard and display.
  ///
  /// `pal_image` is the code being launched (its hash lands in the
  /// platform's identity PCR); `marshalled_input` is the parameter block.
  /// Fails with kBadState if a session is already active.
  Result<LaunchGuard> launch(BytesView pal_image, BytesView marshalled_input);

  /// The measurement an AMD SKINIT launch of this image/input produces
  /// in the `alg` PCR bank.
  static Measurement measure(BytesView pal_image, BytesView marshalled_input,
                             crypto::HashAlg alg = crypto::HashAlg::kSha1);

  /// The digest used to cap PCR 17/18 at session exit.
  static Bytes exit_cap_digest(crypto::HashAlg alg = crypto::HashAlg::kSha1);

 private:
  Platform* platform_;
};

}  // namespace tp::drtm
