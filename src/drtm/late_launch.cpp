#include "drtm/late_launch.h"

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace tp::drtm {

using crypto::HashAlg;
using crypto::Sha1;
using crypto::Sha256;
using tpm::Locality;

namespace {
Bytes hash_with(HashAlg alg, BytesView data) {
  return alg == HashAlg::kSha1 ? Sha1::hash(data) : Sha256::hash(data);
}
}  // namespace

std::vector<Bytes> Measurement::predicted_pcr_values() const {
  const Bytes zeros(tpm::pcr_digest_size(alg), 0x00);
  return {hash_with(alg, concat(zeros, pal_digest)),
          hash_with(alg, concat(zeros, input_digest))};
}

Bytes predicted_extend_of(BytesView data, HashAlg alg) {
  const Bytes zeros(tpm::pcr_digest_size(alg), 0x00);
  return hash_with(alg, concat(zeros, hash_with(alg, data)));
}

Bytes predicted_txt_pcr17(const TxtArtifacts& artifacts, HashAlg alg) {
  const Bytes after_sinit = predicted_extend_of(artifacts.sinit_acm, alg);
  return hash_with(alg,
                   concat(after_sinit, hash_with(alg, artifacts.lcp_policy)));
}

Measurement LateLaunch::measure(BytesView pal_image, BytesView marshalled_input,
                                HashAlg alg) {
  return Measurement{hash_with(alg, pal_image),
                     hash_with(alg, marshalled_input), alg};
}

Bytes LateLaunch::exit_cap_digest(HashAlg alg) {
  return hash_with(alg, bytes_of("drtm-session-exit-cap"));
}

Result<LaunchGuard> LateLaunch::launch(BytesView pal_image,
                                       BytesView marshalled_input) {
  if (platform_->in_pal_session()) {
    return Error{Err::kBadState, "late launch: session already active"};
  }
  if (pal_image.empty()) {
    return Error{Err::kInvalidArgument, "late launch: empty PAL image"};
  }

  SimClock& clock = platform_->clock();
  const DrtmCosts& costs = platform_->drtm_costs();

  // 1. Suspend the OS (save CPU state, mask devices).
  clock.charge("drtm:suspend", costs.state_save);

  // 2. SKINIT: the CPU streams the PAL image to the TPM for hashing.
  const auto kib = static_cast<std::int64_t>((pal_image.size() + 1023) / 1024);
  clock.charge("drtm:skinit",
               costs.skinit_base +
                   SimDuration{costs.hash_per_kib.ns * std::max<std::int64_t>(
                                                           kib, 1)});

  // 3. Hardware-locality PCR transitions: reset, then extend the
  //    technology's measurement chain -- in the bank of the platform's
  //    TPM generation.
  const bool tpm2 = platform_->backend() == tpm::QuoteFormat::kTpm2;
  const HashAlg alg = tpm2 ? HashAlg::kSha256 : HashAlg::kSha1;
  auto reset = [&](std::uint32_t pcr) -> Status {
    return tpm2 ? platform_->tpm2().pcr_reset(Locality::kDrtmHardware, pcr)
                : platform_->tpm().pcr_reset(Locality::kDrtmHardware, pcr);
  };
  auto extend = [&](std::uint32_t pcr, BytesView data) -> Status {
    const Bytes digest = hash_with(alg, data);
    auto r = tpm2 ? platform_->tpm2().pcr_extend(Locality::kDrtmHardware, pcr,
                                                 digest)
                  : platform_->tpm().pcr_extend(Locality::kDrtmHardware, pcr,
                                                digest);
    if (!r.ok()) return r.error();
    return Status::ok_status();
  };
  const std::uint32_t reset_high =
      platform_->technology() == DrtmTechnology::kAmdSkinit ? 18u : 19u;
  for (std::uint32_t pcr = 17; pcr <= reset_high; ++pcr) {
    if (auto s = reset(pcr); !s.ok()) return s.error();
  }
  if (platform_->technology() == DrtmTechnology::kAmdSkinit) {
    // SKINIT: PCR17 <- PAL, PCR18 <- inputs.
    if (auto s = extend(17, pal_image); !s.ok()) return s.error();
    if (auto s = extend(18, marshalled_input); !s.ok()) return s.error();
  } else {
    // TXT: PCR17 <- SINIT ACM then LCP policy; PCR18 <- MLE (the PAL);
    // PCR19 <- inputs.
    const TxtArtifacts& txt = platform_->txt_artifacts();
    if (auto s = extend(17, txt.sinit_acm); !s.ok()) return s.error();
    if (auto s = extend(17, txt.lcp_policy); !s.ok()) return s.error();
    if (auto s = extend(18, pal_image); !s.ok()) return s.error();
    if (auto s = extend(19, marshalled_input); !s.ok()) return s.error();
  }

  // 4. Enter the isolated environment: exclusive devices, attack gates on.
  clock.charge("drtm:pal_setup", costs.pal_setup);
  platform_->set_in_session(true);
  platform_->display().acquire_exclusive();
  platform_->keyboard().acquire_exclusive();

  return LaunchGuard(platform_);
}

LaunchGuard::LaunchGuard(LaunchGuard&& other) noexcept
    : platform_(other.platform_) {
  other.platform_ = nullptr;
}

LaunchGuard::~LaunchGuard() {
  if (platform_ == nullptr) return;

  // Cap the DRTM PCRs so the resumed OS cannot impersonate the PAL, then
  // resume the OS.
  const bool tpm2 = platform_->backend() == tpm::QuoteFormat::kTpm2;
  const Bytes cap = LateLaunch::exit_cap_digest(tpm2 ? HashAlg::kSha256
                                                     : HashAlg::kSha1);
  const std::uint32_t cap_high =
      platform_->technology() == DrtmTechnology::kAmdSkinit ? 18u : 19u;
  for (std::uint32_t pcr = 17; pcr <= cap_high; ++pcr) {
    if (tpm2) {
      (void)platform_->tpm2().pcr_extend(tpm::Locality::kPal, pcr, cap);
    } else {
      (void)platform_->tpm().pcr_extend(tpm::Locality::kPal, pcr, cap);
    }
  }

  platform_->display().release_exclusive();
  platform_->keyboard().release_exclusive();
  platform_->set_in_session(false);
  platform_->clock().charge("drtm:resume",
                            platform_->drtm_costs().state_restore);
}

}  // namespace tp::drtm
