#include "drtm/platform.h"

namespace tp::drtm {

Platform::Platform(PlatformConfig config) : config_(std::move(config)) {
  const tpm::ChipProfile& chip = config_.chip_name.empty()
                                     ? tpm::default_chip()
                                     : tpm::chip_by_name(config_.chip_name);
  // Construct only the chip the config asks for: the 1.2 device's RSA
  // keygen is expensive and a mixed fleet instantiates many platforms.
  if (config_.backend == tpm::QuoteFormat::kTpm2) {
    tpm2_ = std::make_unique<tpm::Tpm2Device>(
        chip, config_.seed, clock_,
        tpm::Tpm2Device::Options{.faults = config_.tpm_faults});
  } else {
    tpm_ = std::make_unique<tpm::TpmDevice>(
        chip, config_.seed, clock_,
        tpm::TpmDevice::Options{.key_bits = config_.tpm_key_bits,
                                .faults = config_.tpm_faults});
  }
}

Status Platform::attempt_dma_write(BytesView payload) {
  (void)payload;
  if (in_session_) {
    ++blocked_dma_;
    return Error{Err::kIsolationViolation,
                 "DMA into PAL memory blocked by device exclusion"};
  }
  return Status::ok_status();
}

Status Platform::attempt_interrupt_injection() {
  if (in_session_) {
    ++blocked_irq_;
    return Error{Err::kIsolationViolation,
                 "interrupts disabled during late-launch session"};
  }
  return Status::ok_status();
}

Status Platform::attempt_pal_memory_read() {
  if (in_session_) {
    ++blocked_reads_;
    return Error{Err::kIsolationViolation,
                 "PAL memory is inaccessible to the suspended host"};
  }
  return Status::ok_status();
}

}  // namespace tp::drtm
