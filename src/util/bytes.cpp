#include "util/bytes.h"

#include <stdexcept>

namespace tp {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_of(BytesView data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  append(out, a);
  append(out, b);
  return out;
}

Bytes concat(BytesView a, BytesView b, BytesView c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  append(out, a);
  append(out, b);
  append(out, c);
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void secure_wipe(Bytes& b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
}

}  // namespace tp
