// Byte-buffer primitives shared by every module.
//
// The whole code base traffics in octet strings (hashes, keys, wire
// messages, sealed blobs), so we fix one representation -- std::vector of
// uint8_t -- and provide the conversions everybody needs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tp {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of `data` ("" for empty input).
std::string to_hex(BytesView data);

/// Parses lowercase/uppercase hex. Throws std::invalid_argument on odd
/// length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies the raw characters of `s` into a byte buffer (no terminator).
Bytes bytes_of(std::string_view s);

/// Interprets `data` as raw characters.
std::string string_of(BytesView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenation convenience for building hash preimages.
Bytes concat(BytesView a, BytesView b);
Bytes concat(BytesView a, BytesView b, BytesView c);

/// Byte-wise equality that does not depend on the contents (timing-safe).
/// Buffers of different length compare unequal, and the length check is the
/// only data-dependent branch.
bool ct_equal(BytesView a, BytesView b);

/// Overwrites the buffer with zeros. Used to scrub key material; the
/// volatile write prevents the store from being elided.
void secure_wipe(Bytes& b);

}  // namespace tp
