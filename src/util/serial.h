// Binary serialization for wire messages, sealed blobs and TPM structures.
//
// All integers are big-endian (network order), matching the TPM 1.2
// structure conventions. Variable-length fields carry a u32 length prefix.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace tp {

/// Appends fields to a growing byte buffer.
class BinaryWriter {
 public:
  /// Pre-sizes the buffer when the caller knows the message size.
  void reserve(std::size_t n) { out_.reserve(n); }
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-size fields such as digests).
  void raw(BytesView data);
  /// u32 length prefix followed by the bytes.
  void var_bytes(BytesView data);
  /// u32 length prefix followed by the characters.
  void var_string(std::string_view s);

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Consumes fields from a byte buffer. Every accessor reports truncation
/// via Result instead of reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  /// Exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);
  /// Zero-copy variant: a view into the underlying buffer (valid only
  /// while that buffer lives). Hot parsers use this to avoid copying
  /// bulk fields they only hash or transform.
  Result<BytesView> view(std::size_t n);
  /// u32 length prefix followed by that many bytes. `max_len` bounds the
  /// accepted length so corrupt input cannot trigger huge allocations.
  Result<Bytes> var_bytes(std::size_t max_len = kDefaultMaxLen);
  Result<std::string> var_string(std::size_t max_len = kDefaultMaxLen);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

  /// Succeeds only when the whole buffer has been consumed; trailing bytes
  /// in a protocol message indicate tampering or version mismatch.
  Status expect_exhausted() const;

  static constexpr std::size_t kDefaultMaxLen = 1u << 24;  // 16 MiB

 private:
  bool need(std::size_t n) const { return remaining() >= n; }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace tp
