// Minimal leveled logger.
//
// Default level is kWarn so tests and benchmarks stay quiet; examples raise
// it to kInfo to narrate the protocol.
#pragma once

#include <sstream>
#include <string>

namespace tp {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: TP_LOG(kInfo, "tpm") << "quote ok";
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, out_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace tp

#define TP_LOG(level, component) ::tp::LogStream(::tp::LogLevel::level, component)
