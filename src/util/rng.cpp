#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace tp {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

SimRng::SimRng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t SimRng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t SimRng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double SimRng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool SimRng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return next_double() < probability;
}

double SimRng::next_exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("next_exponential: mean <= 0");
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double SimRng::next_normal(double mean, double stddev, double min) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = mean + stddev * z;
  return v < min ? min : v;
}

Bytes SimRng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

SimRng SimRng::fork(std::uint64_t label) {
  const std::uint64_t child_seed =
      next_u64() ^ (label * 0x9e3779b97f4a7c15ull);
  return SimRng(child_seed);
}

}  // namespace tp
