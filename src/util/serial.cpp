#include "util/serial.h"

namespace tp {

void BinaryWriter::u8(std::uint8_t v) { out_.push_back(v); }

void BinaryWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void BinaryWriter::raw(BytesView data) { append(out_, data); }

void BinaryWriter::var_bytes(BytesView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void BinaryWriter::var_string(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

Result<std::uint8_t> BinaryReader::u8() {
  if (!need(1)) return Error{Err::kInvalidArgument, "truncated u8"};
  return data_[pos_++];
}

Result<std::uint16_t> BinaryReader::u16() {
  if (!need(2)) return Error{Err::kInvalidArgument, "truncated u16"};
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> BinaryReader::u32() {
  if (!need(4)) return Error{Err::kInvalidArgument, "truncated u32"};
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> BinaryReader::u64() {
  if (!need(8)) return Error{Err::kInvalidArgument, "truncated u64"};
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<Bytes> BinaryReader::raw(std::size_t n) {
  if (!need(n)) return Error{Err::kInvalidArgument, "truncated raw bytes"};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<BytesView> BinaryReader::view(std::size_t n) {
  if (!need(n)) return Error{Err::kInvalidArgument, "truncated raw bytes"};
  BytesView v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

Result<Bytes> BinaryReader::var_bytes(std::size_t max_len) {
  auto len = u32();
  if (!len.ok()) return len.error();
  if (len.value() > max_len) {
    return Error{Err::kInvalidArgument, "var_bytes length exceeds bound"};
  }
  return raw(len.value());
}

Result<std::string> BinaryReader::var_string(std::size_t max_len) {
  auto bytes = var_bytes(max_len);
  if (!bytes.ok()) return bytes.error();
  return string_of(bytes.value());
}

Status BinaryReader::expect_exhausted() const {
  if (!exhausted()) {
    return Error{Err::kInvalidArgument, "trailing bytes after message"};
  }
  return Status::ok_status();
}

}  // namespace tp
