// Result<T>: explicit success-or-error return values.
//
// Protocol code has many *expected* failure outcomes (bad signature, stale
// nonce, PCR mismatch) that are not programming errors, so we return them
// as values rather than throwing. Exceptions remain for precondition
// violations and unrecoverable misuse.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace tp {

/// Machine-readable failure category. Mirrors the failure modes of the real
/// system: TPM command failures, attestation failures, protocol failures.
enum class Err {
  kNone = 0,
  kInvalidArgument,
  kBadState,
  kNotFound,
  kAuthFail,          // signature / MAC / auth value mismatch
  kPcrMismatch,       // sealing policy or quote composite mismatch
  kNonceMismatch,     // freshness violation
  kReplay,            // transaction seen before
  kTimeout,           // human did not confirm in time
  kUserRejected,      // human explicitly declined
  kIsolationViolation,// blocked DMA/interrupt access during a PAL session
  kCryptoError,       // malformed ciphertext / padding / key
  kUnsupported,
  kInternal,
};

/// Human-readable name for an error category (for logs and test output).
constexpr const char* err_name(Err e) {
  switch (e) {
    case Err::kNone: return "ok";
    case Err::kInvalidArgument: return "invalid_argument";
    case Err::kBadState: return "bad_state";
    case Err::kNotFound: return "not_found";
    case Err::kAuthFail: return "auth_fail";
    case Err::kPcrMismatch: return "pcr_mismatch";
    case Err::kNonceMismatch: return "nonce_mismatch";
    case Err::kReplay: return "replay";
    case Err::kTimeout: return "timeout";
    case Err::kUserRejected: return "user_rejected";
    case Err::kIsolationViolation: return "isolation_violation";
    case Err::kCryptoError: return "crypto_error";
    case Err::kUnsupported: return "unsupported";
    case Err::kInternal: return "internal";
  }
  return "unknown";
}

/// Error payload: category plus context message.
struct Error {
  Err code = Err::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(err_name(code)) + ": " + message;
  }
};

/// A value or an error. Accessing the wrong arm throws std::logic_error,
/// which marks a bug in the caller, not a runtime condition.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT(implicit)
  Result(Error error) : error_(std::move(error)) {}       // NOLINT(implicit)
  Result(Err code, std::string message)
      : error_(Error{code, std::move(message)}) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  /// Moves the value out (the Result is left valueless but destructible).
  T take() {
    require_ok();
    return std::move(*value_);
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result: error() on success value");
    return *error_;
  }
  Err code() const { return ok() ? Err::kNone : error_->code; }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Result: value() on error: " +
                             error_->to_string());
    }
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)
  Status(Err code, std::string message)
      : error_(Error{code, std::move(message)}) {}

  static Status ok_status() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Status: error() on success");
    return *error_;
  }
  Err code() const { return ok() ? Err::kNone : error_->code; }
  std::string to_string() const {
    return ok() ? "ok" : error_->to_string();
  }

 private:
  std::optional<Error> error_;
};

}  // namespace tp
