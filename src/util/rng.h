// Deterministic pseudo-random source for *simulation* decisions.
//
// Everything stochastic in the simulator (human reaction times, network
// jitter, attacker behaviour) draws from this generator so experiments are
// reproducible from a seed. Cryptographic randomness is a different
// concern and lives in crypto/drbg.h.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace tp {

/// xoshiro256** seeded via SplitMix64. Small, fast, and good enough for
/// simulation (not for keys).
class SimRng {
 public:
  explicit SimRng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw.
  bool chance(double probability);

  /// Exponentially distributed value with the given mean (> 0); used for
  /// inter-arrival and latency modelling.
  double next_exponential(double mean);

  /// Normal draw (Box-Muller), clamped at `min`.
  double next_normal(double mean, double stddev, double min = 0.0);

  /// Fills a buffer (for simulated noise payloads, not keys).
  Bytes next_bytes(std::size_t n);

  /// Forks an independent stream; children of distinct labels are
  /// decorrelated even from the same parent.
  SimRng fork(std::uint64_t label);

 private:
  std::uint64_t s_[4];
};

}  // namespace tp
