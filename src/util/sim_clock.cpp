#include "util/sim_clock.h"

#include <stdexcept>

namespace tp {

void SimClock::advance(SimDuration d) {
  if (d.ns < 0) throw std::invalid_argument("SimClock: negative advance");
  now_.ns += d.ns;
}

void SimClock::charge(const std::string& label, SimDuration d) {
  const SimTime start = now_;
  advance(d);
  spans_.push_back(Span{label, start, d});
}

SimDuration SimClock::total_for(const std::string& label) const {
  SimDuration total{};
  for (const auto& s : spans_) {
    if (s.label == label) total = total + s.duration;
  }
  return total;
}

}  // namespace tp
