// Virtual time.
//
// The evaluation reproduces *hardware* latencies (TPM command times, SKINIT
// cost, human reaction time) that do not exist on this machine, so every
// component charges its cost to a shared virtual clock instead of sleeping.
// Benchmarks then report virtual durations that are directly comparable to
// the paper's wall-clock measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tp {

/// Nanoseconds of virtual time. A plain strong-ish typedef with helpers;
/// arithmetic stays explicit at call sites.
struct SimDuration {
  std::int64_t ns = 0;

  static constexpr SimDuration nanos(std::int64_t v) { return {v}; }
  static constexpr SimDuration micros(std::int64_t v) { return {v * 1000}; }
  static constexpr SimDuration millis(std::int64_t v) {
    return {v * 1000000};
  }
  static constexpr SimDuration seconds(double v) {
    return {static_cast<std::int64_t>(v * 1e9)};
  }

  double to_millis() const { return static_cast<double>(ns) / 1e6; }
  double to_seconds() const { return static_cast<double>(ns) / 1e9; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return {a.ns + b.ns};
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return {a.ns - b.ns};
  }
  friend constexpr bool operator==(SimDuration a, SimDuration b) {
    return a.ns == b.ns;
  }
  friend constexpr auto operator<=>(SimDuration a, SimDuration b) {
    return a.ns <=> b.ns;
  }
};

/// Absolute virtual instant (ns since simulation start).
struct SimTime {
  std::int64_t ns = 0;

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return {t.ns + d.ns};
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return {a.ns - b.ns};
  }
  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.ns == b.ns;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) {
    return a.ns <=> b.ns;
  }
};

/// Monotonic virtual clock plus a span log for latency-breakdown
/// experiments (experiment T2 reports per-phase costs read from here).
class SimClock {
 public:
  SimTime now() const { return now_; }

  /// Advances time by `d` (d must be >= 0).
  void advance(SimDuration d);

  /// Named span: advances the clock and records (label, start, duration).
  void charge(const std::string& label, SimDuration d);

  struct Span {
    std::string label;
    SimTime start;
    SimDuration duration;
  };
  const std::vector<Span>& spans() const { return spans_; }
  void clear_spans() { spans_.clear(); }

  /// Sum of durations of all spans whose label equals `label`.
  SimDuration total_for(const std::string& label) const;

 private:
  SimTime now_;
  std::vector<Span> spans_;
};

}  // namespace tp
