// Concurrent verifier service: the SP's serving runtime.
//
// The protocol logic (ServiceProvider) is strictly sequential by design --
// its correctness argument leans on one-shot challenge maps and a replay
// cache with no interleavings to reason about. This runtime scales it the
// way SEDAT scales attestation verification: partition clients across N
// shards (hash of client id), give each shard its own ServiceProvider and
// its own worker thread, and feed the shards through bounded queues.
// Within a shard everything stays single-threaded; across shards there is
// no shared protocol state at all. The service adds the serving concerns
// the paper's evaluation abstracts away: backpressure, per-request
// deadlines, graceful drain, and metrics.
//
// Thread-safety contract:
//   - submit()/try_submit()/call() are safe from any number of threads.
//   - shard_sp() must only be touched while the service is NOT running
//     (before start() or after drain()/shutdown_now()).
//   - metrics()/stats() are safe at any time (atomic snapshots).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "sp/service_provider.h"
#include "svc/bounded_queue.h"
#include "svc/shard_router.h"
#include "util/bytes.h"

namespace tp::svc {

enum class SvcStatus : std::uint8_t {
  kOk = 0,          // frame holds the SP's response
  kDeadlineExpired, // request sat in the queue past its deadline
  kQueueFull,       // try_submit with the shard queue at capacity
  kShutdown,        // service not running / draining
};

constexpr const char* svc_status_name(SvcStatus s) {
  switch (s) {
    case SvcStatus::kOk: return "ok";
    case SvcStatus::kDeadlineExpired: return "deadline_expired";
    case SvcStatus::kQueueFull: return "queue_full";
    case SvcStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

struct SvcResponse {
  SvcStatus status = SvcStatus::kShutdown;
  Bytes frame;  // SP response frame; empty unless status == kOk
};

struct SvcConfig {
  /// Number of SP shards (== worker threads). Must be >= 1: the
  /// constructor throws std::invalid_argument on 0 rather than silently
  /// picking a value (a config asking for "no workers" is a bug).
  std::size_t num_workers = 4;
  /// Per-shard queue bound (the backpressure point). Must be >= 1; the
  /// constructor throws std::invalid_argument on 0 (an unbuffered queue
  /// would deadlock every producer).
  std::size_t queue_depth = 256;
  /// Upper bound on how many queued requests a worker drains per wakeup
  /// (clamped to [1, queue_depth]). Everything drained in one wakeup is
  /// handed to the shard SP as one handle_frame_batch call, so queued
  /// TxConfirm bursts share one gathered signature-verification pass;
  /// the queue hand-off cost (condvar wakeup + lock round trip) also
  /// amortizes across the batch. 1 restores the one-frame-per-wakeup
  /// behaviour. Latency under light load is unaffected either way: a
  /// worker never waits for a batch to fill, it drains what is there.
  std::size_t max_batch = 16;
  /// Applied to requests submitted without an explicit deadline;
  /// zero means no deadline.
  std::chrono::milliseconds default_deadline{0};
  /// Models the per-request backing-store commit (ledger write / DB round
  /// trip) a deployed SP performs after verification -- the same
  /// calibrated-latency methodology the rest of the repo uses, in real
  /// time because this layer is real-threaded. Zero (default) disables
  /// it. With it on, worker scaling measures latency hiding, which is the
  /// regime that matters on an oversubscribed or single-core host where
  /// CPU-bound work cannot speed up.
  std::chrono::microseconds simulated_backend_latency{0};
  /// Group commit: pay simulated_backend_latency once per drained batch
  /// instead of once per request -- the deployed analogue of batching
  /// the ledger write / fsync for every accept settled in one drain.
  /// Off by default so the per-request commit model (and every F3c
  /// baseline measured against it) is unchanged.
  bool group_commit = false;
  /// Template for every shard's ServiceProvider (the shard index is mixed
  /// into the nonce seed and the metrics prefix). Any SimClock set on
  /// `sp.clock` is ignored: the service drives each shard's session
  /// timeline from the same steady clock its queue deadlines use, so
  /// in-queue expiry and protocol session expiry share one timeline.
  /// A durable template (`sp.durable != nullptr`) requires
  /// num_workers == 1 -- a DurableLog serializes one SP's mutations and
  /// cannot be shared across shards; the constructor throws
  /// std::invalid_argument otherwise. Multi-shard durability lives in
  /// the cluster layer, which gives each member service its own log.
  sp::SpConfig sp;
  /// t=0 of every shard's protocol-session timeline. Default
  /// (epoch time_point) means "construction time" -- the seed's
  /// behaviour. A cluster passes one shared instant to every member
  /// service so session deadlines moved by shard handoff keep their
  /// meaning on the destination's timeline.
  std::chrono::steady_clock::time_point epoch{};
  /// External registry; nullptr -> the service owns a private one.
  obs::Registry* metrics = nullptr;
};

class VerifierService {
 public:
  /// Throws std::invalid_argument when the config is unusable
  /// (num_workers == 0 or queue_depth == 0).
  explicit VerifierService(SvcConfig config);
  ~VerifierService();

  VerifierService(const VerifierService&) = delete;
  VerifierService& operator=(const VerifierService&) = delete;

  /// Launches the worker threads. Idempotent while running. A stopped
  /// service can be started again: its queues reopen and every shard SP
  /// keeps the state it had at drain() (the cluster's stop-the-world
  /// rebalance leans on this stop / move state / restart cycle).
  void start();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once a shard SP hit an injected storage crash
  /// (store::CrashInjected escaping the journal append). A crashed
  /// service stops accepting and fails queued requests with kShutdown;
  /// it must be discarded and a replacement rebuilt from the same
  /// DurableLog (whose recovery replays everything the crashed service
  /// acked). Only meaningful for durable configs -- a non-durable
  /// service never crashes this way.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_for(std::string_view client_id) const {
    return router_.shard_for(client_id);
  }

  /// Routes the frame to its client's shard. Blocks for backpressure when
  /// the shard queue is full. The future always resolves exactly once.
  std::future<SvcResponse> submit(const std::string& client_id, Bytes frame);
  std::future<SvcResponse> submit(
      const std::string& client_id, Bytes frame,
      std::chrono::steady_clock::time_point deadline);

  /// Like submit(), but fails fast with kQueueFull instead of blocking.
  std::future<SvcResponse> try_submit(const std::string& client_id,
                                      Bytes frame);

  /// Re-injects a request whose future the caller already handed out:
  /// behaves like submit() but resolves `promise` instead of minting a
  /// new future. This is the cluster's parked-frame replay path -- a
  /// frame parked during a rebalance is re-routed here and its original
  /// caller, still blocked on the future, sees exactly one resolution.
  void submit_with_promise(const std::string& client_id, Bytes frame,
                           std::promise<SvcResponse> promise);

  /// Synchronous convenience: submit and wait. Never deadlocks -- if the
  /// service is not running the response is an immediate kShutdown.
  SvcResponse call(const std::string& client_id, BytesView frame);

  /// Graceful shutdown: stop accepting, let workers finish every queued
  /// request, join. Safe to call twice or on a never-started service.
  void drain();

  /// Fast shutdown: stop accepting, fail still-queued requests with
  /// kShutdown (their futures still resolve), join.
  void shutdown_now();

  /// Direct shard access for setup/inspection; see thread-safety contract.
  sp::ServiceProvider& shard_sp(std::size_t i) { return *shards_[i]->sp; }

  /// Requests currently sitting in the shard queues (point-in-time sum;
  /// safe while running).
  std::size_t queued() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) n += shard->queue->size();
    return n;
  }

  /// Heap bytes pinned by every shard SP's bounded state. Safe at any
  /// time: it reads only capacities fixed at construction.
  std::size_t sp_memory_bytes() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) n += shard->sp->memory_bytes();
    return n;
  }

  /// Runtime adjustment of the modelled backing-store commit latency
  /// (safe while running; workers read it per drained batch). The
  /// cluster bench enrolls its population at zero and then measures the
  /// confirm blast at the calibrated F3c value.
  void set_simulated_backend_latency(std::chrono::microseconds us) {
    backend_latency_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(us).count(),
        std::memory_order_relaxed);
  }

  obs::Registry& metrics() { return *registry_; }

  /// Protocol stats aggregated across all shards (safe while running).
  sp::SpStats stats() const;

 private:
  struct Request {
    Bytes frame;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // epoch == none
    std::promise<SvcResponse> promise;
  };

  struct Shard {
    std::unique_ptr<sp::ServiceProvider> sp;
    std::unique_ptr<BoundedQueue<Request>> queue;
    std::thread worker;
  };

  std::future<SvcResponse> enqueue(const std::string& client_id, Bytes frame,
                                   std::chrono::steady_clock::time_point
                                       deadline,
                                   bool blocking);
  void worker_loop(std::size_t shard_index);
  void stop_workers(bool process_remaining);

  SvcConfig config_;
  ShardRouter router_;
  /// t=0 of every shard's protocol-session timeline; workers convert
  /// steady_clock instants to SimTime offsets from here.
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> discard_remaining_{false};
  std::atomic<bool> crashed_{false};
  /// Modelled backing-store commit, ns (see SvcConfig; mutable at
  /// runtime via set_simulated_backend_latency).
  std::atomic<std::int64_t> backend_latency_ns_{0};

  // Hot-path instruments, resolved once at construction.
  obs::Counter* c_submitted_;
  obs::Counter* c_completed_;
  obs::Counter* c_expired_;
  obs::Counter* c_rejected_full_;
  obs::Counter* c_rejected_shutdown_;
  obs::Counter* c_backpressure_waits_;
  obs::Histogram* h_queue_wait_;
  obs::Histogram* h_handle_;
  obs::Histogram* h_request_;
  /// Drained-batch sizes ("svc.batch_size", linear-ish buckets from 1):
  /// how much amortization the queue actually delivers under the
  /// offered load, not just what max_batch permits.
  obs::Histogram* h_batch_size_;
};

}  // namespace tp::svc
