#include "svc/shard_router.h"

#include "core/messages.h"

namespace tp::svc {

Result<std::string> ShardRouter::client_id_of(BytesView frame) {
  auto opened = core::open_envelope(frame);
  if (!opened.ok()) return opened.error();
  const auto& [type, payload] = opened.value();
  switch (type) {
    case core::MsgType::kEnrollBegin: {
      auto msg = core::EnrollBegin::deserialize(payload);
      if (!msg.ok()) return msg.error();
      return msg.value().client_id;
    }
    case core::MsgType::kEnrollComplete: {
      auto msg = core::EnrollComplete::deserialize(payload);
      if (!msg.ok()) return msg.error();
      return msg.value().client_id;
    }
    case core::MsgType::kTxSubmit: {
      auto msg = core::TxSubmit::deserialize(payload);
      if (!msg.ok()) return msg.error();
      return msg.value().client_id;
    }
    case core::MsgType::kTxConfirm: {
      auto msg = core::TxConfirm::deserialize(payload);
      if (!msg.ok()) return msg.error();
      return msg.value().client_id;
    }
    default:
      return Error{Err::kInvalidArgument,
                   "frame type carries no client id"};
  }
}

}  // namespace tp::svc
