// Bounded multi-producer/multi-consumer queue with close semantics.
//
// The verifier service's backpressure primitive: producers block (or fail
// fast with try_push) when the queue is at capacity, so a request flood
// turns into producer-side latency instead of unbounded memory growth.
// close() starts the drain: further pushes fail, pops keep succeeding
// until the queue is empty, then return nullopt -- which is how worker
// threads learn they are done without a sentinel element.
//
// Storage is a ring buffer preallocated to capacity at construction --
// the queue never allocates after that, so a full/empty oscillation
// under load costs no allocator traffic (the deque it replaced grew and
// shrank a chunk at a time).
//
// Mutex + two condition variables, deliberately: the queue hands over
// whole requests whose processing cost (a signature verify) is three
// orders of magnitude above the lock hand-off, so a lock-free ring would
// buy nothing measurable here (bench_svc_throughput confirms
// near-linear scaling). pop_batch() is the consumer-side amortizer: one
// wakeup and one lock round trip hand over every queued request up to
// the caller's bound, which is what feeds the SP's batched verify plane.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace tp::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false iff closed; like try_push, a
  /// failed push leaves `item` intact in the caller (the service re-uses
  /// this to resolve the request's promise instead of breaking it).
  bool push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || count_ < slots_.size(); });
    if (closed_) return false;
    put_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ >= slots_.size()) return false;
      put_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    T item = take_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks like pop(), then drains up to `max_n` items (at least one)
  /// into `out` -- cleared first -- under a single lock acquisition.
  /// Returns the number of items delivered; 0 means closed and drained.
  /// One wakeup per batch instead of per item is the point: on a
  /// contended box the condvar round trip and context switch dominate
  /// cheap requests, and the batch also feeds downstream gathered
  /// processing (the SP's batched signature verification).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_n) {
    out.clear();
    if (max_n == 0) max_n = 1;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    const std::size_t n = count_ < max_n ? count_ : max_n;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(take_front());
    lock.unlock();
    // Up to n slots freed at once: wake every blocked producer, not one.
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Non-blocking pop; nullopt when nothing is immediately available.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0) return std::nullopt;
    T item = take_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes every waiter. Queued items remain
  /// poppable (drain); pending blocked pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Re-admits pushes after a close() + drain cycle (the service's
  /// stop-the-world rebalance stops workers, moves state, then restarts).
  /// The caller guarantees no producer or consumer is concurrently
  /// blocked on the queue when reopening.
  void reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  // Ring operations; callers hold mu_. Slots are optional<T> so the
  // element type needs no default constructor and vacated slots destroy
  // their payload eagerly.
  void put_back(T&& item) {
    std::size_t tail = head_ + count_;
    if (tail >= slots_.size()) tail -= slots_.size();
    slots_[tail].emplace(std::move(item));
    ++count_;
  }
  T take_front() {
    T item = std::move(*slots_[head_]);
    slots_[head_].reset();
    ++head_;
    if (head_ == slots_.size()) head_ = 0;
    --count_;
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<std::optional<T>> slots_;  // ring storage, fixed at ctor
  std::size_t head_ = 0;                 // index of the oldest item
  std::size_t count_ = 0;                // live items
  bool closed_ = false;
};

}  // namespace tp::svc
