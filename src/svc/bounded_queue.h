// Bounded multi-producer/multi-consumer queue with close semantics.
//
// The verifier service's backpressure primitive: producers block (or fail
// fast with try_push) when the queue is at capacity, so a request flood
// turns into producer-side latency instead of unbounded memory growth.
// close() starts the drain: further pushes fail, pops keep succeeding
// until the queue is empty, then return nullopt -- which is how worker
// threads learn they are done without a sentinel element.
//
// Mutex + two condition variables, deliberately: the queue hands over
// whole requests whose processing cost (an RSA verify) is three orders of
// magnitude above the lock hand-off, so a lock-free ring would buy nothing
// measurable here (bench_svc_throughput confirms near-linear scaling).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tp::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (item dropped) iff closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is immediately available.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Rejects future pushes and wakes every waiter. Queued items remain
  /// poppable (drain); pending blocked pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tp::svc
