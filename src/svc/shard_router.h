// Client-to-shard routing.
//
// All SP state is keyed by client id (pending challenges, enrolled keys,
// replay cache), so partitioning clients by a stable hash gives each shard
// a disjoint slice of state and lets the existing single-threaded
// ServiceProvider run unmodified inside its shard -- the SEDAT-style
// "embarrassingly parallel per device" observation. FNV-1a is used for its
// good avalanche on short id strings (std::hash makes no cross-platform
// distribution promise).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace tp::svc {

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  std::size_t num_shards() const { return num_shards_; }

  std::size_t shard_for(std::string_view client_id) const {
    return static_cast<std::size_t>(hash(client_id) % num_shards_);
  }

  /// FNV-1a 64-bit.
  static std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Peeks the client id out of a request frame without fully handling
  /// it, for callers that hold only opaque frames (e.g. a network front
  /// end). Fails on malformed frames and on message types that carry no
  /// client id (responses).
  static Result<std::string> client_id_of(BytesView frame);

 private:
  std::size_t num_shards_;
};

}  // namespace tp::svc
