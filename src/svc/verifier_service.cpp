#include "svc/verifier_service.h"

#include <stdexcept>
#include <utility>

#include "store/storage_backend.h"
#include "util/log.h"

namespace tp::svc {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

std::future<SvcResponse> immediate(SvcStatus status) {
  std::promise<SvcResponse> promise;
  auto future = promise.get_future();
  promise.set_value(SvcResponse{status, {}});
  return future;
}

SvcConfig validated(SvcConfig config) {
  if (config.num_workers == 0) {
    throw std::invalid_argument(
        "SvcConfig::num_workers must be >= 1 (one worker thread per SP "
        "shard; 0 would mean a service that can never process a request)");
  }
  if (config.queue_depth == 0) {
    throw std::invalid_argument(
        "SvcConfig::queue_depth must be >= 1 (the per-shard backpressure "
        "bound; 0 would block every producer forever)");
  }
  if (config.sp.durable != nullptr && config.num_workers != 1) {
    throw std::invalid_argument(
        "SvcConfig: a durable SP template requires num_workers == 1 -- a "
        "DurableLog serializes exactly one SP's mutations and cannot be "
        "shared across shards (the cluster layer gives each member its "
        "own log)");
  }
  return config;
}

}  // namespace

VerifierService::VerifierService(SvcConfig config)
    : config_(validated(std::move(config))),
      router_(config_.num_workers),
      epoch_(config_.epoch == Clock::time_point{} ? Clock::now()
                                                  : config_.epoch) {
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  c_submitted_ = &registry_->counter("svc.requests_submitted");
  c_completed_ = &registry_->counter("svc.requests_completed");
  c_expired_ = &registry_->counter("svc.deadline_expired");
  c_rejected_full_ = &registry_->counter("svc.rejected_queue_full");
  c_rejected_shutdown_ = &registry_->counter("svc.rejected_shutdown");
  c_backpressure_waits_ = &registry_->counter("svc.backpressure_waits");
  h_queue_wait_ = &registry_->histogram("svc.queue_wait_ns");
  h_handle_ = &registry_->histogram("svc.handle_ns");
  h_request_ = &registry_->histogram("svc.request_ns");
  // Batch sizes are small integers, not nanoseconds: buckets start at 1
  // and grow slowly so 1..max_batch each land distinguishably.
  h_batch_size_ = &registry_->histogram(
      "svc.batch_size", obs::Histogram::Options{1, 1 << 20, 1.2});

  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.max_batch > config_.queue_depth) {
    config_.max_batch = config_.queue_depth;
  }
  backend_latency_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config_.simulated_backend_latency)
          .count(),
      std::memory_order_relaxed);

  const std::size_t n = router_.num_shards();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    sp::SpConfig sp_config = config_.sp;
    // Distinct nonce stream and metrics namespace per shard.
    sp_config.seed =
        concat(sp_config.seed, bytes_of(":shard" + std::to_string(i)));
    sp_config.metrics = registry_;
    sp_config.metrics_prefix = "sp.shard" + std::to_string(i);
    // Each shard's session timeline is driven by this worker from the
    // service's steady clock (see worker_loop), not a simulation clock.
    sp_config.clock = nullptr;
    shard->sp = std::make_unique<sp::ServiceProvider>(std::move(sp_config));
    shard->queue =
        std::make_unique<BoundedQueue<Request>>(config_.queue_depth);
    shards_.push_back(std::move(shard));
  }
}

VerifierService::~VerifierService() { drain(); }

void VerifierService::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  discard_remaining_.store(false, std::memory_order_release);
  // A restart after drain()/shutdown_now() finds the queues closed;
  // workers are joined at this point, so reopening is race-free.
  for (auto& shard : shards_) shard->queue->reopen();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
  accepting_.store(true, std::memory_order_release);
  TP_LOG(kInfo, "svc") << "verifier service started: "
                       << shards_.size() << " shard(s), queue depth "
                       << config_.queue_depth;
}

std::future<SvcResponse> VerifierService::enqueue(
    const std::string& client_id, Bytes frame, Clock::time_point deadline,
    bool blocking) {
  if (!accepting_.load(std::memory_order_acquire)) {
    c_rejected_shutdown_->inc();
    return immediate(SvcStatus::kShutdown);
  }
  Request request;
  request.frame = std::move(frame);
  request.enqueued = Clock::now();
  request.deadline = deadline;
  auto future = request.promise.get_future();
  c_submitted_->inc();

  auto& queue = *shards_[router_.shard_for(client_id)]->queue;
  if (blocking) {
    if (!queue.try_push(std::move(request))) {
      // Full (or closing): record the backpressure event, then block.
      // try_push leaves `request` intact on failure, so the retry below
      // pushes the same promise.
      c_backpressure_waits_->inc();
      if (!queue.push(std::move(request))) {
        c_rejected_shutdown_->inc();
        return immediate(SvcStatus::kShutdown);
      }
    }
  } else if (!queue.try_push(std::move(request))) {
    if (queue.closed()) {
      c_rejected_shutdown_->inc();
      return immediate(SvcStatus::kShutdown);
    }
    c_rejected_full_->inc();
    return immediate(SvcStatus::kQueueFull);
  }
  return future;
}

std::future<SvcResponse> VerifierService::submit(const std::string& client_id,
                                                 Bytes frame) {
  Clock::time_point deadline{};  // epoch == no deadline
  if (config_.default_deadline.count() > 0) {
    deadline = Clock::now() + config_.default_deadline;
  }
  return enqueue(client_id, std::move(frame), deadline, /*blocking=*/true);
}

std::future<SvcResponse> VerifierService::submit(const std::string& client_id,
                                                 Bytes frame,
                                                 Clock::time_point deadline) {
  return enqueue(client_id, std::move(frame), deadline, /*blocking=*/true);
}

std::future<SvcResponse> VerifierService::try_submit(
    const std::string& client_id, Bytes frame) {
  Clock::time_point deadline{};
  if (config_.default_deadline.count() > 0) {
    deadline = Clock::now() + config_.default_deadline;
  }
  return enqueue(client_id, std::move(frame), deadline, /*blocking=*/false);
}

SvcResponse VerifierService::call(const std::string& client_id,
                                  BytesView frame) {
  return submit(client_id, Bytes(frame.begin(), frame.end())).get();
}

void VerifierService::submit_with_promise(const std::string& client_id,
                                          Bytes frame,
                                          std::promise<SvcResponse> promise) {
  if (!accepting_.load(std::memory_order_acquire)) {
    c_rejected_shutdown_->inc();
    promise.set_value(SvcResponse{SvcStatus::kShutdown, {}});
    return;
  }
  Request request;
  request.frame = std::move(frame);
  request.enqueued = Clock::now();
  if (config_.default_deadline.count() > 0) {
    request.deadline = request.enqueued + config_.default_deadline;
  }
  request.promise = std::move(promise);
  c_submitted_->inc();
  auto& queue = *shards_[router_.shard_for(client_id)]->queue;
  if (!queue.try_push(std::move(request))) {
    c_backpressure_waits_->inc();
    // A failed push leaves `request` (and its promise) intact, so the
    // caller's future still resolves exactly once.
    if (!queue.push(std::move(request))) {
      c_rejected_shutdown_->inc();
      request.promise.set_value(SvcResponse{SvcStatus::kShutdown, {}});
    }
  }
}

void VerifierService::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Request> batch;
  std::vector<std::size_t> live;        // indices that reach the SP
  std::vector<BytesView> frames;        // their frames, gathered
  batch.reserve(config_.max_batch);
  live.reserve(config_.max_batch);
  frames.reserve(config_.max_batch);

  // One wakeup drains up to max_batch queued requests; everything that
  // survives the per-request deadline/shutdown screens reaches the
  // shard SP as ONE handle_frame_batch call (answer-for-answer
  // equivalent to per-frame handling, but queued TxConfirm bursts share
  // a gathered signature-verification pass).
  while (shard.queue->pop_batch(batch, config_.max_batch) > 0) {
    const auto start = Clock::now();
    h_batch_size_->record(batch.size());
    live.clear();
    frames.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Request& request = batch[i];
      h_queue_wait_->record(ns_between(request.enqueued, start));
      if (discard_remaining_.load(std::memory_order_acquire)) {
        c_rejected_shutdown_->inc();
        request.promise.set_value(SvcResponse{SvcStatus::kShutdown, {}});
        continue;
      }
      if (request.deadline != Clock::time_point{} &&
          start > request.deadline) {
        c_expired_->inc();
        request.promise.set_value(
            SvcResponse{SvcStatus::kDeadlineExpired, {}});
        continue;
      }
      live.push_back(i);
      frames.push_back(request.frame);
    }
    if (live.empty()) continue;

    if (crashed_.load(std::memory_order_acquire)) {
      // The shard SP died mid-append on an earlier batch. Its journal
      // holds every acked mutation and possibly a torn tail; touching
      // the in-memory SP again could ack work the journal never saw.
      // Fail everything still arriving -- recovery is a rebuild.
      for (const std::size_t i : live) {
        c_rejected_shutdown_->inc();
        batch[i].promise.set_value(SvcResponse{SvcStatus::kShutdown, {}});
      }
      continue;
    }

    std::vector<Bytes> responses;
    try {
      // Protocol-session deadlines run on the same steady clock the
      // queue deadline check above just used, as ns since the service's
      // epoch -- one timeline for both expiry mechanisms.
      obs::ScopedTimer timer(*h_handle_);
      responses = shard.sp->handle_frame_batch(
          frames,
          SimTime{static_cast<std::int64_t>(ns_between(epoch_, start))});
    } catch (const store::CrashInjected& crash) {
      // Injected process death at a journal offset. Nothing in this
      // batch was acked (the journal append happens before the reply is
      // returned, and the throw aborted the batch), so failing every
      // live promise with kShutdown keeps the ack set a subset of the
      // journal -- the invariant recovery leans on.
      crashed_.store(true, std::memory_order_release);
      accepting_.store(false, std::memory_order_release);
      TP_LOG(kWarn, "svc") << "shard " << shard_index
                           << " crashed at journal offset " << crash.offset()
                           << "; service now rejects all requests";
      for (const std::size_t i : live) {
        c_rejected_shutdown_->inc();
        batch[i].promise.set_value(SvcResponse{SvcStatus::kShutdown, {}});
      }
      continue;
    }
    const std::int64_t backend_ns =
        backend_latency_ns_.load(std::memory_order_relaxed);
    if (backend_ns > 0) {
      // Default: the modelled backing-store commit stays per-request
      // (batching the verifier does not batch the ledger). With
      // group_commit the whole drained batch shares one commit -- the
      // write amortization a batched ledger actually provides.
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          config_.group_commit
              ? backend_ns
              : backend_ns * static_cast<std::int64_t>(live.size())));
    }
    const auto done = Clock::now();
    for (std::size_t j = 0; j < live.size(); ++j) {
      Request& request = batch[live[j]];
      c_completed_->inc();
      h_request_->record(ns_between(request.enqueued, done));
      request.promise.set_value(
          SvcResponse{SvcStatus::kOk, std::move(responses[j])});
    }
  }
}

void VerifierService::stop_workers(bool process_remaining) {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  accepting_.store(false, std::memory_order_release);
  discard_remaining_.store(!process_remaining, std::memory_order_release);
  for (auto& shard : shards_) shard->queue->close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  TP_LOG(kInfo, "svc") << "verifier service stopped ("
                       << (process_remaining ? "drained" : "aborted") << ", "
                       << c_completed_->value() << " requests served)";
}

void VerifierService::drain() { stop_workers(/*process_remaining=*/true); }

void VerifierService::shutdown_now() {
  stop_workers(/*process_remaining=*/false);
}

sp::SpStats VerifierService::stats() const {
  sp::SpStats total;
  for (const auto& shard : shards_) {
    const sp::SpStats s = shard->sp->stats_snapshot();
    total.enrolled += s.enrolled;
    total.enroll_rejected += s.enroll_rejected;
    total.tx_accepted += s.tx_accepted;
    total.tx_rejected += s.tx_rejected;
    for (std::size_t i = 0; i < tpm::kNumQuoteFormats; ++i) {
      total.enrolled_by_format[i] += s.enrolled_by_format[i];
      total.tx_accepted_by_format[i] += s.tx_accepted_by_format[i];
    }
    for (std::size_t i = 0; i < proto::kRejectCodeCount; ++i) {
      total.rejects_by_code[i] += s.rejects_by_code[i];
    }
    total.sessions_evicted += s.sessions_evicted;
    total.sessions_expired += s.sessions_expired;
  }
  return total;
}

}  // namespace tp::svc
