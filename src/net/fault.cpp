#include "net/fault.h"

namespace tp::net {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelaySpike: return "delay_spike";
    case FaultKind::kPartitionDrop: return "partition_drop";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Registry* metrics)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  if (metrics != nullptr) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      counters_[i] = &metrics->counter(
          std::string("faults.injected.") +
          fault_kind_name(static_cast<FaultKind>(i)));
    }
  }
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  return total;
}

bool FaultInjector::partitioned(SimTime now) const {
  for (const PartitionWindow& w : plan_.partitions) {
    if (now >= w.start && now < w.end) return true;
  }
  return false;
}

void FaultInjector::record(FaultKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  ++counts_[i];
  if (counters_[i] != nullptr) counters_[i]->inc();
  // FNV-1a over the (send index, kind) pair: order-sensitive, so a
  // reordered fault sequence cannot collide with the original.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  fingerprint_ = (fingerprint_ ^ sends_) * kPrime;
  fingerprint_ = (fingerprint_ ^ static_cast<std::uint64_t>(i)) * kPrime;
}

bool FaultInjector::apply_script(Decision& d, Bytes& payload) {
  // Scripted faults are exact and draw nothing from the probabilistic
  // stream: the same script yields the same fault sequence under any
  // seed, which is what makes a model-checker counterexample replayable
  // against the real stack.
  const std::uint64_t index = sends_ - 1;
  bool dropped = false;
  for (const ForcedFault& f : plan_.script.forced) {
    if (f.send_index != index) continue;
    const auto kind = static_cast<FaultKind>(f.kind);
    record(kind);
    switch (kind) {
      case FaultKind::kDrop:
      case FaultKind::kPartitionDrop:
        d.drop = true;
        dropped = true;
        break;
      case FaultKind::kDuplicate:
        d.duplicate = true;
        break;
      case FaultKind::kReorder:
        d.reorder = true;
        break;
      case FaultKind::kCorrupt:
        if (!payload.empty()) {
          payload[0] = static_cast<std::uint8_t>(payload[0] ^ 0xFF);
        }
        break;
      case FaultKind::kDelaySpike:
        d.extra_delay =
            SimDuration::seconds(plan_.to_sp.delay_spike_ms / 1000.0);
        break;
    }
  }
  return dropped;
}

FaultInjector::Decision FaultInjector::decide(bool to_sp, SimTime now,
                                              Bytes& payload) {
  ++sends_;
  Decision d;
  if (plan_.script.enabled() && apply_script(d, payload)) return d;
  if (partitioned(now)) {
    record(FaultKind::kPartitionDrop);
    d.drop = true;
    return d;
  }
  const FaultProfile& p = to_sp ? plan_.to_sp : plan_.to_client;
  if (!p.enabled()) return d;
  if (rng_.chance(p.drop_prob)) {
    record(FaultKind::kDrop);
    d.drop = true;
    return d;  // nothing else can happen to a vanished message
  }
  if (!payload.empty() && rng_.chance(p.corrupt_prob)) {
    record(FaultKind::kCorrupt);
    const std::size_t index = rng_.next_below(payload.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng_.next_below(255));
    payload[index] = static_cast<std::uint8_t>(payload[index] ^ flip);
  }
  if (rng_.chance(p.dup_prob)) {
    record(FaultKind::kDuplicate);
    d.duplicate = true;
    // The copy trails the original by an extra latency-scale delay.
    d.dup_extra_delay = SimDuration::seconds(
        rng_.next_exponential(p.delay_spike_ms / 4.0 + 1.0) / 1000.0);
  }
  if (rng_.chance(p.reorder_prob)) {
    record(FaultKind::kReorder);
    d.reorder = true;
  }
  if (rng_.chance(p.delay_spike_prob)) {
    record(FaultKind::kDelaySpike);
    d.extra_delay = SimDuration::seconds(p.delay_spike_ms / 1000.0);
  }
  return d;
}

}  // namespace tp::net
