// Deterministic fault injection for the simulated network.
//
// A FaultPlan scripts the misbehaviour of a Link: per-direction drop,
// duplicate, reorder, byte-corrupt and delay-spike probabilities, plus
// timed partition windows that black-hole both directions. Every decision
// draws from one SimRng seeded by the plan's u64 seed, so a run is exactly
// replayable: same seed + same send sequence -> same faults, byte for
// byte. The injector counts each fault kind (mirrored into an obs
// registry when one is supplied) and folds (send index, kind) pairs into
// an order-sensitive trace fingerprint that chaos tests compare across
// reruns to prove determinism.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tp::net {

/// Fault probabilities for one direction of a link.
struct FaultProfile {
  double drop_prob = 0.0;         // message silently vanishes
  double dup_prob = 0.0;          // a second copy is queued
  double reorder_prob = 0.0;      // swapped with the previously queued msg
  double corrupt_prob = 0.0;      // one random byte flipped in transit
  double delay_spike_prob = 0.0;  // delivery delayed by delay_spike_ms
  double delay_spike_ms = 400.0;

  bool enabled() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           corrupt_prob > 0 || delay_spike_prob > 0;
  }
};

/// Half-open virtual-time window [start, end) during which every message
/// in either direction is dropped (a full partition).
struct PartitionWindow {
  SimTime start;
  SimTime end;
};

/// One exactly-placed fault: fire `kind` on the Nth send over the link
/// (0-based, counted across both directions in send order).
struct ForcedFault {
  std::uint64_t send_index = 0;
  std::uint8_t kind = 0;  // a FaultKind wire value
};

/// A deterministic, exactly-scripted fault sequence -- the replay form
/// of a model-checker counterexample (model::trace_to_fault_script).
/// Scripted entries fire on their exact send index and draw nothing from
/// the probabilistic stream; every other send passes clean unless the
/// plan's profiles add their own faults. Default-constructed: inert.
struct FaultScript {
  std::vector<ForcedFault> forced;
  bool enabled() const { return !forced.empty(); }
};

/// A complete, replayable fault script for one link.
struct FaultPlan {
  FaultProfile to_sp;      // faults on a -> b (client -> SP) messages
  FaultProfile to_client;  // faults on b -> a (SP -> client) messages
  std::vector<PartitionWindow> partitions;
  FaultScript script;      // exactly-placed faults (counterexample replay)
  std::uint64_t seed = 0;

  bool enabled() const {
    return to_sp.enabled() || to_client.enabled() || !partitions.empty() ||
           script.enabled();
  }

  /// Same profile in both directions; the usual chaos-sweep shape.
  static FaultPlan symmetric(FaultProfile profile, std::uint64_t seed) {
    FaultPlan plan;
    plan.to_sp = profile;
    plan.to_client = profile;
    plan.seed = seed;
    return plan;
  }
};

enum class FaultKind : std::uint8_t {
  kDrop = 0,
  kDuplicate = 1,
  kReorder = 2,
  kCorrupt = 3,
  kDelaySpike = 4,
  kPartitionDrop = 5,
};
inline constexpr std::size_t kFaultKindCount = 6;

const char* fault_kind_name(FaultKind kind);

/// Applies a FaultPlan to a stream of sends. Owned by the Link; one
/// verdict per message, in send order, so the fault sequence is a pure
/// function of (plan seed, workload).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, obs::Registry* metrics);

  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;           // swap with the message queued before it
    SimDuration extra_delay{};      // added to the primary copy
    SimDuration dup_extra_delay{};  // added to the duplicate copy
  };

  /// One verdict for a message sent at `now`. `payload` is the in-transit
  /// copy and is corrupted in place when the corrupt fault fires.
  Decision decide(bool to_sp, SimTime now, Bytes& payload);

  std::uint64_t injected(FaultKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t injected_total() const;

  /// Order-sensitive FNV-1a digest over (send index, fault kind) of every
  /// injected fault. Two runs with the same seed and workload must agree.
  std::uint64_t trace_fingerprint() const { return fingerprint_; }

 private:
  void record(FaultKind kind);
  bool partitioned(SimTime now) const;
  /// Applies every scripted fault naming this send (0-based index
  /// `sends_ - 1`); returns true when one of them dropped the message.
  bool apply_script(Decision& d, Bytes& payload);

  FaultPlan plan_;
  SimRng rng_;
  std::uint64_t sends_ = 0;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
  std::uint64_t fingerprint_ = 0xcbf29ce484222325ull;  // FNV offset basis
  std::array<obs::Counter*, kFaultKindCount> counters_{};  // may stay null
};

}  // namespace tp::net
