// Simulated client <-> service-provider network.
//
// The paper's protocol runs over an ordinary TLS connection on the
// Internet; its contribution is not in the transport, so the simulation
// models the only transport property the evaluation cares about: delivery
// latency (mean + jitter, optional loss). Endpoints exchange opaque byte
// messages; the virtual clock advances to the delivery time on receive,
// which is how round trips show up in the end-to-end latency experiment.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "net/fault.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tp::net {

struct NetParams {
  double latency_mean_ms = 40.0;  // one-way
  double latency_jitter_ms = 8.0; // stddev of the normal jitter
  double loss_prob = 0.0;         // per message

  /// Scripted fault injection on top of the baseline loss/latency model;
  /// inert unless some probability or partition window is set.
  FaultPlan fault;

  /// Optional metrics registry; when set, every link built with these
  /// params also counts "net.messages_sent"/"net.messages_lost" there
  /// (shared across links, unlike the per-link accessors below), and the
  /// fault injector counts "faults.injected.*".
  obs::Registry* metrics = nullptr;
};

class Endpoint;

/// A bidirectional link between two endpoints, sharing one clock and one
/// latency model.
class Link {
 public:
  Link(NetParams params, SimClock& clock, SimRng rng);

  /// The two ends; `a` is conventionally the client, `b` the SP.
  Endpoint& a() { return *a_; }
  Endpoint& b() { return *b_; }

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_lost() const { return lost_; }

  /// The scripted-fault engine, or nullptr when the plan is inert.
  /// Exposes per-kind injection counts and the trace fingerprint.
  const FaultInjector* faults() const { return fault_.get(); }

 private:
  friend class Endpoint;

  struct InFlight {
    Bytes payload;
    SimTime deliver_at;
  };

  void send_from(bool from_a, BytesView payload);
  Result<Bytes> receive_for(bool for_a);
  void drop_toward(bool to_b);

  NetParams params_;
  SimClock* clock_;
  SimRng rng_;
  std::unique_ptr<FaultInjector> fault_;  // null when plan is inert
  std::deque<InFlight> to_a_;
  std::deque<InFlight> to_b_;
  std::unique_ptr<Endpoint> a_;
  std::unique_ptr<Endpoint> b_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t lost_to_a_ = 0;  // per-direction, all causes
  std::uint64_t lost_to_b_ = 0;
  std::uint64_t lost_seen_by_a_ = 0;  // snapshot at last a-side receive()
  std::uint64_t lost_seen_by_b_ = 0;
  obs::Counter* c_sent_ = nullptr;  // registry-backed (may stay null)
  obs::Counter* c_lost_ = nullptr;
};

/// One side of a link.
class Endpoint {
 public:
  /// Queues a message for the peer; delivery time is stamped now.
  void send(BytesView payload);

  /// Pops the next message for this side. If it is still "in flight" the
  /// virtual clock advances to its delivery time (the caller waited).
  /// kTimeout when nothing is pending; the error message distinguishes
  /// "message lost in transit" (something addressed to this side was
  /// dropped since the last receive) from "no message pending" (nothing
  /// was ever sent), so retry logic doesn't conflate the two.
  ///
  /// Synchronous-RPC convenience: if this side's queue is empty but the
  /// PEER has a registered service handler and pending messages, those are
  /// pumped through the handler first (request -> response), exactly like
  /// waiting on a reply from a remote server.
  Result<Bytes> receive();

  /// Messages addressed to this side that the link silently dropped
  /// (random loss, injected drop, partition) since the previous receive()
  /// call. Reset to 0 by every receive(), success or timeout.
  std::uint64_t lost_since_last_receive() const;

  /// Cumulative drops toward this side over the link's lifetime.
  std::uint64_t lost_in_transit() const;

  /// Registers this side as a server: each incoming request is mapped to
  /// one response frame.
  void set_service(std::function<Bytes(BytesView)> handler);

 private:
  friend class Link;
  Endpoint(Link* link, bool is_a) : link_(link), is_a_(is_a) {}

  Link* link_;
  bool is_a_;
  std::function<Bytes(BytesView)> service_;
};

}  // namespace tp::net
