#include "net/secure_channel.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "util/serial.h"

namespace tp::net {

namespace {

enum class FrameType : std::uint8_t { kHandshake = 1, kRecord = 2 };

// Direction labels mixed into key derivation and record MACs.
constexpr char kClientToServer[] = "c2s";
constexpr char kServerToClient[] = "s2c";

struct DirectionKeys {
  Bytes enc;  // AES-256
  Bytes mac;  // HMAC-SHA256
};

DirectionKeys derive(BytesView master, const char* direction) {
  DirectionKeys keys;
  keys.enc = crypto::hmac_sha256(
      master, concat(bytes_of("enc:"), bytes_of(direction)));
  keys.mac = crypto::hmac_sha256(
      master, concat(bytes_of("mac:"), bytes_of(direction)));
  return keys;
}

// One direction's record state.
struct DirectionState {
  DirectionKeys keys;
  std::uint64_t next_seq = 0;
};

Bytes seal_record(DirectionState& dir, const char* label, BytesView payload) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::kRecord));
  w.u64(dir.next_seq);

  // Per-record CTR nonce derived from the sequence number.
  Bytes nonce(crypto::kAesBlockSize, 0);
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(dir.next_seq >> (56 - 8 * i));
  }
  const crypto::Aes aes(dir.keys.enc);
  const Bytes ciphertext = crypto::ctr_crypt(aes, nonce, payload);
  w.var_bytes(ciphertext);

  BinaryWriter mac_input;
  mac_input.var_string(label);
  mac_input.u64(dir.next_seq);
  mac_input.var_bytes(ciphertext);
  w.raw(crypto::hmac_sha256(dir.keys.mac, mac_input.data()));

  ++dir.next_seq;
  return w.take();
}

Result<Bytes> open_record(DirectionState& dir, const char* label,
                          BytesView frame) {
  BinaryReader r(frame);
  auto type = r.u8();
  if (!type.ok() ||
      type.value() != static_cast<std::uint8_t>(FrameType::kRecord)) {
    return Error{Err::kAuthFail, "record: bad frame type"};
  }
  auto seq = r.u64();
  if (!seq.ok()) return seq.error();
  auto ciphertext = r.var_bytes();
  if (!ciphertext.ok()) return ciphertext.error();
  auto mac = r.raw(32);
  if (!mac.ok()) return mac.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();

  // Strictly monotonic sequence: anything replayed or reordered dies.
  if (seq.value() != dir.next_seq) {
    return Error{Err::kReplay, "record: sequence number mismatch"};
  }
  BinaryWriter mac_input;
  mac_input.var_string(label);
  mac_input.u64(seq.value());
  mac_input.var_bytes(ciphertext.value());
  if (!ct_equal(crypto::hmac_sha256(dir.keys.mac, mac_input.data()),
                mac.value())) {
    return Error{Err::kAuthFail, "record: MAC mismatch"};
  }
  ++dir.next_seq;

  Bytes nonce(crypto::kAesBlockSize, 0);
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seq.value() >> (56 - 8 * i));
  }
  const crypto::Aes aes(dir.keys.enc);
  return crypto::ctr_crypt(aes, nonce, ciphertext.value());
}

}  // namespace

// ---- PlainRpc --------------------------------------------------------

Result<Bytes> PlainRpc::exchange(BytesView request) {
  endpoint_->send(request);
  return endpoint_->receive();
}

// ---- sessions ----------------------------------------------------------

struct SecureClientTransport::Session {
  DirectionState send;  // c2s
  DirectionState recv;  // s2c
};

struct SecureServerTransport::Session {
  DirectionState recv;  // c2s
  DirectionState send;  // s2c
};

// ---- client ------------------------------------------------------------

SecureClientTransport::SecureClientTransport(
    Endpoint& endpoint, crypto::RsaPublicKey server_public, BytesView seed)
    : endpoint_(&endpoint),
      server_public_(std::move(server_public)),
      drbg_(concat(bytes_of("secure-client:"), seed)) {}

SecureClientTransport::~SecureClientTransport() = default;

Status SecureClientTransport::handshake() {
  const Bytes master = drbg_.generate(32);
  auto encrypted = crypto::rsa_encrypt(
      server_public_, master, [this](std::size_t n) { return drbg_.generate(n); });
  if (!encrypted.ok()) return encrypted.error();

  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::kHandshake));
  w.var_bytes(encrypted.value());
  endpoint_->send(w.data());
  auto ack = endpoint_->receive();
  if (!ack.ok()) return ack.error();
  // Ack is a record under the new keys; verify it below by installing
  // the session first.
  session_ = std::make_unique<Session>();
  session_->send.keys = derive(master, kClientToServer);
  session_->recv.keys = derive(master, kServerToClient);
  auto opened = open_record(session_->recv, kServerToClient, ack.value());
  if (!opened.ok()) {
    session_.reset();
    return Error{Err::kAuthFail, "handshake: server ack invalid"};
  }
  if (!ct_equal(opened.value(), bytes_of("handshake-ok"))) {
    session_.reset();
    return Error{Err::kAuthFail, "handshake: unexpected server ack"};
  }
  return Status::ok_status();
}

Result<Bytes> SecureClientTransport::exchange(BytesView request) {
  if (!session_) {
    if (auto s = handshake(); !s.ok()) return s.error();
  }
  endpoint_->send(seal_record(session_->send, kClientToServer, request));
  auto frame = endpoint_->receive();
  if (!frame.ok()) return frame.error();
  return open_record(session_->recv, kServerToClient, frame.value());
}

// ---- server -------------------------------------------------------------

SecureServerTransport::SecureServerTransport(
    crypto::RsaPrivateKey server_key, std::function<Bytes(BytesView)> inner)
    : server_key_(std::move(server_key)), inner_(std::move(inner)) {}

SecureServerTransport::~SecureServerTransport() = default;

Bytes SecureServerTransport::handle(BytesView frame) {
  const auto reject = [this]() {
    ++rejected_;
    // A fixed, unauthenticated error frame; carries no oracle beyond
    // "rejected" (sequence state is NOT advanced by bad records).
    return bytes_of("!rejected");
  };
  if (frame.empty()) return reject();

  if (frame[0] == static_cast<std::uint8_t>(FrameType::kHandshake)) {
    BinaryReader r(frame.subspan(1));
    auto encrypted = r.var_bytes();
    if (!encrypted.ok()) return reject();
    auto master = crypto::rsa_decrypt(server_key_, encrypted.value());
    if (!master.ok()) return reject();
    session_ = std::make_unique<Session>();
    session_->recv.keys = derive(master.value(), kClientToServer);
    session_->send.keys = derive(master.value(), kServerToClient);
    return seal_record(session_->send, kServerToClient,
                       bytes_of("handshake-ok"));
  }

  if (!session_) return reject();
  // Bad records must not advance the receive sequence; probe on a copy.
  DirectionState probe = session_->recv;
  auto request = open_record(probe, kClientToServer, frame);
  if (!request.ok()) return reject();
  session_->recv = probe;

  const Bytes response = inner_(request.value());
  return seal_record(session_->send, kServerToClient, response);
}

}  // namespace tp::net
