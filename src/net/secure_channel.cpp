#include "net/secure_channel.h"

#include <array>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "util/serial.h"

namespace tp::net {

namespace {

enum class FrameType : std::uint8_t { kHandshake = 1, kRecord = 2 };

// Direction labels mixed into key derivation and record MACs.
constexpr char kClientToServer[] = "c2s";
constexpr char kServerToClient[] = "s2c";
constexpr std::size_t kLabelLen = 3;
constexpr std::size_t kMacLen = crypto::kSha256DigestSize;
// type byte + sequence + ciphertext length prefix.
constexpr std::size_t kRecordHeaderLen = 1 + 8 + 4;

struct DirectionKeys {
  Bytes enc;  // AES-256
  Bytes mac;  // HMAC-SHA256
};

// Both directions' keys come from one PRF context keyed with the master
// secret (four invocations over the cached key midstates).
DirectionKeys derive(crypto::HmacSha256Ctx& prf, const char* direction) {
  DirectionKeys keys;
  prf.update(bytes_of("enc:"));
  prf.update(bytes_of(direction));
  keys.enc = prf.finalize();
  prf.update(bytes_of("mac:"));
  prf.update(bytes_of(direction));
  keys.mac = prf.finalize();
  return keys;
}

// One direction's record state. The AES key schedule and the HMAC key
// midstates are computed once at session establishment; every record
// reuses them.
struct DirectionState {
  explicit DirectionState(const DirectionKeys& keys)
      : aes(keys.enc), mac(keys.mac) {}

  crypto::Aes aes;
  crypto::HmacSha256Ctx mac;
  std::uint64_t next_seq = 0;
};

void seq_nonce(std::uint64_t seq, std::uint8_t out[crypto::kAesBlockSize]) {
  std::fill(out, out + crypto::kAesBlockSize, 0);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
}

// Streams the MAC preimage header (var_string label || u64 seq ||
// u32 ciphertext length) into the direction's HMAC context; the caller
// follows with the ciphertext bytes. Same preimage layout as a
// BinaryWriter would produce, without assembling the copy.
void mac_feed_header(crypto::HmacSha256Ctx& mac, const char* label,
                     std::uint64_t seq, std::uint32_t ct_len) {
  std::array<std::uint8_t, 4 + kLabelLen + 8 + 4> hdr;
  std::size_t i = 0;
  for (int shift = 24; shift >= 0; shift -= 8) {
    hdr[i++] = static_cast<std::uint8_t>(kLabelLen >> shift);
  }
  for (std::size_t c = 0; c < kLabelLen; ++c) {
    hdr[i++] = static_cast<std::uint8_t>(label[c]);
  }
  for (int shift = 56; shift >= 0; shift -= 8) {
    hdr[i++] = static_cast<std::uint8_t>(seq >> shift);
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    hdr[i++] = static_cast<std::uint8_t>(ct_len >> shift);
  }
  mac.update(hdr);
}

Bytes seal_record(DirectionState& dir, const char* label, BytesView payload) {
  const std::uint64_t seq = dir.next_seq;
  const auto ct_len = static_cast<std::uint32_t>(payload.size());

  // One allocation for the whole frame; the payload is encrypted in
  // place inside it and the MAC appended at the end.
  Bytes frame;
  frame.reserve(kRecordHeaderLen + payload.size() + kMacLen);
  frame.push_back(static_cast<std::uint8_t>(FrameType::kRecord));
  for (int shift = 56; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(seq >> shift));
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(ct_len >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());

  // Per-record CTR nonce derived from the sequence number.
  std::uint8_t nonce[crypto::kAesBlockSize];
  seq_nonce(seq, nonce);
  std::uint8_t* ct = frame.data() + kRecordHeaderLen;
  crypto::ctr_crypt_into(dir.aes, BytesView(nonce, crypto::kAesBlockSize),
                         BytesView(ct, payload.size()), ct);

  mac_feed_header(dir.mac, label, seq, ct_len);
  dir.mac.update(BytesView(ct, payload.size()));
  std::array<std::uint8_t, kMacLen> mac;
  dir.mac.finalize_into(mac);
  frame.insert(frame.end(), mac.begin(), mac.end());

  ++dir.next_seq;
  return frame;
}

// Rejecting frames never mutates `dir`: the sequence check precedes the
// MAC updates, and finalize_into re-arms the context either way, so a
// failed open leaves the direction exactly as it was.
Result<Bytes> open_record(DirectionState& dir, const char* label,
                          BytesView frame) {
  BinaryReader r(frame);
  auto type = r.u8();
  if (!type.ok() ||
      type.value() != static_cast<std::uint8_t>(FrameType::kRecord)) {
    return Error{Err::kAuthFail, "record: bad frame type"};
  }
  auto seq = r.u64();
  if (!seq.ok()) return seq.error();
  auto ct_len = r.u32();
  if (!ct_len.ok()) return ct_len.error();
  auto ciphertext = r.view(ct_len.value());
  if (!ciphertext.ok()) return ciphertext.error();
  auto mac = r.view(kMacLen);
  if (!mac.ok()) return mac.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();

  // Monotonic sequence, forward-jump tolerant (DTLS-style): a replayed
  // or reordered-behind record dies here, but a gap left by a lost
  // record does not wedge the direction -- the next genuine record
  // (authenticated below over its own sequence number) re-synchronizes.
  if (seq.value() < dir.next_seq) {
    return Error{Err::kReplay, "record: sequence number mismatch"};
  }
  mac_feed_header(dir.mac, label, seq.value(), ct_len.value());
  dir.mac.update(ciphertext.value());
  std::array<std::uint8_t, kMacLen> expected;
  dir.mac.finalize_into(expected);
  if (!ct_equal(expected, mac.value())) {
    return Error{Err::kAuthFail, "record: MAC mismatch"};
  }
  dir.next_seq = seq.value() + 1;

  std::uint8_t nonce[crypto::kAesBlockSize];
  seq_nonce(seq.value(), nonce);
  Bytes plaintext(ciphertext.value().size());
  crypto::ctr_crypt_into(dir.aes, BytesView(nonce, crypto::kAesBlockSize),
                         ciphertext.value(), plaintext.data());
  return plaintext;
}

}  // namespace

// ---- PlainRpc --------------------------------------------------------

Result<Bytes> PlainRpc::exchange(BytesView request) {
  endpoint_->send(request);
  return endpoint_->receive();
}

Result<Bytes> PlainRpc::receive_pending() { return endpoint_->receive(); }

// ---- sessions ----------------------------------------------------------

struct SecureClientTransport::Session {
  Session(const DirectionKeys& c2s, const DirectionKeys& s2c)
      : send(c2s), recv(s2c) {}
  DirectionState send;  // c2s
  DirectionState recv;  // s2c
};

struct SecureServerTransport::Session {
  Session(const DirectionKeys& c2s, const DirectionKeys& s2c)
      : recv(c2s), send(s2c) {}
  DirectionState recv;  // c2s
  DirectionState send;  // s2c
};

// ---- client ------------------------------------------------------------

SecureClientTransport::SecureClientTransport(
    Endpoint& endpoint, crypto::RsaPublicKey server_public, BytesView seed)
    : endpoint_(&endpoint),
      server_public_(std::move(server_public)),
      drbg_(concat(bytes_of("secure-client:"), seed)) {}

SecureClientTransport::~SecureClientTransport() = default;

Status SecureClientTransport::handshake() {
  const Bytes master = drbg_.generate(32);
  auto encrypted = crypto::rsa_encrypt(
      server_public_, master, [this](std::size_t n) { return drbg_.generate(n); });
  if (!encrypted.ok()) return encrypted.error();

  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(FrameType::kHandshake));
  w.var_bytes(encrypted.value());
  endpoint_->send(w.data());
  // Ack is a record under the new keys; verify by installing the session
  // first. On a faulty link, frames from an abandoned earlier handshake
  // (or duplicated noise) can sit ahead of our ack -- drain until the
  // genuine ack appears or nothing more is pending.
  crypto::HmacSha256Ctx prf(master);
  session_ = std::make_unique<Session>(derive(prf, kClientToServer),
                                       derive(prf, kServerToClient));
  for (;;) {
    auto ack = endpoint_->receive();
    if (!ack.ok()) {
      session_.reset();
      return ack.error();
    }
    auto opened = open_record(session_->recv, kServerToClient, ack.value());
    if (opened.ok() && ct_equal(opened.value(), bytes_of("handshake-ok"))) {
      return Status::ok_status();
    }
  }
}

Result<Bytes> SecureClientTransport::exchange(BytesView request) {
  if (!session_) {
    if (auto s = handshake(); !s.ok()) return s.error();
  }
  endpoint_->send(seal_record(session_->send, kClientToServer, request));
  auto frame = endpoint_->receive();
  if (!frame.ok()) return frame.error();
  return open_record(session_->recv, kServerToClient, frame.value());
}

Result<Bytes> SecureClientTransport::receive_pending() {
  if (!session_) {
    return Error{Err::kTimeout, "receive: no session established"};
  }
  auto frame = endpoint_->receive();
  if (!frame.ok()) return frame.error();
  // A non-timeout failure here means a frame WAS delivered but did not
  // open (corrupt, replayed, or the server's unauthenticated "!rejected"
  // notice) -- the caller can pull again.
  return open_record(session_->recv, kServerToClient, frame.value());
}

// ---- server -------------------------------------------------------------

SecureServerTransport::SecureServerTransport(
    crypto::RsaPrivateKey server_key, std::function<Bytes(BytesView)> inner)
    : server_key_(std::move(server_key)), inner_(std::move(inner)) {}

SecureServerTransport::~SecureServerTransport() = default;

Bytes SecureServerTransport::handle(BytesView frame) {
  const auto reject = [this]() {
    ++rejected_;
    // A fixed, unauthenticated error frame; carries no oracle beyond
    // "rejected" (sequence state is NOT advanced by bad records).
    return bytes_of("!rejected");
  };
  if (frame.empty()) return reject();

  if (frame[0] == static_cast<std::uint8_t>(FrameType::kHandshake)) {
    BinaryReader r(frame.subspan(1));
    auto encrypted = r.var_bytes();
    if (!encrypted.ok()) return reject();
    auto master = crypto::rsa_decrypt(server_key_, encrypted.value());
    if (!master.ok()) return reject();
    crypto::HmacSha256Ctx prf(master.value());
    session_ = std::make_unique<Session>(derive(prf, kClientToServer),
                                         derive(prf, kServerToClient));
    return seal_record(session_->send, kServerToClient,
                       bytes_of("handshake-ok"));
  }

  if (!session_) return reject();
  // open_record only advances the receive direction after the MAC
  // verifies, so a bad record cannot desynchronize the session.
  auto request = open_record(session_->recv, kClientToServer, frame);
  if (!request.ok()) return reject();

  const Bytes response = inner_(request.value());
  return seal_record(session_->send, kServerToClient, response);
}

}  // namespace tp::net
