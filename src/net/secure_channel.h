// Authenticated-encryption transport: the simulation's stand-in for the
// TLS connection the deployed system runs over.
//
// The trusted path's guarantees do not DEPEND on transport secrecy (every
// security decision is end-to-end: signatures, quotes, nonces), but the
// deployment assumes an SSL channel for confidentiality and basic server
// authentication, so the substrate exists and can be switched on per
// deployment (DeploymentConfig::secure_transport).
//
// Construction (TLS-shaped, deliberately minimal):
//   handshake: client draws a 32-byte master secret, RSA-encrypts it to
//              the server's public key; both sides derive four keys
//              (enc/mac x direction) with HMAC-SHA256 as the PRF;
//   records:   AES-256-CTR encryption, HMAC-SHA256 over
//              (direction || sequence || ciphertext), strictly
//              monotonic sequence numbers per direction (replay-proof).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "net/channel.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::net {

/// Request/response transport abstraction used by the protocol client.
class RpcTransport {
 public:
  virtual ~RpcTransport() = default;
  /// Sends a request frame and waits for the peer's response frame.
  virtual Result<Bytes> exchange(BytesView request) = 0;
  /// Pulls one already-delivered response frame without sending anything
  /// (retry path: duplicated, reordered or late responses queued behind
  /// the one exchange() consumed). kTimeout when nothing is pending;
  /// kUnsupported for transports with no pull-only receive.
  virtual Result<Bytes> receive_pending() {
    return Error{Err::kUnsupported, "transport: no pull-only receive"};
  }
};

/// Plaintext transport over an Endpoint (the default).
class PlainRpc : public RpcTransport {
 public:
  explicit PlainRpc(Endpoint& endpoint) : endpoint_(&endpoint) {}
  Result<Bytes> exchange(BytesView request) override;
  Result<Bytes> receive_pending() override;

 private:
  Endpoint* endpoint_;
};

/// Client half of the secure channel; performs the handshake lazily on
/// the first exchange.
class SecureClientTransport : public RpcTransport {
 public:
  SecureClientTransport(Endpoint& endpoint,
                        crypto::RsaPublicKey server_public, BytesView seed);
  ~SecureClientTransport() override;

  Result<Bytes> exchange(BytesView request) override;
  Result<Bytes> receive_pending() override;

  bool handshaken() const { return session_ != nullptr; }

 private:
  Status handshake();

  Endpoint* endpoint_;
  crypto::RsaPublicKey server_public_;
  crypto::HmacDrbg drbg_;
  struct Session;
  std::unique_ptr<Session> session_;
};

/// Server half: wraps an inner (plaintext) frame handler. Install as the
/// Endpoint service: `ep.set_service([&](BytesView f){ return s.handle(f); })`.
class SecureServerTransport {
 public:
  SecureServerTransport(crypto::RsaPrivateKey server_key,
                        std::function<Bytes(BytesView)> inner);
  ~SecureServerTransport();

  /// Handles one frame: a handshake establishes the session; records are
  /// decrypted, passed to the inner handler, and the response encrypted.
  /// Invalid frames get an empty-payload error record (never a crash).
  Bytes handle(BytesView frame);

  std::uint64_t records_rejected() const { return rejected_; }

 private:
  crypto::RsaPrivateKey server_key_;
  std::function<Bytes(BytesView)> inner_;
  struct Session;
  std::unique_ptr<Session> session_;
  std::uint64_t rejected_ = 0;
};

}  // namespace tp::net
