#include "net/channel.h"

namespace tp::net {

Link::Link(NetParams params, SimClock& clock, SimRng rng)
    : params_(params), clock_(&clock), rng_(std::move(rng)) {
  a_ = std::unique_ptr<Endpoint>(new Endpoint(this, true));
  b_ = std::unique_ptr<Endpoint>(new Endpoint(this, false));
  if (params_.metrics != nullptr) {
    c_sent_ = &params_.metrics->counter("net.messages_sent");
    c_lost_ = &params_.metrics->counter("net.messages_lost");
  }
}

void Link::send_from(bool from_a, BytesView payload) {
  ++sent_;
  if (c_sent_ != nullptr) c_sent_->inc();
  if (rng_.chance(params_.loss_prob)) {
    ++lost_;
    if (c_lost_ != nullptr) c_lost_->inc();
    return;
  }
  const double latency_ms = rng_.next_normal(
      params_.latency_mean_ms, params_.latency_jitter_ms, 0.1);
  const SimTime deliver_at =
      clock_->now() + SimDuration::seconds(latency_ms / 1000.0);
  auto& queue = from_a ? to_b_ : to_a_;
  queue.push_back(InFlight{Bytes(payload.begin(), payload.end()), deliver_at});
}

Result<Bytes> Link::receive_for(bool for_a) {
  auto& queue = for_a ? to_a_ : to_b_;
  if (queue.empty()) {
    // Synchronous RPC: pump pending requests through the peer's service.
    Endpoint& peer = for_a ? *b_ : *a_;
    auto& peer_queue = for_a ? to_b_ : to_a_;
    while (queue.empty() && peer.service_ && !peer_queue.empty()) {
      auto request = receive_for(!for_a);
      if (!request.ok()) break;
      peer.send(peer.service_(request.value()));
    }
  }
  if (queue.empty()) {
    return Error{Err::kTimeout, "receive: no message pending"};
  }
  InFlight msg = std::move(queue.front());
  queue.pop_front();
  if (msg.deliver_at > clock_->now()) {
    clock_->charge("net:wait", msg.deliver_at - clock_->now());
  }
  return std::move(msg.payload);
}

void Endpoint::send(BytesView payload) { link_->send_from(is_a_, payload); }

Result<Bytes> Endpoint::receive() { return link_->receive_for(is_a_); }

void Endpoint::set_service(std::function<Bytes(BytesView)> handler) {
  service_ = std::move(handler);
}

}  // namespace tp::net
