#include "net/channel.h"

#include <utility>

namespace tp::net {

Link::Link(NetParams params, SimClock& clock, SimRng rng)
    : params_(std::move(params)), clock_(&clock), rng_(std::move(rng)) {
  a_ = std::unique_ptr<Endpoint>(new Endpoint(this, true));
  b_ = std::unique_ptr<Endpoint>(new Endpoint(this, false));
  if (params_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(params_.fault, params_.metrics);
  }
  if (params_.metrics != nullptr) {
    c_sent_ = &params_.metrics->counter("net.messages_sent");
    c_lost_ = &params_.metrics->counter("net.messages_lost");
  }
}

void Link::drop_toward(bool to_b) {
  ++lost_;
  ++(to_b ? lost_to_b_ : lost_to_a_);
  if (c_lost_ != nullptr) c_lost_->inc();
}

void Link::send_from(bool from_a, BytesView payload) {
  ++sent_;
  if (c_sent_ != nullptr) c_sent_->inc();
  if (rng_.chance(params_.loss_prob)) {
    drop_toward(from_a);
    return;
  }
  Bytes copy(payload.begin(), payload.end());
  FaultInjector::Decision fault{};
  if (fault_ != nullptr) {
    fault = fault_->decide(from_a, clock_->now(), copy);
    if (fault.drop) {
      drop_toward(from_a);
      return;
    }
  }
  // Normal jitter clamped at zero: delivery can be instantaneous under
  // extreme jitter but never precede the send.
  const double latency_ms = rng_.next_normal(
      params_.latency_mean_ms, params_.latency_jitter_ms, 0.0);
  const SimTime deliver_at = clock_->now() +
                             SimDuration::seconds(latency_ms / 1000.0) +
                             fault.extra_delay;
  auto& queue = from_a ? to_b_ : to_a_;
  queue.push_back(InFlight{std::move(copy), deliver_at});
  if (fault.duplicate) {
    // The duplicate is an independent copy of the (possibly corrupted)
    // in-transit bytes, trailing the original.
    Bytes dup(queue.back().payload);
    const double dup_ms = rng_.next_normal(
        params_.latency_mean_ms, params_.latency_jitter_ms, 0.0);
    queue.push_back(InFlight{std::move(dup),
                             clock_->now() +
                                 SimDuration::seconds(dup_ms / 1000.0) +
                                 fault.dup_extra_delay});
  }
  if (fault.reorder && queue.size() >= 2) {
    std::swap(queue[queue.size() - 1], queue[queue.size() - 2]);
  }
}

Result<Bytes> Link::receive_for(bool for_a) {
  auto& queue = for_a ? to_a_ : to_b_;
  if (queue.empty()) {
    // Synchronous RPC: pump pending requests through the peer's service.
    Endpoint& peer = for_a ? *b_ : *a_;
    auto& peer_queue = for_a ? to_b_ : to_a_;
    while (queue.empty() && peer.service_ && !peer_queue.empty()) {
      auto request = receive_for(!for_a);
      if (!request.ok()) break;
      peer.send(peer.service_(request.value()));
    }
  }
  const std::uint64_t lost_cum = for_a ? lost_to_a_ : lost_to_b_;
  auto& lost_seen = for_a ? lost_seen_by_a_ : lost_seen_by_b_;
  const bool lost_since_last = lost_cum > lost_seen;
  lost_seen = lost_cum;
  if (queue.empty()) {
    if (lost_since_last) {
      return Error{Err::kTimeout, "receive: message lost in transit"};
    }
    return Error{Err::kTimeout, "receive: no message pending"};
  }
  InFlight msg = std::move(queue.front());
  queue.pop_front();
  if (msg.deliver_at > clock_->now()) {
    clock_->charge("net:wait", msg.deliver_at - clock_->now());
  }
  return std::move(msg.payload);
}

void Endpoint::send(BytesView payload) { link_->send_from(is_a_, payload); }

Result<Bytes> Endpoint::receive() { return link_->receive_for(is_a_); }

std::uint64_t Endpoint::lost_since_last_receive() const {
  const std::uint64_t cum = is_a_ ? link_->lost_to_a_ : link_->lost_to_b_;
  const std::uint64_t seen =
      is_a_ ? link_->lost_seen_by_a_ : link_->lost_seen_by_b_;
  return cum - seen;
}

std::uint64_t Endpoint::lost_in_transit() const {
  return is_a_ ? link_->lost_to_a_ : link_->lost_to_b_;
}

void Endpoint::set_service(std::function<Bytes(BytesView)> handler) {
  service_ = std::move(handler);
}

}  // namespace tp::net
