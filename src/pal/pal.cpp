#include "pal/pal.h"

#include "util/serial.h"

namespace tp::pal {

Bytes PalDescriptor::make_image(const std::string& name,
                                std::uint32_t version,
                                const std::string& build_salt) {
  BinaryWriter w;
  w.var_string("pal-image");
  w.var_string(name);
  w.u32(version);
  w.var_string(build_salt);
  return w.take();
}

PalContext::PalContext(drtm::Platform& platform, BytesView input,
                       UserAgent* agent)
    : platform_(&platform), input_(input), agent_(agent) {}

void PalContext::show(const devices::DisplayContent& screen) {
  // The PAL owns the display during the session; this cannot fail.
  (void)platform_->display().render(devices::DeviceAccess::kPal, screen);
}

std::optional<std::string> PalContext::show_and_read_line(
    const devices::DisplayContent& screen, SimDuration timeout) {
  show(screen);
  if (agent_ == nullptr) {
    // Nobody at the machine: the PAL waits out its timeout.
    platform_->clock().charge("pal:user_timeout", timeout);
    return std::nullopt;
  }
  const std::optional<SimDuration> took =
      agent_->on_prompt(platform_->display().content(), platform_->keyboard());
  if (!took.has_value() || *took > timeout) {
    platform_->clock().charge("pal:user_timeout", timeout);
    platform_->keyboard().clear();  // discard late keystrokes
    return std::nullopt;
  }
  platform_->clock().charge("pal:user", *took);
  return platform_->keyboard().read_line();
}

void PalContext::charge_compute(const std::string& label, SimDuration d) {
  platform_->clock().charge("pal:" + label, d);
}

}  // namespace tp::pal
