#include "pal/sealed_state.h"

#include "util/serial.h"

namespace tp::pal {

Result<Bytes> SealedStateChannel::save(tpm::Locality locality,
                                       const tpm::PcrSelection& selection,
                                       std::uint8_t release_locality_mask,
                                       BytesView state) {
  auto counter = tpm_->counter_increment(counter_id_);
  if (!counter.ok()) return counter.error();
  BinaryWriter w;
  w.u64(counter.value());
  w.var_bytes(state);
  return tpm_->seal(locality, selection, release_locality_mask, w.data());
}

Result<Bytes> SealedStateChannel::load(tpm::Locality locality,
                                       BytesView blob) {
  auto payload = tpm_->unseal(locality, blob);
  if (!payload.ok()) return payload.error();
  BinaryReader r(payload.value());
  auto saved_at = r.u64();
  if (!saved_at.ok()) return saved_at.error();
  auto state = r.var_bytes();
  if (!state.ok()) return state.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();

  auto current = tpm_->counter_read(counter_id_);
  if (!current.ok()) return current.error();
  if (saved_at.value() != current.value()) {
    return Error{Err::kReplay,
                 "sealed state is stale (rollback attack or lost update)"};
  }
  return state.take();
}

}  // namespace tp::pal
