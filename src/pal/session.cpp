#include "pal/session.h"

#include <stdexcept>

namespace tp::pal {

namespace {
// Sums the spans with the given label that started at or after `from`.
SimDuration span_total_since(const SimClock& clock, SimTime from,
                             const std::string& label) {
  SimDuration total{};
  for (const auto& s : clock.spans()) {
    if (s.start >= from && s.label == label) total = total + s.duration;
  }
  return total;
}

// Sums all spans whose label starts with `prefix`, started at/after `from`.
SimDuration span_prefix_total_since(const SimClock& clock, SimTime from,
                                    const std::string& prefix) {
  SimDuration total{};
  for (const auto& s : clock.spans()) {
    if (s.start >= from && s.label.rfind(prefix, 0) == 0) {
      total = total + s.duration;
    }
  }
  return total;
}
}  // namespace

Result<SessionResult> SessionDriver::run(const PalDescriptor& pal,
                                         BytesView input) {
  if (!pal.entry) {
    return Error{Err::kInvalidArgument, "session: PAL has no entry point"};
  }
  SimClock& clock = platform_->clock();
  const SimTime start = clock.now();

  drtm::LateLaunch launcher(*platform_);
  auto guard = launcher.launch(pal.image, input);
  if (!guard.ok()) return guard.error();

  SessionResult result;
  {
    // Keep the guard alive for the PAL's whole execution; destruction
    // caps the PCRs and resumes the OS.
    drtm::LaunchGuard window = guard.take();
    PalContext ctx(*platform_, input, agent_);
    result.status = pal.entry(ctx);
    result.output = ctx.take_output();
  }

  SessionTiming& t = result.timing;
  t.suspend = span_total_since(clock, start, "drtm:suspend");
  t.skinit = span_total_since(clock, start, "drtm:skinit");
  t.pal_setup = span_total_since(clock, start, "drtm:pal_setup");
  t.resume = span_total_since(clock, start, "drtm:resume");
  t.tpm = span_prefix_total_since(clock, start, "tpm:");
  t.user = span_total_since(clock, start, "pal:user") +
           span_total_since(clock, start, "pal:user_timeout");
  t.pal_compute = span_prefix_total_since(clock, start, "pal:") - t.user;
  t.total = clock.now() - start;
  return result;
}

}  // namespace tp::pal
