// Session driver: one complete Flicker-style trusted session.
//
// Orchestrates the full lifecycle the kernel module performs on real
// hardware: marshal inputs -> suspend & late launch (measured) -> run the
// PAL entry -> collect outputs -> resume the OS. It also extracts the
// per-phase timing breakdown from the virtual clock's span log, which is
// the data source for the latency experiments (T2).
#pragma once

#include <string>

#include "drtm/late_launch.h"
#include "drtm/platform.h"
#include "pal/pal.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace tp::pal {

/// Per-phase virtual-time costs of one session.
struct SessionTiming {
  SimDuration suspend;     // OS state save
  SimDuration skinit;      // late-launch instruction incl. PAL hashing
  SimDuration pal_setup;   // environment init inside the PAL
  SimDuration tpm;         // all TPM commands issued by the PAL
  SimDuration pal_compute; // the PAL's own cycles
  SimDuration user;        // human think/typing time (incl. timeouts)
  SimDuration resume;      // OS state restore
  SimDuration total;       // wall-clock (virtual) of the whole session

  /// total - user: the machine overhead the paper reports separately,
  /// since human time dominates end-to-end but is not system cost.
  SimDuration machine() const { return total - user; }
};

struct SessionResult {
  Status status = Status::ok_status();  // the PAL's verdict
  Bytes output;                         // marshalled PAL output
  SessionTiming timing;
};

class SessionDriver {
 public:
  explicit SessionDriver(drtm::Platform& platform) : platform_(&platform) {}

  /// The agent that answers PAL prompts (nullptr = unattended machine).
  void set_user_agent(UserAgent* agent) { agent_ = agent; }

  /// Runs `pal` with `input` through a full late-launch session.
  /// Launch-level failures surface as the returned Result error; the
  /// PAL's own verdict is SessionResult::status.
  Result<SessionResult> run(const PalDescriptor& pal, BytesView input);

 private:
  drtm::Platform* platform_;
  UserAgent* agent_ = nullptr;
};

}  // namespace tp::pal
