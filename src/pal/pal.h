// PAL (Piece of Application Logic) runtime, Flicker style.
//
// A PAL is the small program that runs inside the DRTM session. In the
// real system it is a self-contained binary measured by SKINIT; in the
// simulation a PAL is (identity bytes, entry function): the identity
// bytes stand in for the binary image -- they are what gets measured into
// PCR 17 -- and the entry function is the behaviour. A *modified* PAL
// therefore has different identity bytes, which is exactly how the real
// attack (running a tampered PAL) manifests: a different measurement.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "devices/display.h"
#include "devices/keyboard.h"
#include "drtm/platform.h"
#include "tpm/tpm_device.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::pal {

class PalContext;

/// The PAL's main function. Runs with the platform isolated; returns the
/// PAL's status (marshalled outputs go through the context).
using PalEntry = std::function<Status(PalContext&)>;

/// A registered PAL: identity + behaviour.
struct PalDescriptor {
  std::string name;
  Bytes image;     // stands in for the binary; SHA-1(image) -> PCR 17
  PalEntry entry;

  /// Identity bytes for a PAL built from `name` and `version`. Stable
  /// across processes so golden measurements can be published.
  static Bytes make_image(const std::string& name, std::uint32_t version,
                          const std::string& build_salt = "");
};

/// Supplies the human (or the absence of one) during a session: invoked
/// whenever the PAL shows a screen and waits for input. Implementations
/// put keystrokes on the keyboard and return how long the operator took;
/// std::nullopt means nobody responded (timeout).
class UserAgent {
 public:
  virtual ~UserAgent() = default;
  virtual std::optional<SimDuration> on_prompt(
      const devices::DisplayContent& screen, devices::Keyboard& keyboard) = 0;
};

/// Everything a PAL may touch while isolated. Access to the TPM is at
/// locality 2 (kPal); access to devices is exclusive by construction.
class PalContext {
 public:
  PalContext(drtm::Platform& platform, BytesView input, UserAgent* agent);

  /// Which TPM generation this platform ships; selects tpm() vs tpm2().
  tpm::QuoteFormat backend() const { return platform_->backend(); }
  /// The 1.2 device. Valid only when backend() == kTpm12.
  tpm::TpmDevice& tpm() { return platform_->tpm(); }
  /// The 2.0 device. Valid only when backend() == kTpm2.
  tpm::Tpm2Device& tpm2() { return platform_->tpm2(); }
  tpm::Locality locality() const { return tpm::Locality::kPal; }

  /// The PCR holding this PAL's identity on this platform's DRTM
  /// technology (17 on AMD SKINIT, 18 on Intel TXT); what sealing
  /// policies should bind to.
  std::uint32_t identity_pcr() const { return platform_->identity_pcr(); }

  /// The PCRs a quote must cover for a remote verifier to judge the
  /// launch on this platform.
  tpm::PcrSelection attestation_selection() const {
    return platform_->attestation_selection();
  }

  BytesView input() const { return input_; }
  void set_output(Bytes output) { output_ = std::move(output); }
  Bytes take_output() { return std::move(output_); }

  /// Renders `screen` on the exclusive display, lets the user agent
  /// react, then reads one line of physical input. std::nullopt when no
  /// user responds or the response exceeds `timeout` (human time is
  /// charged to the clock either way).
  std::optional<std::string> show_and_read_line(
      const devices::DisplayContent& screen, SimDuration timeout);

  /// Renders without waiting for input (progress/final screens).
  void show(const devices::DisplayContent& screen);

  /// Charges PAL compute time (the PAL's own cycles, not TPM time).
  void charge_compute(const std::string& label, SimDuration d);

 private:
  drtm::Platform* platform_;
  BytesView input_;
  Bytes output_;
  UserAgent* agent_;
};

}  // namespace tp::pal
