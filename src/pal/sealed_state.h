// Rollback-protected sealed state across PAL sessions.
//
// A PAL that keeps state between sessions (counters, balances, rate
// limits) must seal it to itself -- but sealing alone does not stop the
// untrusted host from feeding the PAL an OLD sealed blob (a rollback /
// state-replay attack: "replay the blob from before my daily limit was
// reached"). The Flicker-style fix, reproduced here: bind every saved
// state to a TPM monotonic counter value and bump the counter on save;
// on load, a blob whose embedded value does not match the live counter
// is stale and is rejected with kReplay.
#pragma once

#include <cstdint>

#include "tpm/pcr.h"
#include "tpm/tpm_device.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::pal {

class SealedStateChannel {
 public:
  /// `counter_id` selects the TPM monotonic counter dedicated to this
  /// state stream (one counter per channel).
  SealedStateChannel(tpm::TpmDevice& tpm, std::uint32_t counter_id)
      : tpm_(&tpm), counter_id_(counter_id) {}

  /// Bumps the counter and seals (counter_value || state) under the given
  /// PCR policy. Every successful save invalidates all earlier blobs.
  Result<Bytes> save(tpm::Locality locality,
                     const tpm::PcrSelection& selection,
                     std::uint8_t release_locality_mask, BytesView state);

  /// Unseals and returns the state iff the blob is the LATEST one.
  /// Stale blob -> kReplay; tampered/foreign blob -> the unseal error.
  Result<Bytes> load(tpm::Locality locality, BytesView blob);

 private:
  tpm::TpmDevice* tpm_;
  std::uint32_t counter_id_;
};

}  // namespace tp::pal
