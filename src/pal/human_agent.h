// Adapter: a devices::HumanModel acting as the session UserAgent.
//
// The benign case: a person who intends a specific transaction sits at
// the machine and answers the PAL's prompt. The intention is what the
// human compares the trusted screen against -- if malware substituted the
// transaction, an attentive human notices here.
#pragma once

#include <string>

#include "devices/human.h"
#include "pal/pal.h"

namespace tp::pal {

class HumanAgent : public UserAgent {
 public:
  HumanAgent(devices::HumanModel human, std::string intended_summary)
      : human_(std::move(human)),
        intended_summary_(std::move(intended_summary)) {}

  /// Updates what the user currently means to authorize.
  void set_intended_summary(std::string summary) {
    intended_summary_ = std::move(summary);
  }

  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& keyboard) override {
    return human_.respond_to_confirmation(screen, intended_summary_,
                                          keyboard);
  }

  devices::HumanModel& human() { return human_; }

 private:
  devices::HumanModel human_;
  std::string intended_summary_;
};

}  // namespace tp::pal
