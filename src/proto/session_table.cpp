#include "proto/session_table.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "crypto/sha256.h"

namespace tp::proto {

namespace {

std::size_t table_size_for(std::size_t capacity) {
  // Power of two >= 2x capacity keeps the load factor <= 1/2, bounding
  // linear-probe chains to a handful of slots.
  std::size_t size = 8;
  while (size < capacity * 2) size <<= 1;
  return size;
}

SessionTable::Key truncate(const crypto::Sha256Digest& full) {
  SessionTable::Key key;
  std::memcpy(key.data(), full.data(), SessionTable::kKeyLen);
  return key;
}

}  // namespace

SessionTable::Key SessionTable::client_key(std::string_view client_id) {
  // Keyed hashing is unnecessary: a colliding client id would need a
  // 2^64 preimage-ish search on truncated SHA-256, and the worst a
  // collision yields is one shared session slot.
  return truncate(crypto::Sha256::digest(
      BytesView(reinterpret_cast<const std::uint8_t*>(client_id.data()),
                client_id.size())));
}

SessionTable::Key SessionTable::tx_key(std::uint64_t tx_id) {
  std::array<std::uint8_t, 8> le;
  for (std::size_t i = 0; i < 8; ++i) {
    le[i] = static_cast<std::uint8_t>(tx_id >> (8 * i));
  }
  return truncate(crypto::Sha256::digest(BytesView(le.data(), le.size())));
}

SessionTable::Key SessionTable::payload_key(BytesView payload) {
  return truncate(crypto::Sha256::digest(payload));
}

SessionTable::SessionTable(SessionTableConfig config)
    : config_(config),
      capacity_(std::max<std::size_t>(config.capacity, 1)),
      mask_(table_size_for(capacity_) - 1),
      slots_(mask_ + 1) {}

std::size_t SessionTable::ideal_slot(const Key& key) const {
  // Keys are truncated SHA-256, already uniform; the leading 8 bytes
  // are the hash.
  std::uint64_t h = 0;
  std::memcpy(&h, key.data(), sizeof(h));
  return static_cast<std::size_t>(h) & mask_;
}

std::size_t SessionTable::probe(const Key& key) const {
  std::size_t i = ideal_slot(key);
  while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask_;
  return i;
}

void SessionTable::lru_detach(std::size_t i) {
  Slot& s = slots_[i];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    lru_head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    lru_tail_ = s.prev;
  }
  s.prev = s.next = kNil;
}

void SessionTable::lru_push_back(std::size_t i) {
  Slot& s = slots_[i];
  s.prev = lru_tail_;
  s.next = kNil;
  if (lru_tail_ != kNil) {
    slots_[lru_tail_].next = static_cast<std::uint32_t>(i);
  } else {
    lru_head_ = static_cast<std::uint32_t>(i);
  }
  lru_tail_ = static_cast<std::uint32_t>(i);
}

void SessionTable::erase_slot(std::size_t i) {
  lru_detach(i);
  slots_[i].used = 0;
  // Backward-shift deletion (no tombstones), as in ReplayCache -- but
  // moving an entry changes its index, so the LRU neighbours of every
  // moved entry are re-pointed at its new home.
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask_;
    if (!slots_[j].used) break;
    const std::size_t k = ideal_slot(slots_[j].key);
    const bool reachable = (i < j) ? (k > i && k <= j) : (k > i || k <= j);
    if (!reachable) {
      slots_[i] = slots_[j];
      slots_[j].used = 0;
      Slot& moved = slots_[i];
      if (moved.prev != kNil) {
        slots_[moved.prev].next = static_cast<std::uint32_t>(i);
      } else {
        lru_head_ = static_cast<std::uint32_t>(i);
      }
      if (moved.next != kNil) {
        slots_[moved.next].prev = static_cast<std::uint32_t>(i);
      } else {
        lru_tail_ = static_cast<std::uint32_t>(i);
      }
      i = j;
    }
  }
  --count_;
}

void SessionTable::collect_expired(SimTime now) {
  if (!expiry_enabled()) return;
  // Constant TTL + begin-refresh makes LRU order == deadline order, so
  // every expired session sits at the front.
  while (lru_head_ != kNil &&
         slots_[lru_head_].session.deadline < now) {
    const bool was_terminal = slots_[lru_head_].session.terminal();
    erase_slot(lru_head_);
    ++(was_terminal ? holds_released_ : expirations_);
  }
}

SessionTable::Session* SessionTable::find(const Key& key, SimTime now,
                                          bool* expired) {
  if (expired != nullptr) *expired = false;
  const std::size_t i = probe(key);
  if (!slots_[i].used) return nullptr;
  if (expiry_enabled() && slots_[i].session.deadline < now) {
    const bool was_terminal = slots_[i].session.terminal();
    erase_slot(i);
    ++(was_terminal ? holds_released_ : expirations_);
    if (expired != nullptr) *expired = true;
    return nullptr;
  }
  return &slots_[i].session;
}

SessionTable::Session& SessionTable::begin(const Key& key, SimTime now) {
  collect_expired(now);
  const SimTime deadline =
      expiry_enabled()
          ? now + config_.ttl
          : SimTime{std::numeric_limits<std::int64_t>::max()};

  std::size_t i = probe(key);
  if (!slots_[i].used) {
    if (count_ == capacity_) {
      // Evict the least-recently-begun half-open session; the shift may
      // rearrange the probe chain, so re-probe for the insertion slot.
      erase_slot(lru_head_);
      ++evictions_;
      i = probe(key);
    }
    slots_[i].used = 1;
    slots_[i].key = key;
    slots_[i].prev = slots_[i].next = kNil;
    ++count_;
    lru_push_back(i);
  } else {
    // Recycle: same key, same slot, back of the eviction order.
    lru_detach(i);
    lru_push_back(i);
  }
  Session& session = slots_[i].session;
  session = Session{};
  session.state = SessionState::kChallengeSent;
  session.deadline = deadline;
  return session;
}

void SessionTable::erase(const Key& key) {
  const std::size_t i = probe(key);
  if (slots_[i].used) erase_slot(i);
}

std::vector<SessionTable::Entry> SessionTable::snapshot() const {
  std::vector<Entry> out;
  out.reserve(count_);
  for (std::uint32_t i = lru_head_; i != kNil; i = slots_[i].next) {
    out.push_back(Entry{slots_[i].key, slots_[i].session});
  }
  return out;
}

void SessionTable::restore(const Key& key, const Session& session) {
  std::size_t i = probe(key);
  if (!slots_[i].used) {
    if (count_ == capacity_) {
      erase_slot(lru_head_);
      ++evictions_;
      i = probe(key);
    }
    slots_[i].used = 1;
    slots_[i].key = key;
    slots_[i].prev = slots_[i].next = kNil;
    ++count_;
    lru_push_back(i);
  } else {
    lru_detach(i);
    lru_push_back(i);
  }
  slots_[i].session = session;
}

}  // namespace tp::proto
