// Bounded, deadline-aware table of protocol sessions.
//
// The seed kept half-open sessions (issued challenges awaiting their
// completion) in plain unordered_maps with no eviction: a flood of
// EnrollBegin/TxSubmit from millions of clients grew SP memory without
// bound -- the exact hole PR 2's bounded ReplayCache closed for
// signatures, still open for session state. SEDAT's scaling argument
// (cited in src/svc) assumes per-session verifier state is bounded; this
// table makes it so.
//
// Design mirrors ReplayCache: fixed capacity, open addressing with
// linear probing and backward-shift deletion, keys are truncated
// SHA-256 digests (16 bytes; collision probability ~2^-64 at any
// plausible fleet size), all storage allocated once up front. On top of
// that each slot carries fixed-size session payload (state, deadline,
// nonce, transaction digest, client tag) and sits on an intrusive LRU
// list:
//
//   - TTL: every (re)begin arms deadline = now + ttl on the virtual
//     clock (util/sim_clock.h). Expired sessions are collected lazily on
//     find/begin; because the TTL is constant and begins refresh it, LRU
//     order equals deadline order, so collection pops from the LRU front
//     only.
//   - Eviction: when the table is full, the least-recently-begun
//     half-open session is evicted. Eviction cannot break settled state
//     (settled sessions release their slot immediately); it only forces
//     the flooder's oldest unanswered challenge to be re-requested.
//   - Recycling: a begin for a key that already has a live session
//     reuses that slot (fresh nonce, fresh deadline). A client sending
//     EnrollBegin forever occupies exactly one slot.
//
// Memory is capacity-proportional and constant for the table's lifetime
// (memory_bytes() is the boundedness regression tests assert).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "proto/session_fsm.h"
#include "util/bytes.h"
#include "util/sim_clock.h"

namespace tp::proto {

struct SessionTableConfig {
  /// Maximum live sessions; 0 is clamped to 1. The probe table is sized
  /// to a power of two >= 2x capacity (load factor <= 1/2).
  std::size_t capacity = 4096;
  /// Lifetime of a half-open session from its last begin. <= 0 disables
  /// expiry (sessions then only leave by settling or eviction).
  SimDuration ttl = SimDuration::seconds(120);
};

class SessionTable {
 public:
  /// Key width (SHA-256 truncated), same rationale as ReplayCache.
  static constexpr std::size_t kKeyLen = 16;
  using Key = std::array<std::uint8_t, kKeyLen>;

  /// Largest nonce stored inline (SpConfig::nonce_len is clamped to it).
  static constexpr std::size_t kMaxNonceLen = 32;

  /// Session key for enrollment sessions (keyed by client identity, so
  /// repeat begins recycle one slot per client).
  static Key client_key(std::string_view client_id);
  /// Session key for confirmation sessions (keyed by tx id).
  static Key tx_key(std::uint64_t tx_id);
  /// Idempotency key: truncated digest of a raw message payload, used to
  /// tell a byte-identical retransmission from a different request.
  static Key payload_key(BytesView payload);

  /// Largest serialized response frame cached inline for idempotent
  /// replay (every SP response frame fits; see set_response).
  static constexpr std::size_t kMaxCachedResponseLen = 128;

  /// Fixed-size per-session payload. Strings never land here: client
  /// identity is stored as its truncated digest (client_key of the
  /// submitting client), which is exactly what the mismatch check needs.
  struct Session {
    SessionState state = SessionState::kIdle;
    SimTime deadline;                            // absolute, virtual time
    Key client{};                                // submitting client's tag
    std::uint8_t nonce_len = 0;
    std::array<std::uint8_t, kMaxNonceLen> nonce{};
    std::array<std::uint8_t, 32> tx_digest{};    // SHA-256, tx sessions

    // Idempotent-replay state: the digest of the request that last
    // advanced this session, and the serialized response it produced. A
    // byte-identical retransmission is answered from this cache; a
    // terminal session (kDone/kFailed) held in the table exists only to
    // serve such replays until its original deadline passes.
    Key request_digest{};
    std::uint16_t response_len = 0;
    std::array<std::uint8_t, kMaxCachedResponseLen> response{};

    BytesView nonce_view() const { return {nonce.data(), nonce_len}; }
    void set_nonce(BytesView n) {
      nonce_len = static_cast<std::uint8_t>(
          n.size() < kMaxNonceLen ? n.size() : kMaxNonceLen);
      for (std::size_t i = 0; i < nonce_len; ++i) nonce[i] = n[i];
    }

    bool terminal() const {
      return state == SessionState::kDone || state == SessionState::kFailed;
    }
    bool has_response() const { return response_len != 0; }
    BytesView response_view() const { return {response.data(), response_len}; }
    /// Caches the serialized response frame. Oversized frames are not
    /// cached (has_response() stays false; retransmits then reprocess),
    /// keeping the slot fixed-size.
    void set_response(BytesView frame) {
      if (frame.size() > kMaxCachedResponseLen) {
        response_len = 0;
        return;
      }
      response_len = static_cast<std::uint16_t>(frame.size());
      for (std::size_t i = 0; i < response_len; ++i) response[i] = frame[i];
    }
  };

  explicit SessionTable(SessionTableConfig config);

  /// The live session for `key`, or nullptr. A session whose deadline
  /// has passed is collected here (slot freed, expirations() bumped) and
  /// reported through `*expired` so the caller can answer with
  /// kSessionExpired rather than the generic no-session reject.
  Session* find(const Key& key, SimTime now, bool* expired = nullptr);

  /// Opens (or recycles) the session for `key`: collects expired
  /// sessions, evicts the least-recently-begun one if still full, arms
  /// deadline = now + ttl, resets the payload to a fresh
  /// kChallengeSent session and moves it to the back of the eviction
  /// order. Never fails.
  Session& begin(const Key& key, SimTime now);

  /// Releases the slot (session settled or abandoned). No-op if absent.
  void erase(const Key& key);

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return capacity_; }
  SimDuration ttl() const { return config_.ttl; }

  /// Sessions evicted to make room (capacity pressure).
  std::uint64_t evictions() const { return evictions_; }
  /// Half-open sessions collected because their deadline passed.
  std::uint64_t expirations() const { return expirations_; }
  /// Terminal (settled) sessions whose replay-hold window closed; kept
  /// separate so expirations() still means "abandoned half-open".
  std::uint64_t holds_released() const { return holds_released_; }

  /// Heap bytes pinned by the table -- constant over its lifetime
  /// regardless of traffic (the boundedness the tests assert).
  std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

  /// One live entry as exported by snapshot(). Plain value copies: the
  /// handoff path serializes shard state across table instances, so
  /// nothing here may point back into the source table.
  struct Entry {
    Key key{};
    Session session;
  };

  /// Every live session in LRU order (least recently begun first). With
  /// the constant-TTL invariant this is also ascending-deadline order,
  /// which is the order restore() wants entries replayed in.
  std::vector<Entry> snapshot() const;

  /// Re-inserts an exported session with its state, deadline and payload
  /// intact (unlike begin(), which resets to a fresh kChallengeSent).
  /// The slot lands at the back of the eviction order, so replaying a
  /// whole snapshot in ascending-deadline order preserves the
  /// LRU == deadline-order invariant; callers merging entries into a
  /// non-empty table (shard handoff) must merge-sort both sides by
  /// deadline first (ServiceProvider::import_handoff does). Inserting
  /// into a full table evicts the least-recently-begun session, like
  /// begin().
  void restore(const Key& key, const Session& session);

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    Key key{};
    std::uint32_t prev = kNil;  // LRU links (kNil at the list ends)
    std::uint32_t next = kNil;
    std::uint8_t used = 0;
    Session session;
  };

  std::size_t ideal_slot(const Key& key) const;
  /// Index of key's slot, or the first empty slot of its probe chain.
  std::size_t probe(const Key& key) const;
  bool expiry_enabled() const { return config_.ttl.ns > 0; }

  void lru_detach(std::size_t i);
  void lru_push_back(std::size_t i);
  /// Frees slot `i` and backward-shifts its probe chain (fixing LRU
  /// links of every moved entry).
  void erase_slot(std::size_t i);
  /// Collects every expired session from the LRU front.
  void collect_expired(SimTime now);

  SessionTableConfig config_;
  std::size_t capacity_;
  std::size_t mask_;  // table size - 1 (power of two)
  std::size_t count_ = 0;
  std::uint32_t lru_head_ = kNil;  // least recently begun
  std::uint32_t lru_tail_ = kNil;  // most recently begun
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t holds_released_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace tp::proto
