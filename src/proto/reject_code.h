// Typed reject codes for the trusted-path protocol.
//
// Every way the verifying side can turn a message away is enumerated
// here, replacing the ad-hoc reason strings the seed grew organically.
// The code travels on the wire (one u8 in EnrollResult/TxResult, next to
// the human-readable reason kept for log compatibility), indexes the
// SP's fixed per-reject counter array (no per-reject heap allocation on
// the hot path), and gives tests something stable to assert against:
// string messages may be reworded, codes may only be appended.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tp::proto {

enum class RejectCode : std::uint8_t {
  kNone = 0,  // not rejected (accepted results carry kNone)

  // Transport / framing.
  kMalformedFrame = 1,
  kUnexpectedMessage = 2,
  kMalformedEnrollBegin = 3,
  kMalformedEnrollComplete = 4,
  kMalformedTxSubmit = 5,
  kMalformedTxConfirm = 6,

  // Session lifecycle (produced by the SessionFsm / SessionTable).
  kNoPendingEnrollment = 7,  // EnrollComplete without a live session
  kUnknownTx = 8,            // TxConfirm for an unknown/settled tx_id
  kSessionExpired = 9,       // the session's deadline passed first

  // Enrollment evidence.
  kMalformedAikCertificate = 10,
  kUntrustedAikCertificate = 11,
  kMalformedQuote = 12,
  kQuoteVerifyFailed = 13,
  kAttestationPolicyMismatch = 14,
  kMalformedPublicKey = 15,

  // Confirmation evidence.
  kClientMismatch = 16,
  kClientNotEnrolled = 17,
  kUserRejected = 18,  // PAL verdict: human typed the reject line
  kUserTimeout = 19,   // PAL verdict: nobody answered
  kReplayedSignature = 20,
  kBadSignature = 21,

  // Retry / idempotency (frame-level re-delivery handling).
  kRetryMismatch = 22,  // retransmit whose bytes differ from the original
};

inline constexpr std::size_t kRejectCodeCount = 23;

/// True iff `v` is a defined RejectCode value (wire validation).
constexpr bool reject_code_valid(std::uint8_t v) {
  return v < kRejectCodeCount;
}

/// Stable snake_case token, used as the metrics-counter suffix
/// ("sp.reject.<token>"). Never renamed, only appended.
constexpr const char* reject_code_name(RejectCode c) {
  switch (c) {
    case RejectCode::kNone: return "none";
    case RejectCode::kMalformedFrame: return "malformed_frame";
    case RejectCode::kUnexpectedMessage: return "unexpected_message";
    case RejectCode::kMalformedEnrollBegin: return "malformed_enroll_begin";
    case RejectCode::kMalformedEnrollComplete:
      return "malformed_enroll_complete";
    case RejectCode::kMalformedTxSubmit: return "malformed_tx_submit";
    case RejectCode::kMalformedTxConfirm: return "malformed_tx_confirm";
    case RejectCode::kNoPendingEnrollment: return "no_pending_enrollment";
    case RejectCode::kUnknownTx: return "unknown_tx";
    case RejectCode::kSessionExpired: return "session_expired";
    case RejectCode::kMalformedAikCertificate:
      return "malformed_aik_certificate";
    case RejectCode::kUntrustedAikCertificate:
      return "untrusted_aik_certificate";
    case RejectCode::kMalformedQuote: return "malformed_quote";
    case RejectCode::kQuoteVerifyFailed: return "quote_verify_failed";
    case RejectCode::kAttestationPolicyMismatch:
      return "attestation_policy_mismatch";
    case RejectCode::kMalformedPublicKey: return "malformed_public_key";
    case RejectCode::kClientMismatch: return "client_mismatch";
    case RejectCode::kClientNotEnrolled: return "client_not_enrolled";
    case RejectCode::kUserRejected: return "user_rejected";
    case RejectCode::kUserTimeout: return "user_timeout";
    case RejectCode::kReplayedSignature: return "replayed_signature";
    case RejectCode::kBadSignature: return "bad_signature";
    case RejectCode::kRetryMismatch: return "retry_mismatch";
  }
  return "unknown";
}

/// Human-readable message (kept byte-identical to the seed's reason
/// strings where a counterpart existed, so logs and transcripts stay
/// comparable across versions).
constexpr const char* reject_code_message(RejectCode c) {
  switch (c) {
    case RejectCode::kNone: return "";
    case RejectCode::kMalformedFrame: return "malformed frame";
    case RejectCode::kUnexpectedMessage: return "unexpected message";
    case RejectCode::kMalformedEnrollBegin: return "malformed EnrollBegin";
    case RejectCode::kMalformedEnrollComplete:
      return "malformed EnrollComplete";
    case RejectCode::kMalformedTxSubmit: return "malformed TxSubmit";
    case RejectCode::kMalformedTxConfirm: return "malformed TxConfirm";
    case RejectCode::kNoPendingEnrollment:
      return "no pending enrollment challenge";
    case RejectCode::kUnknownTx:
      return "unknown or already-settled transaction";
    case RejectCode::kSessionExpired: return "session expired";
    case RejectCode::kMalformedAikCertificate:
      return "malformed AIK certificate";
    case RejectCode::kUntrustedAikCertificate:
      return "AIK certificate not signed by trusted CA";
    case RejectCode::kMalformedQuote: return "malformed quote";
    case RejectCode::kQuoteVerifyFailed: return "quote verification failed";
    case RejectCode::kAttestationPolicyMismatch:
      return "PCR17 does not match golden PAL measurement";
    case RejectCode::kMalformedPublicKey: return "malformed public key";
    case RejectCode::kClientMismatch: return "client mismatch";
    case RejectCode::kClientNotEnrolled: return "client not enrolled";
    case RejectCode::kUserRejected: return "not confirmed by user: rejected";
    case RejectCode::kUserTimeout: return "not confirmed by user: timeout";
    case RejectCode::kReplayedSignature:
      return "replayed confirmation signature";
    case RejectCode::kBadSignature: return "confirmation signature invalid";
    case RejectCode::kRetryMismatch:
      return "retransmission does not match the original request";
  }
  return "unknown reject code";
}

}  // namespace tp::proto
