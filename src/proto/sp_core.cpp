#include "proto/sp_core.h"

namespace tp::proto {

const char* sp_action_name(SpActionKind kind) {
  switch (kind) {
    case SpActionKind::kNone: return "none";
    case SpActionKind::kOpenSession: return "open_session";
    case SpActionKind::kStoreNonce: return "store_nonce";
    case SpActionKind::kSendFrame: return "send_frame";
    case SpActionKind::kVerifySignature: return "verify_signature";
    case SpActionKind::kSealResponse: return "seal_response";
    case SpActionKind::kReplayResponse: return "replay_response";
    case SpActionKind::kApplyState: return "apply_state";
    case SpActionKind::kEvictSession: return "evict_session";
    case SpActionKind::kRecordSignature: return "record_signature";
    case SpActionKind::kCountAccept: return "count_accept";
    case SpActionKind::kCountReject: return "count_reject";
  }
  return "unknown";
}

}  // namespace tp::proto
