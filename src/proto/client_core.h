// ClientCore: the client orchestrator's pure decision core.
//
// The mirror of sp_core.h for the other end of the wire. The client's
// exchange loop (core::TrustedPathClient::exchange_msg) used to bake
// three decisions into its I/O: whether a send is a legal FSM
// transition, how long to back off before a retry, and what to do with
// each delivered frame (accept / discard-and-drain / give the attempt
// up). Those decisions now live here as pure functions over POD views,
// so the model checker can drive the exact retry/filter logic a real
// client runs -- a replayed or reordered frame is mishandled in the
// model iff it would be mishandled on the wire.
#pragma once

#include <cstdint>

#include "proto/session_fsm.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tp::proto {

/// The retry-policy numbers the backoff decision needs (a view of
/// core::RetryPolicy, kept message-layer-free).
struct ClientBackoffPolicy {
  std::int64_t base_ns = 0;
  std::int64_t cap_ns = 0;
};

/// Decorrelated-jitter backoff: sleep = min(cap, uniform(base,
/// 3 * previous)), drawn from the caller's jitter stream. Pure given the
/// rng: the same stream position yields the same plan, which is what
/// makes retry schedules replayable under a fixed seed.
inline SimDuration client_plan_backoff(const ClientBackoffPolicy& policy,
                                       SimDuration previous, SimRng& rng) {
  const std::int64_t lo = policy.base_ns > 0 ? policy.base_ns : 0;
  std::int64_t hi = 3 * previous.ns;
  if (hi < lo + 1) hi = lo + 1;
  std::int64_t planned =
      lo + static_cast<std::int64_t>(
               rng.next_below(static_cast<std::uint64_t>(hi - lo)));
  if (planned > policy.cap_ns) planned = policy.cap_ns;
  return SimDuration::nanos(planned);
}

/// Whether the exchange may (re)send its frame: the transition table
/// must demand exactly the action the client is about to perform. A
/// mismatch means the orchestrator would emit a sequence the verifier
/// refuses -- surfaced before any wire round-trip. Applies `event` to
/// `fsm` (a retransmission replays the SAME event: a begin re-opens the
/// session, a completion retries the settle).
inline bool client_may_send(Session& fsm, SessionEvent event,
                            SessionAction want_action) {
  return fsm.apply(event).action == want_action;
}

/// One delivered (or failed) receive attempt, as facts.
struct ClientRxEvent {
  bool delivered = false;       // a frame arrived (vs a transport error)
  bool link_exhausted = false;  // transport says nothing more is pending
  bool want_type = false;       // envelope opened to the awaited type
  bool well_formed = false;     // payload deserialized cleanly
};

enum class ClientRxDecision : std::uint8_t {
  kAccept,           // this is the response: the exchange completes
  kDiscardAndDrain,  // stale/corrupt noise queued ahead of the answer
  kNextAttempt,      // nothing more pending: back off and retransmit
};

/// The drain-loop filter: corrupt, stale or duplicated frames are noise
/// queued ahead of the answer, not the answer; an exhausted link ends
/// the attempt.
constexpr ClientRxDecision client_classify_rx(const ClientRxEvent& rx) {
  if (!rx.delivered) {
    return rx.link_exhausted ? ClientRxDecision::kNextAttempt
                             : ClientRxDecision::kDiscardAndDrain;
  }
  if (rx.want_type && rx.well_formed) return ClientRxDecision::kAccept;
  return ClientRxDecision::kDiscardAndDrain;
}

}  // namespace tp::proto
