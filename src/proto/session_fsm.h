// The protocol session state machine, shared by client and SP.
//
// The paper's protocol is a strict two-phase, four-message exchange:
//
//   enrollment:    EnrollBegin -> EnrollChallenge -> EnrollComplete ->
//                  EnrollResult
//   confirmation:  TxSubmit    -> TxChallenge     -> TxConfirm      ->
//                  TxResult
//
// Both phases have the same session shape -- a challenge is issued, then
// exactly one completion attempt settles it -- so one transition system
// covers both, parameterized by phase only where the reject code for "no
// such session" differs. `step` is a pure function (no I/O, no clock, no
// allocation): the verifier feeds it events derived from messages and
// deadlines, the client feeds it the same events from its own side of
// the wire, and because both run the identical table they can never
// disagree about which transitions are legal. Bursuc et al.'s automated
// verification of DRTM protocols works from exactly this kind of
// explicit transition system; keeping ours pure keeps it exhaustively
// step-testable (see tests/proto_fsm_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "proto/reject_code.h"

namespace tp::proto {

enum class SessionPhase : std::uint8_t {
  kEnroll = 0,   // EnrollBegin/EnrollComplete
  kConfirm = 1,  // TxSubmit/TxConfirm
};
inline constexpr std::size_t kSessionPhaseCount = 2;

/// Lifecycle of one protocol session, on either side of the wire.
enum class SessionState : std::uint8_t {
  kIdle = 0,        // no session material exists for this key
  kChallengeSent,   // challenge issued, completion pending (half-open)
  kDone,            // completed and accepted (terminal)
  kFailed,          // completed and rejected (terminal)
  kExpired,         // deadline passed before completion (terminal)
};
inline constexpr std::size_t kSessionStateCount = 5;

enum class SessionEvent : std::uint8_t {
  kBegin = 0,    // phase-1 message (EnrollBegin / TxSubmit)
  kComplete,     // phase-2 message (EnrollComplete / TxConfirm)
  kVerifyOk,     // the completion's evidence checked out
  kVerifyFail,   // the completion's evidence was refused
  kDeadline,     // the session deadline passed
};
inline constexpr std::size_t kSessionEventCount = 5;

/// What the caller must do after a transition. The FSM never performs
/// the action itself -- it has no I/O.
enum class SessionAction : std::uint8_t {
  kNone = 0,        // nothing to do (no-op transition)
  kSendChallenge,   // mint a fresh nonce, arm the deadline, answer
  kVerify,          // run the phase's checks, then feed kVerifyOk/Fail
  kAccept,          // settle the session as accepted, release its slot
  kReject,          // answer with a typed reject, release the slot if
                    // the new state is terminal
};

struct Step {
  SessionState next = SessionState::kIdle;
  SessionAction action = SessionAction::kNone;
  /// Typed reject for action == kReject. kNone there means "the caller
  /// supplies the specific code" -- only the ChallengeSent+kVerifyFail
  /// edge, where the verifier knows *why* the evidence failed.
  RejectCode reject = RejectCode::kNone;
};

constexpr bool session_state_terminal(SessionState s) {
  return s == SessionState::kDone || s == SessionState::kFailed ||
         s == SessionState::kExpired;
}

/// The transition function. Total: every (phase, state, event) triple
/// yields a well-defined Step that either advances the session or
/// carries a typed reject -- no aborts, no silent drops.
constexpr Step step(SessionPhase phase, SessionState state,
                    SessionEvent event) {
  // The one phase-dependent output: what "you have no session" means.
  const RejectCode no_session = phase == SessionPhase::kEnroll
                                    ? RejectCode::kNoPendingEnrollment
                                    : RejectCode::kUnknownTx;
  switch (event) {
    case SessionEvent::kBegin:
      // A begin always (re)opens the session: from kIdle it claims a
      // slot, from kChallengeSent it recycles the same slot with a fresh
      // nonce and deadline (a client hammering begins cannot allocate
      // more than one), from a terminal state it starts the next
      // session for that key.
      return {SessionState::kChallengeSent, SessionAction::kSendChallenge,
              RejectCode::kNone};

    case SessionEvent::kComplete:
      switch (state) {
        case SessionState::kChallengeSent:
          return {SessionState::kChallengeSent, SessionAction::kVerify,
                  RejectCode::kNone};
        case SessionState::kExpired:
          return {SessionState::kExpired, SessionAction::kReject,
                  RejectCode::kSessionExpired};
        case SessionState::kIdle:
        case SessionState::kDone:    // challenge already consumed
        case SessionState::kFailed:
          return {state, SessionAction::kReject, no_session};
      }
      break;

    case SessionEvent::kVerifyOk:
      if (state == SessionState::kChallengeSent) {
        return {SessionState::kDone, SessionAction::kAccept,
                RejectCode::kNone};
      }
      // A verification verdict without a live challenge is a protocol
      // violation by the caller; refuse it the same way a stray
      // completion is refused.
      return {state, SessionAction::kReject,
              state == SessionState::kExpired ? RejectCode::kSessionExpired
                                              : no_session};

    case SessionEvent::kVerifyFail:
      if (state == SessionState::kChallengeSent) {
        // reject == kNone: the verifier supplies the specific code.
        return {SessionState::kFailed, SessionAction::kReject,
                RejectCode::kNone};
      }
      return {state, SessionAction::kReject,
              state == SessionState::kExpired ? RejectCode::kSessionExpired
                                              : no_session};

    case SessionEvent::kDeadline:
      if (state == SessionState::kChallengeSent) {
        return {SessionState::kExpired, SessionAction::kReject,
                RejectCode::kSessionExpired};
      }
      return {state, SessionAction::kNone, RejectCode::kNone};
  }
  // Unreachable for in-range enums; keeps -Wreturn-type quiet for
  // adversarial (out-of-range) inputs in fuzzing.
  return {state, SessionAction::kNone, RejectCode::kNone};
}

constexpr const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "idle";
    case SessionState::kChallengeSent: return "challenge_sent";
    case SessionState::kDone: return "done";
    case SessionState::kFailed: return "failed";
    case SessionState::kExpired: return "expired";
  }
  return "unknown";
}

constexpr const char* session_event_name(SessionEvent e) {
  switch (e) {
    case SessionEvent::kBegin: return "begin";
    case SessionEvent::kComplete: return "complete";
    case SessionEvent::kVerifyOk: return "verify_ok";
    case SessionEvent::kVerifyFail: return "verify_fail";
    case SessionEvent::kDeadline: return "deadline";
  }
  return "unknown";
}

/// One side's handle on a session: current state plus the shared
/// transition function. The client drives one of these per exchange so
/// it physically cannot emit a message sequence the SP's instance of
/// the same table would refuse.
class Session {
 public:
  explicit Session(SessionPhase phase) : phase_(phase) {}

  SessionPhase phase() const { return phase_; }
  SessionState state() const { return state_; }

  /// Applies `event` and returns the resulting step (state is updated
  /// to step.next).
  Step apply(SessionEvent event) {
    const Step s = step(phase_, state_, event);
    state_ = s.next;
    return s;
  }

 private:
  SessionPhase phase_;
  SessionState state_ = SessionState::kIdle;
};

}  // namespace tp::proto
