// SpCore: the service provider's pure protocol decision core.
//
// Every decision the SP makes about a protocol message -- is the session
// live, which checks gate acceptance, what settles, what must be erased,
// counted or replayed -- is a pure function in this file, of the shape
// (state views, facts) -> (state', Action[]). The functions never touch
// a table, a cache, a counter or the wire: they consume compact POD
// views of that state and return decisions plus a closed action
// vocabulary (SpActionKind) for the shell to execute.
//
// Two consumers drive the same functions:
//   * sp::ServiceProvider, the imperative shell: it parses frames, backs
//     the views with its SessionTable/ReplayCache/SubmitDedup, executes
//     actions against real crypto (through proto::CryptoPort) and real
//     metrics, and serializes responses. Byte-for-byte the behaviour of
//     the pre-core monolith (pinned by tests/differential_test.cpp).
//   * model::Explorer, the bounded-depth model checker: it backs the
//     views with symbolic session/replay state and explores every
//     interleaving of these decisions against a Dolev-Yao attacker.
//
// The FSM transitions themselves stay in session_fsm.h (proto::step);
// SpCore layers the SP's check ordering and side-effect decisions on
// top, which is exactly the logic that used to be interleaved with I/O
// inside ServiceProvider and therefore unexplorable.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "proto/reject_code.h"
#include "proto/session_fsm.h"

namespace tp::proto {

// ---- action vocabulary -----------------------------------------------

/// Everything a decision can ask the shell to do. Closed: the shell's
/// executor switches over this enum exhaustively, and the model checker
/// interprets the same list against its symbolic state, so a decision
/// cannot have an effect one consumer applies and the other misses.
enum class SpActionKind : std::uint8_t {
  kNone = 0,
  kOpenSession,      // claim/recycle the slot, arm the deadline
  kStoreNonce,       // persist the fresh challenge nonce in the slot
  kSendFrame,        // emit the response built from this decision
  kVerifySignature,  // run the crypto port over the gathered statement
  kSealResponse,     // cache the response against the request digest
  kReplayResponse,   // answer from the cached response (no counters)
  kApplyState,       // write next_state back to the session slot
  kEvictSession,     // erase the slot (one-shot mode)
  kRecordSignature,  // insert the signature into the replay cache
  kCountAccept,      // bump the accept counter family
  kCountReject,      // bump the reject counter family (code attached)
};

const char* sp_action_name(SpActionKind kind);

struct SpAction {
  SpActionKind kind = SpActionKind::kNone;
  RejectCode reject = RejectCode::kNone;  // for kCountReject
};

/// Fixed-capacity action list -- no allocation on any decision path.
class SpActionList {
 public:
  static constexpr std::size_t kCapacity = 6;

  constexpr void push(SpActionKind kind,
                      RejectCode reject = RejectCode::kNone) {
    if (count_ < kCapacity) items_[count_++] = SpAction{kind, reject};
  }
  constexpr const SpAction* begin() const { return items_.data(); }
  constexpr const SpAction* end() const { return items_.data() + count_; }
  constexpr std::size_t size() const { return count_; }

 private:
  std::array<SpAction, kCapacity> items_{};
  std::size_t count_ = 0;
};

// ---- state views ------------------------------------------------------

/// One session slot as the core sees it at lookup time.
struct SpSessionView {
  bool found = false;
  /// The table reported the slot's deadline passed at this lookup (the
  /// session was collected just now).
  bool deadline_passed = false;
  SessionState state = SessionState::kIdle;
};

/// Pre-signature facts about one completion attempt, gathered by the
/// shell for a live session. Enrollment passes the defaults: its only
/// gate is the crypto port's evidence check.
struct SpCompleteFacts {
  bool client_matches = true;        // session binding == message client
  bool require_trusted_path = true;  // SP policy knob (F2 baseline rows)
  bool enrolled = true;              // crypto port knows this client
  enum class Verdict : std::uint8_t { kConfirmed = 0, kRejected, kTimeout };
  Verdict verdict = Verdict::kConfirmed;  // the human's answer
  bool signature_replayed = false;   // replay-cache hit on the signature
};

// ---- decisions --------------------------------------------------------

/// Phase-1 decision (EnrollBegin / TxSubmit): a begin always (re)opens
/// the session and answers with a fresh challenge.
struct SpBegin {
  SessionState next_state = SessionState::kChallengeSent;
  SpActionList actions;
};

constexpr SpBegin sp_begin(SessionPhase phase) {
  SpBegin out;
  out.next_state = step(phase, SessionState::kIdle, SessionEvent::kBegin).next;
  out.actions.push(SpActionKind::kOpenSession);
  out.actions.push(SpActionKind::kStoreNonce);
  out.actions.push(SpActionKind::kSendFrame);
  return out;
}

/// Stage-A decision for a completion: does a live session accept this
/// kComplete at all? Mirrors the FSM gate the monolith ran first --
/// session miss (expired vs never-existed), terminal-hold guard, or a
/// live challenge demanding kVerify.
struct SpGate {
  /// The session exists and was stepped toward verification; the
  /// pre-signature screen and settle must run. False on the miss and
  /// terminal-guard paths, which reject without a settle step.
  bool session_live = false;
  bool state_valid = false;  // next_state must be written to the slot
  SessionState next_state = SessionState::kIdle;
  RejectCode reject = RejectCode::kNone;
  SpActionList actions;
};

constexpr SpGate sp_gate_complete(SessionPhase phase,
                                  const SpSessionView& view) {
  SpGate out;
  if (!view.found) {
    // No live session: feed kComplete to the state the table reports
    // (kExpired when the deadline collected the slot just now, kIdle
    // otherwise) and let the FSM pick the reject code.
    const Step miss = step(phase,
                           view.deadline_passed ? SessionState::kExpired
                                                : SessionState::kIdle,
                           SessionEvent::kComplete);
    out.reject = miss.reject;
    out.actions.push(SpActionKind::kCountReject, miss.reject);
    out.actions.push(SpActionKind::kSendFrame);
    return out;
  }
  // Live session: kComplete from kChallengeSent demands kVerify. A
  // terminal session held for idempotent replay refuses a fresh
  // completion with its typed code (byte-identical retransmits are
  // answered from the response cache before this).
  const Step on_complete = step(phase, view.state, SessionEvent::kComplete);
  out.state_valid = true;
  out.next_state = on_complete.next;
  out.actions.push(SpActionKind::kApplyState);
  if (on_complete.action != SessionAction::kVerify) {
    out.reject = on_complete.reject;
    out.actions.push(SpActionKind::kCountReject, on_complete.reject);
    out.actions.push(SpActionKind::kSendFrame);
    return out;
  }
  out.session_live = true;
  return out;
}

/// Stage-B decision: the pre-signature screen for a live session, in the
/// seed's check order -- client binding, policy knob, enrollment, human
/// verdict, replay backstop -- ending (when everything passes) in the
/// kVerifySignature action.
struct SpScreen {
  bool need_verify = false;
  bool verified_by_trusted_path = false;
  RejectCode reject = RejectCode::kNone;
  SpActionList actions;
};

constexpr SpScreen sp_screen_complete(const SpCompleteFacts& facts) {
  SpScreen out;
  if (!facts.client_matches) {
    out.reject = RejectCode::kClientMismatch;
    out.actions.push(SpActionKind::kCountReject, out.reject);
    return out;
  }
  if (!facts.require_trusted_path) {
    // Baseline mode: execute whatever the (possibly compromised) client
    // software asked for. This is the world before the trusted path.
    return out;
  }
  out.verified_by_trusted_path = true;
  if (!facts.enrolled) {
    out.reject = RejectCode::kClientNotEnrolled;
    out.actions.push(SpActionKind::kCountReject, out.reject);
    return out;
  }
  if (facts.verdict != SpCompleteFacts::Verdict::kConfirmed) {
    out.reject = facts.verdict == SpCompleteFacts::Verdict::kRejected
                     ? RejectCode::kUserRejected
                     : RejectCode::kUserTimeout;
    out.actions.push(SpActionKind::kCountReject, out.reject);
    return out;
  }
  // Defence in depth: a signature is never accepted twice even if the
  // one-shot challenge logic were bypassed.
  if (facts.signature_replayed) {
    out.reject = RejectCode::kReplayedSignature;
    out.actions.push(SpActionKind::kCountReject, out.reject);
    return out;
  }
  out.need_verify = true;
  out.actions.push(SpActionKind::kVerifySignature);
  return out;
}

/// Everything the settle decision consumes. `state` / `session_found`
/// describe the slot as re-found at settle time (prepares of other batch
/// items may have moved or consumed it); `pre_reject` is the screen's
/// first failing check; `verify_reject` is the code a failed signature
/// check maps to (kBadSignature for confirmations, the crypto port's
/// first-failing evidence code for enrollments).
struct SpSettleInput {
  SessionState state = SessionState::kIdle;
  bool session_live = false;
  bool session_found = false;
  bool need_verify = false;
  bool verify_ok = false;
  RejectCode pre_reject = RejectCode::kNone;
  RejectCode verify_reject = RejectCode::kBadSignature;
  bool idempotent = true;
};

struct SpSettle {
  bool state_valid = false;
  SessionState next_state = SessionState::kIdle;
  bool accepted = false;
  bool record_signature = false;  // insert into the replay cache
  bool erase_session = false;     // one-shot mode releases the slot
  RejectCode reject = RejectCode::kNone;
  SpActionList actions;
};

constexpr SpSettle sp_settle_complete(SessionPhase phase,
                                      const SpSettleInput& in) {
  SpSettle out;
  RejectCode verdict = in.pre_reject;
  if (verdict == RejectCode::kNone && in.need_verify && !in.verify_ok) {
    verdict = in.verify_reject;
  }
  if (!in.session_live) {
    // Miss / terminal-guard: reject without a settle step or an erase,
    // exactly like the pre-core code.
    out.reject = verdict;
    out.actions.push(SpActionKind::kCountReject, verdict);
    out.actions.push(SpActionKind::kSendFrame);
    return out;
  }
  if (in.session_found) {
    const Step settle = step(phase, in.state,
                             verdict == RejectCode::kNone
                                 ? SessionEvent::kVerifyOk
                                 : SessionEvent::kVerifyFail);
    out.state_valid = true;
    out.next_state = settle.next;
    out.accepted = settle.action == SessionAction::kAccept;
    out.actions.push(SpActionKind::kApplyState);
  }
  if (!in.idempotent) {
    // One-shot: replay of this challenge dies here. Idempotent mode
    // holds the terminal session instead; a re-sent kComplete hits the
    // terminal guard (or the response cache on the frame path).
    out.erase_session = true;
    out.actions.push(SpActionKind::kEvictSession);
  }
  if (out.accepted) {
    out.record_signature = in.need_verify;
    if (in.need_verify) out.actions.push(SpActionKind::kRecordSignature);
    out.actions.push(SpActionKind::kCountAccept);
  } else {
    out.reject = verdict;
    out.actions.push(SpActionKind::kCountReject, verdict);
  }
  out.actions.push(SpActionKind::kSendFrame);
  return out;
}

// ---- idempotent-retransmission screens --------------------------------

/// A possibly-retransmitted frame against the cached-response state of
/// its session slot.
struct SpReplayView {
  bool session_found = false;
  bool live_challenge = false;  // state == kChallengeSent
  bool terminal = false;
  bool digest_matches = false;  // request digest == cached digest
  bool has_response = false;
};

enum class SpRetransmit : std::uint8_t {
  kProcess,         // not a retransmission: run the normal path
  kReplayResponse,  // byte-identical retry: replay the cached response
  kRetryMismatch,   // differing retry of a settled session: typed reject
};

/// Begins (EnrollBegin / TxSubmit) replay against a LIVE challenge they
/// already opened; anything else falls through to normal processing
/// (which recycles or opens the slot -- never a mismatch reject).
constexpr SpRetransmit sp_screen_begin_retransmit(const SpReplayView& v) {
  if (v.session_found && v.live_challenge && v.digest_matches &&
      v.has_response) {
    return SpRetransmit::kReplayResponse;
  }
  return SpRetransmit::kProcess;
}

/// Completes (EnrollComplete / TxConfirm) replay against a TERMINAL held
/// session; a differing payload aimed at a settled session is not a
/// retransmission and gets the typed kRetryMismatch reject.
constexpr SpRetransmit sp_screen_complete_retransmit(const SpReplayView& v) {
  if (!v.session_found || !v.terminal) return SpRetransmit::kProcess;
  if (v.digest_matches && v.has_response) {
    return SpRetransmit::kReplayResponse;
  }
  return SpRetransmit::kRetryMismatch;
}

// ---- batching ---------------------------------------------------------

/// Whether a gathered TxConfirm run must settle before admitting the
/// next confirm: a second confirm for the same session slot, or a
/// re-sent signature, must observe the first one's settlement.
constexpr bool sp_must_flush(bool duplicate_tx_id, bool duplicate_signature) {
  return duplicate_tx_id || duplicate_signature;
}

}  // namespace tp::proto
