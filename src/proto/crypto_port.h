// CryptoPort: the crypto boundary of the protocol core.
//
// SpCore decides WHAT to verify; a CryptoPort decides whether the bytes
// check out. The shell (sp::ServiceProvider) plugs in the real backend
// -- certificate chains, quote signatures, cached per-client
// AttestationVerifyContexts (sp/attestation_port.h) -- while the model
// checker plugs in a symbolic backend whose verdicts are Dolev-Yao
// facts ("this signature tag is genuine for that nonce"). Everything
// above the port is identical between the two, which is what makes the
// explored model faithful to the deployed shell.
//
// The interface is deliberately message-agnostic (byte views + a wire
// format tag, not core::EnrollComplete) so the proto layer keeps its
// position under core in the dependency order.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "proto/reject_code.h"
#include "util/bytes.h"

namespace tp::proto {

/// The evidence carried by a phase-2 enrollment message, plus the
/// challenge nonce it must bind.
struct EnrollEvidence {
  std::string_view client_id;
  std::uint8_t format = 0;  // wire value of tpm::QuoteFormat
  BytesView pubkey;         // serialized confirmation public key
  BytesView quote;          // serialized attestation quote
  BytesView certificate;    // serialized attestation-key certificate
  BytesView nonce;          // the session's challenge nonce
};

class CryptoPort {
 public:
  /// Opaque per-client confirmation-verify state (the real backend hands
  /// out its cached AttestationVerifyContext). nullptr == not enrolled.
  /// A handle stays valid until that client's enrollment is replaced or
  /// removed.
  using ConfirmHandle = const void*;

  struct ConfirmItem {
    ConfirmHandle handle = nullptr;
    BytesView statement;
    BytesView signature;
  };

  virtual ~CryptoPort() = default;

  /// Full enrollment-evidence check -- certificate chain, quote
  /// signature + nonce binding, attestation policy, key parse -- in
  /// order; returns the first failing RejectCode or kNone. On kNone the
  /// port caches whatever per-client verify state later confirmations
  /// need (the enrollment is registered).
  virtual RejectCode verify_enrollment(const EnrollEvidence& evidence) = 0;

  virtual ConfirmHandle confirm_handle(std::string_view client_id) const = 0;

  /// Wire value of the quote format behind an enrolled handle.
  virtual std::uint8_t format_of(ConfirmHandle handle) const = 0;

  /// One confirmation-signature check over `statement`.
  virtual bool verify_confirmation(ConfirmHandle handle, BytesView statement,
                                   BytesView signature) = 0;

  /// Batched form; ok_out[i] receives item i's verdict. The real backend
  /// gathers the items into one tpm::attestation_verify_batch call
  /// (multi-buffer hashing, batch-inverted ECDSA, gathered RSA screens).
  virtual void verify_confirmation_batch(std::span<const ConfirmItem> items,
                                         bool* ok_out) = 0;
};

}  // namespace tp::proto
