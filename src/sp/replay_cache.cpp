#include "sp/replay_cache.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"

namespace tp::sp {

namespace {

std::size_t table_size_for(std::size_t capacity) {
  // Power of two >= 2x capacity keeps the load factor <= 1/2, which
  // bounds linear-probe chains to a handful of slots.
  std::size_t size = 8;
  while (size < capacity * 2) size <<= 1;
  return size;
}

}  // namespace

ReplayCache::ReplayCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      mask_(table_size_for(capacity_) - 1),
      ring_(capacity_),
      slots_(mask_ + 1),
      occupied_(mask_ + 1, 0) {}

ReplayCache::Digest ReplayCache::digest_of(BytesView signature) {
  // Stack one-shot: the lookup path allocates nothing.
  const crypto::Sha256Digest full = crypto::Sha256::digest(signature);
  Digest d;
  std::memcpy(d.data(), full.data(), kDigestLen);
  return d;
}

std::size_t ReplayCache::ideal_slot(const Digest& d) const {
  // The digest is already uniform; its leading 8 bytes are the hash.
  std::uint64_t h = 0;
  std::memcpy(&h, d.data(), sizeof(h));
  return static_cast<std::size_t>(h) & mask_;
}

std::size_t ReplayCache::find_slot(const Digest& d) const {
  std::size_t i = ideal_slot(d);
  while (occupied_[i] && slots_[i] != d) i = (i + 1) & mask_;
  return i;
}

bool ReplayCache::contains(BytesView signature) const {
  return occupied_[find_slot(digest_of(signature))];
}

void ReplayCache::erase(const Digest& d) {
  std::size_t i = find_slot(d);
  if (!occupied_[i]) return;
  occupied_[i] = 0;
  // Backward-shift deletion (no tombstones): walk the probe chain after
  // the hole and move back any entry whose home slot does not lie in the
  // cyclic range (hole, entry].
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask_;
    if (!occupied_[j]) return;
    const std::size_t k = ideal_slot(slots_[j]);
    const bool reachable = (i < j) ? (k > i && k <= j) : (k > i || k <= j);
    if (!reachable) {
      slots_[i] = slots_[j];
      occupied_[i] = 1;
      occupied_[j] = 0;
      i = j;
    }
  }
}

bool ReplayCache::insert(BytesView signature) {
  return insert_digest(digest_of(signature));
}

std::vector<ReplayCache::Digest> ReplayCache::export_digests() const {
  // Ring layout: before the first eviction (count_ < capacity_) the live
  // entries are ring_[0, head_) in insertion order; once full, head_ is
  // the oldest entry and the order wraps from there.
  std::vector<Digest> out;
  out.reserve(count_);
  if (count_ < capacity_) {
    for (std::size_t i = 0; i < count_; ++i) out.push_back(ring_[i]);
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head_ + i) % capacity_]);
    }
  }
  return out;
}

bool ReplayCache::insert_digest(const Digest& d) {
  std::size_t i = find_slot(d);
  if (occupied_[i]) return false;  // already present
  if (count_ == capacity_) {
    // ring_[head_] is the oldest live entry; its eviction may backward-
    // shift the table, so re-probe for the insertion slot.
    erase(ring_[head_]);
    --count_;
    i = find_slot(d);
  }
  slots_[i] = d;
  occupied_[i] = 1;
  ring_[head_] = d;
  head_ = (head_ + 1) % capacity_;
  ++count_;
  return true;
}

}  // namespace tp::sp
