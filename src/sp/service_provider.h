// Service provider: the remote party the trusted path protects.
//
// The SP trusts two things only: the Privacy CA's key and the published
// golden measurement of the trusted-path PAL. From those it derives,
// per client, "this public key was generated inside the genuine PAL on a
// genuine TPM" (enrollment) and, per transaction, "a human at that
// machine confirmed exactly this transaction" (signature over the
// one-time challenge). Everything between -- the OS, the browser, the
// network -- is assumed hostile.
//
// Session lifecycle: the SP is a thin imperative shell over the
// protocol-session layer (src/proto). Every half-open exchange lives in
// a bounded, deadline-aware proto::SessionTable (one for enrollment
// keyed by client id, one for confirmation keyed by tx id); every
// DECISION about a message -- gate, pre-signature screen, settle,
// retransmission replay, batch flush -- is a pure function in
// proto/sp_core.h, driven here against real tables and real crypto
// (proto::CryptoPort -> sp::AttestationCryptoPort) and driven by the
// model checker (src/model) against symbolic state. Legal transitions
// come from proto::step, the same pure transition function the client
// drives, so the two sides cannot disagree about the lifecycle. Rejects
// are typed (proto::RejectCode), counted in a fixed per-code counter
// array -- no per-reject heap allocation on the hot path -- and echoed
// on the wire.
//
// Concurrency: one ServiceProvider is single-threaded by design (the
// session tables and replay cache have no interleavings to reason
// about). svc::VerifierService scales it by running one instance per
// client shard; only the metrics instruments underneath stats() are
// cross-thread safe.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "obs/metrics.h"
#include "proto/session_fsm.h"
#include "proto/session_table.h"
#include "proto/sp_core.h"
#include "sp/attestation_port.h"
#include "sp/replay_cache.h"
#include "tpm/attestation.h"
#include "tpm/privacy_ca.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace tp::store {
class DurableLog;
struct ShardState;
}  // namespace tp::store

namespace tp::sp {

struct SpConfig {
  Bytes golden_pcr17;               // published PAL measurement
  crypto::RsaPublicKey ca_public;   // Privacy CA root
  Bytes seed = bytes_of("sp-seed"); // nonce generator seed
  /// Challenge nonce length; clamped to SessionTable::kMaxNonceLen (32)
  /// so nonces stay inline in the fixed-size session slots.
  std::size_t nonce_len = 20;

  /// Attestation policies this SP accepts, one per supported platform
  /// flavour (AMD SKINIT, Intel TXT, ...) and quote format (TPM 1.2 /
  /// 2.0 -- a policy only ever matches quotes of its own format). When
  /// empty, the SP falls back to the classic TPM 1.2
  /// {PCR 17} == golden_pcr17 policy; a deployment with 2.0 clients must
  /// publish kTpm2 policies explicitly.
  std::vector<core::AttestationPolicy> accepted_policies;

  /// Policy knob for the baseline experiments: when false the SP behaves
  /// like an unprotected 2011 web service -- any well-formed TxConfirm is
  /// executed without verification (the "no defence" row of F2).
  bool require_trusted_path = true;

  /// Idempotent re-delivery handling on the frame path (handle_frame):
  /// settled sessions are held in their table -- terminal state plus the
  /// serialized response -- until their original deadline, and a
  /// byte-identical retransmission of EnrollBegin/TxSubmit/
  /// EnrollComplete/TxConfirm is answered by replaying that response
  /// instead of reprocessing, so a duplicated or retried frame can never
  /// double-accept. A retransmission whose bytes differ from the settled
  /// original gets the typed kRetryMismatch reject. The direct-call API
  /// is unaffected. Disable to restore settle-and-erase.
  bool idempotent_replies = true;

  /// Bound on the defence-in-depth signature replay cache, in entries
  /// (~33 bytes each); the oldest entry is evicted FIFO once the cache is
  /// full. Keep this well above the expected number of in-flight
  /// transactions: the one-shot session table is the primary replay
  /// defence, so eviction only narrows the backstop, but a capacity below
  /// the in-flight window weakens defence in depth. 0 is clamped to 1.
  std::size_t replay_cache_capacity = 1 << 16;

  /// Bounds on the half-open session tables (memory is constant and
  /// capacity-proportional; the least-recently-begun session is evicted
  /// under pressure). Enrollment sessions are keyed by client id -- a
  /// client re-sending EnrollBegin recycles its one slot.
  std::size_t enroll_session_capacity = 1024;
  std::size_t tx_session_capacity = 4096;
  /// Deadline for a half-open session, measured on `clock` (or the
  /// manually-advanced timeline when clock == nullptr). <= 0 disables
  /// protocol-level expiry.
  SimDuration session_ttl = SimDuration::seconds(120);
  /// Timeline the session deadlines live on. nullptr -> the SP starts at
  /// t=0 and only moves via advance_time_to() (svc::VerifierService
  /// drives it from the same steady clock its queue deadlines use).
  const SimClock* clock = nullptr;

  /// Capacity hint for the enrolled-client map (pre-reserved so the
  /// steady-state hot path does not rehash).
  std::size_t expected_clients = 1024;

  /// First transaction id is tx_id_base + 1. Single-SP deployments leave
  /// this 0 (ids start at 1, the seed's behaviour). A cluster gives every
  /// shard a disjoint base so tx ids stay globally unique and a session
  /// moved by shard handoff can never collide with an id the destination
  /// issued itself.
  std::uint64_t tx_id_base = 0;

  /// Metrics registry the SP's counters and latency histograms live in;
  /// nullptr -> the SP owns a private registry. A shared registry needs a
  /// distinct prefix per SP instance (svc uses "sp.shard<k>").
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "sp";

  /// Write-ahead journal for crash consistency (src/store). When set, the
  /// constructor first RECOVERS: it replays the log's snapshot+journal
  /// into this SP (equivalent to import_handoff of the pre-crash state),
  /// publishes sp.recovery.* metrics, and reseeds the nonce stream so a
  /// restarted shard never reuses a pre-crash nonce. Afterwards every
  /// frame that mutates durable state (enroll admitted, tx settled +
  /// cached reply, replay digest, dedup row) appends exactly one record
  /// BEFORE its reply is released -- the write-ahead contract that makes
  /// an acked operation survive process death. Requires
  /// idempotent_replies (recovery replays cached responses; one-shot
  /// mode has nothing to replay). The caller owns the log and its
  /// backend, and must not share one log between SPs.
  store::DurableLog* durable = nullptr;
};

/// Aggregated protocol outcomes (for the security experiments and the
/// serving runtime). Built purely from the registry's atomic counters --
/// no strings, no maps, no mutable caches.
struct SpStats {
  std::uint64_t enrolled = 0;
  std::uint64_t enroll_rejected = 0;
  std::uint64_t tx_accepted = 0;
  std::uint64_t tx_rejected = 0;
  /// Per-backend slices of `enrolled` / `tx_accepted`, indexed by
  /// tpm::quote_format_index (mixed-fleet observability).
  std::array<std::uint64_t, tpm::kNumQuoteFormats> enrolled_by_format{};
  std::array<std::uint64_t, tpm::kNumQuoteFormats> tx_accepted_by_format{};
  /// Rejects by typed code, indexed by proto::RejectCode.
  std::array<std::uint64_t, proto::kRejectCodeCount> rejects_by_code{};
  /// Session-table pressure events.
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_expired = 0;

  std::uint64_t enrolled_format(tpm::QuoteFormat f) const {
    return enrolled_by_format[tpm::quote_format_index(f)];
  }
  std::uint64_t tx_accepted_format(tpm::QuoteFormat f) const {
    return tx_accepted_by_format[tpm::quote_format_index(f)];
  }
  std::uint64_t rejects(proto::RejectCode code) const {
    return rejects_by_code[static_cast<std::size_t>(code)];
  }
  std::uint64_t total_rejects() const {
    std::uint64_t n = 0;
    for (const std::uint64_t v : rejects_by_code) n += v;
    return n;
  }

  void reset() { *this = SpStats{}; }
};

/// Everything one shard exports for the clients leaving it during a
/// cluster rebalance: their live protocol sessions (enrollment and
/// confirmation, deadlines intact), their cached verify contexts, their
/// TxSubmit dedup entries, and the shard's signature-replay digests.
/// Replay digests are copied wholesale rather than per-client: the cache
/// stores unattributable signature hashes, and merging a superset into
/// the destination only widens the defence-in-depth screen (a signature
/// is never legitimately presented to two shards).
struct HandoffBundle {
  struct DedupEntry {
    proto::SessionTable::Key client{};
    proto::SessionTable::Key digest{};
    std::uint64_t tx_id = 0;
  };

  std::vector<proto::SessionTable::Entry> enroll_sessions;
  std::vector<proto::SessionTable::Entry> tx_sessions;
  std::vector<std::pair<std::string, tpm::AttestationVerifyContext>> enrolled;
  std::vector<ReplayCache::Digest> replay_digests;
  std::vector<DedupEntry> dedup;
  /// Source shard's session-timeline position at export; the importer
  /// advances to it so moved deadlines keep their meaning.
  SimTime source_now{0};

  std::size_t session_count() const {
    return enroll_sessions.size() + tx_sessions.size();
  }
};

class ServiceProvider {
 public:
  explicit ServiceProvider(SpConfig config);

  /// Server loop entry: one request frame in, one response frame out.
  /// Malformed input yields a rejecting response, never a crash.
  Bytes handle_frame(BytesView frame);
  /// Same, but first advances the SP's session timeline to `now` --
  /// the serving runtime passes its request clock down so in-queue
  /// expiry and protocol-level session expiry share one timeline.
  Bytes handle_frame(BytesView frame, SimTime now);

  /// Batched server loop entry: behaviourally identical to calling
  /// handle_frame on each element in order (byte-identical responses,
  /// identical final session/replay/counter state), but runs of
  /// TxConfirm frames go through a two-stage accept pipeline -- stage
  /// one parses frames, walks the session FSM and performs every
  /// non-signature check; stage two verifies the gathered signatures in
  /// one tpm::attestation_verify_batch call (multi-buffer statement
  /// hashing, batch-inverted ECDSA walks, gathered RSA padding checks);
  /// stage three settles each session in order. A pending run is
  /// flushed early whenever batching could observe different state than
  /// the sequential path: a non-TxConfirm frame (may create or evict
  /// sessions), a duplicate tx id (same session slot), or duplicate
  /// signature bytes (the replay cache must see the earlier insert).
  std::vector<Bytes> handle_frame_batch(std::span<const BytesView> frames);
  std::vector<Bytes> handle_frame_batch(std::span<const BytesView> frames,
                                        SimTime now);

  // Direct-call API (same logic; used by unit tests and benches).
  core::EnrollChallenge begin_enrollment(const core::EnrollBegin& msg);
  core::EnrollResult complete_enrollment(const core::EnrollComplete& msg);
  core::TxChallenge begin_transaction(const core::TxSubmit& msg);
  core::TxResult complete_transaction(const core::TxConfirm& msg);
  /// Message-level counterpart of handle_frame_batch: identical results
  /// and final state as calling complete_transaction on each element in
  /// order, with runs of confirms carrying pairwise-distinct tx ids and
  /// signatures sharing one gathered signature-verification pass (a
  /// duplicate splits the run, exactly like the frame-level flush).
  std::vector<core::TxResult> complete_transaction_batch(
      std::span<const core::TxConfirm> msgs);

  bool is_enrolled(const std::string& client_id) const {
    return crypto_.is_enrolled(client_id);
  }

  /// Live size of the bounded signature replay cache (for tests and
  /// capacity monitoring).
  std::size_t replay_cache_size() const { return seen_signatures_.size(); }
  /// Heap bytes pinned by the replay cache — constant over the SP's
  /// lifetime regardless of traffic.
  std::size_t replay_cache_memory_bytes() const {
    return seen_signatures_.memory_bytes();
  }

  /// Live half-open sessions (enrollment + confirmation).
  std::size_t session_table_occupancy() const {
    return enroll_sessions_.size() + tx_sessions_.size();
  }
  /// Heap bytes pinned by both session tables — constant over the SP's
  /// lifetime regardless of traffic (the F7 boundedness assertion).
  std::size_t session_table_memory_bytes() const {
    return enroll_sessions_.memory_bytes() + tx_sessions_.memory_bytes();
  }
  std::uint64_t session_evictions() const {
    return enroll_sessions_.evictions() + tx_sessions_.evictions();
  }
  std::uint64_t session_expirations() const {
    return enroll_sessions_.expirations() + tx_sessions_.expirations();
  }
  /// Settled sessions whose idempotent-replay hold window closed.
  std::uint64_t session_holds_released() const {
    return enroll_sessions_.holds_released() + tx_sessions_.holds_released();
  }

  /// Heap bytes pinned by the TxSubmit dedup map -- constant over the
  /// SP's lifetime (sized from tx_session_capacity at construction).
  std::size_t submit_dedup_memory_bytes() const {
    return submit_dedup_.capacity() * sizeof(SubmitDedup);
  }
  /// Responses replayed from cache for retransmitted begins (challenges)
  /// and completes (results).
  std::uint64_t replayed_challenges() const {
    return c_replayed_challenge_->value();
  }
  std::uint64_t replayed_results() const {
    return c_replayed_result_->value();
  }

  /// The SP's position on the session timeline.
  SimTime session_now() const {
    return config_.clock != nullptr ? config_.clock->now() : manual_now_;
  }
  /// Moves the manual session timeline forward (monotonic; ignored when
  /// the SP was configured with an external SimClock).
  void advance_time_to(SimTime now) {
    if (config_.clock == nullptr && now > manual_now_) manual_now_ = now;
  }

  /// Counter snapshot, by value, built from atomic counters only — safe
  /// while a worker thread drives this SP.
  SpStats stats() const { return stats_snapshot(); }
  SpStats stats_snapshot() const;

  /// Zeroes this SP's counters/histograms so benches can take clean
  /// per-phase measurements.
  void reset_stats();

  /// The registry backing stats(); also carries the enroll/tx latency
  /// histograms ("<prefix>.enroll_ns", "<prefix>.tx_ns") and the
  /// session-table gauges ("<prefix>.enroll_sessions", "<prefix>.
  /// tx_sessions") plus eviction/expiry counters.
  obs::Registry& metrics() { return *registry_; }

  /// Clients with a cached verify context (completed enrollments still
  /// resident on this SP).
  std::size_t enrolled_count() const { return crypto_.enrolled_count(); }

  /// Heap bytes pinned by this SP's bounded state (session tables,
  /// replay cache, submit-dedup map) -- constant over its lifetime; the
  /// per-shard flat-memory gauge the cluster publishes.
  std::size_t memory_bytes() const {
    return session_table_memory_bytes() + replay_cache_memory_bytes() +
           submit_dedup_memory_bytes();
  }

  /// Removes and returns every piece of per-client state whose session
  /// key satisfies `moves` (keys are proto::SessionTable::client_key of
  /// the client id; confirmation sessions and dedup entries are selected
  /// by their stored client tag, which is that same key). Replay digests
  /// are copied, not removed -- see HandoffBundle. The caller feeds the
  /// bundle to the new owner's import_handoff.
  HandoffBundle extract_for_handoff(
      const std::function<bool(const proto::SessionTable::Key&)>& moves);

  /// The durable-state vocabulary as a value: sessions, enrolled keys
  /// (serialized), replay digests, dedup rows, counters. This is what
  /// compaction snapshots and what recovery rebuilds -- the same set
  /// extract_for_handoff moves, in the store layer's serializable form.
  store::ShardState export_state() const;

  /// Compacts the journal into a snapshot of the current state (no-op
  /// when the SP is not durable). The cluster checkpoints every durable
  /// shard after a rebalance so extracted state cannot resurrect from a
  /// stale journal, and on clean shutdown so restart is snapshot-fast.
  void checkpoint();

  /// Merges a bundle exported by another shard's extract_for_handoff:
  /// advances the session timeline to the source's, merge-restores both
  /// session tables in ascending-deadline order (preserving the
  /// LRU == deadline invariant), adopts the verify contexts, replays the
  /// replay-cache digests and re-seats the TxSubmit dedup entries.
  /// Exactly-once semantics survive the move: a settled session's cached
  /// response, its dedup entry and its replay digests all arrive intact.
  void import_handoff(HandoffBundle&& bundle);

 private:
  /// One entry of the direct-mapped TxSubmit dedup map: remembers which
  /// tx_id a (client, request-digest) pair was assigned, so a
  /// retransmitted TxSubmit -- which cannot name its tx_id -- finds the
  /// session it already opened instead of opening a second one. Fixed
  /// size, overwrite on collision: an evicted entry only costs the
  /// retransmit a fresh (harmless) session.
  struct SubmitDedup {
    proto::SessionTable::Key client{};
    proto::SessionTable::Key digest{};
    std::uint64_t tx_id = 0;
    std::uint8_t used = 0;
  };

  /// Two-stage TxConfirm pipeline shared by complete_transaction and
  /// handle_frame_batch. prepare_confirm runs everything up to (not
  /// including) the signature check -- session lookup, the SpCore gate
  /// and screen (client binding, enrollment, verdict, replay) -- and
  /// never holds a session pointer past its return (the open-addressed
  /// table moves slots on erase). settle_confirm re-finds the session by
  /// key, asks proto::sp_settle_complete what to apply, and executes its
  /// actions against the FSM, the replay cache and the counters. Between
  /// an item's prepare and settle only other confirms with distinct tx
  /// ids and signatures may run.
  struct PreparedConfirm;
  void prepare_confirm(const core::TxConfirm& msg, PreparedConfirm& prep);
  core::TxResult settle_confirm(PreparedConfirm& prep);

  /// handle_frame minus the compaction check (the batch path calls this
  /// per frame and compacts once per batch).
  Bytes process_frame(BytesView frame);

  /// Rebuilds in-memory state from a recovered ShardState (constructor
  /// path when config_.durable is set).
  void restore_state(store::ShardState&& state);

  // Write-ahead appends, one per durable frame, called after the frame's
  // reply is cached and before it is released. All no-ops when
  // config_.durable == nullptr. They may throw store::CrashInjected
  // (fault-injecting backends), which the serving layer treats as the
  // process dying mid-frame.
  void journal_enroll_begin(const proto::SessionTable::Key& key);
  void journal_enroll_settle(const proto::SessionTable::Key& key,
                             const std::string& client_id);
  void journal_tx_begin(std::uint64_t tx_id, const SubmitDedup& slot);
  void journal_tx_settle(std::uint64_t tx_id, const core::TxConfirm& msg,
                         bool accepted);
  /// Compacts when the journal crossed its configured size threshold.
  void maybe_compact();

  Bytes fresh_nonce();
  obs::Counter& reject_counter(proto::RejectCode code) {
    return *c_reject_[static_cast<std::size_t>(code)];
  }
  core::EnrollResult reject_enrollment(proto::RejectCode code);
  core::TxResult reject_tx(std::uint64_t tx_id, proto::RejectCode code);
  /// Mirrors session-table occupancy and pressure counters into the
  /// registry (gauges + monotonic counters).
  void publish_session_metrics();

  std::size_t submit_dedup_index(const proto::SessionTable::Key& client,
                                 const proto::SessionTable::Key& digest) const;
  /// Packs one session slot's cached-response facts into the POD view
  /// the SpCore retransmission screens consume. See handle_frame.
  static proto::SpReplayView replay_view(
      const proto::SessionTable::Session* session,
      const proto::SessionTable::Key& digest);

  SpConfig config_;
  crypto::HmacDrbg drbg_;
  /// Half-open protocol sessions, bounded and deadline-aware; the
  /// adapters below drive them through proto::step.
  proto::SessionTable enroll_sessions_;  // keyed by client id
  proto::SessionTable tx_sessions_;      // keyed by tx id
  /// The crypto boundary: enrollment-evidence checks and confirmation
  /// signature verification, with the per-client cached verify contexts
  /// (Montgomery / window-table precompute) living behind it. The shell
  /// only ever asks it yes/no questions the SpCore decisions demand.
  AttestationCryptoPort crypto_;
  ReplayCache seen_signatures_;  // bounded defence-in-depth replay cache
  /// Direct-mapped (client, digest) -> tx_id map for TxSubmit dedup;
  /// power-of-two sized from tx_session_capacity, constant memory.
  std::vector<SubmitDedup> submit_dedup_;
  std::size_t submit_dedup_mask_ = 0;
  std::uint64_t next_tx_id_ = 1;
  SimTime manual_now_{0};  // session timeline when config_.clock == nullptr

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  obs::Counter* c_enrolled_;
  obs::Counter* c_enroll_rejected_;
  obs::Counter* c_tx_accepted_;
  obs::Counter* c_tx_rejected_;
  /// Per-backend slices ("<prefix>.enrolled.tpm12", ".enrolled.tpm2",
  /// ".tx_accepted.tpm12", ".tx_accepted.tpm2").
  std::array<obs::Counter*, tpm::kNumQuoteFormats> c_enrolled_fmt_{};
  std::array<obs::Counter*, tpm::kNumQuoteFormats> c_tx_accepted_fmt_{};
  /// Fixed per-RejectCode counters, resolved once at construction: the
  /// reject hot path is two relaxed atomic increments, no allocation.
  std::array<obs::Counter*, proto::kRejectCodeCount> c_reject_{};
  obs::Counter* c_sessions_evicted_;
  obs::Counter* c_sessions_expired_;
  obs::Counter* c_replayed_challenge_;
  obs::Counter* c_replayed_result_;
  /// Recovery observability, created only for durable SPs
  /// ("<prefix>.recovery.replayed_records", ".recovery.truncated_tail",
  /// ".recovery.snapshot_age").
  obs::Counter* c_recovery_replayed_ = nullptr;
  obs::Counter* c_recovery_truncated_ = nullptr;
  obs::Gauge* g_recovery_snapshot_age_ = nullptr;
  obs::Gauge* g_enroll_sessions_;
  obs::Gauge* g_tx_sessions_;
  /// Table counts already published to the registry counters (lets
  /// reset_stats() zero the registry without double-counting later).
  std::uint64_t published_evictions_ = 0;
  std::uint64_t published_expirations_ = 0;
  obs::Histogram* h_enroll_;
  obs::Histogram* h_tx_;
};

}  // namespace tp::sp
