// Service provider: the remote party the trusted path protects.
//
// The SP trusts two things only: the Privacy CA's key and the published
// golden measurement of the trusted-path PAL. From those it derives,
// per client, "this public key was generated inside the genuine PAL on a
// genuine TPM" (enrollment) and, per transaction, "a human at that
// machine confirmed exactly this transaction" (signature over the
// one-time challenge). Everything between -- the OS, the browser, the
// network -- is assumed hostile.
//
// Concurrency: one ServiceProvider is single-threaded by design (the
// one-shot challenge maps and replay cache have no interleavings to
// reason about). svc::VerifierService scales it by running one instance
// per client shard; only the metrics counters underneath stats() are
// cross-thread safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "obs/metrics.h"
#include "sp/replay_cache.h"
#include "tpm/privacy_ca.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::sp {

struct SpConfig {
  Bytes golden_pcr17;               // published PAL measurement
  crypto::RsaPublicKey ca_public;   // Privacy CA root
  Bytes seed = bytes_of("sp-seed"); // nonce generator seed
  std::size_t nonce_len = 20;

  /// Attestation policies this SP accepts, one per supported platform
  /// flavour (AMD SKINIT, Intel TXT, ...). When empty, the SP falls back
  /// to the classic {PCR 17} == golden_pcr17 policy.
  std::vector<core::AttestationPolicy> accepted_policies;

  /// Policy knob for the baseline experiments: when false the SP behaves
  /// like an unprotected 2011 web service -- any well-formed TxConfirm is
  /// executed without verification (the "no defence" row of F2).
  bool require_trusted_path = true;

  /// Bound on the defence-in-depth signature replay cache, in entries
  /// (~33 bytes each); the oldest entry is evicted FIFO once the cache is
  /// full. Keep this well above the expected number of in-flight
  /// transactions: the one-shot challenge map is the primary replay
  /// defence, so eviction only narrows the backstop, but a capacity below
  /// the in-flight window weakens defence in depth. 0 is clamped to 1.
  std::size_t replay_cache_capacity = 1 << 16;

  /// Capacity hints for the client/transaction hash maps (pre-reserved
  /// so the steady-state hot path does not rehash).
  std::size_t expected_clients = 1024;
  std::size_t expected_inflight_tx = 4096;

  /// Metrics registry the SP's counters and latency histograms live in;
  /// nullptr -> the SP owns a private registry. A shared registry needs a
  /// distinct prefix per SP instance (svc uses "sp.shard<k>").
  obs::Registry* metrics = nullptr;
  std::string metrics_prefix = "sp";
};

/// Why a message was rejected (aggregated for the security experiments).
/// Snapshot of the registry-backed counters; the counters themselves are
/// overflow-safe (they saturate instead of wrapping).
struct SpStats {
  std::uint64_t enrolled = 0;
  std::uint64_t enroll_rejected = 0;
  std::uint64_t tx_accepted = 0;
  std::uint64_t tx_rejected = 0;
  std::map<std::string, std::uint64_t> reject_reasons;

  void reset() { *this = SpStats{}; }
};

class ServiceProvider {
 public:
  explicit ServiceProvider(SpConfig config);

  /// Server loop entry: one request frame in, one response frame out.
  /// Malformed input yields a rejecting response, never a crash.
  Bytes handle_frame(BytesView frame);

  // Direct-call API (same logic; used by unit tests and benches).
  core::EnrollChallenge begin_enrollment(const core::EnrollBegin& msg);
  core::EnrollResult complete_enrollment(const core::EnrollComplete& msg);
  core::TxChallenge begin_transaction(const core::TxSubmit& msg);
  core::TxResult complete_transaction(const core::TxConfirm& msg);

  bool is_enrolled(const std::string& client_id) const {
    return enrolled_.count(client_id) != 0;
  }

  /// Live size of the bounded signature replay cache (for tests and
  /// capacity monitoring).
  std::size_t replay_cache_size() const { return seen_signatures_.size(); }
  /// Heap bytes pinned by the replay cache — constant over the SP's
  /// lifetime regardless of traffic.
  std::size_t replay_cache_memory_bytes() const {
    return seen_signatures_.memory_bytes();
  }

  /// Counter snapshot, cached in this object. Call from one thread at a
  /// time (the usual single-threaded use); under the sharded service use
  /// stats_snapshot() or VerifierService::stats() instead.
  const SpStats& stats() const;

  /// By-value snapshot, safe while a worker thread drives this SP.
  SpStats stats_snapshot() const;

  /// Zeroes this SP's counters/histograms so benches can take clean
  /// per-phase measurements.
  void reset_stats();

  /// The registry backing stats(); also carries the enroll/tx latency
  /// histograms ("<prefix>.enroll_ns", "<prefix>.tx_ns").
  obs::Registry& metrics() { return *registry_; }

 private:
  struct PendingTx {
    std::string client_id;
    Bytes digest;
    Bytes nonce;
  };

  Bytes fresh_nonce();
  core::EnrollResult reject_enrollment(const std::string& reason);
  core::TxResult reject_tx(std::uint64_t tx_id, const std::string& reason);

  SpConfig config_;
  crypto::HmacDrbg drbg_;
  std::unordered_map<std::string, Bytes> pending_enroll_;  // client -> nonce
  /// client -> cached verify context (holds the enrolled public key plus
  /// the precomputed Montgomery context for its modulus, built once at
  /// enrollment so the per-transaction verify skips that setup).
  std::unordered_map<std::string, crypto::RsaVerifyContext> enrolled_;
  std::unordered_map<std::uint64_t, PendingTx> pending_tx_;
  ReplayCache seen_signatures_;  // bounded defence-in-depth replay cache
  std::uint64_t next_tx_id_ = 1;

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  obs::Counter* c_enrolled_;
  obs::Counter* c_enroll_rejected_;
  obs::Counter* c_tx_accepted_;
  obs::Counter* c_tx_rejected_;
  obs::Histogram* h_enroll_;
  obs::Histogram* h_tx_;
  mutable SpStats stats_;  // refreshed by stats()
};

}  // namespace tp::sp
