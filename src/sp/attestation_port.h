// The real CryptoPort backend: attestation-grade crypto with cached
// per-client verify contexts.
//
// Owns the client -> tpm::AttestationVerifyContext map the SP used to
// hold inline (the enrolled public key plus the per-scheme precompute --
// Montgomery context for RSA moduli, window tables for P-256 points --
// built once at enrollment so the per-transaction verify skips that
// setup). verify_enrollment runs the four evidence checks the seed ran,
// per quote format; the confirmation paths feed the cached contexts to
// tpm::attestation_verify / attestation_verify_batch.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/trusted_path_pal.h"
#include "crypto/rsa.h"
#include "proto/crypto_port.h"
#include "tpm/attestation.h"

namespace tp::sp {

class AttestationCryptoPort final : public proto::CryptoPort {
 public:
  /// `ca_public` / `golden_pcr17` / `accepted_policies` mirror the
  /// SpConfig fields of the same names (empty policies fall back to the
  /// classic TPM 1.2 {PCR 17} == golden policy at verify time).
  AttestationCryptoPort(crypto::RsaPublicKey ca_public, Bytes golden_pcr17,
                       std::vector<core::AttestationPolicy> accepted_policies,
                       std::size_t expected_clients);

  proto::RejectCode verify_enrollment(
      const proto::EnrollEvidence& evidence) override;
  ConfirmHandle confirm_handle(std::string_view client_id) const override;
  std::uint8_t format_of(ConfirmHandle handle) const override;
  bool verify_confirmation(ConfirmHandle handle, BytesView statement,
                           BytesView signature) override;
  void verify_confirmation_batch(std::span<const ConfirmItem> items,
                                 bool* ok_out) override;

  // ---- backend-specific surface (shell bookkeeping & handoff) ----
  bool is_enrolled(const std::string& client_id) const {
    return contexts_.count(client_id) != 0;
  }
  std::size_t enrolled_count() const { return contexts_.size(); }
  /// The context map itself, for extract_for_handoff/import_handoff (a
  /// rebalance moves contexts by node extraction so the precompute is
  /// never redone).
  std::unordered_map<std::string, tpm::AttestationVerifyContext>& contexts() {
    return contexts_;
  }
  const std::unordered_map<std::string, tpm::AttestationVerifyContext>&
  contexts() const {
    return contexts_;
  }

 private:
  crypto::RsaPublicKey ca_public_;
  Bytes golden_pcr17_;
  std::vector<core::AttestationPolicy> accepted_policies_;
  std::unordered_map<std::string, tpm::AttestationVerifyContext> contexts_;
};

}  // namespace tp::sp
