#include "sp/fleet.h"

#include "core/trusted_path_pal.h"

namespace tp::sp {

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  ca_ = std::make_unique<tpm::PrivacyCa>(
      concat(config_.seed, bytes_of(":ca")), config_.tpm_key_bits);

  sp_config_.golden_pcr17 = core::golden_pcr17();
  sp_config_.ca_public = ca_->public_key();
  sp_config_.seed = concat(config_.seed, bytes_of(":sp"));
  sp_config_.accepted_policies = {
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit),
      core::attestation_policy(drtm::DrtmTechnology::kIntelTxt),
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit, {},
                               tpm::QuoteFormat::kTpm2),
      core::attestation_policy(drtm::DrtmTechnology::kIntelTxt, {},
                               tpm::QuoteFormat::kTpm2),
  };
  sp_config_.idempotent_replies = config_.idempotent_replies;
  sp_ = std::make_unique<ServiceProvider>(sp_config_);

  for (std::size_t i = 0; i < config_.num_clients; ++i) {
    Member member;
    member.id = "fleet-client-" + std::to_string(i);

    drtm::PlatformConfig pc;
    pc.platform_id = member.id;
    pc.seed = concat(config_.seed, bytes_of(":platform:" + member.id));
    pc.tpm_key_bits = config_.tpm_key_bits;
    if (!config_.chip_mix.empty()) {
      pc.chip_name = config_.chip_mix[i % config_.chip_mix.size()];
    }
    if (!config_.technology_mix.empty()) {
      pc.technology =
          config_.technology_mix[i % config_.technology_mix.size()];
    }
    if (!config_.backend_mix.empty()) {
      pc.backend = config_.backend_mix[i % config_.backend_mix.size()];
    }
    pc.tpm_faults = config_.tpm_faults;
    member.platform = std::make_unique<drtm::Platform>(pc);

    // Each member's link faults independently: fork the plan's seed by
    // member index so one scripted plan covers the whole fleet without
    // lockstep faults.
    net::NetParams member_net = config_.net;
    member_net.fault.seed = config_.net.fault.seed + 0x9e3779b97f4a7c15ull * i;
    member.link = std::make_unique<net::Link>(
        member_net, member.platform->clock(), SimRng(0xf1ee7 + i));
    member.link->b().set_service(
        [this](BytesView frame) { return sp_->handle_frame(frame); });

    // Per-backend credential: RSA AIK certificate or ECC AK certificate,
    // passed serialized (the client treats it as opaque).
    Bytes credential;
    if (member.platform->backend() == tpm::QuoteFormat::kTpm2) {
      credential =
          ca_->certify_key(
                 member.id,
                 tpm::AttestationKey::of(member.platform->tpm2().ak_public()))
              .serialize();
    } else {
      credential =
          ca_->certify(member.id, member.platform->tpm().aik_public())
              .serialize();
    }
    core::ClientConfig cc;
    cc.client_id = member.id;
    cc.key_bits = config_.client_key_bits;
    cc.retry = config_.client_retry;
    member.client = std::make_unique<core::TrustedPathClient>(
        *member.platform, member.link->a(), std::move(credential), cc);

    members_.push_back(std::move(member));
  }
}

void Fleet::route_frames_to(FrameHandler handler) {
  for (auto& member : members_) {
    member.link->b().set_service(
        [handler, id = member.id](BytesView frame) {
          return handler(id, frame);
        });
  }
}

std::size_t Fleet::enroll_all() {
  std::size_t ok = 0;
  for (auto& member : members_) {
    if (member.client->enroll().ok()) ++ok;
  }
  return ok;
}

}  // namespace tp::sp
