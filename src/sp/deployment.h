// Deployment: one client machine + Privacy CA + service provider wired
// over a simulated link.
//
// This is the five-line entry point a downstream user starts from (see
// examples/quickstart.cpp): it performs the out-of-band setup the paper
// assumes -- the CA certifies the platform's AIK, the SP is provisioned
// with the CA root and the golden PAL measurement -- and exposes the
// pieces for direct use.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/client.h"
#include "drtm/platform.h"
#include "net/channel.h"
#include "net/secure_channel.h"
#include "sp/service_provider.h"
#include "tpm/privacy_ca.h"

namespace tp::sp {

struct DeploymentConfig {
  std::string client_id = "client-0";
  std::string chip_name;                 // empty -> default (Infineon)
  Bytes seed = bytes_of("deployment");
  std::size_t tpm_key_bits = 1024;       // AIK / CA key size
  std::uint32_t client_key_bits = 1024;  // confirmation key size
                                         // (1.2 only; 2.0 is P-256)
  /// TPM generation of the client machine. kTpm2 swaps the RSA AIK for
  /// an ECC AK, SHA-1 PCRs for SHA-256, and the RSA confirmation key for
  /// P-256 -- the SP accepts both either way (it is provisioned with
  /// policies for every flavour x format combination).
  tpm::QuoteFormat backend = tpm::QuoteFormat::kTpm12;
  /// Link parameters; net.fault is the deterministic fault plan the
  /// chaos experiments script (inert by default).
  net::NetParams net;
  drtm::DrtmCosts drtm_costs;
  drtm::DrtmTechnology technology = drtm::DrtmTechnology::kAmdSkinit;
  drtm::TxtArtifacts txt;                // used only for kIntelTxt

  /// Client-side retransmission policy (default: one attempt, no retry).
  core::RetryPolicy client_retry;
  /// Forwarded to SpConfig::idempotent_replies.
  bool idempotent_replies = true;
  /// Transient-fault model for the client machine's TPM.
  tpm::TpmFaultProfile tpm_faults;
  /// Shared registry for the SP's and client's counters (nullptr -> the
  /// SP owns a private registry and the client goes uncounted).
  obs::Registry* metrics = nullptr;

  /// Wrap the client<->SP link in the authenticated-encryption channel
  /// (the deployment's TLS stand-in). Off by default: the trusted path's
  /// guarantees are end-to-end and most tests exercise them directly.
  bool secure_transport = false;

  /// Forwarded to SpConfig::replay_cache_capacity (tests shrink it to
  /// exercise eviction).
  std::size_t replay_cache_capacity = 1 << 16;

  /// Forwarded to the SP's bounded session tables (tests shrink them to
  /// exercise eviction; see SpConfig for semantics). The deployment also
  /// points the SP's session clock at the platform's SimClock, so
  /// protocol deadlines move with simulated time.
  std::size_t enroll_session_capacity = 1024;
  std::size_t tx_session_capacity = 4096;
  SimDuration session_ttl = SimDuration::seconds(120);
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);

  drtm::Platform& platform() { return *platform_; }
  SimClock& clock() { return platform_->clock(); }
  ServiceProvider& sp() { return *sp_; }
  tpm::PrivacyCa& ca() { return *ca_; }
  core::TrustedPathClient& client() { return *client_; }
  /// The client's endpoint (the SP side answers via its service handler).
  net::Endpoint& client_endpoint() { return link_->a(); }
  net::Link& link() { return *link_; }
  const DeploymentConfig& config() const { return config_; }

  /// Set iff secure_transport is on.
  net::SecureServerTransport* secure_server() {
    return secure_server_.get();
  }

  /// Reroutes the client's frames from the built-in single-threaded SP to
  /// `handler` -- a svc::VerifierService or cluster::VerifierCluster
  /// front end (mirrors Fleet::route_frames_to). Replaces the link's
  /// server-side service wholesale, so it composes with the plaintext
  /// transport only; with secure_transport on the TLS stand-in keeps
  /// terminating frames at the built-in SP.
  using FrameHandler = std::function<Bytes(const std::string&, BytesView)>;
  void route_frames_to(FrameHandler handler);

 private:
  DeploymentConfig config_;
  std::unique_ptr<drtm::Platform> platform_;
  std::unique_ptr<tpm::PrivacyCa> ca_;
  std::unique_ptr<ServiceProvider> sp_;
  std::unique_ptr<net::Link> link_;
  std::unique_ptr<net::SecureServerTransport> secure_server_;
  std::unique_ptr<net::SecureClientTransport> secure_client_;
  std::unique_ptr<core::TrustedPathClient> client_;
};

}  // namespace tp::sp
