#include "sp/deployment.h"

#include <memory>

#include "core/trusted_path_pal.h"

namespace tp::sp {

Deployment::Deployment(DeploymentConfig config)
    : config_(std::move(config)) {
  drtm::PlatformConfig pc;
  pc.platform_id = config_.client_id;
  pc.chip_name = config_.chip_name;
  pc.seed = concat(config_.seed, bytes_of(":platform"));
  pc.tpm_key_bits = config_.tpm_key_bits;
  pc.drtm_costs = config_.drtm_costs;
  pc.technology = config_.technology;
  pc.txt = config_.txt;
  pc.tpm_faults = config_.tpm_faults;
  pc.backend = config_.backend;
  platform_ = std::make_unique<drtm::Platform>(pc);

  ca_ = std::make_unique<tpm::PrivacyCa>(concat(config_.seed, bytes_of(":ca")),
                                         config_.tpm_key_bits);

  SpConfig sp_config;
  sp_config.golden_pcr17 = core::golden_pcr17();
  sp_config.ca_public = ca_->public_key();
  sp_config.seed = concat(config_.seed, bytes_of(":sp"));
  sp_config.replay_cache_capacity = config_.replay_cache_capacity;
  sp_config.enroll_session_capacity = config_.enroll_session_capacity;
  sp_config.tx_session_capacity = config_.tx_session_capacity;
  sp_config.session_ttl = config_.session_ttl;
  sp_config.idempotent_replies = config_.idempotent_replies;
  sp_config.metrics = config_.metrics;
  // Session deadlines live on the same virtual clock the platform and
  // link charge their costs to.
  sp_config.clock = &platform_->clock();
  // The SP supports both platform flavours and both quote formats out of
  // the box (a mixed fleet talks to one SP).
  sp_config.accepted_policies = {
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit),
      core::attestation_policy(drtm::DrtmTechnology::kIntelTxt, config_.txt),
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit, {},
                               tpm::QuoteFormat::kTpm2),
      core::attestation_policy(drtm::DrtmTechnology::kIntelTxt, config_.txt,
                               tpm::QuoteFormat::kTpm2),
  };
  sp_ = std::make_unique<ServiceProvider>(sp_config);

  link_ = std::make_unique<net::Link>(
      config_.net, platform_->clock(),
      SimRng(0x6e6574 ^ static_cast<std::uint64_t>(config_.seed.size())));
  if (config_.secure_transport) {
    // TLS stand-in: the SP's long-term key plays the server certificate.
    // The generator is consumed synchronously, so one stack DRBG (whose
    // HMAC context caches the key midstates across draws) suffices.
    crypto::HmacDrbg server_drbg(
        concat(config_.seed, bytes_of(":tls-server")));
    const crypto::RsaPrivateKey server_key = crypto::rsa_generate(
        1024, [&](std::size_t n) { return server_drbg.generate(n); });
    secure_server_ = std::make_unique<net::SecureServerTransport>(
        server_key,
        [this](BytesView frame) { return sp_->handle_frame(frame); });
    link_->b().set_service(
        [this](BytesView frame) { return secure_server_->handle(frame); });
    secure_client_ = std::make_unique<net::SecureClientTransport>(
        link_->a(), server_key.public_key(),
        concat(config_.seed, bytes_of(":tls-client")));
  } else {
    link_->b().set_service(
        [this](BytesView frame) { return sp_->handle_frame(frame); });
  }

  // Out-of-band credential issuance, per backend: the CA certifies the
  // RSA AIK (1.2) or the ECC AK (2.0); the client carries the serialized
  // certificate into EnrollComplete verbatim.
  Bytes credential;
  if (config_.backend == tpm::QuoteFormat::kTpm2) {
    credential =
        ca_->certify_key(config_.client_id,
                         tpm::AttestationKey::of(platform_->tpm2().ak_public()))
            .serialize();
  } else {
    credential =
        ca_->certify(config_.client_id, platform_->tpm().aik_public())
            .serialize();
  }
  core::ClientConfig cc;
  cc.client_id = config_.client_id;
  cc.key_bits = config_.client_key_bits;
  cc.retry = config_.client_retry;
  cc.metrics = config_.metrics;
  client_ = std::make_unique<core::TrustedPathClient>(
      *platform_, link_->a(), std::move(credential), cc);
  if (secure_client_) client_->set_transport(secure_client_.get());
}

void Deployment::route_frames_to(FrameHandler handler) {
  link_->b().set_service(
      [handler = std::move(handler), id = config_.client_id](BytesView frame) {
        return handler(id, frame);
      });
}

}  // namespace tp::sp
