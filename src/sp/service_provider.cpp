#include "sp/service_provider.h"

#include "core/trusted_path_pal.h"
#include "tpm/quote.h"

namespace tp::sp {

using namespace core;  // message types

ServiceProvider::ServiceProvider(SpConfig config)
    : config_(std::move(config)),
      drbg_(concat(bytes_of("service-provider:"), config_.seed)),
      seen_signatures_(config_.replay_cache_capacity) {
  enrolled_.reserve(config_.expected_clients);
  pending_enroll_.reserve(config_.expected_clients);
  pending_tx_.reserve(config_.expected_inflight_tx);
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  const std::string& p = config_.metrics_prefix;
  c_enrolled_ = &registry_->counter(p + ".enrolled");
  c_enroll_rejected_ = &registry_->counter(p + ".enroll_rejected");
  c_tx_accepted_ = &registry_->counter(p + ".tx_accepted");
  c_tx_rejected_ = &registry_->counter(p + ".tx_rejected");
  h_enroll_ = &registry_->histogram(p + ".enroll_ns");
  h_tx_ = &registry_->histogram(p + ".tx_ns");
}

Bytes ServiceProvider::fresh_nonce() {
  return drbg_.generate(config_.nonce_len);
}

SpStats ServiceProvider::stats_snapshot() const {
  SpStats snap;
  snap.enrolled = c_enrolled_->value();
  snap.enroll_rejected = c_enroll_rejected_->value();
  snap.tx_accepted = c_tx_accepted_->value();
  snap.tx_rejected = c_tx_rejected_->value();
  const std::string reject_prefix = config_.metrics_prefix + ".reject.";
  for (const auto& [name, value] : registry_->counters()) {
    // Zero-valued entries (possible after reset_stats) are skipped so the
    // map keeps its historical "reasons that actually occurred" meaning.
    if (value > 0 && name.size() > reject_prefix.size() &&
        name.compare(0, reject_prefix.size(), reject_prefix) == 0) {
      snap.reject_reasons[name.substr(reject_prefix.size())] = value;
    }
  }
  return snap;
}

const SpStats& ServiceProvider::stats() const {
  stats_ = stats_snapshot();
  return stats_;
}

void ServiceProvider::reset_stats() {
  registry_->reset(config_.metrics_prefix + ".");
}

EnrollResult ServiceProvider::reject_enrollment(const std::string& reason) {
  c_enroll_rejected_->inc();
  registry_->counter(config_.metrics_prefix + ".reject." + reason).inc();
  return EnrollResult{false, reason};
}

TxResult ServiceProvider::reject_tx(std::uint64_t tx_id,
                                    const std::string& reason) {
  c_tx_rejected_->inc();
  registry_->counter(config_.metrics_prefix + ".reject." + reason).inc();
  return TxResult{tx_id, false, reason};
}

EnrollChallenge ServiceProvider::begin_enrollment(const EnrollBegin& msg) {
  EnrollChallenge challenge{fresh_nonce()};
  pending_enroll_[msg.client_id] = challenge.nonce;
  return challenge;
}

EnrollResult ServiceProvider::complete_enrollment(const EnrollComplete& msg) {
  obs::ScopedTimer timer(*h_enroll_);
  const auto pending = pending_enroll_.find(msg.client_id);
  if (pending == pending_enroll_.end()) {
    return reject_enrollment("no pending enrollment challenge");
  }
  const Bytes nonce = pending->second;
  pending_enroll_.erase(pending);  // challenges are one-shot

  // 1. AIK certificate chains to the Privacy CA.
  auto cert = tpm::AikCertificate::deserialize(msg.aik_certificate);
  if (!cert.ok()) return reject_enrollment("malformed AIK certificate");
  if (!tpm::PrivacyCa::verify(config_.ca_public, cert.value()).ok()) {
    return reject_enrollment("AIK certificate not signed by trusted CA");
  }

  // 2. Quote: valid AIK signature over PCR 17 and OUR nonce binding.
  auto quote = tpm::QuoteResult::deserialize(msg.quote);
  if (!quote.ok()) return reject_enrollment("malformed quote");
  const Bytes binding =
      enrollment_quote_binding(msg.confirmation_pubkey, nonce);
  if (!tpm::verify_quote(cert.value().aik_public, quote.value(), binding)
           .ok()) {
    return reject_enrollment("quote verification failed");
  }

  // 3. The quoted PCRs must match one accepted attestation policy: the
  // key was generated inside the GENUINE trusted-path PAL on a supported
  // platform flavour.
  std::vector<core::AttestationPolicy> policies = config_.accepted_policies;
  if (policies.empty()) {
    policies.push_back(core::AttestationPolicy{
        tpm::PcrSelection::of({17}), {config_.golden_pcr17}, "default"});
  }
  bool policy_match = false;
  for (const auto& policy : policies) {
    if (quote.value().selection != policy.selection ||
        quote.value().pcr_values.size() != policy.values.size()) {
      continue;
    }
    bool all_equal = true;
    for (std::size_t i = 0; i < policy.values.size(); ++i) {
      if (!ct_equal(quote.value().pcr_values[i], policy.values[i])) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) {
      policy_match = true;
      break;
    }
  }
  if (!policy_match) {
    return reject_enrollment("PCR17 does not match golden PAL measurement");
  }

  // 4. The key itself must parse.
  auto pk = crypto::RsaPublicKey::deserialize(msg.confirmation_pubkey);
  if (!pk.ok()) return reject_enrollment("malformed public key");

  // Build the cached verify context now (R^2-mod-n precompute), once per
  // enrollment, so every later confirmation verify skips it.
  enrolled_.insert_or_assign(msg.client_id,
                             crypto::RsaVerifyContext(pk.take()));
  c_enrolled_->inc();
  return EnrollResult{true, "enrolled"};
}

TxChallenge ServiceProvider::begin_transaction(const TxSubmit& msg) {
  TxChallenge challenge;
  challenge.tx_id = next_tx_id_++;
  challenge.nonce = fresh_nonce();
  pending_tx_[challenge.tx_id] =
      PendingTx{msg.client_id, msg.digest(), challenge.nonce};
  return challenge;
}

TxResult ServiceProvider::complete_transaction(const TxConfirm& msg) {
  obs::ScopedTimer timer(*h_tx_);
  const auto pending = pending_tx_.find(msg.tx_id);
  if (pending == pending_tx_.end()) {
    return reject_tx(msg.tx_id, "unknown or already-settled transaction");
  }
  const PendingTx tx = pending->second;
  pending_tx_.erase(pending);  // challenges are one-shot: replay dies here

  if (tx.client_id != msg.client_id) {
    return reject_tx(msg.tx_id, "client mismatch");
  }
  if (!config_.require_trusted_path) {
    // Baseline mode: execute whatever the (possibly compromised) client
    // software asked for. This is the world before the trusted path.
    c_tx_accepted_->inc();
    return TxResult{msg.tx_id, true, "accepted without verification"};
  }

  const auto enrolled = enrolled_.find(msg.client_id);
  if (enrolled == enrolled_.end()) {
    return reject_tx(msg.tx_id, "client not enrolled");
  }
  if (msg.verdict != Verdict::kConfirmed) {
    return reject_tx(msg.tx_id, std::string("not confirmed by user: ") +
                                    verdict_name(msg.verdict));
  }

  // Defence in depth: a signature is never accepted twice even if the
  // one-shot challenge logic were bypassed.
  if (seen_signatures_.contains(msg.signature)) {
    return reject_tx(msg.tx_id, "replayed confirmation signature");
  }

  const Bytes statement =
      confirmation_statement(tx.digest, tx.nonce, Verdict::kConfirmed);
  if (!enrolled->second
           .verify(crypto::HashAlg::kSha256, statement, msg.signature)
           .ok()) {
    return reject_tx(msg.tx_id, "confirmation signature invalid");
  }

  seen_signatures_.insert(msg.signature);
  c_tx_accepted_->inc();
  return TxResult{msg.tx_id, true, "confirmed by human via trusted path"};
}

Bytes ServiceProvider::handle_frame(BytesView frame) {
  auto opened = open_envelope(frame);
  if (!opened.ok()) {
    return envelope(MsgType::kTxResult,
                    TxResult{0, false, "malformed frame"}.serialize());
  }
  const auto& [type, payload] = opened.value();
  switch (type) {
    case MsgType::kEnrollBegin: {
      auto msg = EnrollBegin::deserialize(payload);
      if (!msg.ok()) {
        return envelope(
            MsgType::kEnrollResult,
            reject_enrollment("malformed EnrollBegin").serialize());
      }
      return envelope(MsgType::kEnrollChallenge,
                      begin_enrollment(msg.value()).serialize());
    }
    case MsgType::kEnrollComplete: {
      auto msg = EnrollComplete::deserialize(payload);
      if (!msg.ok()) {
        return envelope(MsgType::kEnrollResult,
                        reject_enrollment("malformed EnrollComplete")
                            .serialize());
      }
      return envelope(MsgType::kEnrollResult,
                      complete_enrollment(msg.value()).serialize());
    }
    case MsgType::kTxSubmit: {
      auto msg = TxSubmit::deserialize(payload);
      if (!msg.ok()) {
        return envelope(MsgType::kTxResult,
                        reject_tx(0, "malformed TxSubmit").serialize());
      }
      return envelope(MsgType::kTxChallenge,
                      begin_transaction(msg.value()).serialize());
    }
    case MsgType::kTxConfirm: {
      auto msg = TxConfirm::deserialize(payload);
      if (!msg.ok()) {
        return envelope(MsgType::kTxResult,
                        reject_tx(0, "malformed TxConfirm").serialize());
      }
      return envelope(MsgType::kTxResult,
                      complete_transaction(msg.value()).serialize());
    }
    default:
      break;
  }
  return envelope(MsgType::kTxResult,
                  TxResult{0, false, "unexpected message"}.serialize());
}

}  // namespace tp::sp
