#include "sp/service_provider.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/trusted_path_pal.h"
#include "proto/crypto_port.h"
#include "store/durable_log.h"
#include "store/shard_state.h"

namespace tp::sp {

using namespace core;  // message types

namespace {
constexpr proto::SessionPhase kEnrollPhase = proto::SessionPhase::kEnroll;
constexpr proto::SessionPhase kConfirmPhase = proto::SessionPhase::kConfirm;

std::size_t dedup_size_for(std::size_t tx_capacity) {
  // Power of two >= 2x the tx-session capacity: every live session can
  // hold a dedup entry at load factor <= 1/2-ish (direct-mapped, so
  // collisions overwrite -- harmless, see SubmitDedup).
  std::size_t size = 8;
  while (size < tx_capacity * 2 && size < (std::size_t{1} << 20)) size <<= 1;
  return size;
}

std::uint64_t key_word(const proto::SessionTable::Key& key) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    word = (word << 8) | key[i];
  }
  return word;
}

Bytes replay_response(const proto::SessionTable::Session& session) {
  const BytesView view = session.response_view();
  return Bytes(view.begin(), view.end());
}

void cache_response(proto::SessionTable::Session* session,
                    const proto::SessionTable::Key& digest,
                    const Bytes& response) {
  if (session == nullptr) return;
  session->request_digest = digest;
  session->set_response(response);
}

// Merges handed-off sessions into `table`. restore() appends at the LRU
// back, so entries must land in ascending-deadline order to keep the
// LRU == deadline invariant; both the table's own snapshot and the
// incoming bundle are individually sorted, and the combined set is
// re-sorted when the table was non-empty.
void merge_restore(proto::SessionTable& table,
                   std::vector<proto::SessionTable::Entry>&& incoming) {
  if (incoming.empty()) return;
  std::vector<proto::SessionTable::Entry> own = table.snapshot();
  if (!own.empty()) {
    for (const auto& e : own) table.erase(e.key);
    incoming.insert(incoming.end(), own.begin(), own.end());
    std::stable_sort(incoming.begin(), incoming.end(),
                     [](const proto::SessionTable::Entry& a,
                        const proto::SessionTable::Entry& b) {
                       return a.session.deadline < b.session.deadline;
                     });
  }
  for (const auto& e : incoming) table.restore(e.key, e.session);
}
}  // namespace

ServiceProvider::ServiceProvider(SpConfig config)
    : config_(std::move(config)),
      drbg_(concat(bytes_of("service-provider:"), config_.seed)),
      enroll_sessions_(proto::SessionTableConfig{
          config_.enroll_session_capacity, config_.session_ttl}),
      tx_sessions_(proto::SessionTableConfig{config_.tx_session_capacity,
                                             config_.session_ttl}),
      crypto_(config_.ca_public, config_.golden_pcr17,
              config_.accepted_policies, config_.expected_clients),
      seen_signatures_(config_.replay_cache_capacity),
      submit_dedup_(config_.idempotent_replies
                        ? dedup_size_for(config_.tx_session_capacity)
                        : 0),
      submit_dedup_mask_(submit_dedup_.empty() ? 0
                                               : submit_dedup_.size() - 1) {
  // Nonces live inline in the fixed-size session slots.
  config_.nonce_len =
      std::min(config_.nonce_len, proto::SessionTable::kMaxNonceLen);
  next_tx_id_ = config_.tx_id_base + 1;
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  const std::string& p = config_.metrics_prefix;
  c_enrolled_ = &registry_->counter(p + ".enrolled");
  c_enroll_rejected_ = &registry_->counter(p + ".enroll_rejected");
  c_tx_accepted_ = &registry_->counter(p + ".tx_accepted");
  c_tx_rejected_ = &registry_->counter(p + ".tx_rejected");
  for (std::size_t i = 0; i < tpm::kNumQuoteFormats; ++i) {
    const char* name =
        tpm::quote_format_name(i == 0 ? tpm::QuoteFormat::kTpm12
                                      : tpm::QuoteFormat::kTpm2);
    c_enrolled_fmt_[i] = &registry_->counter(p + ".enrolled." + name);
    c_tx_accepted_fmt_[i] = &registry_->counter(p + ".tx_accepted." + name);
  }
  for (std::size_t i = 0; i < proto::kRejectCodeCount; ++i) {
    c_reject_[i] = &registry_->counter(
        p + ".reject." +
        proto::reject_code_name(static_cast<proto::RejectCode>(i)));
  }
  c_sessions_evicted_ = &registry_->counter(p + ".sessions_evicted");
  c_sessions_expired_ = &registry_->counter(p + ".sessions_expired");
  c_replayed_challenge_ =
      &registry_->counter(p + ".retry.replayed_challenge");
  c_replayed_result_ = &registry_->counter(p + ".retry.replayed_result");
  g_enroll_sessions_ = &registry_->gauge(p + ".enroll_sessions");
  g_tx_sessions_ = &registry_->gauge(p + ".tx_sessions");
  h_enroll_ = &registry_->histogram(p + ".enroll_ns");
  h_tx_ = &registry_->histogram(p + ".tx_ns");

  if (config_.durable != nullptr) {
    if (!config_.idempotent_replies) {
      throw std::invalid_argument(
          "ServiceProvider: durable mode requires idempotent_replies "
          "(recovery replays cached responses)");
    }
    c_recovery_replayed_ =
        &registry_->counter(p + ".recovery.replayed_records");
    c_recovery_truncated_ =
        &registry_->counter(p + ".recovery.truncated_tail");
    g_recovery_snapshot_age_ =
        &registry_->gauge(p + ".recovery.snapshot_age");
    auto recovered = config_.durable->recover();
    if (!recovered.ok()) {
      throw std::runtime_error("ServiceProvider: recovery failed: " +
                               recovered.error().to_string());
    }
    const store::RecoveryStats& rs = config_.durable->recovery_stats();
    c_recovery_replayed_->inc(rs.replayed_records);
    c_recovery_truncated_->inc(rs.truncated_tail_bytes);
    g_recovery_snapshot_age_->set(rs.snapshot_age_ns);
    store::ShardState state = recovered.take();
    if (!state.empty()) restore_state(std::move(state));
    // Deterministic per (seed, recovery point) but disjoint from the
    // pre-crash stream: the journal does not capture DRBG positions, so
    // without this a restarted shard would re-issue nonces whose
    // challenges may already be in hostile hands.
    drbg_.reseed(concat(
        bytes_of("sp-recovery:" +
                 std::to_string(config_.durable->next_seq()) + ":"),
        config_.seed));
  }
}

Bytes ServiceProvider::fresh_nonce() {
  return drbg_.generate(config_.nonce_len);
}

SpStats ServiceProvider::stats_snapshot() const {
  SpStats snap;
  snap.enrolled = c_enrolled_->value();
  snap.enroll_rejected = c_enroll_rejected_->value();
  snap.tx_accepted = c_tx_accepted_->value();
  snap.tx_rejected = c_tx_rejected_->value();
  for (std::size_t i = 0; i < tpm::kNumQuoteFormats; ++i) {
    snap.enrolled_by_format[i] = c_enrolled_fmt_[i]->value();
    snap.tx_accepted_by_format[i] = c_tx_accepted_fmt_[i]->value();
  }
  for (std::size_t i = 0; i < proto::kRejectCodeCount; ++i) {
    snap.rejects_by_code[i] = c_reject_[i]->value();
  }
  snap.sessions_evicted = c_sessions_evicted_->value();
  snap.sessions_expired = c_sessions_expired_->value();
  return snap;
}

void ServiceProvider::reset_stats() {
  registry_->reset(config_.metrics_prefix + ".");
  // The tables' own totals keep running; future publishes must add only
  // what happens after this reset.
  published_evictions_ = session_evictions();
  published_expirations_ = session_expirations();
  publish_session_metrics();
}

void ServiceProvider::publish_session_metrics() {
  g_enroll_sessions_->set(
      static_cast<std::int64_t>(enroll_sessions_.size()));
  g_tx_sessions_->set(static_cast<std::int64_t>(tx_sessions_.size()));
  const std::uint64_t evicted = session_evictions();
  if (evicted > published_evictions_) {
    c_sessions_evicted_->inc(evicted - published_evictions_);
    published_evictions_ = evicted;
  }
  const std::uint64_t expired = session_expirations();
  if (expired > published_expirations_) {
    c_sessions_expired_->inc(expired - published_expirations_);
    published_expirations_ = expired;
  }
}

EnrollResult ServiceProvider::reject_enrollment(proto::RejectCode code) {
  c_enroll_rejected_->inc();
  reject_counter(code).inc();
  return EnrollResult{false, proto::reject_code_message(code), code};
}

TxResult ServiceProvider::reject_tx(std::uint64_t tx_id,
                                    proto::RejectCode code) {
  c_tx_rejected_->inc();
  reject_counter(code).inc();
  return TxResult{tx_id, false, proto::reject_code_message(code), code};
}

EnrollChallenge ServiceProvider::begin_enrollment(const EnrollBegin& msg) {
  // kBegin is legal from every state (the FSM recycles terminal and
  // half-open sessions alike). sp_begin asks for open-session /
  // store-nonce / send-frame; begin() is the open's bookkeeping: collect
  // expired, evict under pressure, arm the deadline.
  const SimTime now = session_now();
  const proto::SpBegin decision = proto::sp_begin(kEnrollPhase);
  EnrollChallenge challenge{fresh_nonce()};
  proto::SessionTable::Session& session =
      enroll_sessions_.begin(proto::SessionTable::client_key(msg.client_id),
                             now);
  session.state = decision.next_state;
  session.set_nonce(challenge.nonce);
  publish_session_metrics();
  return challenge;
}

EnrollResult ServiceProvider::complete_enrollment(const EnrollComplete& msg) {
  obs::ScopedTimer timer(*h_enroll_);
  const SimTime now = session_now();
  const proto::SessionTable::Key key =
      proto::SessionTable::client_key(msg.client_id);
  bool deadline_passed = false;
  proto::SessionTable::Session* session =
      enroll_sessions_.find(key, now, &deadline_passed);

  // Stage A: the gate decides whether this completion reaches the
  // evidence check at all -- session miss (expired vs never-existed) and
  // the terminal-hold guard reject here, with the FSM's typed code.
  const proto::SpGate gate = proto::sp_gate_complete(
      kEnrollPhase,
      proto::SpSessionView{session != nullptr, deadline_passed,
                           session != nullptr ? session->state
                                              : proto::SessionState::kIdle});
  if (gate.state_valid) session->state = gate.next_state;
  if (!gate.session_live) {
    publish_session_metrics();
    return reject_enrollment(gate.reject);
  }

  // Stage B: enrollment's pre-signature facts are all defaults -- the
  // screen always lands on kVerifySignature, answered by the crypto
  // port's full evidence check (certificate chain, quote signature +
  // nonce binding, attestation policy, key parse; kNone registers the
  // enrollment and caches the verify context).
  const proto::SpScreen screen =
      proto::sp_screen_complete(proto::SpCompleteFacts{});
  proto::RejectCode evidence = proto::RejectCode::kNone;
  if (screen.need_verify) {
    evidence = crypto_.verify_enrollment(proto::EnrollEvidence{
        msg.client_id, static_cast<std::uint8_t>(msg.format),
        msg.confirmation_pubkey, msg.quote, msg.aik_certificate,
        session->nonce_view()});
  }

  // Stage C: settle. Terminal either way; one-shot mode releases the
  // slot, idempotent mode holds it (terminal state + cached response)
  // until its original deadline so retransmitted completes replay the
  // same answer.
  const proto::SpSettle settle = proto::sp_settle_complete(
      kEnrollPhase,
      proto::SpSettleInput{session->state, /*session_live=*/true,
                           /*session_found=*/true, screen.need_verify,
                           evidence == proto::RejectCode::kNone,
                           screen.reject, /*verify_reject=*/evidence,
                           config_.idempotent_replies});
  if (settle.state_valid) session->state = settle.next_state;
  if (settle.erase_session) enroll_sessions_.erase(key);
  publish_session_metrics();
  if (settle.accepted) {
    c_enrolled_->inc();
    c_enrolled_fmt_[tpm::quote_format_index(msg.format)]->inc();
    return EnrollResult{true, "enrolled"};
  }
  return reject_enrollment(settle.reject);
}

TxChallenge ServiceProvider::begin_transaction(const TxSubmit& msg) {
  const SimTime now = session_now();
  const proto::SpBegin decision = proto::sp_begin(kConfirmPhase);
  TxChallenge challenge;
  challenge.tx_id = next_tx_id_++;
  challenge.nonce = fresh_nonce();
  proto::SessionTable::Session& session = tx_sessions_.begin(
      proto::SessionTable::tx_key(challenge.tx_id), now);
  session.state = decision.next_state;
  session.client = proto::SessionTable::client_key(msg.client_id);
  session.set_nonce(challenge.nonce);
  const Bytes digest = msg.digest();
  std::copy_n(digest.begin(),
              std::min(digest.size(), session.tx_digest.size()),
              session.tx_digest.begin());
  publish_session_metrics();
  return challenge;
}

/// Outcome of the pre-signature stage of one TxConfirm. The check order
/// lives in proto::sp_screen_complete (the seed's: binding, policy knob,
/// enrollment, human verdict, replay backstop, signature); this struct
/// carries its verdict plus the gathered verify inputs to the settle.
struct ServiceProvider::PreparedConfirm {
  const core::TxConfirm* msg = nullptr;
  proto::SessionTable::Key key{};
  /// The session exists and was stepped to kVerifying; settle must
  /// apply the verify outcome (and erase in one-shot mode). False for
  /// the miss / terminal-guard paths, which reject without a settle
  /// step -- exactly like the pre-pipeline code.
  bool session_live = false;
  /// A signature check is pending; verify_ok carries its verdict.
  bool need_verify = false;
  bool verify_ok = false;
  bool verified_by_trusted_path = false;
  /// First failed pre-signature check (kNone when all passed).
  proto::RejectCode reject = proto::RejectCode::kNone;
  /// Which backend's key signs the confirmation (unset in baseline
  /// mode, where no signature is checked).
  std::optional<tpm::QuoteFormat> format;
  proto::CryptoPort::ConfirmHandle handle = nullptr;
  Bytes statement;
};

void ServiceProvider::prepare_confirm(const TxConfirm& msg,
                                      PreparedConfirm& prep) {
  prep.msg = &msg;
  const SimTime now = session_now();
  prep.key = proto::SessionTable::tx_key(msg.tx_id);
  bool deadline_passed = false;
  proto::SessionTable::Session* session =
      tx_sessions_.find(prep.key, now, &deadline_passed);

  // Stage A: the gate -- session miss and the terminal-hold guard reject
  // here (same guard as enrollment: a settled session refuses a fresh
  // completion with its typed code).
  const proto::SpGate gate = proto::sp_gate_complete(
      kConfirmPhase,
      proto::SpSessionView{session != nullptr, deadline_passed,
                           session != nullptr ? session->state
                                              : proto::SessionState::kIdle});
  if (gate.state_valid) session->state = gate.next_state;
  if (!gate.session_live) {
    prep.reject = gate.reject;
    return;
  }
  prep.session_live = true;

  // Stage B: gather the pre-signature facts (all side-effect-free
  // lookups) and let the screen order the checks.
  const proto::CryptoPort::ConfirmHandle handle =
      crypto_.confirm_handle(msg.client_id);
  proto::SpCompleteFacts facts;
  facts.client_matches =
      session->client == proto::SessionTable::client_key(msg.client_id);
  facts.require_trusted_path = config_.require_trusted_path;
  facts.enrolled = handle != nullptr;
  facts.verdict = msg.verdict == Verdict::kConfirmed
                      ? proto::SpCompleteFacts::Verdict::kConfirmed
                      : (msg.verdict == Verdict::kRejected
                             ? proto::SpCompleteFacts::Verdict::kRejected
                             : proto::SpCompleteFacts::Verdict::kTimeout);
  // Defence in depth: a signature is never accepted twice even if the
  // one-shot challenge logic were bypassed. (Batches flush on duplicate
  // signature bytes, so this screen sees every earlier accept.)
  facts.signature_replayed = seen_signatures_.contains(msg.signature);

  const proto::SpScreen screen = proto::sp_screen_complete(facts);
  prep.verified_by_trusted_path = screen.verified_by_trusted_path;
  prep.reject = screen.reject;
  if (!screen.need_verify) return;
  prep.statement = confirmation_statement(
      BytesView(session->tx_digest.data(), session->tx_digest.size()),
      session->nonce_view(), Verdict::kConfirmed);
  prep.handle = handle;
  prep.format = static_cast<tpm::QuoteFormat>(crypto_.format_of(handle));
  prep.need_verify = true;
}

TxResult ServiceProvider::settle_confirm(PreparedConfirm& prep) {
  const TxConfirm& msg = *prep.msg;
  // Re-find by key (live sessions only -- the miss/guard paths never
  // touch the table again): prepares of other batch items may have moved
  // slots (backward-shift deletion), but with distinct keys and an
  // unchanged timeline this session is still live.
  proto::SessionTable::Session* session =
      prep.session_live ? tx_sessions_.find(prep.key, session_now()) : nullptr;
  const proto::SpSettle settle = proto::sp_settle_complete(
      kConfirmPhase,
      proto::SpSettleInput{
          session != nullptr ? session->state : proto::SessionState::kIdle,
          prep.session_live, session != nullptr, prep.need_verify,
          prep.verify_ok, prep.reject, proto::RejectCode::kBadSignature,
          config_.idempotent_replies});
  if (!prep.session_live) return reject_tx(msg.tx_id, settle.reject);
  if (settle.state_valid) session->state = settle.next_state;
  if (settle.erase_session) {
    // One-shot: replay of this challenge dies here. Idempotent mode
    // holds the terminal session instead; a re-sent kComplete hits the
    // guard above (or the response cache on the frame path) and the
    // signature replay cache still backstops a re-verify.
    tx_sessions_.erase(prep.key);
  }
  if (settle.accepted) {
    if (settle.record_signature) seen_signatures_.insert(msg.signature);
    c_tx_accepted_->inc();
    if (prep.format.has_value()) {
      c_tx_accepted_fmt_[tpm::quote_format_index(*prep.format)]->inc();
    }
    return TxResult{msg.tx_id, true,
                    prep.verified_by_trusted_path
                        ? "confirmed by human via trusted path"
                        : "accepted without verification"};
  }
  return reject_tx(msg.tx_id, settle.reject);
}

TxResult ServiceProvider::complete_transaction(const TxConfirm& msg) {
  obs::ScopedTimer timer(*h_tx_);
  PreparedConfirm prep;
  prepare_confirm(msg, prep);
  if (prep.need_verify) {
    prep.verify_ok =
        crypto_.verify_confirmation(prep.handle, prep.statement,
                                    msg.signature);
  }
  TxResult result = settle_confirm(prep);
  publish_session_metrics();
  return result;
}

std::vector<TxResult> ServiceProvider::complete_transaction_batch(
    std::span<const TxConfirm> msgs) {
  std::vector<TxResult> out;
  out.reserve(msgs.size());
  std::size_t base = 0;
  while (base < msgs.size()) {
    // Grow the run while tx ids and signature bytes stay pairwise
    // distinct -- the same commutation condition the frame-level flush
    // enforces (a duplicate would observe the earlier item's session or
    // replay-cache write).
    std::size_t end = base + 1;
    for (; end < msgs.size(); ++end) {
      bool conflict = false;
      for (std::size_t i = base; i < end && !conflict; ++i) {
        conflict = proto::sp_must_flush(
            msgs[i].tx_id == msgs[end].tx_id,
            msgs[i].signature == msgs[end].signature);
      }
      if (conflict) break;
    }
    const std::size_t n = end - base;
    obs::ScopedTimer timer(*h_tx_);
    std::vector<PreparedConfirm> preps(n);
    for (std::size_t i = 0; i < n; ++i) {
      prepare_confirm(msgs[base + i], preps[i]);
    }
    std::vector<proto::CryptoPort::ConfirmItem> items;
    std::vector<std::size_t> item_of;
    items.reserve(n);
    item_of.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!preps[i].need_verify) continue;
      items.push_back({preps[i].handle, preps[i].statement,
                       msgs[base + i].signature});
      item_of.push_back(i);
    }
    if (!items.empty()) {
      const auto ok = std::make_unique<bool[]>(items.size());
      crypto_.verify_confirmation_batch(items, ok.get());
      for (std::size_t j = 0; j < item_of.size(); ++j) {
        preps[item_of[j]].verify_ok = ok[j];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(settle_confirm(preps[i]));
    }
    publish_session_metrics();
    base = end;
  }
  return out;
}

HandoffBundle ServiceProvider::extract_for_handoff(
    const std::function<bool(const proto::SessionTable::Key&)>& moves) {
  HandoffBundle bundle;
  bundle.source_now = session_now();

  // Enrollment sessions are keyed by client_key(client_id), exactly what
  // `moves` decides on. snapshot() yields ascending-deadline order, which
  // the importer's restore path wants preserved.
  for (const auto& e : enroll_sessions_.snapshot()) {
    if (!moves(e.key)) continue;
    bundle.enroll_sessions.push_back(e);
    enroll_sessions_.erase(e.key);
  }
  // Confirmation sessions are keyed by tx id; ownership follows the
  // client tag the session stores. Tx ids stay valid in the destination
  // because every shard issues from a disjoint tx_id_base.
  for (const auto& e : tx_sessions_.snapshot()) {
    if (!moves(e.session.client)) continue;
    bundle.tx_sessions.push_back(e);
    tx_sessions_.erase(e.key);
  }
  // Verify contexts move by node extraction: the per-key precompute
  // (Montgomery / window tables) built at enrollment is never redone.
  auto& enrolled = crypto_.contexts();
  std::vector<std::string> moving_ids;
  for (const auto& [id, ctx] : enrolled) {
    (void)ctx;
    if (moves(proto::SessionTable::client_key(id))) moving_ids.push_back(id);
  }
  bundle.enrolled.reserve(moving_ids.size());
  for (const std::string& id : moving_ids) {
    auto node = enrolled.extract(id);
    bundle.enrolled.emplace_back(std::move(node.key()),
                                 std::move(node.mapped()));
  }
  // Replay digests are unattributable, so the whole set is copied (not
  // removed); the destination merging a superset only widens its screen.
  bundle.replay_digests = seen_signatures_.export_digests();
  // TxSubmit dedup entries carry the same client tag.
  for (SubmitDedup& slot : submit_dedup_) {
    if (slot.used == 0 || !moves(slot.client)) continue;
    bundle.dedup.push_back(
        HandoffBundle::DedupEntry{slot.client, slot.digest, slot.tx_id});
    slot = SubmitDedup{};
  }
  publish_session_metrics();
  return bundle;
}

void ServiceProvider::import_handoff(HandoffBundle&& bundle) {
  advance_time_to(bundle.source_now);
  merge_restore(enroll_sessions_, std::move(bundle.enroll_sessions));
  merge_restore(tx_sessions_, std::move(bundle.tx_sessions));
  for (auto& [id, ctx] : bundle.enrolled) {
    crypto_.contexts().insert_or_assign(std::move(id), std::move(ctx));
  }
  for (const ReplayCache::Digest& d : bundle.replay_digests) {
    seen_signatures_.insert_digest(d);
  }
  if (!submit_dedup_.empty()) {
    for (const HandoffBundle::DedupEntry& e : bundle.dedup) {
      submit_dedup_[submit_dedup_index(e.client, e.digest)] =
          SubmitDedup{e.client, e.digest, e.tx_id, 1};
    }
  }
  publish_session_metrics();
}

store::ShardState ServiceProvider::export_state() const {
  store::ShardState state;
  state.source_now_ns = session_now().ns;
  state.next_tx_id = next_tx_id_;
  state.tx_accepted_total = c_tx_accepted_->value();
  state.enroll_sessions = enroll_sessions_.snapshot();
  state.tx_sessions = tx_sessions_.snapshot();
  // The context map iterates in hash order; sort so two SPs with equal
  // state serialize identically (the restore/handoff equivalence the
  // property tests assert).
  const auto& enrolled = crypto_.contexts();
  state.enrolled.reserve(enrolled.size());
  for (const auto& [id, ctx] : enrolled) {
    state.enrolled.push_back(store::EnrolledClient{id, ctx.key().serialize()});
  }
  std::sort(state.enrolled.begin(), state.enrolled.end(),
            [](const store::EnrolledClient& a, const store::EnrolledClient& b) {
              return a.id < b.id;
            });
  state.replay_digests = seen_signatures_.export_digests();
  for (const SubmitDedup& slot : submit_dedup_) {
    if (slot.used == 0) continue;
    state.dedup.push_back(store::DedupRow{slot.client, slot.digest,
                                          slot.tx_id});
  }
  return state;
}

void ServiceProvider::restore_state(store::ShardState&& state) {
  advance_time_to(SimTime{state.source_now_ns});
  merge_restore(enroll_sessions_, std::move(state.enroll_sessions));
  merge_restore(tx_sessions_, std::move(state.tx_sessions));
  for (store::EnrolledClient& client : state.enrolled) {
    auto key = tpm::AttestationKey::deserialize(client.key_blob);
    if (!key.ok()) {
      // The snapshot CRC passed, so an unparseable key is a logic bug or
      // targeted tampering, not bit-rot; refusing to start beats silently
      // forgetting an enrollment.
      throw std::runtime_error("ServiceProvider: recovered key for '" +
                               client.id + "' unparseable: " +
                               key.error().to_string());
    }
    // Rebuilding the verify context redoes the Montgomery / window-table
    // precompute -- the genuine per-client recovery cost
    // bench_crash_recovery measures.
    crypto_.contexts().insert_or_assign(
        client.id, tpm::AttestationVerifyContext(key.take()));
  }
  for (const store::ReplayDigest& d : state.replay_digests) {
    seen_signatures_.insert_digest(d);
  }
  if (!submit_dedup_.empty()) {
    for (const store::DedupRow& row : state.dedup) {
      submit_dedup_[submit_dedup_index(row.client, row.digest)] =
          SubmitDedup{row.client, row.digest, row.tx_id, 1};
    }
  }
  next_tx_id_ = std::max(next_tx_id_, state.next_tx_id);
  // Cumulative counters: the journal carries the shard's totals, the
  // enrolled count is the recovered population. Per-format and per-reject
  // slices are observability-only and restart at zero (documented in
  // DESIGN.md).
  c_tx_accepted_->inc(state.tx_accepted_total);
  c_enrolled_->inc(state.enrolled.size());
  publish_session_metrics();
}

void ServiceProvider::checkpoint() {
  if (config_.durable == nullptr) return;
  config_.durable->compact(export_state());
}

void ServiceProvider::maybe_compact() {
  if (config_.durable != nullptr && config_.durable->should_compact()) {
    config_.durable->compact(export_state());
  }
}

void ServiceProvider::journal_enroll_begin(
    const proto::SessionTable::Key& key) {
  if (config_.durable == nullptr) return;
  const proto::SessionTable::Session* session =
      enroll_sessions_.find(key, session_now());
  if (session == nullptr) return;
  config_.durable->append(
      store::RecordType::kEnrollBegin,
      store::enroll_begin_body(session_now().ns, key, *session));
}

void ServiceProvider::journal_enroll_settle(
    const proto::SessionTable::Key& key, const std::string& client_id) {
  if (config_.durable == nullptr) return;
  const proto::SessionTable::Session* session =
      enroll_sessions_.find(key, session_now());
  if (session == nullptr) return;
  Bytes key_blob;  // empty = enrollment rejected, only the session settles
  const auto& enrolled = crypto_.contexts();
  if (auto it = enrolled.find(client_id); it != enrolled.end()) {
    key_blob = it->second.key().serialize();
  }
  config_.durable->append(
      store::RecordType::kEnrollSettle,
      store::enroll_settle_body(session_now().ns, key, *session, client_id,
                                key_blob));
}

void ServiceProvider::journal_tx_begin(std::uint64_t tx_id,
                                       const SubmitDedup& slot) {
  if (config_.durable == nullptr) return;
  const proto::SessionTable::Key key = proto::SessionTable::tx_key(tx_id);
  const proto::SessionTable::Session* session =
      tx_sessions_.find(key, session_now());
  if (session == nullptr) return;
  const store::DedupRow row{slot.client, slot.digest, slot.tx_id};
  config_.durable->append(
      store::RecordType::kTxBegin,
      store::tx_begin_body(session_now().ns, key, *session, next_tx_id_,
                           &row));
}

void ServiceProvider::journal_tx_settle(std::uint64_t tx_id,
                                        const core::TxConfirm& msg,
                                        bool accepted) {
  if (config_.durable == nullptr) return;
  const proto::SessionTable::Key key = proto::SessionTable::tx_key(tx_id);
  const proto::SessionTable::Session* session =
      tx_sessions_.find(key, session_now());
  if (session == nullptr) return;
  // The digest rides in the settle record (not a record of its own) so a
  // torn write can never persist "digest seen" without "session settled"
  // -- which would turn the client's retransmit into a permanent
  // kSigReplay reject. `accepted && contains` is exactly "this settle
  // recorded the signature": the screen rejects replayed signatures
  // before accept, so a pre-existing digest can't satisfy both.
  std::optional<store::ReplayDigest> digest;
  if (accepted && seen_signatures_.contains(msg.signature)) {
    digest = ReplayCache::digest_of(msg.signature);
  }
  config_.durable->append(
      store::RecordType::kTxSettle,
      store::tx_settle_body(session_now().ns, key, *session, next_tx_id_,
                            c_tx_accepted_->value(),
                            digest.has_value() ? &*digest : nullptr));
}

std::size_t ServiceProvider::submit_dedup_index(
    const proto::SessionTable::Key& client,
    const proto::SessionTable::Key& digest) const {
  // Both keys are truncated SHA-256, already uniform: fold a word from
  // each (client side scrambled so (a, b) and (b, a) land apart).
  return static_cast<std::size_t>(
             key_word(digest) ^ (key_word(client) * 0x9e3779b97f4a7c15ull)) &
         submit_dedup_mask_;
}

proto::SpReplayView ServiceProvider::replay_view(
    const proto::SessionTable::Session* session,
    const proto::SessionTable::Key& digest) {
  proto::SpReplayView view;
  if (session == nullptr) return view;
  view.session_found = true;
  view.live_challenge = session->state == proto::SessionState::kChallengeSent;
  view.terminal = session->terminal();
  view.digest_matches = session->request_digest == digest;
  view.has_response = session->has_response();
  return view;
}

Bytes ServiceProvider::handle_frame(BytesView frame, SimTime now) {
  advance_time_to(now);
  return handle_frame(frame);
}

Bytes ServiceProvider::handle_frame(BytesView frame) {
  Bytes response = process_frame(frame);
  maybe_compact();
  return response;
}

Bytes ServiceProvider::process_frame(BytesView frame) {
  auto opened = open_envelope(frame);
  if (!opened.ok()) {
    // Frame-level garbage is counted per code but not as a protocol
    // reject (there is no session to reject).
    reject_counter(proto::RejectCode::kMalformedFrame).inc();
    return envelope(
        MsgType::kTxResult,
        TxResult{0, false,
                 proto::reject_code_message(
                     proto::RejectCode::kMalformedFrame),
                 proto::RejectCode::kMalformedFrame}
            .serialize());
  }
  const auto& [type, payload] = opened.value();
  // Idempotent re-delivery layer (config_.idempotent_replies): before
  // reprocessing, check whether this exact payload already advanced a
  // session -- if so, replay the cached response byte-identically (no
  // counters move: the transaction happened once). Begins replay against
  // a live kChallengeSent session; completes replay against a terminal
  // session held until its original deadline. A differing payload aimed
  // at a settled session is not a retransmission and gets the typed
  // kRetryMismatch reject.
  const bool idem = config_.idempotent_replies;
  switch (type) {
    case MsgType::kEnrollBegin: {
      auto msg = EnrollBegin::deserialize(payload);
      if (!msg.ok()) {
        return envelope(
            MsgType::kEnrollResult,
            reject_enrollment(proto::RejectCode::kMalformedEnrollBegin)
                .serialize());
      }
      if (!idem) {
        return envelope(MsgType::kEnrollChallenge,
                        begin_enrollment(msg.value()).serialize());
      }
      const proto::SessionTable::Key key =
          proto::SessionTable::client_key(msg.value().client_id);
      const proto::SessionTable::Key digest =
          proto::SessionTable::payload_key(payload);
      const proto::SessionTable::Session* held =
          enroll_sessions_.find(key, session_now());
      if (proto::sp_screen_begin_retransmit(replay_view(held, digest)) ==
          proto::SpRetransmit::kReplayResponse) {
        c_replayed_challenge_->inc();
        return replay_response(*held);
      }
      const Bytes resp = envelope(MsgType::kEnrollChallenge,
                                  begin_enrollment(msg.value()).serialize());
      cache_response(enroll_sessions_.find(key, session_now()), digest, resp);
      journal_enroll_begin(key);
      return resp;
    }
    case MsgType::kEnrollComplete: {
      auto msg = EnrollComplete::deserialize(payload);
      if (!msg.ok()) {
        return envelope(
            MsgType::kEnrollResult,
            reject_enrollment(proto::RejectCode::kMalformedEnrollComplete)
                .serialize());
      }
      if (!idem) {
        return envelope(MsgType::kEnrollResult,
                        complete_enrollment(msg.value()).serialize());
      }
      const proto::SessionTable::Key key =
          proto::SessionTable::client_key(msg.value().client_id);
      const proto::SessionTable::Key digest =
          proto::SessionTable::payload_key(payload);
      const proto::SessionTable::Session* held =
          enroll_sessions_.find(key, session_now());
      switch (proto::sp_screen_complete_retransmit(replay_view(held, digest))) {
        case proto::SpRetransmit::kReplayResponse:
          c_replayed_result_->inc();
          return replay_response(*held);
        case proto::SpRetransmit::kRetryMismatch:
          return envelope(MsgType::kEnrollResult,
                          reject_enrollment(proto::RejectCode::kRetryMismatch)
                              .serialize());
        case proto::SpRetransmit::kProcess:
          break;
      }
      const Bytes resp = envelope(MsgType::kEnrollResult,
                                  complete_enrollment(msg.value()).serialize());
      cache_response(enroll_sessions_.find(key, session_now()), digest, resp);
      journal_enroll_settle(key, msg.value().client_id);
      return resp;
    }
    case MsgType::kTxSubmit: {
      auto msg = TxSubmit::deserialize(payload);
      if (!msg.ok()) {
        return envelope(
            MsgType::kTxResult,
            reject_tx(0, proto::RejectCode::kMalformedTxSubmit)
                .serialize());
      }
      if (!idem) {
        return envelope(MsgType::kTxChallenge,
                        begin_transaction(msg.value()).serialize());
      }
      // A retransmitted TxSubmit cannot name the tx_id it was assigned;
      // the dedup map remembers the mapping so the retry finds the
      // session it already opened instead of opening a second one.
      const proto::SessionTable::Key clientk =
          proto::SessionTable::client_key(msg.value().client_id);
      const proto::SessionTable::Key digest =
          proto::SessionTable::payload_key(payload);
      SubmitDedup& slot = submit_dedup_[submit_dedup_index(clientk, digest)];
      if (slot.used != 0 && slot.client == clientk && slot.digest == digest) {
        const proto::SessionTable::Session* held = tx_sessions_.find(
            proto::SessionTable::tx_key(slot.tx_id), session_now());
        if (proto::sp_screen_begin_retransmit(replay_view(held, digest)) ==
            proto::SpRetransmit::kReplayResponse) {
          c_replayed_challenge_->inc();
          return replay_response(*held);
        }
      }
      const TxChallenge challenge = begin_transaction(msg.value());
      const Bytes resp = envelope(MsgType::kTxChallenge, challenge.serialize());
      cache_response(
          tx_sessions_.find(proto::SessionTable::tx_key(challenge.tx_id),
                            session_now()),
          digest, resp);
      slot = SubmitDedup{clientk, digest, challenge.tx_id, 1};
      journal_tx_begin(challenge.tx_id, slot);
      return resp;
    }
    case MsgType::kTxConfirm: {
      auto msg = TxConfirm::deserialize(payload);
      if (!msg.ok()) {
        return envelope(
            MsgType::kTxResult,
            reject_tx(0, proto::RejectCode::kMalformedTxConfirm)
                .serialize());
      }
      if (!idem) {
        return envelope(MsgType::kTxResult,
                        complete_transaction(msg.value()).serialize());
      }
      const proto::SessionTable::Key key =
          proto::SessionTable::tx_key(msg.value().tx_id);
      const proto::SessionTable::Key digest =
          proto::SessionTable::payload_key(payload);
      const proto::SessionTable::Session* held =
          tx_sessions_.find(key, session_now());
      switch (proto::sp_screen_complete_retransmit(replay_view(held, digest))) {
        case proto::SpRetransmit::kReplayResponse:
          c_replayed_result_->inc();
          return replay_response(*held);
        case proto::SpRetransmit::kRetryMismatch:
          return envelope(MsgType::kTxResult,
                          reject_tx(msg.value().tx_id,
                                    proto::RejectCode::kRetryMismatch)
                              .serialize());
        case proto::SpRetransmit::kProcess:
          break;
      }
      const TxResult result = complete_transaction(msg.value());
      const Bytes resp = envelope(MsgType::kTxResult, result.serialize());
      cache_response(tx_sessions_.find(key, session_now()), digest, resp);
      journal_tx_settle(msg.value().tx_id, msg.value(), result.accepted);
      return resp;
    }
    default:
      break;
  }
  reject_counter(proto::RejectCode::kUnexpectedMessage).inc();
  return envelope(
      MsgType::kTxResult,
      TxResult{0, false,
               proto::reject_code_message(
                   proto::RejectCode::kUnexpectedMessage),
               proto::RejectCode::kUnexpectedMessage}
          .serialize());
}

std::vector<Bytes> ServiceProvider::handle_frame_batch(
    std::span<const BytesView> frames, SimTime now) {
  advance_time_to(now);
  return handle_frame_batch(frames);
}

std::vector<Bytes> ServiceProvider::handle_frame_batch(
    std::span<const BytesView> frames) {
  std::vector<Bytes> out(frames.size());
  const bool idem = config_.idempotent_replies;

  // A run of parsed TxConfirm frames awaiting the gathered signature
  // stage. Guaranteed pairwise-distinct tx ids and signature bytes (the
  // flush rules below), so their prepares and settles commute with each
  // other and the run is equivalent to sequential processing.
  struct PendingTx {
    std::size_t frame_index;
    TxConfirm msg;
    Bytes payload;  // for the idempotency digest
  };
  std::vector<PendingTx> pending;

  const auto flush = [&]() {
    if (pending.empty()) return;
    obs::ScopedTimer timer(*h_tx_);
    const std::size_t n = pending.size();
    std::vector<PreparedConfirm> preps(n);
    std::vector<char> settled(n, 0);

    // Stage one, in frame order: idempotent-replay screening (terminal
    // sessions answer from their response cache, mismatched retries get
    // the typed reject) and the pre-signature checks.
    for (std::size_t i = 0; i < n; ++i) {
      PendingTx& p = pending[i];
      if (idem) {
        const proto::SessionTable::Key key =
            proto::SessionTable::tx_key(p.msg.tx_id);
        const proto::SessionTable::Key digest =
            proto::SessionTable::payload_key(p.payload);
        const proto::SessionTable::Session* held =
            tx_sessions_.find(key, session_now());
        const proto::SpRetransmit verdict =
            proto::sp_screen_complete_retransmit(replay_view(held, digest));
        if (verdict == proto::SpRetransmit::kReplayResponse) {
          c_replayed_result_->inc();
          out[p.frame_index] = replay_response(*held);
          settled[i] = 1;
          continue;
        }
        if (verdict == proto::SpRetransmit::kRetryMismatch) {
          out[p.frame_index] =
              envelope(MsgType::kTxResult,
                       reject_tx(p.msg.tx_id,
                                 proto::RejectCode::kRetryMismatch)
                           .serialize());
          settled[i] = 1;
          continue;
        }
      }
      prepare_confirm(p.msg, preps[i]);
    }

    // Stage two: every signature that survived stage one, verified in
    // one batched call (multi-buffer statement hashing, batch-inverted
    // interleaved ECDSA walks, gathered RSA screens -- mixed fleets get
    // both fast paths).
    std::vector<proto::CryptoPort::ConfirmItem> items;
    std::vector<std::size_t> item_of;
    items.reserve(n);
    item_of.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (settled[i] || !preps[i].need_verify) continue;
      items.push_back({preps[i].handle, preps[i].statement,
                       pending[i].msg.signature});
      item_of.push_back(i);
    }
    if (!items.empty()) {
      const auto ok = std::make_unique<bool[]>(items.size());
      crypto_.verify_confirmation_batch(items, ok.get());
      for (std::size_t j = 0; j < item_of.size(); ++j) {
        preps[item_of[j]].verify_ok = ok[j];
      }
    }

    // Stage three, in frame order: settle each session, cache the
    // response for retransmits, emit the frame. Session-table gauges
    // publish once per run instead of once per frame (they only expose
    // point-in-time levels, which match the sequential end state).
    for (std::size_t i = 0; i < n; ++i) {
      if (settled[i]) continue;
      PendingTx& p = pending[i];
      const TxResult result = settle_confirm(preps[i]);
      Bytes resp = envelope(MsgType::kTxResult, result.serialize());
      if (idem) {
        cache_response(
            tx_sessions_.find(proto::SessionTable::tx_key(p.msg.tx_id),
                              session_now()),
            proto::SessionTable::payload_key(p.payload), resp);
      }
      // One record per frame, appended before its reply leaves the run:
      // a crash mid-loop loses only frames whose promises were never
      // resolved (the svc worker fails the whole batch on the throw).
      journal_tx_settle(p.msg.tx_id, p.msg, result.accepted);
      out[p.frame_index] = std::move(resp);
    }
    publish_session_metrics();
    pending.clear();
  };

  for (std::size_t f = 0; f < frames.size(); ++f) {
    auto opened = open_envelope(frames[f]);
    if (!opened.ok()) {
      // Frame-level garbage touches no session or replay state, so the
      // pending run can keep gathering across it.
      reject_counter(proto::RejectCode::kMalformedFrame).inc();
      out[f] = envelope(MsgType::kTxResult,
                        TxResult{0, false,
                                 proto::reject_code_message(
                                     proto::RejectCode::kMalformedFrame),
                                 proto::RejectCode::kMalformedFrame}
                            .serialize());
      continue;
    }
    auto& [type, payload] = opened.value();
    if (type == MsgType::kTxConfirm) {
      auto msg = TxConfirm::deserialize(payload);
      if (!msg.ok()) {
        out[f] = envelope(
            MsgType::kTxResult,
            reject_tx(0, proto::RejectCode::kMalformedTxConfirm).serialize());
        continue;
      }
      // Flush rules (proto::sp_must_flush): a second confirm for the
      // same session slot, or a re-sent signature, must observe the
      // first one's settlement.
      bool conflict = false;
      for (const PendingTx& p : pending) {
        if (proto::sp_must_flush(p.msg.tx_id == msg.value().tx_id,
                                 p.msg.signature == msg.value().signature)) {
          conflict = true;
          break;
        }
      }
      if (conflict) flush();
      pending.push_back(PendingTx{f, msg.take(), std::move(payload)});
      continue;
    }
    // Every other frame type can create, recycle or evict sessions:
    // settle the pending run first, then take the single-frame path
    // (process_frame: the batch compacts once at the end, not per frame).
    flush();
    out[f] = process_frame(frames[f]);
  }
  flush();
  maybe_compact();
  return out;
}

}  // namespace tp::sp
