// Bounded signature replay cache for the SP's defence-in-depth check.
//
// The seed kept every accepted confirmation signature in a std::set<Bytes>
// forever: O(log n) lookups over full 128/256-byte signatures and
// unbounded memory growth — a real leak on a server meant to run for
// months. This replaces it with a fixed-capacity membership set keyed by
// SHA-256 digests truncated to 16 bytes (collision probability ~2^-64 at
// any plausible fleet size), stored in an open-addressing table with
// linear probing and FIFO ring eviction. Lookups and inserts are O(1);
// memory is capacity-proportional and allocated once up front.
//
// Soundness note: eviction cannot re-open a replay window. The primary
// replay defence is the one-shot pending-transaction map (a settled tx_id
// is gone, so its confirmation can never be presented again); this cache
// only backstops hypothetical bypasses of that logic, and a capacity well
// above the number of in-flight transactions keeps every signature that
// could still be presented inside the cache.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace tp::sp {

class ReplayCache {
 public:
  /// Digest width kept per entry (SHA-256 truncated).
  static constexpr std::size_t kDigestLen = 16;
  using Digest = std::array<std::uint8_t, kDigestLen>;

  /// `capacity` is the maximum number of retained signatures; 0 is
  /// clamped to 1. The probe table is sized to a power of two >= 2x
  /// capacity, so the load factor never exceeds 1/2.
  explicit ReplayCache(std::size_t capacity);

  /// True if `signature` was inserted and not yet evicted.
  bool contains(BytesView signature) const;

  /// Records `signature`, evicting the oldest entry when full. Returns
  /// false (and changes nothing) if it is already present.
  bool insert(BytesView signature);

  /// Records an already-computed digest (the shard-handoff import path:
  /// exported entries are digests, the original signature bytes are
  /// gone). Same eviction and duplicate semantics as insert().
  bool insert_digest(const Digest& d);

  /// Every live digest, oldest first -- the order insert_digest() wants
  /// them replayed in so the destination's FIFO eviction order matches
  /// the source's.
  std::vector<Digest> export_digests() const;

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return capacity_; }

  /// Heap footprint of the cache's backing storage — constant for the
  /// lifetime of the cache (the boundedness the tests assert).
  std::size_t memory_bytes() const {
    return ring_.capacity() * sizeof(Digest) +
           slots_.capacity() * sizeof(Digest) + occupied_.capacity();
  }

  /// The digest insert() stores for `signature`. Public so the SP's
  /// write-ahead journal can record the digest a settle inserted without
  /// keeping the signature bytes around.
  static Digest digest_of(BytesView signature);

 private:
  std::size_t ideal_slot(const Digest& d) const;
  /// Index of d's slot, or the first empty slot of its probe chain.
  std::size_t find_slot(const Digest& d) const;
  void erase(const Digest& d);

  std::size_t capacity_;
  std::size_t mask_;  // table size - 1 (table size is a power of two)
  std::size_t count_ = 0;
  std::size_t head_ = 0;           // next ring position to write (oldest
                                   // entry when the ring is full)
  std::vector<Digest> ring_;       // FIFO of live digests, insertion order
  std::vector<Digest> slots_;      // open-addressing table
  std::vector<std::uint8_t> occupied_;
};

}  // namespace tp::sp
