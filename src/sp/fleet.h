// Fleet: many client machines against ONE service provider.
//
// The single-client Deployment answers "does the protocol work"; the
// fleet answers the deployment questions -- does one SP instance handle a
// population of heterogeneous platforms (mixed TPM chips, mixed DRTM
// technologies), and what does the population-level latency distribution
// look like? Experiment F3's simulation arm runs on this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "drtm/platform.h"
#include "net/channel.h"
#include "sp/service_provider.h"
#include "tpm/privacy_ca.h"

namespace tp::sp {

struct FleetConfig {
  std::size_t num_clients = 8;
  Bytes seed = bytes_of("fleet");
  std::size_t tpm_key_bits = 768;
  std::uint32_t client_key_bits = 768;
  /// Per-member link parameters; net.fault scripts deterministic faults
  /// on every member's link (each draws an independent stream forked
  /// from net.fault.seed by member index).
  net::NetParams net;
  /// Chips are assigned round-robin from this list (empty -> default).
  std::vector<std::string> chip_mix;
  /// Technologies assigned round-robin (empty -> all AMD).
  std::vector<drtm::DrtmTechnology> technology_mix;
  /// Quote formats assigned round-robin (empty -> all TPM 1.2). E.g.
  /// {kTpm12, kTpm2} models the mid-migration fleet: half the machines
  /// quote SHA-1 PCRs under an RSA AIK, half SHA-256 under an ECC AK,
  /// and the one SP verifies both.
  std::vector<tpm::QuoteFormat> backend_mix;

  /// Client-side retransmission policy for every member (default: one
  /// attempt, no retry).
  core::RetryPolicy client_retry;
  /// Forwarded to SpConfig::idempotent_replies.
  bool idempotent_replies = true;
  /// Transient-fault model for every member's TPM.
  tpm::TpmFaultProfile tpm_faults;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  std::size_t size() const { return members_.size(); }
  ServiceProvider& sp() { return *sp_; }
  tpm::PrivacyCa& ca() { return *ca_; }

  core::TrustedPathClient& client(std::size_t i) {
    return *members_.at(i).client;
  }
  drtm::Platform& platform(std::size_t i) {
    return *members_.at(i).platform;
  }
  const std::string& client_id(std::size_t i) const {
    return members_.at(i).id;
  }
  /// Member i's TPM generation (follows backend_mix round-robin).
  tpm::QuoteFormat backend(std::size_t i) {
    return members_.at(i).platform->backend();
  }
  net::Endpoint& endpoint(std::size_t i) {
    return members_.at(i).link->a();
  }
  /// Member i's full link (fault-injection counters live here).
  net::Link& link(std::size_t i) { return *members_.at(i).link; }

  /// The SP configuration this fleet was built against (same CA root,
  /// golden measurement and policies). Lets an external serving runtime
  /// (svc::VerifierService) spin up compatible verifier shards.
  const SpConfig& sp_config() const { return sp_config_; }

  /// Redirects every member's server-side endpoint to `handler`
  /// (client id, request frame) -> response frame, replacing the built-in
  /// single ServiceProvider. Used to put the whole fleet behind a
  /// svc::VerifierService.
  using FrameHandler = std::function<Bytes(const std::string&, BytesView)>;
  void route_frames_to(FrameHandler handler);

  /// Enrolls every member; returns how many succeeded.
  std::size_t enroll_all();

 private:
  struct Member {
    std::string id;
    std::unique_ptr<drtm::Platform> platform;
    std::unique_ptr<net::Link> link;
    std::unique_ptr<core::TrustedPathClient> client;
  };

  FleetConfig config_;
  SpConfig sp_config_;
  std::unique_ptr<tpm::PrivacyCa> ca_;
  std::unique_ptr<ServiceProvider> sp_;
  std::vector<Member> members_;
};

}  // namespace tp::sp
