#include "sp/attestation_port.h"

#include <string>

#include "tpm/privacy_ca.h"
#include "tpm/quote.h"
#include "tpm/tpm2_quote.h"

namespace tp::sp {

AttestationCryptoPort::AttestationCryptoPort(
    crypto::RsaPublicKey ca_public, Bytes golden_pcr17,
    std::vector<core::AttestationPolicy> accepted_policies,
    std::size_t expected_clients)
    : ca_public_(std::move(ca_public)),
      golden_pcr17_(std::move(golden_pcr17)),
      accepted_policies_(std::move(accepted_policies)) {
  // Pre-reserved so the steady-state hot path does not rehash.
  contexts_.reserve(expected_clients);
}

proto::RejectCode AttestationCryptoPort::verify_enrollment(
    const proto::EnrollEvidence& evidence) {
  // The checks are the same four for both quote formats -- certificate
  // chain, quote signature + nonce binding, attestation policy, key
  // parse -- but each step dispatches on the format because the wire
  // artifacts differ (AikCertificate/QuoteResult/RsaPublicKey vs
  // AkCertificate/Tpm2Quote/SEC1 point).
  const Bytes binding =
      core::enrollment_quote_binding(evidence.pubkey, evidence.nonce);
  std::vector<core::AttestationPolicy> policies = accepted_policies_;
  if (policies.empty()) {
    // Classic fallback: {PCR 17} == golden_pcr17, TPM 1.2 only. An SP
    // that admits 2.0 clients must publish kTpm2 policies.
    policies.push_back(core::AttestationPolicy{
        tpm::PcrSelection::of({17}), {golden_pcr17_}, "default",
        tpm::QuoteFormat::kTpm12});
  }
  const std::string client_id(evidence.client_id);

  if (evidence.format == static_cast<std::uint8_t>(tpm::QuoteFormat::kTpm2)) {
    // 1. AK certificate chains to the Privacy CA and carries an ECC AK.
    auto cert = tpm::AkCertificate::deserialize(evidence.certificate);
    if (!cert.ok()) return proto::RejectCode::kMalformedAikCertificate;
    if (!tpm::PrivacyCa::verify_key(ca_public_, cert.value()).ok()) {
      return proto::RejectCode::kUntrustedAikCertificate;
    }
    if (cert.value().key.format != tpm::QuoteFormat::kTpm2 ||
        !cert.value().key.ecdsa.has_value()) {
      return proto::RejectCode::kMalformedAikCertificate;
    }

    // 2. Quote: valid AK signature over the PCR digest + OUR binding.
    auto quote = tpm::Tpm2Quote::deserialize(evidence.quote);
    if (!quote.ok()) return proto::RejectCode::kMalformedQuote;
    if (!tpm::verify_tpm2_quote(*cert.value().key.ecdsa, quote.value(),
                                binding)
             .ok()) {
      return proto::RejectCode::kQuoteVerifyFailed;
    }

    // 3. A 2.0 quote carries H(values), not the values: match by
    // recomputing each kTpm2 policy's expected digest.
    bool policy_match = false;
    for (const auto& policy : policies) {
      if (policy.format != tpm::QuoteFormat::kTpm2 ||
          quote.value().selection != policy.selection) {
        continue;
      }
      auto expected = tpm::tpm2_pcr_digest(policy.values);
      if (expected.ok() &&
          ct_equal(expected.value(), quote.value().pcr_digest)) {
        policy_match = true;
        break;
      }
    }
    if (!policy_match) {
      return proto::RejectCode::kAttestationPolicyMismatch;
    }

    // 4. The confirmation key itself must parse (SEC1 P-256 point).
    auto key =
        tpm::parse_public_key(tpm::QuoteFormat::kTpm2, evidence.pubkey);
    if (!key.ok()) return proto::RejectCode::kMalformedPublicKey;
    // Build the cached verify context now (P-256 window-table
    // precompute), once per enrollment.
    contexts_.insert_or_assign(client_id,
                               tpm::AttestationVerifyContext(key.take()));
    return proto::RejectCode::kNone;
  }

  // ---- TPM 1.2 path (the seed's checks, verbatim) ----
  // 1. AIK certificate chains to the Privacy CA.
  auto cert = tpm::AikCertificate::deserialize(evidence.certificate);
  if (!cert.ok()) return proto::RejectCode::kMalformedAikCertificate;
  if (!tpm::PrivacyCa::verify(ca_public_, cert.value()).ok()) {
    return proto::RejectCode::kUntrustedAikCertificate;
  }

  // 2. Quote: valid AIK signature over PCR 17 and OUR nonce binding.
  auto quote = tpm::QuoteResult::deserialize(evidence.quote);
  if (!quote.ok()) return proto::RejectCode::kMalformedQuote;
  if (!tpm::verify_quote(cert.value().aik_public, quote.value(), binding)
           .ok()) {
    return proto::RejectCode::kQuoteVerifyFailed;
  }

  // 3. The quoted PCRs must match one accepted attestation policy: the
  // key was generated inside the GENUINE trusted-path PAL on a
  // supported platform flavour.
  bool policy_match = false;
  for (const auto& policy : policies) {
    if (policy.format != tpm::QuoteFormat::kTpm12 ||
        quote.value().selection != policy.selection ||
        quote.value().pcr_values.size() != policy.values.size()) {
      continue;
    }
    bool all_equal = true;
    for (std::size_t i = 0; i < policy.values.size(); ++i) {
      if (!ct_equal(quote.value().pcr_values[i], policy.values[i])) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) {
      policy_match = true;
      break;
    }
  }
  if (!policy_match) return proto::RejectCode::kAttestationPolicyMismatch;

  // 4. The key itself must parse.
  auto pk = crypto::RsaPublicKey::deserialize(evidence.pubkey);
  if (!pk.ok()) return proto::RejectCode::kMalformedPublicKey;

  // Build the cached verify context now (R^2-mod-n precompute), once
  // per enrollment, so every later confirmation verify skips it.
  contexts_.insert_or_assign(
      client_id,
      tpm::AttestationVerifyContext(tpm::AttestationKey::of(pk.take())));
  return proto::RejectCode::kNone;
}

proto::CryptoPort::ConfirmHandle AttestationCryptoPort::confirm_handle(
    std::string_view client_id) const {
  const auto it = contexts_.find(std::string(client_id));
  return it == contexts_.end() ? nullptr : &it->second;
}

std::uint8_t AttestationCryptoPort::format_of(ConfirmHandle handle) const {
  const auto* ctx = static_cast<const tpm::AttestationVerifyContext*>(handle);
  return static_cast<std::uint8_t>(ctx->format());
}

bool AttestationCryptoPort::verify_confirmation(ConfirmHandle handle,
                                                BytesView statement,
                                                BytesView signature) {
  const auto* ctx = static_cast<const tpm::AttestationVerifyContext*>(handle);
  return ctx->verify(crypto::HashAlg::kSha256, statement, signature).ok();
}

void AttestationCryptoPort::verify_confirmation_batch(
    std::span<const ConfirmItem> items, bool* ok_out) {
  std::vector<tpm::AttestationBatchItem> gathered;
  gathered.reserve(items.size());
  for (const ConfirmItem& item : items) {
    gathered.push_back(
        {static_cast<const tpm::AttestationVerifyContext*>(item.handle),
         crypto::HashAlg::kSha256, item.statement, item.signature});
  }
  const std::vector<Status> verdicts = tpm::attestation_verify_batch(gathered);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    ok_out[i] = verdicts[i].ok();
  }
}

}  // namespace tp::sp
