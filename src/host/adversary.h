// The adversary: malware with full control of the client OS.
//
// This is the paper's threat model -- the attacker owns ring 0, the
// browser, the disk (including the sealed key blob!) and the network
// stack, but not the TPM, the CPU's late-launch machinery, or the
// human's eyes and fingers. MalwareKit implements every attack strategy
// the design must defeat; the efficacy experiment (F2) runs them all and
// reports who gets through.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "drtm/platform.h"
#include "model/protocol_model.h"
#include "net/channel.h"
#include "pal/pal.h"
#include "pal/session.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace tp::host {

/// What one attack attempt produced.
struct AttackOutcome {
  bool sp_accepted = false;   // did the forged transaction go through?
  std::string stage;          // where the attack died (or "accepted")
  std::string detail;
};

/// A tampered trusted-path PAL: same protocol surface, but skips the
/// human check and tries to unseal + sign unconditionally. Its image
/// differs from the genuine one (that is what "tampered binary" means),
/// so its PCR 17 measurement differs -- the unseal must fail.
pal::PalDescriptor make_tampered_pal();

class MalwareKit {
 public:
  /// `stolen_sealed_key`: the enrollment blob lifted from the victim's
  /// disk -- the attacker legitimately has it; it is sealed, which is the
  /// only thing protecting it.
  MalwareKit(drtm::Platform& platform, net::Endpoint& sp,
             std::string victim_client_id, Bytes stolen_sealed_key,
             SimRng rng);

  // ---- attack strategies, one per protocol weakness probed -------------

  /// Submit the transaction and answer the challenge with a random
  /// "signature" (pure transaction generator, no TPM involvement).
  AttackOutcome forge_signature(const std::string& summary,
                                BytesView payload);

  /// Claim kConfirmed with an empty signature (protocol laziness probe).
  AttackOutcome confirm_without_signature(const std::string& summary,
                                          BytesView payload);

  /// Run the GENUINE PAL but answer its prompt by injecting the displayed
  /// code as synthetic keystrokes (defeated by the hardware input path).
  AttackOutcome inject_keystrokes(const std::string& summary,
                                  BytesView payload);

  /// Run a TAMPERED PAL that skips the human and signs directly
  /// (defeated by sealed-storage PCR binding).
  AttackOutcome run_tampered_pal(const std::string& summary,
                                 BytesView payload);

  /// Replay a previously observed valid confirmation against a fresh
  /// submission of the same transaction (defeated by one-shot nonces).
  AttackOutcome replay_confirmation(const core::TxConfirm& observed,
                                    const std::string& summary,
                                    BytesView payload);

  /// Substitute the transaction: let the real human confirm, but hand the
  /// PAL a forged transaction instead of the intended one. The trusted
  /// display shows the forgery; only an INATTENTIVE human confirms it.
  /// This is the residual risk the paper accepts on the user side.
  AttackOutcome substitute_transaction(pal::UserAgent& victim_user,
                                       const std::string& forged_summary,
                                       BytesView forged_payload);

 private:
  /// Submits the transaction and returns the SP's challenge.
  Result<core::TxChallenge> submit(const std::string& summary,
                                   BytesView payload);
  /// Sends TxConfirm, returns the SP's decision.
  Result<core::TxResult> finish(std::uint64_t tx_id, core::Verdict verdict,
                                BytesView signature);
  AttackOutcome settle(const Result<core::TxResult>& result,
                       const std::string& stage_on_reject);

  drtm::Platform* platform_;
  net::Endpoint* sp_;
  std::string victim_id_;
  Bytes stolen_sealed_key_;
  SimRng rng_;
};

// ---- the same attacks, in the model checker's vocabulary ---------------

/// MalwareKit's NETWORK-LEVEL strategies, named. The PAL/human-level
/// strategies (keystroke injection, tampered PAL, transaction
/// substitution) attack the device below the protocol and have no
/// rendition in the Dolev-Yao vocabulary -- the model treats the
/// client/TPM/human as one honest endpoint; those layers are covered by
/// the F2 efficacy runs instead.
enum class AttackStrategy : std::uint8_t {
  /// forge_signature AND confirm_without_signature: in the symbolic
  /// world a random signature and an empty one are the same symbol
  /// (garbage -- bytes that verify against nothing), which is exactly
  /// why the SP defeats both with the same check.
  kForgeConfirmation = 0,
  /// replay_confirmation: re-send an observed genuine confirmation
  /// against a freshly submitted transaction.
  kReplayConfirmation,
  /// The enrollment analog of run_tampered_pal's bluff: complete an
  /// enrollment with evidence that attests nothing.
  kGarbageEnrollment,
};
inline constexpr std::size_t kAttackStrategyCount = 3;

const char* attack_strategy_name(AttackStrategy strategy);

/// The strategy as an explicit action sequence over the symbolic world:
/// an honest prelude (the victim enrolls, and for replay also confirms
/// one genuine transaction -- that is how the attacker OBSERVES a
/// signature) followed by the attack deliveries. This is the same
/// sequence MalwareKit performs over the real link, re-expressed in
/// model::Action so the checker, the efficacy bench and the scripted
/// adversary all speak one vocabulary.
std::vector<model::Action> attack_script(AttackStrategy strategy);

/// Outcome of running a strategy's script through model::step_world.
struct ModelAttackOutcome {
  /// The SP settled an attacker-delivered confirmation/enrollment as
  /// accepted (any accept beyond the honest prelude's own).
  bool sp_accepted = false;
  /// First invariant the run tripped (kNone on a sound core).
  model::Invariant violated = model::Invariant::kNone;
};

/// Replays `strategy` against the symbolic protocol core, optionally
/// with seeded bugs re-introduced. With no bugs every strategy must
/// come back {false, kNone} -- the adversary suite asserts this stays
/// in lockstep with the real-stack outcomes of the F2 runs.
ModelAttackOutcome run_attack_in_model(AttackStrategy strategy,
                                       const model::SeededBugs& bugs = {});

}  // namespace tp::host
