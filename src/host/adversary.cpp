#include "host/adversary.h"

#include "crypto/rsa.h"
#include "devices/human.h"
#include "util/serial.h"

namespace tp::host {

using namespace core;

pal::PalDescriptor make_tampered_pal() {
  pal::PalDescriptor pal;
  pal.name = std::string(kPalName) + "-tampered";
  // A patched binary: same name/version but different build content.
  pal.image =
      pal::PalDescriptor::make_image(kPalName, kPalVersion, "backdoor-patch");
  pal.entry = [](pal::PalContext& ctx) {
    // Skip the command byte parsing subtleties: accept CONFIRM only.
    BinaryReader r(ctx.input());
    auto cmd = r.u8();
    if (!cmd.ok() ||
        static_cast<PalCommand>(cmd.value()) != PalCommand::kConfirm) {
      return Status(Err::kInvalidArgument, "tampered pal: confirm only");
    }
    const Bytes body(ctx.input().begin() + 1, ctx.input().end());
    auto input = PalConfirmInput::unmarshal(body);
    if (!input.ok()) return Status(input.error());

    // No screen, no human: straight to the key. This is the step the
    // sealing policy kills: PCR 17 holds the TAMPERED image's hash.
    auto key_material =
        ctx.tpm().unseal(ctx.locality(), input.value().sealed_key);
    if (!key_material.ok()) return Status(key_material.error());

    auto key = crypto::RsaPrivateKey::deserialize(key_material.value());
    if (!key.ok()) return Status(key.error());
    PalConfirmOutput out;
    out.verdict = Verdict::kConfirmed;
    out.attempts = 0;
    out.signature = crypto::rsa_sign(
        key.value(), crypto::HashAlg::kSha256,
        confirmation_statement(input.value().tx_digest, input.value().nonce,
                               Verdict::kConfirmed));
    ctx.set_output(out.marshal());
    return Status::ok_status();
  };
  return pal;
}

MalwareKit::MalwareKit(drtm::Platform& platform, net::Endpoint& sp,
                       std::string victim_client_id, Bytes stolen_sealed_key,
                       SimRng rng)
    : platform_(&platform),
      sp_(&sp),
      victim_id_(std::move(victim_client_id)),
      stolen_sealed_key_(std::move(stolen_sealed_key)),
      rng_(std::move(rng)) {}

Result<TxChallenge> MalwareKit::submit(const std::string& summary,
                                       BytesView payload) {
  TxSubmit msg{victim_id_, summary, Bytes(payload.begin(), payload.end())};
  sp_->send(envelope(MsgType::kTxSubmit, msg.serialize()));
  auto frame = sp_->receive();
  if (!frame.ok()) return frame.error();
  auto opened = open_envelope(frame.value());
  if (!opened.ok()) return opened.error();
  return TxChallenge::deserialize(opened.value().second);
}

Result<TxResult> MalwareKit::finish(std::uint64_t tx_id, Verdict verdict,
                                    BytesView signature) {
  TxConfirm msg;
  msg.client_id = victim_id_;
  msg.tx_id = tx_id;
  msg.verdict = verdict;
  msg.signature.assign(signature.begin(), signature.end());
  sp_->send(envelope(MsgType::kTxConfirm, msg.serialize()));
  auto frame = sp_->receive();
  if (!frame.ok()) return frame.error();
  auto opened = open_envelope(frame.value());
  if (!opened.ok()) return opened.error();
  return TxResult::deserialize(opened.value().second);
}

AttackOutcome MalwareKit::settle(const Result<TxResult>& result,
                                 const std::string& stage_on_reject) {
  AttackOutcome outcome;
  if (!result.ok()) {
    outcome.stage = stage_on_reject;
    outcome.detail = result.error().to_string();
    return outcome;
  }
  outcome.sp_accepted = result.value().accepted;
  outcome.stage = result.value().accepted ? "accepted" : stage_on_reject;
  outcome.detail = result.value().reason;
  return outcome;
}

AttackOutcome MalwareKit::forge_signature(const std::string& summary,
                                          BytesView payload) {
  auto challenge = submit(summary, payload);
  if (!challenge.ok()) {
    return AttackOutcome{false, "submit", challenge.error().to_string()};
  }
  const Bytes junk = rng_.next_bytes(128);
  return settle(finish(challenge.value().tx_id, Verdict::kConfirmed, junk),
                "sp-signature-check");
}

AttackOutcome MalwareKit::confirm_without_signature(
    const std::string& summary, BytesView payload) {
  auto challenge = submit(summary, payload);
  if (!challenge.ok()) {
    return AttackOutcome{false, "submit", challenge.error().to_string()};
  }
  return settle(finish(challenge.value().tx_id, Verdict::kConfirmed, {}),
                "sp-signature-check");
}

namespace {
/// Malware answering the PAL's prompt: reads the code off the screen
/// buffer and injects it as synthetic keystrokes.
class InjectingAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kInjected,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::millis(1);
  }
};
}  // namespace

AttackOutcome MalwareKit::inject_keystrokes(const std::string& summary,
                                            BytesView payload) {
  auto challenge = submit(summary, payload);
  if (!challenge.ok()) {
    return AttackOutcome{false, "submit", challenge.error().to_string()};
  }

  TxSubmit msg{victim_id_, summary, Bytes(payload.begin(), payload.end())};
  PalConfirmInput input;
  input.tx_summary = summary;
  input.tx_digest = msg.digest();
  input.nonce = challenge.value().nonce;
  input.sealed_key = stolen_sealed_key_;
  // Keep the session short: one attempt, tight timeout.
  input.max_attempts = 1;
  input.user_timeout_ns = SimDuration::seconds(5).ns;

  pal::SessionDriver driver(*platform_);
  InjectingAgent agent;
  driver.set_user_agent(&agent);
  auto session = driver.run(make_trusted_path_pal(), input.marshal());
  if (!session.ok() || !session.value().status.ok()) {
    return AttackOutcome{false, "pal-session", "session failed"};
  }
  auto out = PalConfirmOutput::unmarshal(session.value().output);
  if (!out.ok() || out.value().verdict != Verdict::kConfirmed) {
    // The injected code never arrived: the PAL timed out. Report honestly
    // to exercise the SP path (a lying report is forge_signature).
    return settle(finish(challenge.value().tx_id,
                         out.ok() ? out.value().verdict : Verdict::kTimeout,
                         {}),
                  "keyboard-exclusivity");
  }
  return settle(finish(challenge.value().tx_id, Verdict::kConfirmed,
                       out.value().signature),
                "sp-signature-check");
}

AttackOutcome MalwareKit::run_tampered_pal(const std::string& summary,
                                           BytesView payload) {
  auto challenge = submit(summary, payload);
  if (!challenge.ok()) {
    return AttackOutcome{false, "submit", challenge.error().to_string()};
  }

  TxSubmit msg{victim_id_, summary, Bytes(payload.begin(), payload.end())};
  PalConfirmInput input;
  input.tx_summary = summary;
  input.tx_digest = msg.digest();
  input.nonce = challenge.value().nonce;
  input.sealed_key = stolen_sealed_key_;

  pal::SessionDriver driver(*platform_);
  auto session = driver.run(make_tampered_pal(), input.marshal());
  if (!session.ok()) {
    return AttackOutcome{false, "pal-session",
                         session.error().to_string()};
  }
  if (!session.value().status.ok()) {
    // Expected: unseal failed under the tampered measurement. The attack
    // has no signature; try to bluff the SP anyway.
    const Bytes junk = rng_.next_bytes(128);
    auto result =
        finish(challenge.value().tx_id, Verdict::kConfirmed, junk);
    auto outcome = settle(result, "sealed-storage-pcr-binding");
    outcome.detail = session.value().status.to_string();
    return outcome;
  }
  auto out = PalConfirmOutput::unmarshal(session.value().output);
  if (!out.ok()) {
    return AttackOutcome{false, "pal-output", out.error().to_string()};
  }
  return settle(finish(challenge.value().tx_id, out.value().verdict,
                       out.value().signature),
                "sp-signature-check");
}

AttackOutcome MalwareKit::replay_confirmation(const TxConfirm& observed,
                                              const std::string& summary,
                                              BytesView payload) {
  auto challenge = submit(summary, payload);
  if (!challenge.ok()) {
    return AttackOutcome{false, "submit", challenge.error().to_string()};
  }
  // Re-send the old signature under the fresh tx_id.
  return settle(finish(challenge.value().tx_id, observed.verdict,
                       observed.signature),
                "nonce-freshness");
}

// ---- model-vocabulary renditions ---------------------------------------

namespace {

using model::Action;
using model::ActionKind;

/// The victim enrolls honestly: client begins, the network (attacker)
/// forwards each leg. Every attack assumes an enrolled victim, same as
/// MalwareKit's constructor assuming a stolen (sealed) key blob.
void push_honest_enrollment(std::vector<Action>& script) {
  script.push_back({ActionKind::kClientStart, model::kNoFrame});
  script.push_back({ActionKind::kDeliverToSp, model::kFrameEnrollBegin});
  script.push_back({ActionKind::kDeliverToClient,
                    static_cast<std::uint8_t>(model::kFrameEnrollChallenge0)});
  script.push_back(
      {ActionKind::kDeliverToSp,
       static_cast<std::uint8_t>(model::kFrameEnrollCompleteGenuine0)});
  script.push_back({ActionKind::kDeliverToClient, model::kFrameEnrollResultOk});
}

/// One honest confirmed transaction -- how the attacker, as the network,
/// OBSERVES a genuine confirmation to replay later.
void push_honest_transaction(std::vector<Action>& script) {
  script.push_back({ActionKind::kClientSubmitTx, model::kNoFrame});
  script.push_back({ActionKind::kDeliverToSp, model::kFrameTxSubmit});
  script.push_back({ActionKind::kDeliverToClient,
                    static_cast<std::uint8_t>(model::kFrameTxChallenge0)});
  script.push_back({ActionKind::kClientConfirm, model::kNoFrame});
  script.push_back({ActionKind::kDeliverToSp, model::tx_confirm_frame(0, 0)});
  script.push_back({ActionKind::kDeliverToClient, model::kFrameTxResultOk});
}

}  // namespace

const char* attack_strategy_name(AttackStrategy strategy) {
  switch (strategy) {
    case AttackStrategy::kForgeConfirmation: return "forge-confirmation";
    case AttackStrategy::kReplayConfirmation: return "replay-confirmation";
    case AttackStrategy::kGarbageEnrollment: return "garbage-enrollment";
  }
  return "unknown";
}

std::vector<model::Action> attack_script(AttackStrategy strategy) {
  std::vector<Action> script;
  switch (strategy) {
    case AttackStrategy::kForgeConfirmation:
      // Submit in the victim's name, answer the challenge with garbage
      // bytes claiming kConfirmed (forge_signature; an empty signature
      // is the same symbol).
      push_honest_enrollment(script);
      script.push_back({ActionKind::kDeliverToSp, model::kFrameTxSubmit});
      script.push_back({ActionKind::kDeliverToSp,
                        model::tx_confirm_frame(model::kSigGarbage, 0)});
      break;
    case AttackStrategy::kReplayConfirmation:
      // Watch one genuine confirmation go by, submit afresh (the SP
      // issues a new challenge), re-send the observed confirmation.
      push_honest_enrollment(script);
      push_honest_transaction(script);
      script.push_back({ActionKind::kDeliverToSp, model::kFrameTxSubmit});
      script.push_back({ActionKind::kDeliverToSp,
                        model::tx_confirm_frame(0, 0)});
      break;
    case AttackStrategy::kGarbageEnrollment:
      // Open an enrollment and complete it with evidence attesting
      // nothing (no prelude needed: enrollment is the attack surface).
      script.push_back({ActionKind::kDeliverToSp, model::kFrameEnrollBegin});
      script.push_back(
          {ActionKind::kDeliverToSp, model::kFrameEnrollCompleteGarbage});
      break;
  }
  return script;
}

ModelAttackOutcome run_attack_in_model(AttackStrategy strategy,
                                       const model::SeededBugs& bugs) {
  ModelAttackOutcome outcome;
  model::World world = model::initial_world();
  const std::vector<Action> script = attack_script(strategy);
  // Accepts credited to the honest prelude; anything beyond is the
  // attacker's. The garbage-enrollment strategy has no prelude, so any
  // registered enrollment at all is attacker-won.
  const bool replay = strategy == AttackStrategy::kReplayConfirmation;
  const std::uint8_t honest_accepts = replay ? 1 : 0;
  for (const Action& action : script) {
    const model::StepOutcome step = model::step_world(world, action, bugs);
    world = step.next;
    if (step.violated != model::Invariant::kNone &&
        outcome.violated == model::Invariant::kNone) {
      outcome.violated = step.violated;
    }
  }
  std::uint8_t accepts = 0;
  for (std::uint8_t n = 0; n < model::kTxNoncePool; ++n) {
    accepts = static_cast<std::uint8_t>(accepts + world.accepts(n));
  }
  switch (strategy) {
    case AttackStrategy::kForgeConfirmation:
    case AttackStrategy::kReplayConfirmation:
      outcome.sp_accepted = accepts > honest_accepts;
      break;
    case AttackStrategy::kGarbageEnrollment:
      outcome.sp_accepted = world.enrolled != 0;
      break;
  }
  return outcome;
}

AttackOutcome MalwareKit::substitute_transaction(
    pal::UserAgent& victim_user, const std::string& forged_summary,
    BytesView forged_payload) {
  auto challenge = submit(forged_summary, forged_payload);
  if (!challenge.ok()) {
    return AttackOutcome{false, "submit", challenge.error().to_string()};
  }

  TxSubmit msg{victim_id_, forged_summary,
               Bytes(forged_payload.begin(), forged_payload.end())};
  PalConfirmInput input;
  input.tx_summary = forged_summary;  // the trusted display shows the truth
  input.tx_digest = msg.digest();
  input.nonce = challenge.value().nonce;
  input.sealed_key = stolen_sealed_key_;

  pal::SessionDriver driver(*platform_);
  driver.set_user_agent(&victim_user);
  auto session = driver.run(make_trusted_path_pal(), input.marshal());
  if (!session.ok() || !session.value().status.ok()) {
    return AttackOutcome{false, "pal-session", "session failed"};
  }
  auto out = PalConfirmOutput::unmarshal(session.value().output);
  if (!out.ok()) {
    return AttackOutcome{false, "pal-output", out.error().to_string()};
  }
  auto outcome = settle(finish(challenge.value().tx_id, out.value().verdict,
                               out.value().signature),
                        "human-attention");
  return outcome;
}

}  // namespace tp::host
