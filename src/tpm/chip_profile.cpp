#include "tpm/chip_profile.h"

#include <stdexcept>

namespace tp::tpm {

namespace {
using D = SimDuration;

std::vector<ChipProfile> make_profiles() {
  std::vector<ChipProfile> chips;

  // Broadcom BCM5752: notoriously slow storage operations.
  chips.push_back(ChipProfile{
      .name = "Broadcom BCM5752",
      .startup = D::millis(25),
      .pcr_extend = D::millis(20),
      .pcr_read = D::millis(2),
      .quote = D::millis(972),
      .seal = D::millis(919),
      .unseal = D::millis(1013),
      .sign = D::millis(940),
      .create_wrap_key = D::seconds(35.0),
      .load_key2 = D::millis(1082),
      .get_random_16 = D::millis(3),
      .nv_read = D::millis(12),
      .nv_write = D::millis(28),
      .counter_increment = D::millis(24),
  });

  // Atmel AT97SC3203: quick Seal, slow Quote/Unseal.
  chips.push_back(ChipProfile{
      .name = "Atmel AT97SC3203",
      .startup = D::millis(18),
      .pcr_extend = D::millis(6),
      .pcr_read = D::millis(1),
      .quote = D::millis(778),
      .seal = D::millis(393),
      .unseal = D::millis(802),
      .sign = D::millis(755),
      .create_wrap_key = D::seconds(20.0),
      .load_key2 = D::millis(742),
      .get_random_16 = D::millis(2),
      .nv_read = D::millis(9),
      .nv_write = D::millis(21),
      .counter_increment = D::millis(19),
  });

  // Infineon SLB9635: the fastest of the generation; primary platform.
  chips.push_back(ChipProfile{
      .name = "Infineon SLB9635",
      .startup = D::millis(14),
      .pcr_extend = D::millis(12),
      .pcr_read = D::millis(1),
      .quote = D::millis(331),
      .seal = D::millis(191),
      .unseal = D::millis(262),
      .sign = D::millis(318),
      .create_wrap_key = D::seconds(11.0),
      .load_key2 = D::millis(285),
      .get_random_16 = D::millis(2),
      .nv_read = D::millis(7),
      .nv_write = D::millis(15),
      .counter_increment = D::millis(13),
  });

  // STMicro ST19NP18: mid-field.
  chips.push_back(ChipProfile{
      .name = "STMicro ST19NP18",
      .startup = D::millis(20),
      .pcr_extend = D::millis(8),
      .pcr_read = D::millis(1),
      .quote = D::millis(429),
      .seal = D::millis(313),
      .unseal = D::millis(565),
      .sign = D::millis(414),
      .create_wrap_key = D::seconds(16.0),
      .load_key2 = D::millis(510),
      .get_random_16 = D::millis(2),
      .nv_read = D::millis(8),
      .nv_write = D::millis(18),
      .counter_increment = D::millis(16),
  });

  return chips;
}
}  // namespace

const std::vector<ChipProfile>& standard_chips() {
  static const std::vector<ChipProfile> chips = make_profiles();
  return chips;
}

const ChipProfile& chip_by_name(const std::string& name) {
  for (const auto& chip : standard_chips()) {
    if (chip.name == name) return chip;
  }
  throw std::invalid_argument("chip_by_name: unknown chip " + name);
}

const ChipProfile& default_chip() {
  return chip_by_name("Infineon SLB9635");
}

}  // namespace tp::tpm
