#include "tpm/privacy_ca.h"

#include "crypto/drbg.h"
#include <memory>
#include "util/serial.h"

namespace tp::tpm {

Bytes AikCertificate::signed_payload() const {
  BinaryWriter w;
  w.var_string(platform_id);
  w.var_bytes(aik_public.serialize());
  return w.take();
}

Bytes AikCertificate::serialize() const {
  BinaryWriter w;
  w.var_string(platform_id);
  w.var_bytes(aik_public.serialize());
  w.var_bytes(ca_signature);
  return w.take();
}

Result<AikCertificate> AikCertificate::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = r.var_string();
  if (!id.ok()) return id.error();
  auto pk_bytes = r.var_bytes();
  if (!pk_bytes.ok()) return pk_bytes.error();
  auto pk = crypto::RsaPublicKey::deserialize(pk_bytes.value());
  if (!pk.ok()) return pk.error();
  auto sig = r.var_bytes();
  if (!sig.ok()) return sig.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return AikCertificate{id.take(), pk.take(), sig.take()};
}

Bytes AkCertificate::signed_payload() const {
  BinaryWriter w;
  w.var_string(platform_id);
  w.var_bytes(key.serialize());  // includes the format tag
  return w.take();
}

Bytes AkCertificate::serialize() const {
  BinaryWriter w;
  w.var_string(platform_id);
  w.var_bytes(key.serialize());
  w.var_bytes(ca_signature);
  return w.take();
}

Result<AkCertificate> AkCertificate::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = r.var_string();
  if (!id.ok()) return id.error();
  auto key_bytes = r.var_bytes();
  if (!key_bytes.ok()) return key_bytes.error();
  auto key = AttestationKey::deserialize(key_bytes.value());
  if (!key.ok()) return key.error();
  auto sig = r.var_bytes();
  if (!sig.ok()) return sig.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return AkCertificate{id.take(), key.take(), sig.take()};
}

PrivacyCa::PrivacyCa(BytesView seed, std::size_t key_bits) {
  auto drbg = std::make_shared<crypto::HmacDrbg>(
      concat(bytes_of("privacy-ca:"), seed));
  key_ = crypto::rsa_generate(
      key_bits, [drbg](std::size_t n) { return drbg->generate(n); });
  public_key_ = key_.public_key();
}

AikCertificate PrivacyCa::certify(
    const std::string& platform_id,
    const crypto::RsaPublicKey& aik_public) const {
  AikCertificate cert{platform_id, aik_public, {}};
  cert.ca_signature =
      crypto::rsa_sign(key_, crypto::HashAlg::kSha256, cert.signed_payload());
  return cert;
}

AkCertificate PrivacyCa::certify_key(const std::string& platform_id,
                                     const AttestationKey& key) const {
  AkCertificate cert{platform_id, key, {}};
  cert.ca_signature =
      crypto::rsa_sign(key_, crypto::HashAlg::kSha256, cert.signed_payload());
  return cert;
}

Status PrivacyCa::verify(const crypto::RsaPublicKey& ca_public,
                         const AikCertificate& cert) {
  auto verdict = crypto::rsa_verify(ca_public, crypto::HashAlg::kSha256,
                                    cert.signed_payload(), cert.ca_signature);
  if (!verdict.ok()) {
    return Error{Err::kAuthFail, "AIK certificate signature invalid"};
  }
  return Status::ok_status();
}

Status PrivacyCa::verify_key(const crypto::RsaPublicKey& ca_public,
                             const AkCertificate& cert) {
  auto verdict = crypto::rsa_verify(ca_public, crypto::HashAlg::kSha256,
                                    cert.signed_payload(), cert.ca_signature);
  if (!verdict.ok()) {
    return Error{Err::kAuthFail, "AK certificate signature invalid"};
  }
  return Status::ok_status();
}

}  // namespace tp::tpm
