#include "tpm/tpm2_quote.h"

#include "crypto/sha256.h"
#include "util/serial.h"

namespace tp::tpm {

Bytes tpm2_key_name(const crypto::EcdsaPublicKey& key) {
  crypto::Sha256 h;
  h.update(bytes_of("TPM2-AK-NAME"));
  h.update(key.serialize());
  return h.finalize();
}

Result<Bytes> tpm2_pcr_digest(const std::vector<Bytes>& values) {
  if (values.empty()) {
    return Error{Err::kInvalidArgument, "tpm2_pcr_digest: empty selection"};
  }
  crypto::Sha256 h;
  for (const Bytes& v : values) {
    if (v.size() != kPcrSizeSha256) {
      return Error{Err::kInvalidArgument,
                   "tpm2_pcr_digest: bad PCR value size"};
    }
    h.update(v);
  }
  return h.finalize();
}

Bytes Tpm2Quote::attest_body() const {
  BinaryWriter w;
  w.u32(kTpm2AttestMagic);
  w.u16(kTpm2AttestTypeQuote);
  w.var_bytes(qualified_signer);
  w.var_bytes(extra_data);
  w.u64(clock_info.clock_us);
  w.u32(clock_info.reset_count);
  w.u32(clock_info.restart_count);
  w.u64(firmware_version);
  w.var_bytes(selection.serialize());
  w.var_bytes(pcr_digest);
  return w.take();
}

Bytes Tpm2Quote::serialize() const {
  BinaryWriter w;
  const Bytes body = attest_body();
  w.var_bytes(body);
  w.var_bytes(signature);
  return w.take();
}

Result<Tpm2Quote> Tpm2Quote::deserialize(BytesView data) {
  BinaryReader outer(data);
  auto body = outer.var_bytes();
  if (!body.ok()) return body.error();
  auto signature = outer.var_bytes();
  if (!signature.ok()) return signature.error();
  if (auto s = outer.expect_exhausted(); !s.ok()) return s.error();

  BinaryReader r(body.value());
  auto magic = r.u32();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kTpm2AttestMagic) {
    return Error{Err::kInvalidArgument, "Tpm2Quote: bad attest magic"};
  }
  auto type = r.u16();
  if (!type.ok()) return type.error();
  if (type.value() != kTpm2AttestTypeQuote) {
    return Error{Err::kInvalidArgument, "Tpm2Quote: not an attest-quote"};
  }
  Tpm2Quote quote;
  auto signer = r.var_bytes();
  if (!signer.ok()) return signer.error();
  quote.qualified_signer = signer.take();
  auto extra = r.var_bytes();
  if (!extra.ok()) return extra.error();
  quote.extra_data = extra.take();
  auto clock = r.u64();
  if (!clock.ok()) return clock.error();
  quote.clock_info.clock_us = clock.value();
  auto resets = r.u32();
  if (!resets.ok()) return resets.error();
  quote.clock_info.reset_count = resets.value();
  auto restarts = r.u32();
  if (!restarts.ok()) return restarts.error();
  quote.clock_info.restart_count = restarts.value();
  auto firmware = r.u64();
  if (!firmware.ok()) return firmware.error();
  quote.firmware_version = firmware.value();
  auto sel_bytes = r.var_bytes();
  if (!sel_bytes.ok()) return sel_bytes.error();
  auto selection = PcrSelection::deserialize(sel_bytes.value());
  if (!selection.ok()) return selection.error();
  quote.selection = selection.take();
  auto digest = r.var_bytes();
  if (!digest.ok()) return digest.error();
  quote.pcr_digest = digest.take();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  quote.signature = signature.take();
  return quote;
}

Status verify_tpm2_quote(const crypto::EcdsaPublicKey& ak,
                         const Tpm2Quote& quote, BytesView expected_nonce) {
  if (!ct_equal(quote.extra_data, expected_nonce)) {
    return Error{Err::kNonceMismatch, "tpm2 quote: stale or wrong nonce"};
  }
  if (!ct_equal(quote.qualified_signer, tpm2_key_name(ak))) {
    return Error{Err::kAuthFail, "tpm2 quote: signer is not the expected AK"};
  }
  if (auto s = crypto::ecdsa_verify(ak, quote.attest_body(), quote.signature);
      !s.ok()) {
    return Error{Err::kAuthFail, "tpm2 quote: bad AK signature"};
  }
  return Status::ok_status();
}

}  // namespace tp::tpm
