#include "tpm/quote.h"

#include "util/serial.h"

namespace tp::tpm {

Bytes QuoteResult::serialize() const {
  BinaryWriter w;
  w.var_bytes(selection.serialize());
  w.u32(static_cast<std::uint32_t>(pcr_values.size()));
  for (const Bytes& v : pcr_values) w.var_bytes(v);
  w.var_bytes(external_data);
  w.var_bytes(signature);
  return w.take();
}

Result<QuoteResult> QuoteResult::deserialize(BytesView data) {
  BinaryReader r(data);
  auto sel_bytes = r.var_bytes();
  if (!sel_bytes.ok()) return sel_bytes.error();
  auto sel = PcrSelection::deserialize(sel_bytes.value());
  if (!sel.ok()) return sel.error();

  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() > kNumPcrs) {
    return Error{Err::kInvalidArgument, "QuoteResult: too many PCR values"};
  }
  QuoteResult q;
  q.selection = sel.take();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto v = r.var_bytes();
    if (!v.ok()) return v.error();
    q.pcr_values.push_back(v.take());
  }
  auto ext = r.var_bytes();
  if (!ext.ok()) return ext.error();
  q.external_data = ext.take();
  auto sig = r.var_bytes();
  if (!sig.ok()) return sig.error();
  q.signature = sig.take();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return q;
}

Bytes quote_info(BytesView composite, BytesView external_data) {
  BinaryWriter w;
  w.reserve(4 + 2 + 8 + composite.size() + external_data.size());
  w.raw(bytes_of("QUOT"));
  w.u16(0x0101);  // structure version 1.1, as in TPM 1.2
  w.var_bytes(composite);
  w.var_bytes(external_data);
  return w.take();
}

Status verify_quote(const crypto::RsaPublicKey& aik, const QuoteResult& quote,
                    BytesView expected_nonce) {
  if (!ct_equal(quote.external_data, expected_nonce)) {
    return Error{Err::kNonceMismatch, "verify_quote: stale or wrong nonce"};
  }
  auto composite =
      PcrBank::composite_of(quote.selection, quote.pcr_values);
  if (!composite.ok()) return composite.error();
  const Bytes info = quote_info(composite.value(), quote.external_data);
  auto verdict =
      crypto::rsa_verify(aik, crypto::HashAlg::kSha1, info, quote.signature);
  if (!verdict.ok()) {
    return Error{Err::kAuthFail, "verify_quote: AIK signature invalid"};
  }
  return Status::ok_status();
}

}  // namespace tp::tpm
