// Timing profiles for commodity v1.2 TPM chips.
//
// The paper's trusted-path latency is dominated by TPM command times, which
// vary wildly across vendors (the same Seal can cost 20 ms or 900 ms).
// Since no physical TPM is available here, the emulator charges each
// command's cost to the virtual clock using per-chip profiles calibrated
// from the published Flicker/TrustVisor measurements of the same chip
// generation the paper used. Absolute values are approximations; the
// cross-chip *ordering* and the "Seal/Unseal/Quote dominate everything"
// property are what the reproduction relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_clock.h"

namespace tp::tpm {

/// Transient-fault model for a chip. Commodity v1.2 parts occasionally
/// fail a command with a retryable error (LPC bus glitches, busy/retry
/// responses); drivers re-issue the command after a short backoff. The
/// emulator draws a fault per command from a deterministic stream:
/// each fault re-charges the command's cost plus `retry_backoff`, and a
/// command that faults more than `max_retries` times in a row fails for
/// real with a typed kInternal error (what a driver reports after its
/// retry budget is spent).
struct TpmFaultProfile {
  /// Per-command-issue probability of a transient failure.
  double transient_prob = 0.0;
  /// Re-issues allowed after the first fault before giving up.
  std::uint32_t max_retries = 3;
  SimDuration retry_backoff = SimDuration::millis(5);
  /// Fault-stream seed (mixed with the device seed, so two TPMs with
  /// the same profile do not fault in lockstep).
  std::uint64_t seed = 0x74706d666c74ull;  // "tpmflt"

  bool enabled() const { return transient_prob > 0.0; }
};

/// Per-command latency of one TPM chip.
struct ChipProfile {
  std::string name;

  SimDuration startup;
  SimDuration pcr_extend;
  SimDuration pcr_read;
  SimDuration quote;            // TPM_Quote (RSA-2048 sign inside the chip)
  SimDuration seal;             // TPM_Seal, small payload
  SimDuration unseal;           // TPM_Unseal
  SimDuration sign;             // TPM_Sign with a loaded key
  SimDuration create_wrap_key;  // TPM_CreateWrapKey (on-chip RSA keygen)
  SimDuration load_key2;        // TPM_LoadKey2
  SimDuration get_random_16;    // TPM_GetRandom, per 16 bytes
  SimDuration nv_read;
  SimDuration nv_write;
  SimDuration counter_increment;
};

/// The four chips used for the evaluation sweep. Values are calibrated
/// approximations of the published measurements for:
///   - Broadcom BCM5752 (HP dc5750)        -- slowest Seal/Unseal
///   - Atmel AT97SC3203 (Lenovo T60)       -- slow Quote
///   - Infineon SLB9635 (AMD test machine) -- fastest overall
///   - STMicro ST19NP18 (Dell Optiplex)    -- mid-field
const std::vector<ChipProfile>& standard_chips();

/// Profile by name; throws std::invalid_argument if unknown.
const ChipProfile& chip_by_name(const std::string& name);

/// The chip used by default in tests and examples (Infineon, the fastest,
/// matching the paper's primary test platform which was an AMD machine
/// with an Infineon TPM).
const ChipProfile& default_chip();

}  // namespace tp::tpm
