#include "tpm/tpm2_device.h"

#include "crypto/modes.h"
#include "crypto/sha256.h"
#include "tpm/tpm_device.h"  // TpmCapabilities
#include "util/serial.h"

namespace tp::tpm {

namespace {
constexpr char kSeal2Magic[] = "SEL2v1";
constexpr std::size_t kMagicLen = 6;
constexpr std::size_t kMacLen = 32;

// Reported by TPM2_GetCapability; the emulator models a fixed firmware.
constexpr std::uint64_t kFirmwareVersion = 0x20;

// Same decorrelation mix as the 1.2 device: profile fault seed FNV-1a'd
// with the device seed so co-deployed TPMs fault independently.
std::uint64_t fault_seed_for(const TpmFaultProfile& faults, BytesView seed) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ faults.seed;
  for (const std::uint8_t b : seed) h = (h ^ b) * 0x100000001b3ull;
  return h;
}
}  // namespace

Tpm2Device::Tpm2Device(const ChipProfile& profile, BytesView seed,
                       SimClock& clock)
    : Tpm2Device(profile, seed, clock, Options{}) {}

Tpm2Device::Tpm2Device(const ChipProfile& profile, BytesView seed,
                       SimClock& clock, Options options)
    : profile_(profile),
      clock_(&clock),
      options_(options),
      pcrs_(crypto::HashAlg::kSha256),
      fault_rng_(fault_seed_for(options.faults, seed)) {
  drbg_ = std::make_unique<crypto::HmacDrbg>(
      concat(bytes_of("tpm2-device:"), seed));
  storage_seed_ = drbg_->generate(32);
  seal_enc_.emplace(crypto::hmac_sha256(storage_seed_, bytes_of("seal-enc")));
  seal_mac_.emplace(crypto::hmac_sha256(storage_seed_, bytes_of("seal-mac")));
  ak_ = crypto::ecdsa_generate(
      [this](std::size_t n) { return drbg_->generate(n); });
  ak_public_ = ak_.public_key();
  ak_name_ = tpm2_key_name(ak_public_);
}

void Tpm2Device::charge(const char* label, SimDuration d) {
  ++command_count_;
  clock_->charge(std::string("tpm2:") + label, d);
}

Status Tpm2Device::charge_faulty(const char* label, SimDuration d) {
  charge(label, d);
  const TpmFaultProfile& faults = options_.faults;
  if (!faults.enabled()) return Status::ok_status();
  for (std::uint32_t attempt = 0; fault_rng_.chance(faults.transient_prob);
       ++attempt) {
    ++transient_faults_;
    if (attempt >= faults.max_retries) {
      ++fault_exhaustions_;
      return Error{Err::kInternal,
                   "tpm2: transient fault persisted past retry budget"};
    }
    ++fault_retries_;
    clock_->charge(std::string("tpm2:fault-retry:") + label,
                   faults.retry_backoff + d);
  }
  return Status::ok_status();
}

Bytes Tpm2Device::storage_mac(BytesView body) {
  seal_mac_->update(body);
  return seal_mac_->finalize();
}

Result<Bytes> Tpm2Device::pcr_extend(Locality locality, std::uint32_t index,
                                     BytesView digest) {
  if (auto s = charge_faulty("pcr_extend", profile_.pcr_extend); !s.ok()) {
    return s.error();
  }
  if (index >= 17 && index <= 22 &&
      static_cast<std::uint8_t>(locality) <
          static_cast<std::uint8_t>(Locality::kPal)) {
    return Error{Err::kIsolationViolation,
                 "pcr_extend: DRTM PCR requires locality >= 2"};
  }
  return pcrs_.extend(index, digest);
}

Result<Bytes> Tpm2Device::pcr_read(std::uint32_t index) {
  charge("pcr_read", profile_.pcr_read);
  return pcrs_.read(index);
}

Status Tpm2Device::pcr_reset(Locality locality, std::uint32_t index) {
  charge("pcr_reset", profile_.pcr_extend);
  return pcrs_.reset(index, locality);
}

Result<Bytes> Tpm2Device::pcr_composite(const PcrSelection& selection) const {
  return pcrs_.composite(selection);
}

Bytes Tpm2Device::get_random(std::size_t n) {
  const auto blocks = static_cast<std::int64_t>((n + 15) / 16);
  charge("get_random",
         SimDuration{profile_.get_random_16.ns * std::max<std::int64_t>(
                                                     blocks, 1)});
  return drbg_->generate(n);
}

Result<Tpm2Quote> Tpm2Device::quote(BytesView external_data,
                                    const PcrSelection& selection) {
  // Charged at the profile's generic sign cost: the on-chip ECDSA-P256
  // signature is the cheap step that the 1.2 RSA quote was not.
  if (auto s = charge_faulty("quote", profile_.sign); !s.ok()) {
    return s.error();
  }
  std::vector<Bytes> values;
  values.reserve(selection.indices.size());
  for (std::uint32_t i : selection.indices) {
    auto v = pcrs_.read(i);
    if (!v.ok()) return v.error();
    values.push_back(v.take());
  }
  auto digest = tpm2_pcr_digest(values);
  if (!digest.ok()) return digest.error();

  Tpm2Quote q;
  q.qualified_signer = ak_name_;
  q.extra_data.assign(external_data.begin(), external_data.end());
  q.clock_info.clock_us =
      static_cast<std::uint64_t>(clock_->now().ns / 1000);
  q.clock_info.reset_count = reset_count_;
  q.clock_info.restart_count = 0;
  q.firmware_version = kFirmwareVersion;
  q.selection = selection;
  q.pcr_digest = digest.take();
  q.signature = crypto::ecdsa_sign(ak_, q.attest_body());
  return q;
}

Status Tpm2Device::check_release_policy(Locality locality,
                                        std::uint8_t locality_mask,
                                        const PcrSelection& selection,
                                        BytesView composite) const {
  const std::uint8_t loc_bit =
      static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(locality));
  if ((locality_mask & loc_bit) == 0) {
    return Error{Err::kIsolationViolation,
                 "release policy: locality not authorized"};
  }
  auto current = pcrs_.composite(selection);
  if (!current.ok()) return current.error();
  if (!ct_equal(current.value(), composite)) {
    return Error{Err::kPcrMismatch, "release policy: PCR composite mismatch"};
  }
  return Status::ok_status();
}

Result<Bytes> Tpm2Device::seal(Locality locality,
                               const PcrSelection& selection,
                               std::uint8_t release_locality_mask,
                               BytesView data) {
  std::vector<Bytes> current_values;
  for (std::uint32_t i : selection.indices) {
    auto v = pcrs_.read(i);
    if (!v.ok()) return v.error();
    current_values.push_back(v.take());
  }
  return seal_to(locality, selection, current_values, release_locality_mask,
                 data);
}

Result<Bytes> Tpm2Device::seal_to(Locality locality,
                                  const PcrSelection& selection,
                                  const std::vector<Bytes>& release_values,
                                  std::uint8_t release_locality_mask,
                                  BytesView data) {
  if (auto s = charge_faulty("seal", profile_.seal); !s.ok()) {
    return s.error();
  }
  (void)locality;  // any locality may create a seal; release is restricted
  auto release_composite = PcrBank::composite_of(selection, release_values,
                                                 crypto::HashAlg::kSha256);
  if (!release_composite.ok()) return release_composite.error();

  const Bytes iv = drbg_->generate(crypto::kAesBlockSize);
  const Bytes ciphertext = crypto::cbc_encrypt(*seal_enc_, iv, data);

  BinaryWriter w;
  w.raw(bytes_of(kSeal2Magic));
  w.u8(release_locality_mask);
  w.var_bytes(selection.serialize());
  w.raw(release_composite.value());  // kPcrSizeSha256 bytes
  w.raw(iv);
  w.var_bytes(ciphertext);
  Bytes blob = w.take();
  append(blob, storage_mac(blob));
  return blob;
}

Result<Bytes> Tpm2Device::unseal(Locality locality, BytesView blob) {
  if (auto s = charge_faulty("unseal", profile_.unseal); !s.ok()) {
    return s.error();
  }
  if (blob.size() < kMagicLen + kMacLen) {
    return Error{Err::kAuthFail, "unseal: blob too short"};
  }
  const BytesView body = blob.subspan(0, blob.size() - kMacLen);
  const BytesView mac = blob.subspan(blob.size() - kMacLen);
  if (!ct_equal(storage_mac(body), mac)) {
    return Error{Err::kAuthFail, "unseal: MAC mismatch (tampered blob)"};
  }

  BinaryReader r(body);
  auto magic = r.raw(kMagicLen);
  if (!magic.ok() || !ct_equal(magic.value(), bytes_of(kSeal2Magic))) {
    return Error{Err::kAuthFail, "unseal: bad magic"};
  }
  auto locality_mask = r.u8();
  if (!locality_mask.ok()) return locality_mask.error();
  auto sel_bytes = r.var_bytes();
  if (!sel_bytes.ok()) return sel_bytes.error();
  auto selection = PcrSelection::deserialize(sel_bytes.value());
  if (!selection.ok()) return selection.error();
  auto release_composite = r.raw(kPcrSizeSha256);
  if (!release_composite.ok()) return release_composite.error();
  auto iv = r.raw(crypto::kAesBlockSize);
  if (!iv.ok()) return iv.error();
  auto ciphertext = r.var_bytes();
  if (!ciphertext.ok()) return ciphertext.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();

  if (auto s = check_release_policy(locality, locality_mask.value(),
                                    selection.value(),
                                    release_composite.value());
      !s.ok()) {
    return s.error();
  }

  auto plaintext =
      crypto::cbc_decrypt(*seal_enc_, iv.value(), ciphertext.value());
  if (!plaintext.ok()) {
    return Error{Err::kAuthFail, "unseal: decryption failed"};
  }
  return plaintext.take();
}

TpmCapabilities Tpm2Device::get_capability() const {
  TpmCapabilities caps;
  caps.spec_version_major = 2;
  caps.spec_version_minor = 0;
  caps.vendor = profile_.name;
  caps.num_pcrs = kNumPcrs;
  caps.max_nv_size = 2048;
  caps.supports_locality_4 = true;
  return caps;
}

}  // namespace tp::tpm
