// TPM 2.0 device emulator.
//
// The second attestation backend beside TpmDevice (1.2): a SHA-256 PCR
// bank, TPMS_ATTEST-shaped quotes signed by an ECDSA-P256 attestation
// key, and PCR-policy-bound sealed storage with SHA-256 composites.
// Locality semantics, the chip-profile virtual-clock charging and the
// transient-fault/retry model are identical to the 1.2 device -- the
// trusted-path argument does not change with the TPM generation, only
// the hash widths and the signature scheme do.
//
// Command costs reuse the 1.2 chip profiles: PCR/seal/random costs carry
// over directly, and the quote is charged at the profile's generic sign
// cost, reflecting that an on-chip P-256 ECDSA signature is far cheaper
// than the RSA-2048 quote of the same-generation 1.2 part.
//
// Emulation note on sealed storage: as with TpmDevice, blobs are
// protected by AES-256-CBC + HMAC-SHA256 keys derived from a device-
// internal storage seed standing in for the 2.0 storage hierarchy; the
// trust property (only this device can unseal its blobs) is preserved.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/ecdsa.h"
#include "crypto/hmac.h"
#include "tpm/chip_profile.h"
#include "tpm/pcr.h"
#include "tpm/tpm2_quote.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tp::tpm {

struct TpmCapabilities;  // tpm_device.h

class Tpm2Device {
 public:
  struct Options {
    /// Transient-fault model (disabled by default); same semantics as
    /// TpmDevice::Options::faults -- TPM2 commands fault and retry
    /// through the identical driver-style loop.
    TpmFaultProfile faults;
  };

  /// `seed` determines all device-internal randomness (storage seed,
  /// AK, RNG); `clock` receives the per-command latency charges.
  Tpm2Device(const ChipProfile& profile, BytesView seed, SimClock& clock);
  Tpm2Device(const ChipProfile& profile, BytesView seed, SimClock& clock,
             Options options);

  const ChipProfile& profile() const { return profile_; }
  /// The ECC attestation key (AK) public half; certified by the privacy
  /// CA during provisioning.
  const crypto::EcdsaPublicKey& ak_public() const { return ak_public_; }

  // ---- PCR commands (SHA-256 bank) ----------------------------------
  Result<Bytes> pcr_extend(Locality locality, std::uint32_t index,
                           BytesView digest);
  Result<Bytes> pcr_read(std::uint32_t index);
  Status pcr_reset(Locality locality, std::uint32_t index);
  /// Composite over live PCRs (free of charge: host-side helper).
  Result<Bytes> pcr_composite(const PcrSelection& selection) const;

  // ---- randomness ----------------------------------------------------
  Bytes get_random(std::size_t n);

  // ---- attestation ---------------------------------------------------
  /// TPM2_Quote: signs the pcrDigest of `selection` with the AK, bound
  /// to the caller's fresh `external_data` (extraData) and stamped with
  /// the device clock info.
  Result<Tpm2Quote> quote(BytesView external_data,
                          const PcrSelection& selection);

  // ---- sealed storage -------------------------------------------------
  /// Seals `data` to the *current* values of the selected PCRs and a
  /// release-locality mask (bit i = locality i allowed).
  Result<Bytes> seal(Locality locality, const PcrSelection& selection,
                     std::uint8_t release_locality_mask, BytesView data);

  /// Seals with explicit release-time PCR values (TPM 2.0 policy
  /// sessions authorize against a future PCR state the same way the 1.2
  /// digestAtRelease did); the enrollment PAL pre-seals state for the
  /// confirmation PAL with this.
  Result<Bytes> seal_to(Locality locality, const PcrSelection& selection,
                        const std::vector<Bytes>& release_values,
                        std::uint8_t release_locality_mask, BytesView data);

  /// Releases sealed data iff the release policy matches the live PCRs
  /// and locality. Tamper -> kAuthFail; policy mismatch -> kPcrMismatch.
  Result<Bytes> unseal(Locality locality, BytesView blob);

  // ---- capability ------------------------------------------------------
  TpmCapabilities get_capability() const;

  /// Number of commands executed (for the benchmark harness).
  std::uint64_t command_count() const { return command_count_; }

  /// Fault-model observability; same meaning as on TpmDevice.
  std::uint64_t transient_faults() const { return transient_faults_; }
  std::uint64_t fault_retries() const { return fault_retries_; }
  std::uint64_t fault_exhaustions() const { return fault_exhaustions_; }

 private:
  void charge(const char* label, SimDuration d);
  Status charge_faulty(const char* label, SimDuration d);
  Bytes storage_mac(BytesView body);
  Status check_release_policy(Locality locality, std::uint8_t locality_mask,
                              const PcrSelection& selection,
                              BytesView composite) const;

  ChipProfile profile_;
  SimClock* clock_;
  Options options_;
  PcrBank pcrs_;
  std::unique_ptr<crypto::HmacDrbg> drbg_;
  Bytes storage_seed_;
  std::optional<crypto::Aes> seal_enc_;
  std::optional<crypto::HmacSha256Ctx> seal_mac_;
  crypto::EcdsaPrivateKey ak_;
  crypto::EcdsaPublicKey ak_public_;
  Bytes ak_name_;
  std::uint32_t reset_count_ = 1;  // TPM2_Startup(CLEAR) at construction
  std::uint64_t command_count_ = 0;
  SimRng fault_rng_;
  std::uint64_t transient_faults_ = 0;
  std::uint64_t fault_retries_ = 0;
  std::uint64_t fault_exhaustions_ = 0;
};

}  // namespace tp::tpm
