#include "tpm/attestation.h"

#include <utility>

#include "crypto/sha256.h"
#include "util/serial.h"

namespace tp::tpm {

std::optional<QuoteFormat> quote_format_from_wire(std::uint8_t tag) {
  switch (tag) {
    case static_cast<std::uint8_t>(QuoteFormat::kTpm12):
      return QuoteFormat::kTpm12;
    case static_cast<std::uint8_t>(QuoteFormat::kTpm2):
      return QuoteFormat::kTpm2;
    default:
      return std::nullopt;
  }
}

AttestationKey AttestationKey::of(crypto::RsaPublicKey key) {
  AttestationKey out;
  out.format = QuoteFormat::kTpm12;
  out.rsa = std::move(key);
  return out;
}

AttestationKey AttestationKey::of(crypto::EcdsaPublicKey key) {
  AttestationKey out;
  out.format = QuoteFormat::kTpm2;
  out.ecdsa = std::move(key);
  return out;
}

Bytes AttestationKey::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(format));
  if (format == QuoteFormat::kTpm2) {
    w.var_bytes(ecdsa ? ecdsa->serialize() : Bytes());
  } else {
    w.var_bytes(rsa ? rsa->serialize() : Bytes());
  }
  return w.take();
}

Result<AttestationKey> AttestationKey::deserialize(BytesView data) {
  BinaryReader r(data);
  auto tag = r.u8();
  if (!tag.ok()) return tag.error();
  const auto format = quote_format_from_wire(tag.value());
  if (!format) {
    return Error{Err::kInvalidArgument, "AttestationKey: unknown format tag"};
  }
  auto key_bytes = r.var_bytes();
  if (!key_bytes.ok()) return key_bytes.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  auto parsed = parse_public_key(*format, key_bytes.value());
  if (!parsed.ok()) return parsed.error();
  return parsed.take();
}

Bytes AttestationKey::fingerprint() const {
  return crypto::Sha256::hash(serialize());
}

Result<AttestationKey> parse_public_key(QuoteFormat format, BytesView data) {
  if (format == QuoteFormat::kTpm2) {
    auto key = crypto::EcdsaPublicKey::deserialize(data);
    if (!key.ok()) return key.error();
    return AttestationKey::of(key.take());
  }
  auto key = crypto::RsaPublicKey::deserialize(data);
  if (!key.ok()) return key.error();
  return AttestationKey::of(key.take());
}

AttestationVerifyContext::AttestationVerifyContext(AttestationKey key)
    : key_(std::move(key)) {
  if (key_.format == QuoteFormat::kTpm2) {
    ecdsa_.emplace(key_.ecdsa ? *key_.ecdsa : crypto::EcdsaPublicKey{});
  } else {
    rsa_.emplace(key_.rsa ? *key_.rsa : crypto::RsaPublicKey{});
  }
}

Status AttestationVerifyContext::verify(crypto::HashAlg alg, BytesView message,
                                        BytesView signature) const {
  if (key_.format == QuoteFormat::kTpm2) {
    // The 2.0 backend pairs P-256 with SHA-256 exclusively; a request
    // for any other hash is a caller bug surfaced as a verify failure.
    if (alg != crypto::HashAlg::kSha256) {
      return Error{Err::kAuthFail,
                   "AttestationVerifyContext: ECDSA backend is SHA-256 only"};
    }
    return ecdsa_->verify(message, signature);
  }
  return rsa_->verify(alg, message, signature);
}

std::vector<Status> attestation_verify_batch(
    std::span<const AttestationBatchItem> items) {
  const std::size_t n = items.size();
  std::vector<Status> out(n);

  // Partition by backend, preserving original indices so the verdicts
  // scatter back in order. Stateless failures (missing context, wrong
  // hash for the ECDSA backend) settle immediately with the exact
  // single-verify error.
  std::vector<std::size_t> rsa_idx, ecdsa_idx;
  std::vector<crypto::RsaBatchItem> rsa_items;
  std::vector<crypto::EcdsaBatchItem> ecdsa_items;
  for (std::size_t i = 0; i < n; ++i) {
    const AttestationBatchItem& item = items[i];
    if (!item.ctx) {
      out[i] = Error{Err::kAuthFail,
                     "AttestationVerifyContext: missing context"};
      continue;
    }
    if (item.ctx->key_.format == QuoteFormat::kTpm2) {
      if (item.alg != crypto::HashAlg::kSha256) {
        out[i] = Error{
            Err::kAuthFail,
            "AttestationVerifyContext: ECDSA backend is SHA-256 only"};
        continue;
      }
      ecdsa_idx.push_back(i);
      ecdsa_items.push_back(
          {&*item.ctx->ecdsa_, item.message, item.signature});
    } else {
      rsa_idx.push_back(i);
      rsa_items.push_back(
          {&*item.ctx->rsa_, item.alg, item.message, item.signature});
    }
  }
  const std::vector<Status> rsa_out = crypto::rsa_verify_batch(rsa_items);
  for (std::size_t j = 0; j < rsa_idx.size(); ++j) {
    out[rsa_idx[j]] = rsa_out[j];
  }
  const std::vector<Status> ecdsa_out = crypto::ecdsa_verify_batch(ecdsa_items);
  for (std::size_t j = 0; j < ecdsa_idx.size(); ++j) {
    out[ecdsa_idx[j]] = ecdsa_out[j];
  }
  return out;
}

}  // namespace tp::tpm
