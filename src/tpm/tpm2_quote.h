// TPM 2.0 quote structures and remote verification.
//
// TPM2_Quote differs from the 1.2 TPM_Quote in three load-bearing ways:
//   1. the signed payload is a TPMS_ATTEST-shaped structure (magic,
//      type, qualified signer name, clock info) rather than the bare
//      "QUOT" composite;
//   2. the quote carries a single pcrDigest -- SHA-256 over the
//      concatenated selected PCR values -- instead of the values
//      themselves, so the verifier recomputes the digest from the
//      golden values it already holds;
//   3. the signature is ECDSA-P256 by an ECC attestation key (AK), not
//      RSASSA by an RSA AIK.
//
// The emulation keeps the TPM's field semantics but uses the repo's
// canonical big-endian serialization rather than TCG marshalling.
#pragma once

#include <vector>

#include "crypto/ecdsa.h"
#include "tpm/pcr.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::tpm {

/// TPMS_ATTEST header constants: TPM_GENERATED_VALUE ("\xffTCG") and
/// TPM_ST_ATTEST_QUOTE.
inline constexpr std::uint32_t kTpm2AttestMagic = 0xFF544347;
inline constexpr std::uint16_t kTpm2AttestTypeQuote = 0x8018;

/// TPM2B_NAME stand-in: SHA-256 over a domain prefix and the AK's SEC1
/// serialization. Binds the attest blob to the signing key.
Bytes tpm2_key_name(const crypto::EcdsaPublicKey& key);

/// TPM2_Quote's pcrDigest: SHA-256 over the concatenated selected PCR
/// values, which must each be one SHA-256-bank register (32 bytes).
Result<Bytes> tpm2_pcr_digest(const std::vector<Bytes>& values);

/// TPMS_CLOCK_INFO subset carried in every attest blob.
struct Tpm2ClockInfo {
  std::uint64_t clock_us = 0;        // virtual time at quote
  std::uint32_t reset_count = 0;     // TPM2_Startup(CLEAR) count
  std::uint32_t restart_count = 0;   // resume count
};

/// Output of TPM2_Quote: the attest fields plus the AK signature over
/// their canonical encoding (attest_body()).
struct Tpm2Quote {
  Bytes qualified_signer;  // tpm2_key_name() of the AK
  Bytes extra_data;        // verifier nonce (anti-replay)
  Tpm2ClockInfo clock_info;
  std::uint64_t firmware_version = 0;
  PcrSelection selection;
  Bytes pcr_digest;  // SHA-256 over the selected PCR values
  Bytes signature;   // ECDSA-P256 r||s over attest_body()

  /// The TPMS_ATTEST-shaped byte string the AK signs.
  Bytes attest_body() const;

  Bytes serialize() const;
  /// Strict parse; enforces the attest magic and quote type so a
  /// structurally valid blob of another attest kind cannot pass as a
  /// quote.
  static Result<Tpm2Quote> deserialize(BytesView data);
};

/// Full remote verification:
///   1. freshness: extra_data equals `expected_nonce` (constant-time);
///   2. signer binding: qualified_signer is the name of `ak`;
///   3. signature: ECDSA-P256(SHA-256) over attest_body().
/// Comparing pcr_digest against the digest of golden values is the
/// caller's job (the quote proves what the digest WAS; policy decides
/// what it MUST be).
Status verify_tpm2_quote(const crypto::EcdsaPublicKey& ak,
                         const Tpm2Quote& quote, BytesView expected_nonce);

}  // namespace tp::tpm
