// Platform Configuration Registers with TPM locality semantics.
//
// The security argument of the whole system rests on three PCR facts:
//   1. PCRs can only be *extended* (hash-chained), never set;
//   2. the DRTM PCRs (17-22) boot to the all-ones "uninitialized" value
//      and can only be reset to zero by the hardware late-launch event
//      (locality 4), so software can never fake a clean DRTM state;
//   3. sealing and quoting bind to PCR *composites*, so any deviation in
//      the measured-launch history is visible.
//
// The bank is digest-algorithm-parametric: TPM 1.2 devices hold one
// SHA-1 bank (20-byte registers), TPM 2.0 devices hold a SHA-256 bank
// (32-byte registers). Register count, locality rules and reset
// semantics are identical across banks; only the hash and the register
// width differ.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/rsa.h"  // HashAlg
#include "util/bytes.h"
#include "util/result.h"

namespace tp::tpm {

inline constexpr std::size_t kNumPcrs = 24;
/// Register width of the TPM 1.2 SHA-1 bank. Kept as the legacy name
/// because the 1.2 wire formats (quote composites, seal blobs) are
/// defined in terms of it; SHA-256 banks use kPcrSizeSha256.
inline constexpr std::size_t kPcrSize = 20;
inline constexpr std::size_t kPcrSizeSha256 = 32;

/// Register width of a bank using `alg`.
constexpr std::size_t pcr_digest_size(crypto::HashAlg alg) {
  return alg == crypto::HashAlg::kSha256 ? kPcrSizeSha256 : kPcrSize;
}

/// DRTM registers: reset by late launch, never by software.
inline constexpr std::uint32_t kPcrDrtmMeasurement = 17;  // PAL identity
inline constexpr std::uint32_t kPcrDrtmInputs = 18;       // PAL inputs/extra
inline constexpr std::uint32_t kPcrDrtmDetails = 19;

/// Hardware locality of a TPM access. Locality 4 is asserted only by the
/// CPU during the late-launch instruction; software (even ring 0) cannot
/// produce it. The PAL runs at locality 2; the legacy OS at locality 0/1.
enum class Locality : std::uint8_t {
  kLegacy = 0,
  kOs = 1,
  kPal = 2,
  kAux = 3,
  kDrtmHardware = 4,
};

/// Which PCRs participate in a composite (selection bitmap, TPM 1.2
/// TPM_PCR_SELECTION semantics).
struct PcrSelection {
  std::vector<std::uint32_t> indices;  // sorted, unique

  static PcrSelection of(std::initializer_list<std::uint32_t> idx);
  /// The selection used by the trusted path: {17, 18}.
  static PcrSelection drtm();

  Bytes serialize() const;
  static Result<PcrSelection> deserialize(BytesView data);

  bool operator==(const PcrSelection& other) const = default;
};

class PcrBank {
 public:
  /// Power-on state: static PCRs zero, DRTM PCRs all-ones. The default
  /// bank is the TPM 1.2 SHA-1 one; pass HashAlg::kSha256 for a TPM 2.0
  /// bank with 32-byte registers.
  PcrBank();
  explicit PcrBank(crypto::HashAlg alg);

  crypto::HashAlg alg() const { return alg_; }
  /// Register (and extend-input) width of this bank in bytes.
  std::size_t digest_size() const { return pcr_digest_size(alg_); }

  /// Extend: pcr[i] = H(pcr[i] || digest) with this bank's hash. The
  /// input digest length must equal digest_size() -- a 20-byte SHA-1
  /// value cannot be extended into a SHA-256 bank or vice versa.
  /// Returns the new register value.
  Result<Bytes> extend(std::uint32_t index, BytesView digest);

  Result<Bytes> read(std::uint32_t index) const;

  /// TPM_PCR_Reset semantics: PCRs 16 and 23 are resettable by software;
  /// 17-22 only at locality >= the per-register requirement (17 requires
  /// locality 4, i.e., the hardware late-launch event). Static PCRs 0-15
  /// are never resettable.
  Status reset(std::uint32_t index, Locality locality);

  /// Hash (with this bank's algorithm) over the canonical encoding of
  /// (selection, values): the composite that Seal and Quote bind to.
  Result<Bytes> composite(const PcrSelection& selection) const;

  /// Composite over explicitly provided values (used by remote verifiers
  /// that hold golden values rather than a live bank). Every value must
  /// be pcr_digest_size(alg) bytes.
  static Result<Bytes> composite_of(
      const PcrSelection& selection, const std::vector<Bytes>& values,
      crypto::HashAlg alg = crypto::HashAlg::kSha1);

 private:
  crypto::HashAlg alg_;
  std::array<Bytes, kNumPcrs> pcrs_;
};

}  // namespace tp::tpm
