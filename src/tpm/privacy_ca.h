// Privacy CA: certifies Attestation Identity Keys.
//
// In the deployed system a Privacy CA (or DAA) vouches that an AIK lives
// inside a genuine TPM, so a service provider that trusts the CA can trust
// quotes signed by the AIK. The emulation keeps the same trust topology:
// the CA signs (platform_id, aik_public) and the SP verifies that
// certificate before accepting any quote.
#pragma once

#include <string>

#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::tpm {

/// AIK certificate: binds a platform identity to an AIK public key.
struct AikCertificate {
  std::string platform_id;
  crypto::RsaPublicKey aik_public;
  Bytes ca_signature;

  Bytes serialize() const;
  static Result<AikCertificate> deserialize(BytesView data);

  /// The byte string the CA signs.
  Bytes signed_payload() const;
};

class PrivacyCa {
 public:
  /// `seed` makes the CA key deterministic per experiment.
  explicit PrivacyCa(BytesView seed, std::size_t key_bits = 1024);

  const crypto::RsaPublicKey& public_key() const { return public_key_; }

  /// Issues a certificate for `aik_public` under `platform_id`. A real CA
  /// would run the TPM_MakeIdentity/ActivateIdentity challenge first; the
  /// emulated TPM hands its AIK straight to the caller, so issuance here
  /// is unconditional and the interesting verification happens at the SP.
  AikCertificate certify(const std::string& platform_id,
                         const crypto::RsaPublicKey& aik_public) const;

  /// Checks a certificate against a known CA public key.
  static Status verify(const crypto::RsaPublicKey& ca_public,
                       const AikCertificate& cert);

 private:
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;
};

}  // namespace tp::tpm
