// Privacy CA: certifies attestation keys.
//
// In the deployed system a Privacy CA (or DAA) vouches that an
// attestation key lives inside a genuine TPM, so a service provider that
// trusts the CA can trust quotes signed by that key. The emulation keeps
// the same trust topology: the CA signs (platform_id, key) and the SP
// verifies that certificate before accepting any quote.
//
// Two certificate shapes share one CA signing key:
//   AikCertificate -- the original TPM 1.2 form, RSA AIK only (wire
//                     format unchanged for compatibility);
//   AkCertificate  -- format-tagged AttestationKey (RSA AIK or ECC AK),
//                     used by mixed 1.2/2.0 deployments.
#pragma once

#include <string>

#include "crypto/rsa.h"
#include "tpm/attestation.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::tpm {

/// AIK certificate: binds a platform identity to an AIK public key.
struct AikCertificate {
  std::string platform_id;
  crypto::RsaPublicKey aik_public;
  Bytes ca_signature;

  Bytes serialize() const;
  static Result<AikCertificate> deserialize(BytesView data);

  /// The byte string the CA signs.
  Bytes signed_payload() const;
};

/// Format-tagged attestation-key certificate: binds a platform identity
/// to an AttestationKey (RSA AIK for 1.2, ECC AK for 2.0). The signed
/// payload includes the format tag, so a certificate cannot be replayed
/// across backends.
struct AkCertificate {
  std::string platform_id;
  AttestationKey key;
  Bytes ca_signature;

  Bytes serialize() const;
  static Result<AkCertificate> deserialize(BytesView data);

  /// The byte string the CA signs.
  Bytes signed_payload() const;
};

class PrivacyCa {
 public:
  /// `seed` makes the CA key deterministic per experiment.
  explicit PrivacyCa(BytesView seed, std::size_t key_bits = 1024);

  const crypto::RsaPublicKey& public_key() const { return public_key_; }

  /// Issues a certificate for `aik_public` under `platform_id`. A real CA
  /// would run the TPM_MakeIdentity/ActivateIdentity challenge first; the
  /// emulated TPM hands its AIK straight to the caller, so issuance here
  /// is unconditional and the interesting verification happens at the SP.
  AikCertificate certify(const std::string& platform_id,
                         const crypto::RsaPublicKey& aik_public) const;

  /// Issues a format-tagged certificate (RSA AIK or ECC AK). Same
  /// unconditional-issuance caveat as certify().
  AkCertificate certify_key(const std::string& platform_id,
                            const AttestationKey& key) const;

  /// Checks a certificate against a known CA public key.
  static Status verify(const crypto::RsaPublicKey& ca_public,
                       const AikCertificate& cert);
  static Status verify_key(const crypto::RsaPublicKey& ca_public,
                           const AkCertificate& cert);

 private:
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;
};

}  // namespace tp::tpm
