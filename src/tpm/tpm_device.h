// TPM 1.2 device emulator.
//
// Implements the command subset the trusted path depends on -- PCR
// extend/read/reset, GetRandom, Quote, Seal/Unseal, CreateWrapKey/
// LoadKey2/Sign, monotonic counters and NVRAM -- with the v1.2 semantics
// that matter for security: PCR-bound release policies, locality checks,
// and AIK-rooted quoting. Every command charges its chip-profile cost to
// the virtual clock, which is how the latency experiments reproduce the
// paper's numbers.
//
// Emulation note on sealed storage: the real chip protects seal blobs and
// wrapped keys with its RSA storage hierarchy (SRK). The emulator derives
// AES-256 + HMAC keys from an SRK seed that never leaves the device
// object. The trust property is identical -- only this TPM instance can
// unseal what it sealed -- while keeping blobs compact and the code
// auditable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "tpm/chip_profile.h"
#include "tpm/pcr.h"
#include "tpm/quote.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace tp::tpm {

/// Static facts a TPM_GetCapability query reports.
struct TpmCapabilities {
  std::uint32_t spec_version_major;
  std::uint32_t spec_version_minor;
  std::string vendor;
  std::size_t num_pcrs;
  std::size_t max_nv_size;
  bool supports_locality_4;
};

class TpmDevice {
 public:
  struct Options {
    /// AIK / wrapped-key modulus size. 1024 keeps tests fast; use 2048 to
    /// mirror deployed configurations in benchmarks.
    std::size_t key_bits = 1024;
    /// Transient-fault model (disabled by default). When enabled, every
    /// fallible command may fault and be re-issued with backoff; see
    /// TpmFaultProfile.
    TpmFaultProfile faults;
  };

  /// `seed` determines all device-internal randomness (SRK seed, AIK,
  /// RNG); `clock` receives the per-command latency charges.
  TpmDevice(const ChipProfile& profile, BytesView seed, SimClock& clock);
  TpmDevice(const ChipProfile& profile, BytesView seed, SimClock& clock,
            Options options);

  const ChipProfile& profile() const { return profile_; }
  const crypto::RsaPublicKey& aik_public() const { return aik_public_; }

  // ---- PCR commands -------------------------------------------------
  Result<Bytes> pcr_extend(Locality locality, std::uint32_t index,
                           BytesView digest);
  Result<Bytes> pcr_read(std::uint32_t index);
  Status pcr_reset(Locality locality, std::uint32_t index);
  /// Composite over live PCRs (free of charge: host-side helper).
  Result<Bytes> pcr_composite(const PcrSelection& selection) const;

  // ---- randomness ----------------------------------------------------
  Bytes get_random(std::size_t n);

  // ---- attestation ---------------------------------------------------
  /// Signs the current values of `selection` with the AIK, bound to the
  /// caller's fresh `external_data`.
  Result<QuoteResult> quote(BytesView external_data,
                            const PcrSelection& selection);

  // ---- sealed storage -------------------------------------------------
  /// Seals `data` so it can only be released when the selected PCRs hold
  /// their *current* values and the caller is at a locality in
  /// `release_locality_mask` (bit i = locality i allowed).
  Result<Bytes> seal(Locality locality, const PcrSelection& selection,
                     std::uint8_t release_locality_mask, BytesView data);

  /// Seals with explicit release-time PCR values (TPM_Seal's
  /// digestAtRelease), so a blob can target a configuration that is not
  /// currently active -- the enrollment PAL uses this to pre-seal state
  /// for the confirmation PAL.
  Result<Bytes> seal_to(Locality locality, const PcrSelection& selection,
                        const std::vector<Bytes>& release_values,
                        std::uint8_t release_locality_mask, BytesView data);

  /// Releases sealed data iff the release policy matches the live PCRs
  /// and locality. Tamper -> kAuthFail; policy mismatch -> kPcrMismatch.
  Result<Bytes> unseal(Locality locality, BytesView blob);

  // ---- wrapped signing keys -------------------------------------------
  /// Creates an RSA signing key whose private half is wrapped by the SRK
  /// and whose use is bound to the *current* values of `selection`.
  Result<Bytes> create_wrap_key(const PcrSelection& selection);

  /// Loads a wrapped key; returns a transient handle.
  Result<std::uint32_t> load_key2(BytesView wrapped);

  Result<crypto::RsaPublicKey> key_public(std::uint32_t handle) const;

  /// RSASSA-PKCS1-v1_5(SHA-256) signature with a loaded key. The PCR use
  /// policy is evaluated *at signing time* (TPM 1.2 digestAtRelease
  /// semantics for keys).
  Result<Bytes> sign(std::uint32_t handle, BytesView message);

  void flush_key(std::uint32_t handle);

  // ---- ownership & authorization sessions --------------------------------
  //
  // TPM 1.2 protects privileged commands with rolling-nonce HMAC
  // authorization (OIAP). The owner proves knowledge of the owner secret
  // per command without sending it: auth = HMAC-SHA1(owner_secret,
  // param_digest || nonce_even || nonce_odd). The TPM rolls nonce_even
  // after every authorized command, so captured auth values cannot be
  // replayed.

  /// Installs the owner secret. Fails with kBadState if already owned.
  Status take_ownership(BytesView owner_auth_secret);
  bool owned() const { return owner_secret_.has_value(); }

  /// Opens an OIAP session; returns its handle. The session's current
  /// even nonce is read with oiap_nonce().
  Result<std::uint32_t> oiap_start();
  Result<Bytes> oiap_nonce(std::uint32_t session) const;

  /// Computes the authorization value a caller must present (also used
  /// by the emulator internally to check it).
  static Bytes compute_auth(BytesView secret, BytesView param_digest,
                            BytesView nonce_even, BytesView nonce_odd);

  /// Canonical parameter digests for the owner commands below.
  static Bytes owner_clear_params();
  static Bytes owner_nv_define_params(std::uint32_t index, std::size_t size);

  /// Owner-authorized: defines an NV area in the protected index range
  /// (>= 0x10000000). Rolls the session nonce on success AND on auth
  /// failure (as the real chip does).
  Status owner_nv_define(std::uint32_t session, std::uint32_t index,
                         std::size_t size, BytesView nonce_odd,
                         BytesView auth);

  /// Owner-authorized: clears ownership, counters, loaded keys and NV.
  /// Sealed blobs from before the clear become undecryptable (the SRK
  /// seed is regenerated), exactly like a real TPM_OwnerClear.
  Status owner_clear(std::uint32_t session, BytesView nonce_odd,
                     BytesView auth);

  // ---- monotonic counters ----------------------------------------------
  Result<std::uint64_t> counter_increment(std::uint32_t counter_id);
  Result<std::uint64_t> counter_read(std::uint32_t counter_id);

  // ---- NVRAM -----------------------------------------------------------
  Status nv_define(std::uint32_t index, std::size_t size);
  Status nv_write(std::uint32_t index, BytesView data);
  Result<Bytes> nv_read(std::uint32_t index);

  // ---- capability, self-test, ticks --------------------------------------

  /// TPM_GetCapability subset: static facts about the device.
  TpmCapabilities get_capability() const;

  /// TPM_ContinueSelfTest: runs the internal checks (hash + RNG sanity);
  /// on the emulator this validates the crypto substrate wiring.
  Status self_test();

  /// TPM_GetTicks: microseconds of (virtual) time since power-on.
  std::uint64_t read_tick();

  /// Number of commands executed (for the benchmark harness).
  std::uint64_t command_count() const { return command_count_; }

  /// Transient faults drawn so far (0 unless Options::faults enabled).
  std::uint64_t transient_faults() const { return transient_faults_; }
  /// Command re-issues those faults caused (each also re-charged the
  /// command's chip cost plus the retry backoff).
  std::uint64_t fault_retries() const { return fault_retries_; }
  /// Commands that kept faulting past the retry budget and failed with
  /// a typed kInternal error.
  std::uint64_t fault_exhaustions() const { return fault_exhaustions_; }

 private:
  struct LoadedKey {
    crypto::RsaPrivateKey key;
    PcrSelection policy_selection;
    Bytes policy_composite;
  };

  void charge(const char* label, SimDuration d);
  /// charge() plus the transient-fault model: re-issues the command
  /// (re-charging cost + backoff) while the fault stream says it
  /// faulted, and fails with kInternal once the retry budget is spent.
  Status charge_faulty(const char* label, SimDuration d);
  /// (Re)derives the sealed-storage protection contexts from the SRK
  /// seed; called at construction and after TPM_OwnerClear.
  void refresh_storage_keys();
  /// Integrity MAC over a sealed/wrapped blob body (cached key context).
  Bytes storage_mac(BytesView body);
  Status check_release_policy(Locality locality, std::uint8_t locality_mask,
                              const PcrSelection& selection,
                              BytesView composite) const;

  /// Checks an OIAP-authorized command and rolls the session nonce.
  Status check_owner_auth(std::uint32_t session, BytesView param_digest,
                          BytesView nonce_odd, BytesView auth);

  ChipProfile profile_;
  SimClock* clock_;
  Options options_;
  PcrBank pcrs_;
  std::unique_ptr<crypto::HmacDrbg> drbg_;
  Bytes srk_seed_;
  // Sealed-storage protection derived from the SRK seed: the AES key
  // schedule and HMAC key midstates are computed once per seed instead
  // of per command (optional only because they follow srk_seed_).
  std::optional<crypto::Aes> seal_enc_;
  std::optional<crypto::HmacSha256Ctx> seal_mac_;
  crypto::RsaPrivateKey aik_;
  crypto::RsaPublicKey aik_public_;
  std::map<std::uint32_t, LoadedKey> loaded_keys_;
  std::uint32_t next_handle_ = 1;
  std::map<std::uint32_t, std::uint64_t> counters_;
  std::map<std::uint32_t, Bytes> nvram_;
  std::optional<Bytes> owner_secret_;
  std::map<std::uint32_t, Bytes> oiap_sessions_;  // handle -> nonce_even
  std::uint32_t next_session_ = 0x100;
  std::uint64_t command_count_ = 0;
  SimRng fault_rng_;
  std::uint64_t transient_faults_ = 0;
  std::uint64_t fault_retries_ = 0;
  std::uint64_t fault_exhaustions_ = 0;
};

}  // namespace tp::tpm
