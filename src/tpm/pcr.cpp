#include "tpm/pcr.h"

#include <algorithm>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/serial.h"

namespace tp::tpm {
namespace {

/// Streams `parts` through the bank's hash; writes digest_size bytes.
/// Small dispatch shim so extend/composite stay single-pass for both
/// algorithms.
class BankHash {
 public:
  explicit BankHash(crypto::HashAlg alg) : alg_(alg) {}

  void update(BytesView data) {
    if (alg_ == crypto::HashAlg::kSha256) {
      sha256_.update(data);
    } else {
      sha1_.update(data);
    }
  }

  void digest_into(Bytes& out) {
    out.resize(pcr_digest_size(alg_));
    if (alg_ == crypto::HashAlg::kSha256) {
      sha256_.digest_into(out);
    } else {
      sha1_.digest_into(out);
    }
  }

 private:
  crypto::HashAlg alg_;
  crypto::Sha1 sha1_;
  crypto::Sha256 sha256_;
};

}  // namespace

PcrSelection PcrSelection::of(std::initializer_list<std::uint32_t> idx) {
  PcrSelection sel;
  sel.indices.assign(idx);
  std::sort(sel.indices.begin(), sel.indices.end());
  sel.indices.erase(std::unique(sel.indices.begin(), sel.indices.end()),
                    sel.indices.end());
  return sel;
}

PcrSelection PcrSelection::drtm() {
  return of({kPcrDrtmMeasurement, kPcrDrtmInputs});
}

Bytes PcrSelection::serialize() const {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(indices.size()));
  for (std::uint32_t i : indices) w.u32(i);
  return w.take();
}

Result<PcrSelection> PcrSelection::deserialize(BytesView data) {
  BinaryReader r(data);
  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() > kNumPcrs) {
    return Error{Err::kInvalidArgument, "PcrSelection: too many indices"};
  }
  PcrSelection sel;
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto idx = r.u32();
    if (!idx.ok()) return idx.error();
    if (idx.value() >= kNumPcrs) {
      return Error{Err::kInvalidArgument, "PcrSelection: index out of range"};
    }
    if (i > 0 && idx.value() <= prev) {
      return Error{Err::kInvalidArgument, "PcrSelection: not sorted/unique"};
    }
    prev = idx.value();
    sel.indices.push_back(idx.value());
  }
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return sel;
}

PcrBank::PcrBank() : PcrBank(crypto::HashAlg::kSha1) {}

PcrBank::PcrBank(crypto::HashAlg alg) : alg_(alg) {
  for (std::size_t i = 0; i < kNumPcrs; ++i) {
    // DRTM-resettable registers (17-22) power on as all-ones so that no
    // sealing policy can match before a genuine late launch happened.
    const bool drtm_register = i >= 17 && i <= 22;
    pcrs_[i] = Bytes(digest_size(), drtm_register ? 0xff : 0x00);
  }
}

Result<Bytes> PcrBank::extend(std::uint32_t index, BytesView digest) {
  if (index >= kNumPcrs) {
    return Error{Err::kInvalidArgument, "PcrBank: index out of range"};
  }
  if (digest.size() != digest_size()) {
    return Error{Err::kInvalidArgument,
                 "PcrBank: extend input must match the bank digest size"};
  }
  // Streamed extend: old value || digest straight into the hash, result
  // written back in place (no concat buffer, no digest allocation).
  BankHash h(alg_);
  h.update(pcrs_[index]);
  h.update(digest);
  h.digest_into(pcrs_[index]);
  return pcrs_[index];
}

Result<Bytes> PcrBank::read(std::uint32_t index) const {
  if (index >= kNumPcrs) {
    return Error{Err::kInvalidArgument, "PcrBank: index out of range"};
  }
  return pcrs_[index];
}

Status PcrBank::reset(std::uint32_t index, Locality locality) {
  if (index >= kNumPcrs) {
    return Error{Err::kInvalidArgument, "PcrBank: index out of range"};
  }
  if (index <= 15) {
    return Error{Err::kBadState, "PcrBank: static PCRs are not resettable"};
  }
  if (index == 16 || index == 23) {
    pcrs_[index] = Bytes(digest_size(), 0x00);
    return Status::ok_status();
  }
  // DRTM registers: 17 and 18 demand the hardware late-launch locality;
  // 19-22 accept locality >= 2 per the PC client spec's simplified model.
  const Locality required = (index == 17 || index == 18)
                                ? Locality::kDrtmHardware
                                : Locality::kPal;
  if (static_cast<std::uint8_t>(locality) <
      static_cast<std::uint8_t>(required)) {
    return Error{Err::kIsolationViolation,
                 "PcrBank: insufficient locality for DRTM PCR reset"};
  }
  pcrs_[index] = Bytes(digest_size(), 0x00);
  return Status::ok_status();
}

Result<Bytes> PcrBank::composite(const PcrSelection& selection) const {
  std::vector<Bytes> values;
  values.reserve(selection.indices.size());
  for (std::uint32_t i : selection.indices) {
    auto v = read(i);
    if (!v.ok()) return v.error();
    values.push_back(v.take());
  }
  return composite_of(selection, values, alg_);
}

Result<Bytes> PcrBank::composite_of(const PcrSelection& selection,
                                    const std::vector<Bytes>& values,
                                    crypto::HashAlg alg) {
  if (selection.indices.empty()) {
    return Error{Err::kInvalidArgument, "composite: empty selection"};
  }
  if (selection.indices.size() != values.size()) {
    return Error{Err::kInvalidArgument, "composite: selection/value mismatch"};
  }
  BankHash h(alg);
  h.update(selection.serialize());
  for (const Bytes& v : values) {
    if (v.size() != pcr_digest_size(alg)) {
      return Error{Err::kInvalidArgument, "composite: bad PCR value size"};
    }
    h.update(v);
  }
  Bytes digest;
  h.digest_into(digest);
  return digest;
}

}  // namespace tp::tpm
