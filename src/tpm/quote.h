// TPM 1.2 TPM_Quote structures and remote verification.
//
// A quote is the TPM's signed statement "these PCRs held these values when
// I was given this fresh challenge". The service provider uses it during
// enrollment to convince itself that the client's confirmation key was
// created inside the genuine PAL.
//
// This is the 1.2 wire format (SHA-1 composite, RSA AIK signature); the
// TPM 2.0 TPMS_ATTEST-shaped equivalent lives in tpm/tpm2_quote.h and
// the format-dispatching verifier in tpm/attestation.h.
#pragma once

#include <vector>

#include "crypto/rsa.h"
#include "tpm/pcr.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::tpm {

/// Output of TPM_Quote. Carries the selection and values so a remote
/// verifier can recompute the composite; the signature covers the
/// composite and the caller's anti-replay challenge.
struct QuoteResult {
  PcrSelection selection;
  std::vector<Bytes> pcr_values;  // one SHA-1-bank register per selected PCR
  Bytes external_data;            // verifier nonce (anti-replay)
  Bytes signature;                // AIK signature over the quote info

  Bytes serialize() const;
  static Result<QuoteResult> deserialize(BytesView data);
};

/// Canonical TPM_QUOTE_INFO byte string: "QUOT" || version || composite ||
/// external data. This is what the AIK signs.
Bytes quote_info(BytesView composite, BytesView external_data);

/// Full remote verification:
///   1. recompute the composite from (selection, pcr_values);
///   2. rebuild the quote info with `expected_nonce`;
///   3. check the AIK signature.
/// Comparing pcr_values against golden values is the caller's job (the
/// quote proves what the values WERE; policy decides what they MUST be).
Status verify_quote(const crypto::RsaPublicKey& aik, const QuoteResult& quote,
                    BytesView expected_nonce);

}  // namespace tp::tpm
