#include "tpm/tpm_device.h"

#include "crypto/aes.h"
#include "crypto/sha1.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "util/serial.h"

namespace tp::tpm {

namespace {
constexpr char kSealMagic[] = "SEALv1";
constexpr char kWrapMagic[] = "WKEYv1";
constexpr std::size_t kMagicLen = 6;
constexpr std::size_t kMacLen = 32;

// Maximum NV area size; matches the small NVRAM of real v1.2 parts.
constexpr std::size_t kMaxNvSize = 2048;

// Mixes the profile's fault seed with the device seed (FNV-1a) so two
// TPMs sharing one TpmFaultProfile draw decorrelated fault streams.
std::uint64_t fault_seed_for(const TpmFaultProfile& faults, BytesView seed) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ faults.seed;
  for (const std::uint8_t b : seed) h = (h ^ b) * 0x100000001b3ull;
  return h;
}
}  // namespace

TpmDevice::TpmDevice(const ChipProfile& profile, BytesView seed,
                     SimClock& clock)
    : TpmDevice(profile, seed, clock, Options{}) {}

TpmDevice::TpmDevice(const ChipProfile& profile, BytesView seed,
                     SimClock& clock, Options options)
    : profile_(profile),
      clock_(&clock),
      options_(options),
      fault_rng_(fault_seed_for(options.faults, seed)) {
  drbg_ = std::make_unique<crypto::HmacDrbg>(
      concat(bytes_of("tpm-device:"), seed));
  srk_seed_ = drbg_->generate(32);
  refresh_storage_keys();
  aik_ = crypto::rsa_generate(
      options_.key_bits, [this](std::size_t n) { return drbg_->generate(n); });
  aik_public_ = aik_.public_key();
}

void TpmDevice::charge(const char* label, SimDuration d) {
  ++command_count_;
  clock_->charge(std::string("tpm:") + label, d);
}

Status TpmDevice::charge_faulty(const char* label, SimDuration d) {
  charge(label, d);
  const TpmFaultProfile& faults = options_.faults;
  if (!faults.enabled()) return Status::ok_status();
  for (std::uint32_t attempt = 0; fault_rng_.chance(faults.transient_prob);
       ++attempt) {
    ++transient_faults_;
    if (attempt >= faults.max_retries) {
      ++fault_exhaustions_;
      return Error{Err::kInternal,
                   "tpm: transient fault persisted past retry budget"};
    }
    // Driver-style recovery: wait out the glitch, re-issue the command
    // (which costs its full chip time again).
    ++fault_retries_;
    clock_->charge(std::string("tpm:fault-retry:") + label,
                   faults.retry_backoff + d);
  }
  return Status::ok_status();
}

void TpmDevice::refresh_storage_keys() {
  seal_enc_.emplace(crypto::hmac_sha256(srk_seed_, bytes_of("seal-enc")));
  seal_mac_.emplace(crypto::hmac_sha256(srk_seed_, bytes_of("seal-mac")));
}

Bytes TpmDevice::storage_mac(BytesView body) {
  seal_mac_->update(body);
  return seal_mac_->finalize();
}

Result<Bytes> TpmDevice::pcr_extend(Locality locality, std::uint32_t index,
                                    BytesView digest) {
  if (auto s = charge_faulty("pcr_extend", profile_.pcr_extend); !s.ok()) {
    return s.error();
  }
  // DRTM registers may only be extended from the dynamic environment
  // (locality >= 2); the legacy OS cannot influence them.
  if (index >= 17 && index <= 22 &&
      static_cast<std::uint8_t>(locality) <
          static_cast<std::uint8_t>(Locality::kPal)) {
    return Error{Err::kIsolationViolation,
                 "pcr_extend: DRTM PCR requires locality >= 2"};
  }
  return pcrs_.extend(index, digest);
}

Result<Bytes> TpmDevice::pcr_read(std::uint32_t index) {
  charge("pcr_read", profile_.pcr_read);
  return pcrs_.read(index);
}

Status TpmDevice::pcr_reset(Locality locality, std::uint32_t index) {
  charge("pcr_reset", profile_.pcr_extend);
  return pcrs_.reset(index, locality);
}

Result<Bytes> TpmDevice::pcr_composite(const PcrSelection& selection) const {
  return pcrs_.composite(selection);
}

Bytes TpmDevice::get_random(std::size_t n) {
  const auto blocks = static_cast<std::int64_t>((n + 15) / 16);
  charge("get_random",
         SimDuration{profile_.get_random_16.ns * std::max<std::int64_t>(
                                                     blocks, 1)});
  return drbg_->generate(n);
}

Result<QuoteResult> TpmDevice::quote(BytesView external_data,
                                     const PcrSelection& selection) {
  if (auto s = charge_faulty("quote", profile_.quote); !s.ok()) {
    return s.error();
  }
  QuoteResult q;
  q.selection = selection;
  for (std::uint32_t i : selection.indices) {
    auto v = pcrs_.read(i);
    if (!v.ok()) return v.error();
    q.pcr_values.push_back(v.take());
  }
  q.external_data.assign(external_data.begin(), external_data.end());
  auto composite = PcrBank::composite_of(selection, q.pcr_values);
  if (!composite.ok()) return composite.error();
  const Bytes info = quote_info(composite.value(), external_data);
  q.signature = crypto::rsa_sign(aik_, crypto::HashAlg::kSha1, info);
  return q;
}

Status TpmDevice::check_release_policy(Locality locality,
                                       std::uint8_t locality_mask,
                                       const PcrSelection& selection,
                                       BytesView composite) const {
  const std::uint8_t loc_bit =
      static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(locality));
  if ((locality_mask & loc_bit) == 0) {
    return Error{Err::kIsolationViolation,
                 "release policy: locality not authorized"};
  }
  auto current = pcrs_.composite(selection);
  if (!current.ok()) return current.error();
  if (!ct_equal(current.value(), composite)) {
    return Error{Err::kPcrMismatch,
                 "release policy: PCR composite mismatch"};
  }
  return Status::ok_status();
}

Result<Bytes> TpmDevice::seal(Locality locality, const PcrSelection& selection,
                              std::uint8_t release_locality_mask,
                              BytesView data) {
  std::vector<Bytes> current_values;
  for (std::uint32_t i : selection.indices) {
    auto v = pcrs_.read(i);
    if (!v.ok()) return v.error();
    current_values.push_back(v.take());
  }
  return seal_to(locality, selection, current_values, release_locality_mask,
                 data);
}

Result<Bytes> TpmDevice::seal_to(Locality locality,
                                 const PcrSelection& selection,
                                 const std::vector<Bytes>& release_values,
                                 std::uint8_t release_locality_mask,
                                 BytesView data) {
  if (auto s = charge_faulty("seal", profile_.seal); !s.ok()) {
    return s.error();
  }
  (void)locality;  // any locality may create a seal; release is restricted
  auto release_composite = PcrBank::composite_of(selection, release_values);
  if (!release_composite.ok()) return release_composite.error();

  const Bytes iv = drbg_->generate(crypto::kAesBlockSize);
  const Bytes ciphertext = crypto::cbc_encrypt(*seal_enc_, iv, data);

  BinaryWriter w;
  w.raw(bytes_of(kSealMagic));
  w.u8(release_locality_mask);
  w.var_bytes(selection.serialize());
  w.raw(release_composite.value());
  w.raw(iv);
  w.var_bytes(ciphertext);
  Bytes blob = w.take();
  append(blob, storage_mac(blob));
  return blob;
}

Result<Bytes> TpmDevice::unseal(Locality locality, BytesView blob) {
  if (auto s = charge_faulty("unseal", profile_.unseal); !s.ok()) {
    return s.error();
  }
  if (blob.size() < kMagicLen + kMacLen) {
    return Error{Err::kAuthFail, "unseal: blob too short"};
  }
  const BytesView body = blob.subspan(0, blob.size() - kMacLen);
  const BytesView mac = blob.subspan(blob.size() - kMacLen);
  if (!ct_equal(storage_mac(body), mac)) {
    return Error{Err::kAuthFail, "unseal: MAC mismatch (tampered blob)"};
  }

  BinaryReader r(body);
  auto magic = r.raw(kMagicLen);
  if (!magic.ok() || !ct_equal(magic.value(), bytes_of(kSealMagic))) {
    return Error{Err::kAuthFail, "unseal: bad magic"};
  }
  auto locality_mask = r.u8();
  if (!locality_mask.ok()) return locality_mask.error();
  auto sel_bytes = r.var_bytes();
  if (!sel_bytes.ok()) return sel_bytes.error();
  auto selection = PcrSelection::deserialize(sel_bytes.value());
  if (!selection.ok()) return selection.error();
  auto release_composite = r.raw(kPcrSize);
  if (!release_composite.ok()) return release_composite.error();
  auto iv = r.raw(crypto::kAesBlockSize);
  if (!iv.ok()) return iv.error();
  auto ciphertext = r.var_bytes();
  if (!ciphertext.ok()) return ciphertext.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();

  if (auto s = check_release_policy(locality, locality_mask.value(),
                                    selection.value(),
                                    release_composite.value());
      !s.ok()) {
    return s.error();
  }

  auto plaintext =
      crypto::cbc_decrypt(*seal_enc_, iv.value(), ciphertext.value());
  if (!plaintext.ok()) {
    return Error{Err::kAuthFail, "unseal: decryption failed"};
  }
  return plaintext.take();
}

Result<Bytes> TpmDevice::create_wrap_key(const PcrSelection& selection) {
  if (auto s = charge_faulty("create_wrap_key", profile_.create_wrap_key);
      !s.ok()) {
    return s.error();
  }
  auto policy_composite = pcrs_.composite(selection);
  if (!policy_composite.ok()) return policy_composite.error();

  const crypto::RsaPrivateKey key = crypto::rsa_generate(
      options_.key_bits, [this](std::size_t n) { return drbg_->generate(n); });

  const Bytes iv = drbg_->generate(crypto::kAesBlockSize);
  const Bytes wrapped_priv =
      crypto::cbc_encrypt(*seal_enc_, iv, key.serialize());

  BinaryWriter w;
  w.raw(bytes_of(kWrapMagic));
  w.var_bytes(key.public_key().serialize());
  w.var_bytes(selection.serialize());
  w.raw(policy_composite.value());
  w.raw(iv);
  w.var_bytes(wrapped_priv);
  Bytes blob = w.take();
  append(blob, storage_mac(blob));
  return blob;
}

Result<std::uint32_t> TpmDevice::load_key2(BytesView wrapped) {
  if (auto s = charge_faulty("load_key2", profile_.load_key2); !s.ok()) {
    return s.error();
  }
  if (wrapped.size() < kMagicLen + kMacLen) {
    return Error{Err::kAuthFail, "load_key2: blob too short"};
  }
  const BytesView body = wrapped.subspan(0, wrapped.size() - kMacLen);
  const BytesView mac = wrapped.subspan(wrapped.size() - kMacLen);
  if (!ct_equal(storage_mac(body), mac)) {
    return Error{Err::kAuthFail, "load_key2: MAC mismatch"};
  }

  BinaryReader r(body);
  auto magic = r.raw(kMagicLen);
  if (!magic.ok() || !ct_equal(magic.value(), bytes_of(kWrapMagic))) {
    return Error{Err::kAuthFail, "load_key2: bad magic"};
  }
  auto pub_bytes = r.var_bytes();
  if (!pub_bytes.ok()) return pub_bytes.error();
  auto sel_bytes = r.var_bytes();
  if (!sel_bytes.ok()) return sel_bytes.error();
  auto selection = PcrSelection::deserialize(sel_bytes.value());
  if (!selection.ok()) return selection.error();
  auto policy_composite = r.raw(kPcrSize);
  if (!policy_composite.ok()) return policy_composite.error();
  auto iv = r.raw(crypto::kAesBlockSize);
  if (!iv.ok()) return iv.error();
  auto wrapped_priv = r.var_bytes();
  if (!wrapped_priv.ok()) return wrapped_priv.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();

  auto priv_bytes =
      crypto::cbc_decrypt(*seal_enc_, iv.value(), wrapped_priv.value());
  if (!priv_bytes.ok()) {
    return Error{Err::kAuthFail, "load_key2: unwrap failed"};
  }
  auto priv = crypto::RsaPrivateKey::deserialize(priv_bytes.value());
  if (!priv.ok()) return priv.error();

  const std::uint32_t handle = next_handle_++;
  loaded_keys_[handle] = LoadedKey{priv.take(), selection.take(),
                                   policy_composite.take()};
  return handle;
}

Result<crypto::RsaPublicKey> TpmDevice::key_public(
    std::uint32_t handle) const {
  const auto it = loaded_keys_.find(handle);
  if (it == loaded_keys_.end()) {
    return Error{Err::kNotFound, "key_public: unknown handle"};
  }
  return it->second.key.public_key();
}

Result<Bytes> TpmDevice::sign(std::uint32_t handle, BytesView message) {
  if (auto s = charge_faulty("sign", profile_.sign); !s.ok()) {
    return s.error();
  }
  const auto it = loaded_keys_.find(handle);
  if (it == loaded_keys_.end()) {
    return Error{Err::kNotFound, "sign: unknown handle"};
  }
  // PCR use-policy is evaluated at signing time: the key refuses to sign
  // unless the platform is currently in the configuration it was created
  // under. This is what makes PAL-substitution attacks fail.
  auto current = pcrs_.composite(it->second.policy_selection);
  if (!current.ok()) return current.error();
  if (!ct_equal(current.value(), it->second.policy_composite)) {
    return Error{Err::kPcrMismatch, "sign: PCR use policy mismatch"};
  }
  return crypto::rsa_sign(it->second.key, crypto::HashAlg::kSha256, message);
}

void TpmDevice::flush_key(std::uint32_t handle) { loaded_keys_.erase(handle); }

Status TpmDevice::take_ownership(BytesView owner_auth_secret) {
  charge("take_ownership", profile_.create_wrap_key);  // expensive op
  if (owner_secret_.has_value()) {
    return Error{Err::kBadState, "take_ownership: TPM already owned"};
  }
  if (owner_auth_secret.empty()) {
    return Error{Err::kInvalidArgument, "take_ownership: empty secret"};
  }
  owner_secret_ = Bytes(owner_auth_secret.begin(), owner_auth_secret.end());
  return Status::ok_status();
}

Result<std::uint32_t> TpmDevice::oiap_start() {
  charge("oiap_start", profile_.pcr_read);
  const std::uint32_t handle = next_session_++;
  oiap_sessions_[handle] = drbg_->generate(20);  // nonce_even
  return handle;
}

Result<Bytes> TpmDevice::oiap_nonce(std::uint32_t session) const {
  const auto it = oiap_sessions_.find(session);
  if (it == oiap_sessions_.end()) {
    return Error{Err::kNotFound, "oiap_nonce: unknown session"};
  }
  return it->second;
}

Bytes TpmDevice::compute_auth(BytesView secret, BytesView param_digest,
                              BytesView nonce_even, BytesView nonce_odd) {
  return crypto::hmac_sha1(secret,
                           concat(param_digest, nonce_even, nonce_odd));
}

Bytes TpmDevice::owner_clear_params() {
  return crypto::Sha1::hash(bytes_of("TPM_OwnerClear"));
}

Bytes TpmDevice::owner_nv_define_params(std::uint32_t index,
                                        std::size_t size) {
  BinaryWriter w;
  w.var_string("TPM_NV_DefineSpace");
  w.u32(index);
  w.u32(static_cast<std::uint32_t>(size));
  return crypto::Sha1::hash(w.data());
}

Status TpmDevice::check_owner_auth(std::uint32_t session,
                                   BytesView param_digest,
                                   BytesView nonce_odd, BytesView auth) {
  if (!owner_secret_.has_value()) {
    return Error{Err::kBadState, "owner auth: TPM is not owned"};
  }
  const auto it = oiap_sessions_.find(session);
  if (it == oiap_sessions_.end()) {
    return Error{Err::kNotFound, "owner auth: unknown session"};
  }
  const Bytes expected =
      compute_auth(*owner_secret_, param_digest, it->second, nonce_odd);
  // Roll the even nonce regardless of outcome: a captured auth value is
  // single-use even when it was wrong.
  it->second = drbg_->generate(20);
  if (!ct_equal(expected, auth)) {
    return Error{Err::kAuthFail, "owner auth: HMAC mismatch"};
  }
  return Status::ok_status();
}

Status TpmDevice::owner_nv_define(std::uint32_t session, std::uint32_t index,
                                  std::size_t size, BytesView nonce_odd,
                                  BytesView auth) {
  charge("owner_nv_define", profile_.nv_write);
  if (index < 0x10000000u) {
    return Error{Err::kInvalidArgument,
                 "owner_nv_define: index outside owner-protected range"};
  }
  if (auto s = check_owner_auth(session, owner_nv_define_params(index, size),
                                nonce_odd, auth);
      !s.ok()) {
    return s;
  }
  if (size == 0 || size > kMaxNvSize) {
    return Error{Err::kInvalidArgument, "owner_nv_define: bad size"};
  }
  if (nvram_.count(index) != 0) {
    return Error{Err::kBadState, "owner_nv_define: index already defined"};
  }
  nvram_[index] = Bytes(size, 0x00);
  return Status::ok_status();
}

Status TpmDevice::owner_clear(std::uint32_t session, BytesView nonce_odd,
                              BytesView auth) {
  charge("owner_clear", profile_.create_wrap_key);
  if (auto s =
          check_owner_auth(session, owner_clear_params(), nonce_odd, auth);
      !s.ok()) {
    return s;
  }
  // Clearing regenerates the storage hierarchy: every existing sealed
  // blob and wrapped key becomes permanently undecryptable.
  owner_secret_.reset();
  oiap_sessions_.clear();
  loaded_keys_.clear();
  counters_.clear();
  nvram_.clear();
  srk_seed_ = drbg_->generate(32);
  refresh_storage_keys();
  return Status::ok_status();
}

TpmCapabilities TpmDevice::get_capability() const {
  return TpmCapabilities{
      .spec_version_major = 1,
      .spec_version_minor = 2,
      .vendor = profile_.name,
      .num_pcrs = kNumPcrs,
      .max_nv_size = kMaxNvSize,
      .supports_locality_4 = true,
  };
}

Status TpmDevice::self_test() {
  charge("self_test", profile_.create_wrap_key);  // slow, like real parts
  // Known-answer checks over the internal crypto paths.
  const Bytes abc = bytes_of("abc");
  if (to_hex(crypto::Sha1::hash(abc)) !=
      "a9993e364706816aba3e25717850c26c9cd0d89d") {
    return Error{Err::kInternal, "self_test: SHA-1 KAT failed"};
  }
  if (drbg_->generate(16) == drbg_->generate(16)) {
    return Error{Err::kInternal, "self_test: RNG stuck"};
  }
  // Seal/unseal loopback.
  auto blob = seal(Locality::kLegacy, PcrSelection::of({16}), 0xff,
                   bytes_of("kat"));
  if (!blob.ok()) return blob.error();
  auto out = unseal(Locality::kLegacy, blob.value());
  if (!out.ok() || !ct_equal(out.value(), bytes_of("kat"))) {
    return Error{Err::kInternal, "self_test: seal loopback failed"};
  }
  return Status::ok_status();
}

std::uint64_t TpmDevice::read_tick() {
  charge("read_tick", profile_.pcr_read);
  return static_cast<std::uint64_t>(clock_->now().ns / 1000);
}

Result<std::uint64_t> TpmDevice::counter_increment(std::uint32_t counter_id) {
  if (auto s = charge_faulty("counter_increment", profile_.counter_increment);
      !s.ok()) {
    return s.error();
  }
  return ++counters_[counter_id];
}

Result<std::uint64_t> TpmDevice::counter_read(std::uint32_t counter_id) {
  charge("counter_read", profile_.nv_read);
  const auto it = counters_.find(counter_id);
  return it == counters_.end() ? 0 : it->second;
}

Status TpmDevice::nv_define(std::uint32_t index, std::size_t size) {
  charge("nv_define", profile_.nv_write);
  if (size == 0 || size > kMaxNvSize) {
    return Error{Err::kInvalidArgument, "nv_define: bad size"};
  }
  if (nvram_.count(index) != 0) {
    return Error{Err::kBadState, "nv_define: index already defined"};
  }
  nvram_[index] = Bytes(size, 0x00);
  return Status::ok_status();
}

Status TpmDevice::nv_write(std::uint32_t index, BytesView data) {
  if (auto s = charge_faulty("nv_write", profile_.nv_write); !s.ok()) {
    return s;
  }
  auto it = nvram_.find(index);
  if (it == nvram_.end()) {
    return Error{Err::kNotFound, "nv_write: undefined index"};
  }
  if (data.size() > it->second.size()) {
    return Error{Err::kInvalidArgument, "nv_write: data exceeds area"};
  }
  std::copy(data.begin(), data.end(), it->second.begin());
  return Status::ok_status();
}

Result<Bytes> TpmDevice::nv_read(std::uint32_t index) {
  if (auto s = charge_faulty("nv_read", profile_.nv_read); !s.ok()) {
    return s.error();
  }
  const auto it = nvram_.find(index);
  if (it == nvram_.end()) {
    return Error{Err::kNotFound, "nv_read: undefined index"};
  }
  return it->second;
}

}  // namespace tp::tpm
