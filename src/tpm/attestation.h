// Quote-format abstraction for mixed TPM 1.2 / TPM 2.0 fleets.
//
// The service provider, deployment and fleet layers must handle clients
// whose trust roots differ: TPM 1.2 endpoints quote SHA-1 PCR
// composites signed by an RSA AIK; TPM 2.0 endpoints produce
// TPMS_ATTEST-shaped quotes over SHA-256 banks signed by an ECDSA-P256
// attestation key. This header gives those layers a single vocabulary:
//
//   QuoteFormat            -- the wire tag (append-only, like RejectCode)
//   AttestationKey         -- a public key tagged with its format
//   AttestationVerifyContext -- cached signature verification that
//                               dispatches to RsaVerifyContext or
//                               EcdsaVerifyContext per format
//
// Quote *serialization* stays per-format (tpm/quote.h, tpm/tpm2_quote.h);
// this layer only abstracts what the SP stores and checks per client.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/ecdsa.h"
#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::tpm {

/// Wire tag for the attestation technology a client enrolls with.
/// Append-only: values are serialized in EnrollComplete and in AK
/// certificates, so existing tags must never be renumbered or removed.
enum class QuoteFormat : std::uint8_t {
  kTpm12 = 1,  // SHA-1 PCRs, TPM_Quote, RSA-2048 AIK
  kTpm2 = 2,   // SHA-256 PCRs, TPMS_ATTEST quote, ECDSA-P256 AK
};

/// Number of defined formats (sizing for per-backend counters).
inline constexpr std::size_t kNumQuoteFormats = 2;

/// Dense 0-based index for per-format arrays (counters, stats).
constexpr std::size_t quote_format_index(QuoteFormat f) {
  return f == QuoteFormat::kTpm2 ? 1 : 0;
}

constexpr const char* quote_format_name(QuoteFormat f) {
  return f == QuoteFormat::kTpm2 ? "tpm2" : "tpm12";
}

/// Wire tag -> format; rejects unknown tags (forward compatibility is
/// explicit rejection, not silent remap).
std::optional<QuoteFormat> quote_format_from_wire(std::uint8_t tag);

/// A public key together with the quote format it belongs to. Used both
/// for attestation keys (AIK / ECC-AK, certified by the privacy CA) and
/// for the per-client confirmation keys the SP stores after enrollment.
/// Exactly the member matching `format` is engaged.
struct AttestationKey {
  QuoteFormat format = QuoteFormat::kTpm12;
  std::optional<crypto::RsaPublicKey> rsa;      // kTpm12
  std::optional<crypto::EcdsaPublicKey> ecdsa;  // kTpm2

  static AttestationKey of(crypto::RsaPublicKey key);
  static AttestationKey of(crypto::EcdsaPublicKey key);

  /// u8 format tag || var key serialization.
  Bytes serialize() const;
  static Result<AttestationKey> deserialize(BytesView data);

  /// Canonical fingerprint: SHA-256 over the serialization (covers the
  /// format tag, so the same key material under two formats differs).
  Bytes fingerprint() const;

  bool operator==(const AttestationKey& other) const = default;
};

/// Parses raw public-key bytes (as carried in EnrollComplete's
/// confirmation_pubkey field) according to `format`.
Result<AttestationKey> parse_public_key(QuoteFormat format, BytesView data);

/// Per-client cached signature verification, format-dispatched. The SP
/// keeps one of these per enrolled client: RSA clients get the cached
/// Montgomery context, ECDSA clients the precomputed window tables.
///
/// Immutable after construction; safe to share across threads.
class AttestationVerifyContext {
 public:
  explicit AttestationVerifyContext(AttestationKey key);

  QuoteFormat format() const { return key_.format; }
  const AttestationKey& key() const { return key_; }

  /// Verifies `signature` over `message`. `alg` selects the RSA
  /// DigestInfo hash; the ECDSA backend is SHA-256-only and rejects any
  /// other request with kAuthFail.
  Status verify(crypto::HashAlg alg, BytesView message,
                BytesView signature) const;

 private:
  friend std::vector<Status> attestation_verify_batch(
      std::span<const struct AttestationBatchItem> items);
  AttestationKey key_;
  std::optional<crypto::RsaVerifyContext> rsa_;
  std::optional<crypto::EcdsaVerifyContext> ecdsa_;
};

/// One item of a batched verification: a format-dispatched context plus
/// the hash algorithm (RSA DigestInfo selection only), message and
/// signature to check against it.
struct AttestationBatchItem {
  const AttestationVerifyContext* ctx = nullptr;
  crypto::HashAlg alg = crypto::HashAlg::kSha256;
  BytesView message;
  BytesView signature;
};

/// Verifies every item and returns one status per item, in order --
/// verdict-identical to calling item.ctx->verify(...) one by one. Items
/// are partitioned by format and routed to rsa_verify_batch /
/// ecdsa_verify_batch, so a mixed TPM 1.2 / 2.0 fleet still gets both
/// batch fast paths in a single call.
std::vector<Status> attestation_verify_batch(
    std::span<const AttestationBatchItem> items);

}  // namespace tp::tpm
