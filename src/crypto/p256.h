// NIST P-256 (secp256r1) field and group arithmetic.
//
// The TPM 2.0 backend signs quotes and confirmations with ECDSA-P256, so
// the verifier's hot loop is point arithmetic on this curve. The layer
// below ecdsa.{h,cpp}: fixed 4x64-bit limb integers, Montgomery
// arithmetic for both the field prime p and the group order n, Jacobian
// point formulas (a = -3), and a fully precomputed 8-bit comb table
// that turns a fixed-base scalar multiplication into ~32 mixed additions
// with zero doublings -- the trick that makes cached ECDSA verification
// several times cheaper than RSA-2048 (see EcdsaVerifyContext).
//
// Everything here is deterministic, allocation-light and, like the rest
// of the crypto substrate, an emulation-grade implementation: branches on
// secret data are avoided on the obvious paths but no hard constant-time
// guarantee is claimed (matching bignum.h).
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.h"

namespace tp::crypto::p256 {

/// Serialized size of one coordinate or scalar (256 bits, big-endian).
inline constexpr std::size_t kFieldSize = 32;

/// 256-bit unsigned integer, little-endian 64-bit limbs. Plain magnitude
/// at this interface; Montgomery representations never escape p256.cpp.
struct U256 {
  std::uint64_t w[4] = {0, 0, 0, 0};

  bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  bool operator==(const U256& other) const = default;
};

/// Big-endian bytes <-> limbs. `be` must be exactly kFieldSize bytes;
/// from_bytes_be does NOT reduce (compare against order_n()/prime_p()).
U256 from_bytes_be(BytesView be);
Bytes to_bytes_be(const U256& a);

/// a < b as 256-bit unsigned integers.
bool u256_less(const U256& a, const U256& b);

/// The group order n and field prime p.
const U256& order_n();
const U256& prime_p();

// ---- arithmetic mod n (scalar field) ----------------------------------
// Inputs and outputs are plain (non-Montgomery) magnitudes < n, except
// reduce_mod_n which accepts any 256-bit value.

/// a mod n for a < 2n (one conditional subtract); this covers bits2int
/// of a 256-bit hash, since 2n > 2^256.
U256 reduce_mod_n(const U256& a);
U256 add_mod_n(const U256& a, const U256& b);
U256 mul_mod_n(const U256& a, const U256& b);
/// a^-1 mod n via Fermat (n is prime); returns 0 for a == 0. The
/// exponentiation ladder's memory access pattern does not depend on the
/// argument, so this is the right call for secret scalars (signing).
U256 inv_mod_n(const U256& a);
/// a^-1 mod n via binary extended Euclid; returns 0 for a == 0. Runs in
/// time dependent on the argument (~7x faster than the Fermat ladder),
/// so it is reserved for PUBLIC values -- verification inverts only the
/// signature component s, which the caller already holds in the clear.
U256 inv_mod_n_vartime(const U256& a);

// ---- points ------------------------------------------------------------

/// Affine point with plain (non-Montgomery) coordinates.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;
};

const AffinePoint& generator();

/// Full curve-membership check: coordinates < p, y^2 == x^3 - 3x + b,
/// and not the point at infinity.
bool on_curve(const AffinePoint& point);

/// Reference scalar multiplication (plain double-and-add) and addition.
/// Correctness baseline for the table-based path; used by the uncached
/// ecdsa_verify and the differential fuzz tests.
AffinePoint scalar_mul(const AffinePoint& base, const U256& k);
AffinePoint point_add(const AffinePoint& a, const AffinePoint& b);

/// k * G through the shared generator comb (fast path for signing, key
/// generation and the G half of verification). The generator is one
/// fixed, public point shared by every caller in the process, so it
/// affords a far wider comb than the per-key tables: 22 windows of 12
/// scalar bits (~5.5 MiB, built lazily on first use), making k*G ~22
/// mixed additions instead of 32.
AffinePoint scalar_mul_base(const U256& k);

/// Fully precomputed fixed-base table: 32 windows of 8 scalar bits, 255
/// multiples each (d * 256^j * B for d in 1..255), stored as affine
/// Montgomery-form points (~510 KiB). k*B then costs one mixed addition
/// per non-zero window digit and no doublings -- ~32 additions, half of
/// what a 4-bit table needs. The width trades verifier-side memory for
/// per-verify latency: the table is built once per enrolled key (a few
/// milliseconds, like RsaVerifyContext's R^2 precompute but heavier) and
/// then amortized over every transaction confirmation that key signs.
///
/// Immutable after construction; safe to share across threads.
class WindowTable {
 public:
  /// `base` must satisfy on_curve(); tables over invalid points must be
  /// rejected by the caller (EcdsaVerifyContext validates first).
  explicit WindowTable(const AffinePoint& base);
  ~WindowTable();
  WindowTable(WindowTable&&) noexcept;
  WindowTable& operator=(WindowTable&&) noexcept;

  /// Approximate heap footprint, for capacity planning.
  static constexpr std::size_t kMemoryBytes = 32 * 255 * 2 * 32;

 private:
  friend bool verify_r_match(const WindowTable&, const U256&, const U256&,
                             const U256&);
  friend void verify_r_match_batch(const WindowTable* const*, const U256*,
                                   const U256*, const U256*, std::size_t,
                                   bool*);
  friend AffinePoint table_scalar_mul(const WindowTable&, const U256&);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The core of cached ECDSA verification: computes R = u1*G + u2*Q (Q is
/// `q_table`'s base) and decides x(R) mod n == r WITHOUT the final field
/// inversion, by comparing X_R against r*Z_R^2 (and (r+n)*Z_R^2 when
/// r + n < p). Returns false when R is the point at infinity.
bool verify_r_match(const WindowTable& q_table, const U256& u1,
                    const U256& u2, const U256& r);

/// Batched verify_r_match: item i checks u1[i]*G + u2[i]*Q_i against
/// r[i], where Q_i is q_tables[i]'s base (tables may repeat or differ
/// per item). Decision-equivalent to `count` calls of verify_r_match,
/// bit for bit, but amortized three ways: the window-table walks of up
/// to four items run interleaved in lockstep (independent dependency
/// chains fill the multiplier pipeline that a solo walk leaves half
/// idle), each item is reduced to a projective residual that is zero
/// exactly when its signature matches, and the residuals are folded
/// into one randomized linear combination whose single zero test accepts
/// the whole batch -- with a bisection over the stored per-item terms
/// isolating exactly the offending indices when the combined check
/// fails. Writes out[i] = accept for each item.
void verify_r_match_batch(const WindowTable* const* q_tables, const U256* u1,
                          const U256* u2, const U256* r, std::size_t count,
                          bool* out);

/// k * B through an arbitrary window table (exposed for tests).
AffinePoint table_scalar_mul(const WindowTable& table, const U256& k);

}  // namespace tp::crypto::p256
