#include "crypto/drbg.h"

#include <algorithm>
#include <cstring>

namespace tp::crypto {

HmacDrbg::HmacDrbg(BytesView seed_material)
    // An empty key zero-pads to the same block as the initial K = 0^32.
    : ctx_(BytesView{}) {
  key_.fill(0x00);
  v_.fill(0x01);
  update(seed_material);
}

void HmacDrbg::update(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  const std::uint8_t zero = 0x00, one = 0x01;
  ctx_.update(v_);
  ctx_.update(BytesView(&zero, 1));
  ctx_.update(provided);
  ctx_.finalize_into(key_);
  ctx_.rekey(key_);
  ctx_.update(v_);
  ctx_.finalize_into(v_);
  if (!provided.empty()) {
    ctx_.update(v_);
    ctx_.update(BytesView(&one, 1));
    ctx_.update(provided);
    ctx_.finalize_into(key_);
    ctx_.rekey(key_);
    ctx_.update(v_);
    ctx_.finalize_into(v_);
  }
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out(n);
  std::size_t filled = 0;
  while (filled < n) {
    ctx_.update(v_);
    ctx_.finalize_into(v_);
    const std::size_t take = std::min(v_.size(), n - filled);
    std::memcpy(out.data() + filled, v_.data(), take);
    filled += take;
  }
  update({});
  return out;
}

void HmacDrbg::reseed(BytesView seed_material) { update(seed_material); }

}  // namespace tp::crypto
