#include "crypto/drbg.h"

#include "crypto/hmac.h"

namespace tp::crypto {

HmacDrbg::HmacDrbg(BytesView seed_material)
    : key_(32, 0x00), v_(32, 0x01) {
  update(seed_material);
}

void HmacDrbg::update(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes msg(v_);
  msg.push_back(0x00);
  append(msg, provided);
  key_ = hmac_sha256(key_, msg);
  v_ = hmac_sha256(key_, v_);
  if (!provided.empty()) {
    msg.assign(v_.begin(), v_.end());
    msg.push_back(0x01);
    append(msg, provided);
    key_ = hmac_sha256(key_, msg);
    v_ = hmac_sha256(key_, v_);
  }
}

Bytes HmacDrbg::generate(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = hmac_sha256(key_, v_);
    const std::size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(),
               v_.begin() + static_cast<std::ptrdiff_t>(take));
  }
  update({});
  return out;
}

void HmacDrbg::reseed(BytesView seed_material) { update(seed_material); }

}  // namespace tp::crypto
