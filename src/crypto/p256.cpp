#include "crypto/p256.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

namespace tp::crypto::p256 {
namespace {

using u64 = std::uint64_t;

// 128-bit product of two 64-bit limbs. The compiler lowers the __int128
// form to a single MUL on x86-64/aarch64; the fallback keeps 32-bit-only
// targets working.
inline void mul64(u64 a, u64 b, u64& lo, u64& hi) {
#ifdef __SIZEOF_INT128__
  const unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
  lo = static_cast<u64>(t);
  hi = static_cast<u64>(t >> 64);
#else
  const u64 a0 = a & 0xffffffffu, a1 = a >> 32;
  const u64 b0 = b & 0xffffffffu, b1 = b >> 32;
  const u64 p00 = a0 * b0, p01 = a0 * b1, p10 = a1 * b0, p11 = a1 * b1;
  const u64 mid = p10 + (p00 >> 32);
  const u64 mid2 = (mid & 0xffffffffu) + p01;
  hi = p11 + (mid >> 32) + (mid2 >> 32);
  lo = (mid2 << 32) | (p00 & 0xffffffffu);
#endif
}

inline u64 add4(u64 out[4], const u64 a[4], const u64 b[4]) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 s = a[i] + b[i];
    const u64 c1 = (s < b[i]) ? 1u : 0u;
    const u64 s2 = s + carry;
    const u64 c2 = (s2 < carry) ? 1u : 0u;
    out[i] = s2;
    carry = c1 | c2;
  }
  return carry;
}

inline u64 sub4(u64 out[4], const u64 a[4], const u64 b[4]) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 d = a[i] - b[i];
    const u64 b1 = (a[i] < b[i]) ? 1u : 0u;
    const u64 d2 = d - borrow;
    const u64 b2 = (d < borrow) ? 1u : 0u;
    out[i] = d2;
    borrow = b1 | b2;
  }
  return borrow;
}

inline bool geq4(const u64 a[4], const u64 b[4]) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

inline bool eq4(const u64 a[4], const u64 b[4]) {
  return ((a[0] ^ b[0]) | (a[1] ^ b[1]) | (a[2] ^ b[2]) | (a[3] ^ b[3])) == 0;
}

inline bool is_zero4(const u64 a[4]) {
  return (a[0] | a[1] | a[2] | a[3]) == 0;
}

inline void copy4(u64 out[4], const u64 a[4]) {
  std::memcpy(out, a, 4 * sizeof(u64));
}

/// Montgomery context for a 256-bit odd modulus (R = 2^256).
struct Mont {
  u64 mod[4];
  u64 n0;      // -mod^{-1} mod 2^64
  u64 rr[4];   // R^2 mod mod (to_mont multiplier)
  u64 one[4];  // R mod mod (1 in Montgomery form)
};

inline void mod_add(const Mont& m, const u64 a[4], const u64 b[4],
                    u64 out[4]) {
  const u64 carry = add4(out, a, b);
  if (carry || geq4(out, m.mod)) sub4(out, out, m.mod);
}

inline void mod_sub(const Mont& m, const u64 a[4], const u64 b[4],
                    u64 out[4]) {
  if (sub4(out, a, b)) add4(out, out, m.mod);
}

// CIOS Montgomery multiplication: out = a * b * R^-1 mod m. The working
// accumulator is interleaved with the reduction, so the intermediate
// never exceeds 5 limbs + 1 bit; one conditional subtract at the end
// brings the result below the modulus.
#ifdef __SIZEOF_INT128__
void mont_mul(const Mont& m, const u64 a[4], const u64 b[4], u64 out[4]) {
  // The double-wide accumulator form: each u128 sum a[i]*b[j] + t + carry
  // is at most (2^64-1)^2 + 2*(2^64-1) = 2^128 - 1, so no overflow; the
  // compiler lowers the chain to mul/adc sequences.
  using u128 = unsigned __int128;
  u64 t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    const u64 ai = a[i];
    u128 c = static_cast<u128>(ai) * b[0] + t[0];
    t[0] = static_cast<u64>(c);
    c = static_cast<u128>(ai) * b[1] + t[1] + static_cast<u64>(c >> 64);
    t[1] = static_cast<u64>(c);
    c = static_cast<u128>(ai) * b[2] + t[2] + static_cast<u64>(c >> 64);
    t[2] = static_cast<u64>(c);
    c = static_cast<u128>(ai) * b[3] + t[3] + static_cast<u64>(c >> 64);
    t[3] = static_cast<u64>(c);
    c = static_cast<u128>(t[4]) + static_cast<u64>(c >> 64);
    t[4] = static_cast<u64>(c);
    t[5] += static_cast<u64>(c >> 64);

    const u64 mi = t[0] * m.n0;
    c = static_cast<u128>(mi) * m.mod[0] + t[0];  // low limb cancels
    u64 carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(mi) * m.mod[1] + t[1] + carry;
    t[0] = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(mi) * m.mod[2] + t[2] + carry;
    t[1] = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(mi) * m.mod[3] + t[3] + carry;
    t[2] = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<u64>(c);
    t[4] = t[5] + static_cast<u64>(c >> 64);
    t[5] = 0;
  }
  if (t[4] || geq4(t, m.mod)) sub4(t, t, m.mod);
  copy4(out, t);
}
#else
void mont_mul(const Mont& m, const u64 a[4], const u64 b[4], u64 out[4]) {
  u64 t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u64 lo, hi;
      mul64(a[i], b[j], lo, hi);
      const u64 s = t[j] + lo;
      const u64 c1 = (s < lo) ? 1u : 0u;
      const u64 s2 = s + carry;
      const u64 c2 = (s2 < carry) ? 1u : 0u;
      t[j] = s2;
      carry = hi + c1 + c2;  // <= 2^64-1: total sum fits in 128 bits
    }
    u64 s = t[4] + carry;
    t[5] += (s < carry) ? 1u : 0u;
    t[4] = s;

    const u64 mi = t[0] * m.n0;
    u64 lo, hi;
    mul64(mi, m.mod[0], lo, hi);
    const u64 s0 = t[0] + lo;  // == 0 mod 2^64 by choice of mi
    carry = hi + ((s0 < lo) ? 1u : 0u);
    for (int j = 1; j < 4; ++j) {
      mul64(mi, m.mod[j], lo, hi);
      const u64 s1 = t[j] + lo;
      const u64 c1 = (s1 < lo) ? 1u : 0u;
      const u64 s2 = s1 + carry;
      const u64 c2 = (s2 < carry) ? 1u : 0u;
      t[j - 1] = s2;
      carry = hi + c1 + c2;
    }
    const u64 s4 = t[4] + carry;
    t[3] = s4;
    t[4] = t[5] + ((s4 < carry) ? 1u : 0u);
    t[5] = 0;
  }
  if (t[4] || geq4(t, m.mod)) sub4(t, t, m.mod);
  copy4(out, t);
}
#endif

inline void to_mont(const Mont& m, const u64 a[4], u64 out[4]) {
  mont_mul(m, a, m.rr, out);
}

inline void from_mont(const Mont& m, const u64 a[4], u64 out[4]) {
  static constexpr u64 kOne[4] = {1, 0, 0, 0};
  mont_mul(m, a, kOne, out);
}

/// out = a^e (a Montgomery, e plain); plain square-and-multiply, MSB
/// first. Used only for inversions, where e is public (mod - 2).
void mont_pow(const Mont& m, const u64 a[4], const u64 e[4], u64 out[4]) {
  u64 acc[4];
  copy4(acc, m.one);
  for (int i = 255; i >= 0; --i) {
    mont_mul(m, acc, acc, acc);
    if ((e[i / 64] >> (i % 64)) & 1u) mont_mul(m, acc, a, acc);
  }
  copy4(out, acc);
}

/// out = a^-1 (both Montgomery) via Fermat; modulus must be prime.
void mont_inv(const Mont& m, const u64 a[4], u64 out[4]) {
  static constexpr u64 kTwo[4] = {2, 0, 0, 0};
  u64 e[4];
  sub4(e, m.mod, kTwo);
  mont_pow(m, a, e, out);
}

Mont make_mont(const u64 mod[4]) {
  Mont m{};
  copy4(m.mod, mod);
  // Newton iteration for mod[0]^-1 mod 2^64 (mod must be odd); each step
  // doubles the number of correct low bits, starting from >= 3.
  u64 inv = mod[0];
  for (int i = 0; i < 6; ++i) inv *= 2 - mod[0] * inv;
  m.n0 = ~inv + 1;
  // R mod m and R^2 mod m by repeated modular doubling of 1: cheap,
  // branch-simple, and runs once per modulus at static-init time.
  u64 t[4] = {1, 0, 0, 0};
  for (int i = 0; i < 256; ++i) mod_add(m, t, t, t);
  copy4(m.one, t);
  for (int i = 0; i < 256; ++i) mod_add(m, t, t, t);
  copy4(m.rr, t);
  return m;
}

// P-256 domain parameters (FIPS 186-4), little-endian limbs.
constexpr u64 kP[4] = {0xFFFFFFFFFFFFFFFFull, 0x00000000FFFFFFFFull,
                       0x0000000000000000ull, 0xFFFFFFFF00000001ull};
constexpr u64 kN[4] = {0xF3B9CAC2FC632551ull, 0xBCE6FAADA7179E84ull,
                       0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFF00000000ull};
constexpr u64 kB[4] = {0x3BCE3C3E27D2604Bull, 0x651D06B0CC53B0F6ull,
                       0xB3EBBD55769886BCull, 0x5AC635D8AA3A93E7ull};
constexpr u64 kGx[4] = {0xF4A13945D898C296ull, 0x77037D812DEB33A0ull,
                        0xF8BCE6E563A440F2ull, 0x6B17D1F2E12C4247ull};
constexpr u64 kGy[4] = {0xCBB6406837BF51F5ull, 0x2BCE33576B315ECEull,
                        0x8EE7EB4A7C0F9E16ull, 0x4FE342E2FE1A7F9Bull};

const Mont& mont_p() {
  static const Mont m = make_mont(kP);
  return m;
}

const Mont& mont_n() {
  static const Mont m = make_mont(kN);
  return m;
}

#ifdef __SIZEOF_INT128__
// Dedicated Montgomery multiplication for the field prime
//   p = 2^256 - 2^224 + 2^192 + 2^96 - 1
//     = [2^64-1, 2^32-1, 0, 2^64-2^32+1] in little-endian limbs.
// Two structural gifts: p = -1 mod 2^64 makes n0 = 1, so the reduction
// quotient is just the low accumulator limb, and every limb of p is a
// sum/difference of powers of two, so the whole reduction row is shifts
// and adds -- 16 of the generic CIOS's 32 limb products vanish. This is
// the multiply under every point operation; the generic mont_mul stays
// for the scalar field n and the one-off setup paths. Forced inline:
// the point formulas chain 8-12 of these, and letting the compiler
// schedule across consecutive calls is worth ~15% on the verify walk.
__attribute__((always_inline)) inline void mont_mul_p(const u64 a[4],
                                                      const u64 b[4],
                                                      u64 out[4]) {
  using u128 = unsigned __int128;
  u64 t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0, t5 = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 ai = a[i];
    u128 c = static_cast<u128>(ai) * b[0] + t0;
    t0 = static_cast<u64>(c);
    c = static_cast<u128>(ai) * b[1] + t1 + static_cast<u64>(c >> 64);
    t1 = static_cast<u64>(c);
    c = static_cast<u128>(ai) * b[2] + t2 + static_cast<u64>(c >> 64);
    t2 = static_cast<u64>(c);
    c = static_cast<u128>(ai) * b[3] + t3 + static_cast<u64>(c >> 64);
    t3 = static_cast<u64>(c);
    c = static_cast<u128>(t4) + static_cast<u64>(c >> 64);
    t4 = static_cast<u64>(c);
    t5 += static_cast<u64>(c >> 64);

    // Reduction step: with quotient digit mi = t0 (n0 == 1), t + mi*p
    // clears the low limb exactly; shift the accumulator down one limb.
    const u64 mi = t0;
    // mi * p[0] = (mi << 64) - mi; low half cancels t0.
    c = (static_cast<u128>(mi) << 64) - mi + t0;
    u64 carry = static_cast<u64>(c >> 64);
    // mi * p[1] = (mi << 32) - mi.
    c = (static_cast<u128>(mi) << 32) - mi + t1 + carry;
    t0 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    // p[2] = 0.
    c = static_cast<u128>(t2) + carry;
    t1 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    // mi * p[3] = (mi << 64) - (mi << 32) + mi.
    c = (static_cast<u128>(mi) << 64) - (static_cast<u128>(mi) << 32) + mi +
        t3 + carry;
    t2 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(t4) + carry;
    t3 = static_cast<u64>(c);
    t4 = t5 + static_cast<u64>(c >> 64);
    t5 = 0;
  }
  u64 t[4] = {t0, t1, t2, t3};
  if (t4 || geq4(t, kP)) sub4(t, t, kP);
  copy4(out, t);
}

// Dedicated Montgomery squaring mod p: the 16 limb products of the
// generic multiply collapse to 10 (6 off-diagonal, computed once and
// doubled, plus 4 diagonal), followed by the same shift-and-add
// reduction as mont_mul_p. The point formulas spend 3 of their 11
// multiplies on squarings, so this is worth ~5% on the verify walk.
__attribute__((always_inline)) inline void mont_sqr_p(const u64 a[4],
                                                      u64 out[4]) {
  using u128 = unsigned __int128;
  // Off-diagonal half: t1..t6 accumulate a[i]*a[j] for i < j.
  u128 c = static_cast<u128>(a[0]) * a[1];
  u64 t1 = static_cast<u64>(c);
  u64 k = static_cast<u64>(c >> 64);
  c = static_cast<u128>(a[0]) * a[2] + k;
  u64 t2 = static_cast<u64>(c);
  k = static_cast<u64>(c >> 64);
  c = static_cast<u128>(a[0]) * a[3] + k;
  u64 t3 = static_cast<u64>(c);
  u64 t4 = static_cast<u64>(c >> 64);
  c = static_cast<u128>(a[1]) * a[2] + t3;
  t3 = static_cast<u64>(c);
  k = static_cast<u64>(c >> 64);
  c = static_cast<u128>(a[1]) * a[3] + t4 + k;
  t4 = static_cast<u64>(c);
  u64 t5 = static_cast<u64>(c >> 64);
  c = static_cast<u128>(a[2]) * a[3] + t5;
  t5 = static_cast<u64>(c);
  u64 t6 = static_cast<u64>(c >> 64);
  // Double it and add the diagonal.
  u64 t7 = t6 >> 63;
  t6 = (t6 << 1) | (t5 >> 63);
  t5 = (t5 << 1) | (t4 >> 63);
  t4 = (t4 << 1) | (t3 >> 63);
  t3 = (t3 << 1) | (t2 >> 63);
  t2 = (t2 << 1) | (t1 >> 63);
  t1 = t1 << 1;
  c = static_cast<u128>(a[0]) * a[0];
  u64 t0 = static_cast<u64>(c);
  u128 d = static_cast<u128>(t1) + static_cast<u64>(c >> 64);
  t1 = static_cast<u64>(d);
  c = static_cast<u128>(a[1]) * a[1] + t2 + static_cast<u64>(d >> 64);
  t2 = static_cast<u64>(c);
  d = static_cast<u128>(t3) + static_cast<u64>(c >> 64);
  t3 = static_cast<u64>(d);
  c = static_cast<u128>(a[2]) * a[2] + t4 + static_cast<u64>(d >> 64);
  t4 = static_cast<u64>(c);
  d = static_cast<u128>(t5) + static_cast<u64>(c >> 64);
  t5 = static_cast<u64>(d);
  c = static_cast<u128>(a[3]) * a[3] + t6 + static_cast<u64>(d >> 64);
  t6 = static_cast<u64>(c);
  t7 += static_cast<u64>(c >> 64);
  // Four mul-free reduction rounds (see mont_mul_p): each consumes the
  // low limb and shifts the 8-limb window down by one.
  for (int i = 0; i < 4; ++i) {
    const u64 mi = t0;
    c = (static_cast<u128>(mi) << 64) - mi + t0;  // mi*p[0]; low cancels
    u64 carry = static_cast<u64>(c >> 64);
    c = (static_cast<u128>(mi) << 32) - mi + t1 + carry;
    t0 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(t2) + carry;  // p[2] = 0
    t1 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = (static_cast<u128>(mi) << 64) - (static_cast<u128>(mi) << 32) + mi +
        t3 + carry;
    t2 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    c = static_cast<u128>(t4) + carry;
    t3 = static_cast<u64>(c);
    carry = static_cast<u64>(c >> 64);
    // Ripple into the untouched upper limbs of the window.
    c = static_cast<u128>(t5) + carry;
    t4 = static_cast<u64>(c);
    c = static_cast<u128>(t6) + static_cast<u64>(c >> 64);
    t5 = static_cast<u64>(c);
    c = static_cast<u128>(t7) + static_cast<u64>(c >> 64);
    t6 = static_cast<u64>(c);
    t7 = static_cast<u64>(c >> 64);
  }
  u64 t[4] = {t0, t1, t2, t3};
  if (t4 || geq4(t, kP)) sub4(t, t, kP);
  copy4(out, t);
}
#else
// 32-bit-only targets: fall back to the generic CIOS path.
inline void mont_mul_p(const u64 a[4], const u64 b[4], u64 out[4]) {
  mont_mul(mont_p(), a, b, out);
}
inline void mont_sqr_p(const u64 a[4], u64 out[4]) {
  mont_mul(mont_p(), a, a, out);
}
#endif

/// Jacobian point, Montgomery-form coordinates; z == 0 is infinity.
struct JacPt {
  u64 x[4], y[4], z[4];
};

/// Affine point, Montgomery-form coordinates; never infinity.
struct AffPt {
  u64 x[4], y[4];
};

JacPt jac_infinity() {
  JacPt p{};
  const Mont& m = mont_p();
  copy4(p.x, m.one);
  copy4(p.y, m.one);
  // z stays zero
  return p;
}

// Doubling with the a = -3 shortcut (EFD dbl-2001-b): 3M + 5S. Safe on
// the point at infinity (z = 0 propagates to z3 = 0) and under
// out-aliases-p.
void pt_double(const JacPt& p, JacPt& out) {
  const Mont& m = mont_p();
  u64 delta[4], gamma[4], beta[4], alpha[4], t0[4], t1[4];
  u64 x3[4], y3[4], z3[4];
  mont_sqr_p(p.z, delta);
  mont_sqr_p(p.y, gamma);
  mont_mul_p(p.x, gamma, beta);
  mod_sub(m, p.x, delta, t0);
  mod_add(m, p.x, delta, t1);
  mont_mul_p(t0, t1, t0);
  mod_add(m, t0, t0, alpha);
  mod_add(m, alpha, t0, alpha);  // alpha = 3(x - delta)(x + delta)
  mod_add(m, p.y, p.z, t1);
  mont_sqr_p(t1, t1);
  mod_sub(m, t1, gamma, t1);
  mod_sub(m, t1, delta, z3);  // z3 = (y + z)^2 - gamma - delta
  mont_sqr_p(alpha, x3);
  mod_add(m, beta, beta, t0);
  mod_add(m, t0, t0, t0);  // 4 beta
  mod_sub(m, x3, t0, x3);
  mod_sub(m, x3, t0, x3);  // x3 = alpha^2 - 8 beta
  mod_sub(m, t0, x3, t1);  // 4 beta - x3
  mont_mul_p(alpha, t1, y3);
  mont_sqr_p(gamma, t0);
  mod_add(m, t0, t0, t0);
  mod_add(m, t0, t0, t0);
  mod_add(m, t0, t0, t0);  // 8 gamma^2
  mod_sub(m, y3, t0, y3);
  copy4(out.x, x3);
  copy4(out.y, y3);
  copy4(out.z, z3);
}

// Mixed addition p (Jacobian) + q (affine), 8M + 3S; the workhorse of
// the window-table walk. Handles p = infinity, p == q (falls back to
// doubling) and p == -q (returns infinity). Safe under out-aliases-p.
void pt_add_affine(const JacPt& p, const AffPt& q, JacPt& out) {
  const Mont& m = mont_p();
  if (is_zero4(p.z)) {
    copy4(out.x, q.x);
    copy4(out.y, q.y);
    copy4(out.z, m.one);
    return;
  }
  u64 z1z1[4], u2[4], s2[4], h[4], r[4], t[4];
  mont_sqr_p(p.z, z1z1);
  mont_mul_p(q.x, z1z1, u2);
  mont_mul_p(p.z, z1z1, t);
  mont_mul_p(q.y, t, s2);
  mod_sub(m, u2, p.x, h);
  mod_sub(m, s2, p.y, r);
  if (is_zero4(h)) {
    if (is_zero4(r)) {
      pt_double(p, out);
    } else {
      out = jac_infinity();
    }
    return;
  }
  u64 h2[4], h3[4], v[4], x3[4], y3[4], z3[4];
  mont_sqr_p(h, h2);
  mont_mul_p(h, h2, h3);
  mont_mul_p(p.x, h2, v);
  mont_sqr_p(r, x3);
  mod_sub(m, x3, h3, x3);
  mod_sub(m, x3, v, x3);
  mod_sub(m, x3, v, x3);  // x3 = r^2 - h^3 - 2v
  mod_sub(m, v, x3, t);
  mont_mul_p(r, t, y3);
  mont_mul_p(p.y, h3, t);
  mod_sub(m, y3, t, y3);  // y3 = r(v - x3) - y1 h^3
  mont_mul_p(p.z, h, z3);
  copy4(out.x, x3);
  copy4(out.y, y3);
  copy4(out.z, z3);
}

// General Jacobian + Jacobian addition (table construction only).
void pt_add(const JacPt& p, const JacPt& q, JacPt& out) {
  const Mont& m = mont_p();
  if (is_zero4(p.z)) {
    out = q;
    return;
  }
  if (is_zero4(q.z)) {
    out = p;
    return;
  }
  u64 z1z1[4], z2z2[4], u1[4], u2[4], s1[4], s2[4], h[4], r[4], t[4];
  mont_sqr_p(p.z, z1z1);
  mont_sqr_p(q.z, z2z2);
  mont_mul_p(p.x, z2z2, u1);
  mont_mul_p(q.x, z1z1, u2);
  mont_mul_p(q.z, z2z2, t);
  mont_mul_p(p.y, t, s1);
  mont_mul_p(p.z, z1z1, t);
  mont_mul_p(q.y, t, s2);
  mod_sub(m, u2, u1, h);
  mod_sub(m, s2, s1, r);
  if (is_zero4(h)) {
    if (is_zero4(r)) {
      pt_double(p, out);
    } else {
      out = jac_infinity();
    }
    return;
  }
  u64 h2[4], h3[4], v[4], x3[4], y3[4], z3[4];
  mont_sqr_p(h, h2);
  mont_mul_p(h, h2, h3);
  mont_mul_p(u1, h2, v);
  mont_sqr_p(r, x3);
  mod_sub(m, x3, h3, x3);
  mod_sub(m, x3, v, x3);
  mod_sub(m, x3, v, x3);
  mod_sub(m, v, x3, t);
  mont_mul_p(r, t, y3);
  mont_mul_p(s1, h3, t);
  mod_sub(m, y3, t, y3);
  mont_mul_p(p.z, q.z, z3);
  mont_mul_p(z3, h, z3);
  copy4(out.x, x3);
  copy4(out.y, y3);
  copy4(out.z, z3);
}

JacPt jac_from_plain_affine(const AffinePoint& a) {
  const Mont& m = mont_p();
  JacPt p{};
  to_mont(m, a.x.w, p.x);
  to_mont(m, a.y.w, p.y);
  copy4(p.z, m.one);
  return p;
}

AffinePoint jac_to_plain_affine(const JacPt& p) {
  AffinePoint out;
  if (is_zero4(p.z)) return out;  // infinity
  const Mont& m = mont_p();
  u64 zinv[4], zinv2[4], zinv3[4], t[4];
  mont_inv(m, p.z, zinv);
  mont_mul(m, zinv, zinv, zinv2);
  mont_mul(m, zinv2, zinv, zinv3);
  mont_mul(m, p.x, zinv2, t);
  from_mont(m, t, out.x.w);
  mont_mul(m, p.y, zinv3, t);
  from_mont(m, t, out.y.w);
  out.infinity = false;
  return out;
}

inline unsigned window_digit8(const U256& k, int j) {
  return static_cast<unsigned>(k.w[j / 8] >> ((j % 8) * 8)) & 0xFFu;
}

/// Scalar bits [12j, 12j + 12), handling windows that straddle a limb
/// boundary. The top window (j = 21) covers only bits 252..255.
inline unsigned window_digit12(const U256& k, int j) {
  const int bit = j * 12;
  const int limb = bit >> 6;
  const int off = bit & 63;
  u64 v = k.w[limb] >> off;
  if (off > 52 && limb < 3) v |= k.w[limb + 1] << (64 - off);
  return static_cast<unsigned>(v) & 0xFFFu;
}

/// Batch-convert Jacobian points to affine Montgomery form with a single
/// field inversion (Montgomery's trick over all z coordinates). No input
/// may be the point at infinity.
void batch_normalize(const JacPt* in, std::size_t count, AffPt* out) {
  const Mont& m = mont_p();
  std::vector<std::array<u64, 4>> prefix(count);
  u64 acc[4];
  copy4(acc, m.one);
  for (std::size_t i = 0; i < count; ++i) {
    copy4(prefix[i].data(), acc);
    mont_mul(m, acc, in[i].z, acc);
  }
  u64 inv_all[4];
  mont_inv(m, acc, inv_all);
  for (std::size_t i = count; i-- > 0;) {
    u64 zinv[4], zinv2[4], zinv3[4];
    mont_mul(m, inv_all, prefix[i].data(), zinv);
    mont_mul(m, inv_all, in[i].z, inv_all);
    mont_mul(m, zinv, zinv, zinv2);
    mont_mul(m, zinv2, zinv, zinv3);
    mont_mul(m, in[i].x, zinv2, out[i].x);
    mont_mul(m, in[i].y, zinv3, out[i].y);
  }
}

// Fixed-base comb for the generator. G is one public point shared by
// every signer and verifier in the process, so unlike the per-key
// WindowTable its precompute can be traded aggressively for walk length:
// 12-bit windows mean ceil(256/12) = 22 mixed additions for k*G instead
// of the 8-bit table's 32. Row j holds d * 4096^j * G for d in 1..4095
// (window 21 covers only scalar bits 252..255, so its row has just 15
// entries); ~5.5 MiB total, built lazily on first use.
struct G12Comb {
  static constexpr int kWindows = 22;
  static constexpr unsigned kRowLen = 4095;     // full rows (j < 21)
  static constexpr unsigned kTopRowLen = 15;    // bits 252..255
  std::vector<AffPt> pts;  // flattened, uniform stride kRowLen
  const AffPt* row(int j) const { return pts.data() + kRowLen * static_cast<std::size_t>(j); }
};

const G12Comb& g12_comb() {
  static const G12Comb comb = [] {
    // Window bases 4096^j * G by repeated doubling (12 doublings per
    // window), batch-normalized so every table entry is a mixed add.
    const Mont& m = mont_p();
    std::vector<JacPt> bases(G12Comb::kWindows);
    bases[0] = jac_from_plain_affine(generator());
    for (int j = 1; j < G12Comb::kWindows; ++j) {
      JacPt t = bases[static_cast<std::size_t>(j - 1)];
      for (int i = 0; i < 12; ++i) pt_double(t, t);
      bases[static_cast<std::size_t>(j)] = t;
    }
    std::vector<AffPt> base_aff(G12Comb::kWindows);
    batch_normalize(bases.data(), bases.size(), base_aff.data());
    const std::size_t count =
        static_cast<std::size_t>(G12Comb::kWindows - 1) * G12Comb::kRowLen +
        G12Comb::kTopRowLen;
    std::vector<JacPt> jac(count);
    std::size_t idx = 0;
    for (int j = 0; j < G12Comb::kWindows; ++j) {
      const unsigned len =
          (j == G12Comb::kWindows - 1) ? G12Comb::kTopRowLen : G12Comb::kRowLen;
      const AffPt& wb = base_aff[static_cast<std::size_t>(j)];
      JacPt acc;
      copy4(acc.x, wb.x);
      copy4(acc.y, wb.y);
      copy4(acc.z, m.one);
      for (unsigned d = 0; d < len; ++d) {
        jac[idx++] = acc;
        pt_add_affine(acc, wb, acc);
      }
    }
    G12Comb g;
    // Uniform stride keeps row() branch-free; the top row's tail is
    // simply never indexed (digits there are < 16).
    g.pts.resize(static_cast<std::size_t>(G12Comb::kWindows) * G12Comb::kRowLen);
    idx = 0;
    std::vector<AffPt> flat(count);
    batch_normalize(jac.data(), count, flat.data());
    for (int j = 0; j < G12Comb::kWindows; ++j) {
      const unsigned len =
          (j == G12Comb::kWindows - 1) ? G12Comb::kTopRowLen : G12Comb::kRowLen;
      for (unsigned d = 0; d < len; ++d) {
        g.pts[G12Comb::kRowLen * static_cast<std::size_t>(j) + d] = flat[idx++];
      }
    }
    return g;
  }();
  return comb;
}

}  // namespace

U256 from_bytes_be(BytesView be) {
  U256 a;
  if (be.size() != kFieldSize) return a;
  for (int i = 0; i < 4; ++i) {
    u64 limb = 0;
    for (int j = 0; j < 8; ++j) {
      limb = (limb << 8) | be[static_cast<std::size_t>((3 - i) * 8 + j)];
    }
    a.w[i] = limb;
  }
  return a;
}

Bytes to_bytes_be(const U256& a) {
  Bytes out(kFieldSize);
  for (int i = 0; i < 4; ++i) {
    const u64 limb = a.w[3 - i];
    for (int j = 0; j < 8; ++j) {
      out[static_cast<std::size_t>(i * 8 + j)] =
          static_cast<std::uint8_t>(limb >> ((7 - j) * 8));
    }
  }
  return out;
}

bool u256_less(const U256& a, const U256& b) { return !geq4(a.w, b.w); }

const U256& order_n() {
  static const U256 n = [] {
    U256 v;
    copy4(v.w, kN);
    return v;
  }();
  return n;
}

const U256& prime_p() {
  static const U256 p = [] {
    U256 v;
    copy4(v.w, kP);
    return v;
  }();
  return p;
}

U256 reduce_mod_n(const U256& a) {
  U256 out = a;
  if (geq4(out.w, kN)) sub4(out.w, out.w, kN);
  return out;
}

U256 add_mod_n(const U256& a, const U256& b) {
  U256 out;
  mod_add(mont_n(), a.w, b.w, out.w);
  return out;
}

U256 mul_mod_n(const U256& a, const U256& b) {
  // One Montgomery product gives a*b*R^-1; a second against R^2 strips
  // the stray R^-1 without converting either operand first.
  const Mont& m = mont_n();
  U256 out;
  u64 t[4];
  mont_mul(m, a.w, b.w, t);
  mont_mul(m, t, m.rr, out.w);
  return out;
}

U256 inv_mod_n(const U256& a) {
  const Mont& m = mont_n();
  U256 out;
  u64 am[4], t[4];
  to_mont(m, a.w, am);
  mont_inv(m, am, t);
  from_mont(m, t, out.w);
  return out;
}

#ifdef __SIZEOF_INT128__
namespace {

// ---- Bernstein-Yang division-step inversion mod n ----------------------
//
// The obvious binary extended Euclid decides swap/subtract/halve from
// full-width comparisons, so a fresh input costs hundreds of
// unpredictable branches -- measured ~8-10 us per inversion on the
// verify path, dwarfing the point arithmetic it feeds. The divstep
// formulation ("Fast constant-time gcd computation and modular
// inversion", Bernstein & Yang, CHES 2019) replaces every comparison
// with a sign counter whose decisions depend ONLY on the low bits, so 62
// steps at a time run on single 64-bit words and the multi-precision
// state is touched once per batch through a 2x2 integer transition
// matrix. The theorem behind it: 741 divsteps always suffice for
// 256-bit inputs; this variable-time variant just stops as soon as g
// hits zero (s is public in every caller).

using i64 = std::int64_t;
using i128 = __int128;
using u128 = unsigned __int128;

constexpr u64 kMask62 = (u64{1} << 62) - 1;

/// 256-bit signed value in 5 limbs of 62 bits (low 4 canonical in
/// [0, 2^62), top limb carries the sign).
struct S62 {
  i64 v[5];
};

S62 s62_from_u256(const u64 a[4]) {
  S62 out;
  out.v[0] = static_cast<i64>(a[0] & kMask62);
  out.v[1] = static_cast<i64>(((a[0] >> 62) | (a[1] << 2)) & kMask62);
  out.v[2] = static_cast<i64>(((a[1] >> 60) | (a[2] << 4)) & kMask62);
  out.v[3] = static_cast<i64>(((a[2] >> 58) | (a[3] << 6)) & kMask62);
  out.v[4] = static_cast<i64>(a[3] >> 56);
  return out;
}

void s62_to_u256(const S62& a, u64 out[4]) {
  const u64 v0 = static_cast<u64>(a.v[0]);
  const u64 v1 = static_cast<u64>(a.v[1]);
  const u64 v2 = static_cast<u64>(a.v[2]);
  const u64 v3 = static_cast<u64>(a.v[3]);
  const u64 v4 = static_cast<u64>(a.v[4]);
  out[0] = v0 | (v1 << 62);
  out[1] = (v1 >> 2) | (v2 << 60);
  out[2] = (v2 >> 4) | (v3 << 58);
  out[3] = (v3 >> 6) | (v4 << 56);
}

bool s62_is_zero(const S62& a) {
  return (a.v[0] | a.v[1] | a.v[2] | a.v[3] | a.v[4]) == 0;
}

bool s62_is_neg(const S62& a) { return a.v[4] < 0; }

void s62_negate(S62& a) {
  i64 borrow = 0;
  for (int i = 0; i < 5; ++i) {
    const i64 t = -a.v[i] + borrow;
    a.v[i] = t & static_cast<i64>(kMask62);
    borrow = t >> 62;
  }
  a.v[4] |= borrow << 62;
}

/// a += sign * n, in-place; used only for the final normalization.
void s62_add_n(S62& a, i64 sign, const S62& n) {
  i64 carry = 0;
  for (int i = 0; i < 5; ++i) {
    const i64 t = a.v[i] + sign * n.v[i] + carry;
    a.v[i] = t & static_cast<i64>(kMask62);
    carry = t >> 62;
  }
  a.v[4] |= carry << 62;  // top limb keeps the sign
}

/// 62 divsteps on the low words, returning the scaled transition matrix
/// [u v; q r] with entries bounded by 2^62. Maintains, against the
/// full-precision f and g the caller holds:
///   u*f0 + v*g0 == f_new * 2^62,   q*f0 + r*g0 == g_new * 2^62.
/// Decisions depend only on delta and the low 62 bits, which is what
/// makes the batch sound; runs of trailing zeros in g collapse into one
/// shift via ctz instead of one badly-predicted branch per bit.
void divsteps62(i64& delta, u64 f0, u64 g0, i64 t[4]) {
  u64 u = 1, v = 0, q = 0, r = 1;  // two's complement; signed at the end
  u64 f = f0, g = g0;
  int i = 62;
  for (;;) {
    int zeros = (g == 0) ? i : __builtin_ctzll(g);
    if (zeros > i) zeros = i;
    g >>= zeros;
    u <<= zeros;
    v <<= zeros;
    delta += zeros;
    i -= zeros;
    if (i == 0) break;
    // g is odd here.
    if (delta > 0) {
      delta = 1 - delta;
      const u64 of = f, ou = u, ov = v;
      f = g;
      g = (g - of) >> 1;
      u = q << 1;
      v = r << 1;
      q -= ou;
      r -= ov;
    } else {
      delta = 1 + delta;
      g = (g + f) >> 1;
      q += u;
      r += v;
      u <<= 1;
      v <<= 1;
    }
    --i;
  }
  t[0] = static_cast<i64>(u);
  t[1] = static_cast<i64>(v);
  t[2] = static_cast<i64>(q);
  t[3] = static_cast<i64>(r);
}

/// (f, g) <- (u*f + v*g, q*f + r*g) / 2^62; the division is exact by
/// construction of the matrix.
void update_fg(S62& f, S62& g, const i64 t[4]) {
  i128 cf = 0, cg = 0;
  cf += static_cast<i128>(t[0]) * f.v[0] + static_cast<i128>(t[1]) * g.v[0];
  cg += static_cast<i128>(t[2]) * f.v[0] + static_cast<i128>(t[3]) * g.v[0];
  cf >>= 62;
  cg >>= 62;
  for (int i = 1; i < 5; ++i) {
    cf += static_cast<i128>(t[0]) * f.v[i] + static_cast<i128>(t[1]) * g.v[i];
    cg += static_cast<i128>(t[2]) * f.v[i] + static_cast<i128>(t[3]) * g.v[i];
    f.v[i - 1] = static_cast<i64>(static_cast<u64>(cf) & kMask62);
    g.v[i - 1] = static_cast<i64>(static_cast<u64>(cg) & kMask62);
    cf >>= 62;
    cg >>= 62;
  }
  f.v[4] = static_cast<i64>(cf);
  g.v[4] = static_cast<i64>(cg);
}

/// (d, e) <- (u*d + v*e, q*d + r*e) / 2^62 (mod n): the low 62 bits are
/// cancelled by adding the right multiple of n (n odd), exactly the
/// Montgomery reduction step, so the division is again exact.
void update_de(S62& d, S62& e, const i64 t[4], const S62& n, u64 n0inv62) {
  i128 cd = static_cast<i128>(t[0]) * d.v[0] + static_cast<i128>(t[1]) * e.v[0];
  i128 ce = static_cast<i128>(t[2]) * d.v[0] + static_cast<i128>(t[3]) * e.v[0];
  const u64 md = (static_cast<u64>(cd) * n0inv62) & kMask62;
  const u64 me = (static_cast<u64>(ce) * n0inv62) & kMask62;
  cd += static_cast<i128>(md) * n.v[0];
  ce += static_cast<i128>(me) * n.v[0];
  cd >>= 62;
  ce >>= 62;
  for (int i = 1; i < 5; ++i) {
    cd += static_cast<i128>(t[0]) * d.v[i] + static_cast<i128>(t[1]) * e.v[i];
    ce += static_cast<i128>(t[2]) * d.v[i] + static_cast<i128>(t[3]) * e.v[i];
    cd += static_cast<i128>(md) * n.v[i];
    ce += static_cast<i128>(me) * n.v[i];
    d.v[i - 1] = static_cast<i64>(static_cast<u64>(cd) & kMask62);
    e.v[i - 1] = static_cast<i64>(static_cast<u64>(ce) & kMask62);
    cd >>= 62;
    ce >>= 62;
  }
  d.v[4] = static_cast<i64>(cd);
  e.v[4] = static_cast<i64>(ce);
}

}  // namespace

U256 inv_mod_n_vartime(const U256& a) {
  if (a.is_zero()) return U256{};
  static const S62 n62 = s62_from_u256(kN);
  // -n^-1 mod 2^62 (same Newton iteration as make_mont, masked to 62
  // bits), computed once.
  static const u64 n0inv62 = [] {
    u64 inv = kN[0];
    for (int i = 0; i < 6; ++i) inv *= 2 - kN[0] * inv;
    return (~inv + 1) & kMask62;
  }();
  // Invariants (mod n): f == d * a and g == e * a. Start f = n == 0 * a,
  // g = a == 1 * a; when g reaches zero, f holds gcd(a, n) * sign, i.e.
  // +-1 since n is prime, and d is the matching +-a^-1.
  S62 f = n62;
  S62 g = s62_from_u256(a.w);
  S62 d{{0, 0, 0, 0, 0}};
  S62 e{{1, 0, 0, 0, 0}};
  i64 delta = 1;
  // 741 divsteps always suffice for 256-bit inputs (Bernstein-Yang
  // theorem 11.2), i.e. 12 batches; the cap is pure defensiveness.
  for (int iter = 0; iter < 24 && !s62_is_zero(g); ++iter) {
    i64 t[4];
    const u64 f0 =
        static_cast<u64>(f.v[0]) | (static_cast<u64>(f.v[1]) << 62);
    const u64 g0 =
        static_cast<u64>(g.v[0]) | (static_cast<u64>(g.v[1]) << 62);
    divsteps62(delta, f0, g0, t);
    update_fg(f, g, t);
    update_de(d, e, t, n62, n0inv62);
  }
  // f ended at -gcd when the last swap left it negative; flip d to
  // match, then fold d -- bounded by a small multiple of n, since it
  // gains at most one modulus per batch -- into [0, n).
  if (s62_is_neg(f)) s62_negate(d);
  while (s62_is_neg(d)) s62_add_n(d, 1, n62);
  U256 out;
  for (;;) {
    u64 w[4];
    s62_to_u256(d, w);
    if ((d.v[4] >> 8) == 0 && !geq4(w, kN)) {
      copy4(out.w, w);
      break;
    }
    s62_add_n(d, -1, n62);
  }
  return out;
}
#else
U256 inv_mod_n_vartime(const U256& a) {
  // Targets without __int128: the constant-time Fermat ladder is merely
  // slower, never wrong.
  return inv_mod_n(a);
}
#endif

const AffinePoint& generator() {
  static const AffinePoint g = [] {
    AffinePoint v;
    copy4(v.x.w, kGx);
    copy4(v.y.w, kGy);
    v.infinity = false;
    return v;
  }();
  return g;
}

bool on_curve(const AffinePoint& point) {
  if (point.infinity) return false;
  if (!u256_less(point.x, prime_p()) || !u256_less(point.y, prime_p())) {
    return false;
  }
  const Mont& m = mont_p();
  u64 x[4], y[4], lhs[4], rhs[4], t[4];
  to_mont(m, point.x.w, x);
  to_mont(m, point.y.w, y);
  mont_mul(m, y, y, lhs);
  mont_mul(m, x, x, rhs);
  mont_mul(m, rhs, x, rhs);  // x^3
  mod_add(m, x, x, t);
  mod_add(m, t, x, t);  // 3x
  mod_sub(m, rhs, t, rhs);
  to_mont(m, kB, t);
  mod_add(m, rhs, t, rhs);
  return eq4(lhs, rhs);
}

AffinePoint scalar_mul(const AffinePoint& base, const U256& k) {
  if (base.infinity || k.is_zero()) return AffinePoint{};
  const Mont& m = mont_p();
  AffPt b;
  to_mont(m, base.x.w, b.x);
  to_mont(m, base.y.w, b.y);
  JacPt acc = jac_infinity();
  for (int i = 255; i >= 0; --i) {
    pt_double(acc, acc);
    if ((k.w[i / 64] >> (i % 64)) & 1u) pt_add_affine(acc, b, acc);
  }
  return jac_to_plain_affine(acc);
}

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b) {
  if (a.infinity) return b;
  if (b.infinity) return a;
  JacPt ja = jac_from_plain_affine(a);
  const JacPt jb = jac_from_plain_affine(b);
  pt_add(ja, jb, ja);
  return jac_to_plain_affine(ja);
}

struct WindowTable::Impl {
  // pts[j][d] = (d + 1) * 256^j * base, affine Montgomery form.
  AffPt pts[32][255];
};

WindowTable::WindowTable(const AffinePoint& base) : impl_(new Impl) {
  // Walk multiples with general adds only: row entry d is (d+1) * wb and
  // one further add yields 256 * wb, the next window's base. No
  // doublings anywhere in the construction.
  std::vector<JacPt> jac(32 * 255);
  JacPt window_base = jac_from_plain_affine(base);
  for (int j = 0; j < 32; ++j) {
    JacPt t = window_base;
    for (int d = 0; d < 255; ++d) {
      jac[static_cast<std::size_t>(j * 255 + d)] = t;
      pt_add(t, window_base, t);
    }
    window_base = t;
  }
  // Batch-normalize to affine with a single field inversion (Montgomery
  // trick over all 8160 z coordinates).
  batch_normalize(jac.data(), jac.size(), &impl_->pts[0][0]);
}

WindowTable::~WindowTable() = default;
WindowTable::WindowTable(WindowTable&&) noexcept = default;
WindowTable& WindowTable::operator=(WindowTable&&) noexcept = default;

AffinePoint table_scalar_mul(const WindowTable& table, const U256& k) {
  JacPt acc = jac_infinity();
  for (int j = 0; j < 32; ++j) {
    const unsigned d = window_digit8(k, j);
    if (d) pt_add_affine(acc, table.impl_->pts[j][d - 1], acc);
  }
  return jac_to_plain_affine(acc);
}

AffinePoint scalar_mul_base(const U256& k) {
  const G12Comb& g = g12_comb();
  JacPt acc = jac_infinity();
  for (int j = 0; j < G12Comb::kWindows; ++j) {
    const unsigned d = window_digit12(k, j);
    if (d) pt_add_affine(acc, g.row(j)[d - 1], acc);
  }
  return jac_to_plain_affine(acc);
}

bool verify_r_match(const WindowTable& q_table, const U256& u1,
                    const U256& u2, const U256& r) {
  const G12Comb& g = g12_comb();
  // Every table entry the walk will touch is known up front, and the
  // walk itself is a serial dependency chain -- issuing the loads now
  // hides the cache misses of the two tables behind the arithmetic.
  for (int j = 0; j < G12Comb::kWindows; ++j) {
    const unsigned d1 = window_digit12(u1, j);
    if (d1) __builtin_prefetch(&g.row(j)[d1 - 1]);
  }
  for (int j = 0; j < 32; ++j) {
    const unsigned d2 = window_digit8(u2, j);
    if (d2) __builtin_prefetch(&q_table.impl_->pts[j][d2 - 1]);
  }
  // u1*G through the wide shared comb (<= 22 adds), u2*Q through the
  // per-key table (<= 32 adds); order is irrelevant, both fold into one
  // accumulator.
  JacPt acc = jac_infinity();
  for (int j = 0; j < G12Comb::kWindows; ++j) {
    const unsigned d1 = window_digit12(u1, j);
    if (d1) pt_add_affine(acc, g.row(j)[d1 - 1], acc);
  }
  for (int j = 0; j < 32; ++j) {
    const unsigned d2 = window_digit8(u2, j);
    if (d2) pt_add_affine(acc, q_table.impl_->pts[j][d2 - 1], acc);
  }
  if (is_zero4(acc.z)) return false;
  // x(R) mod n == r  <=>  X == r~ * Z^2 for r~ in {r, r + n} with
  // r~ < p; comparing in projective form skips the field inversion that
  // would otherwise dominate the verify cost.
  const Mont& m = mont_p();
  u64 zz[4], rm[4], cand[4];
  mont_mul_p(acc.z, acc.z, zz);
  to_mont(m, r.w, rm);
  mont_mul_p(rm, zz, cand);
  if (eq4(cand, acc.x)) return true;
  u64 rn[4];
  if (add4(rn, r.w, kN) == 0 && !geq4(rn, kP)) {
    to_mont(m, rn, rm);
    mont_mul_p(rm, zz, cand);
    if (eq4(cand, acc.x)) return true;
  }
  return false;
}

// ---- batched verification ----------------------------------------------
//
// A solo verify walk is one serial dependency chain: every mixed addition
// waits on the previous one, and each field multiply inside an addition
// waits on the one before it, so the wide multiplier spends most cycles
// stalled on latency. Batching breaks that: up to four items' walks run
// in lockstep, with each field operation issued for all four lanes before
// the next dependent operation of any lane -- four independent chains
// that the out-of-order core overlaps freely. The decision side is
// amortized too: each item collapses to a projective residual (zero
// exactly when its signature matches), the residuals fold into one
// randomized linear combination checked with a single comparison, and a
// bisection over the stored per-item terms pinpoints the offending
// indices when the combined check fails.

namespace {

constexpr int kVerifyLanes = 4;
/// Upper bound on table entries one walk touches: 22 comb windows plus
/// 32 per-key windows.
constexpr int kMaxWalkAdds = G12Comb::kWindows + 32;

/// Lockstep mixed addition: one pt_add_affine step applied to up to four
/// independent (accumulator, table entry) pairs selected by `mask`.
/// Operation-major order -- each loop issues the same field operation
/// for every active lane -- keeps consecutive instructions free of data
/// dependencies. Exceptional cases (infinity accumulator, doubling,
/// cancellation) peel the affected lane off to the scalar formulas, so
/// results match pt_add_affine bit for bit.
void pt_add_affine_lanes(JacPt* const acc[kVerifyLanes],
                         const AffPt* const q[kVerifyLanes], unsigned mask) {
  const Mont& m = mont_p();
  for (int l = 0; l < kVerifyLanes; ++l) {
    if (!((mask >> l) & 1u)) continue;
    if (is_zero4(acc[l]->z)) {
      copy4(acc[l]->x, q[l]->x);
      copy4(acc[l]->y, q[l]->y);
      copy4(acc[l]->z, m.one);
      mask &= ~(1u << l);
    }
  }
  u64 z1z1[kVerifyLanes][4], u2[kVerifyLanes][4], s2[kVerifyLanes][4];
  u64 h[kVerifyLanes][4], r[kVerifyLanes][4], t[kVerifyLanes][4];
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_sqr_p(acc[l]->z, z1z1[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(q[l]->x, z1z1[l], u2[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(acc[l]->z, z1z1[l], t[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(q[l]->y, t[l], s2[l]);
  for (int l = 0; l < kVerifyLanes; ++l) {
    if (!((mask >> l) & 1u)) continue;
    mod_sub(m, u2[l], acc[l]->x, h[l]);
    mod_sub(m, s2[l], acc[l]->y, r[l]);
    if (is_zero4(h[l])) {
      if (is_zero4(r[l])) {
        pt_double(*acc[l], *acc[l]);
      } else {
        *acc[l] = jac_infinity();
      }
      mask &= ~(1u << l);
    }
  }
  u64 h2[kVerifyLanes][4], h3[kVerifyLanes][4], v[kVerifyLanes][4];
  u64 x3[kVerifyLanes][4], y3[kVerifyLanes][4];
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_sqr_p(h[l], h2[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(h[l], h2[l], h3[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(acc[l]->x, h2[l], v[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_sqr_p(r[l], x3[l]);
  for (int l = 0; l < kVerifyLanes; ++l) {
    if (!((mask >> l) & 1u)) continue;
    mod_sub(m, x3[l], h3[l], x3[l]);
    mod_sub(m, x3[l], v[l], x3[l]);
    mod_sub(m, x3[l], v[l], x3[l]);  // x3 = r^2 - h^3 - 2v
    mod_sub(m, v[l], x3[l], t[l]);
  }
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(r[l], t[l], y3[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(acc[l]->y, h3[l], t[l]);
  for (int l = 0; l < kVerifyLanes; ++l)
    if ((mask >> l) & 1u) mont_mul_p(acc[l]->z, h[l], acc[l]->z);
  for (int l = 0; l < kVerifyLanes; ++l) {
    if (!((mask >> l) & 1u)) continue;
    mod_sub(m, y3[l], t[l], acc[l]->y);  // y3 = r(v - x3) - y1 h^3
    copy4(acc[l]->x, x3[l]);
  }
}

/// Projective residual of an accumulated R against r: a field element
/// that is zero exactly when verify_r_match would accept. When both
/// candidates r and r + n are below p the residual is the product of
/// the two differences (zero iff either matches); the point at infinity
/// rejects, so it maps to a fixed nonzero value.
void r_match_residual(const JacPt& acc, const U256& r, u64 out[4]) {
  const Mont& m = mont_p();
  if (is_zero4(acc.z)) {
    copy4(out, m.one);
    return;
  }
  u64 zz[4], rm[4], cand[4], d1[4];
  mont_mul_p(acc.z, acc.z, zz);
  to_mont(m, r.w, rm);
  mont_mul_p(rm, zz, cand);
  mod_sub(m, acc.x, cand, d1);
  u64 rn[4];
  if (add4(rn, r.w, kN) == 0 && !geq4(rn, kP)) {
    u64 d2[4];
    to_mont(m, rn, rm);
    mont_mul_p(rm, zz, cand);
    mod_sub(m, acc.x, cand, d2);
    mont_mul_p(d1, d2, out);
  } else {
    copy4(out, d1);
  }
}

inline u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bisection over the stored linear-combination terms. A range whose
/// partial sum vanishes is accepted wholesale once its members' own
/// residuals confirm it (they are already in hand, so the confirmation
/// is three OR-words per item and closes the 2^-64 false-accept window
/// a pure sum test would leave); everything else splits in half, down
/// to single items decided by their own residual -- which is exactly
/// the single-verify condition, making the batch decision bit-for-bit
/// the sequential one while the sums steer the search straight to the
/// offending indices.
void isolate_bad(const std::vector<std::array<u64, 4>>& terms,
                 const std::vector<std::array<u64, 4>>& residuals,
                 std::size_t lo, std::size_t hi, bool* out) {
  if (hi - lo == 1) {
    out[lo] = is_zero4(residuals[lo].data());
    return;
  }
  const Mont& m = mont_p();
  u64 sum[4] = {0, 0, 0, 0};
  bool clean = true;
  for (std::size_t i = lo; i < hi; ++i) {
    mod_add(m, sum, terms[i].data(), sum);
    clean = clean && is_zero4(residuals[i].data());
  }
  if (is_zero4(sum) && clean) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = true;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  isolate_bad(terms, residuals, lo, mid, out);
  isolate_bad(terms, residuals, mid, hi, out);
}

}  // namespace

void verify_r_match_batch(const WindowTable* const* q_tables, const U256* u1,
                          const U256* u2, const U256* r, std::size_t count,
                          bool* out) {
  if (count == 0) return;
  const G12Comb& g = g12_comb();

  // RLC coefficients, derived deterministically from every scalar in the
  // batch: an adversary fixing one signature cannot choose its
  // coefficient independently of the rest of the batch.
  u64 seed = 0x243f6a8885a308d3ull;  // pi -- nothing up the sleeve
  for (std::size_t i = 0; i < count; ++i) {
    for (int w = 0; w < 4; ++w) {
      seed = splitmix64(seed ^ u1[i].w[w]);
      seed = splitmix64(seed ^ u2[i].w[w]);
      seed = splitmix64(seed ^ r[i].w[w]);
    }
  }

  std::vector<std::array<u64, 4>> residuals(count);
  std::vector<std::array<u64, 4>> terms(count);
  std::size_t base = 0;
  while (base < count) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(kVerifyLanes, count - base));
    // Gather each lane's table entries up front (prefetching as we go,
    // like the solo walk): the walk then needs no digit logic, just a
    // pointer list per lane, and lanes of different lengths simply drop
    // out of the lockstep loop early.
    const AffPt* entries[kVerifyLanes][kMaxWalkAdds];
    int len[kVerifyLanes] = {0, 0, 0, 0};
    JacPt accs[kVerifyLanes];
    JacPt* accp[kVerifyLanes];
    for (int l = 0; l < lanes; ++l) {
      const std::size_t i = base + static_cast<std::size_t>(l);
      int n = 0;
      for (int j = 0; j < G12Comb::kWindows; ++j) {
        const unsigned d1 = window_digit12(u1[i], j);
        if (d1) {
          entries[l][n] = &g.row(j)[d1 - 1];
          __builtin_prefetch(entries[l][n]);
          ++n;
        }
      }
      for (int j = 0; j < 32; ++j) {
        const unsigned d2 = window_digit8(u2[i], j);
        if (d2) {
          entries[l][n] = &q_tables[i]->impl_->pts[j][d2 - 1];
          __builtin_prefetch(entries[l][n]);
          ++n;
        }
      }
      len[l] = n;
      accs[l] = jac_infinity();
      accp[l] = &accs[l];
    }
    for (int l = lanes; l < kVerifyLanes; ++l) accp[l] = &accs[l];
    int max_len = 0;
    for (int l = 0; l < lanes; ++l) max_len = std::max(max_len, len[l]);
    const AffPt* q[kVerifyLanes] = {nullptr, nullptr, nullptr, nullptr};
    for (int step = 0; step < max_len; ++step) {
      unsigned mask = 0;
      for (int l = 0; l < lanes; ++l) {
        if (step < len[l]) {
          q[l] = entries[l][step];
          mask |= 1u << l;
        }
      }
      pt_add_affine_lanes(accp, q, mask);
    }
    for (int l = 0; l < lanes; ++l) {
      const std::size_t i = base + static_cast<std::size_t>(l);
      r_match_residual(accs[l], r[i], residuals[i].data());
      // Montgomery multiply drops an R factor from z_i * D_i; harmless,
      // the term is zero exactly when the residual is.
      const u64 z[4] = {splitmix64(seed + i) | 1u, 0, 0, 0};
      mont_mul_p(z, residuals[i].data(), terms[i].data());
    }
    base += static_cast<std::size_t>(lanes);
  }

  // Happy path: one comparison accepts the whole batch. Anything else
  // bisects to the offending items.
  isolate_bad(terms, residuals, 0, count, out);
}

}  // namespace tp::crypto::p256
