#include "crypto/hmac.h"

#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace tp::crypto {

namespace {
// Generic HMAC over any of our hash contexts (block size 64 for both).
template <typename Hash>
Bytes hmac(BytesView key, BytesView message) {
  constexpr std::size_t kBlockSize = 64;

  Bytes k(key.begin(), key.end());
  if (k.size() > kBlockSize) k = Hash::hash(k);
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(ipad);
  inner.update(message);
  const Bytes inner_digest = inner.finalize();

  Hash outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}
}  // namespace

Bytes hmac_sha1(BytesView key, BytesView message) {
  return hmac<Sha1>(key, message);
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  return hmac<Sha256>(key, message);
}

}  // namespace tp::crypto
