#include "crypto/hmac.h"

namespace tp::crypto {

// The one-shot entry points route through the context so there is a
// single HMAC implementation to audit.
Bytes hmac_sha1(BytesView key, BytesView message) {
  HmacSha1Ctx ctx(key);
  ctx.update(message);
  return ctx.finalize();
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  HmacSha256Ctx ctx(key);
  ctx.update(message);
  return ctx.finalize();
}

}  // namespace tp::crypto
