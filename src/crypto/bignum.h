// Arbitrary-precision unsigned integers for RSA.
//
// Only the operations RSA needs: the value domain is non-negative integers
// (key material, moduli, message representatives are all unsigned), which
// keeps the invariants simple. Limbs are 32-bit, little-endian, normalized
// (no high zero limbs). Modular exponentiation uses Montgomery
// multiplication (CIOS) for odd moduli, which covers every RSA modulus and
// prime.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace tp::crypto {

class BigInt {
 public:
  BigInt() = default;                      // zero
  BigInt(std::uint64_t v);                 // NOLINT(implicit) convenience

  /// Big-endian byte-string decode (TPM/RSA wire convention).
  static BigInt from_bytes_be(BytesView bytes);
  /// Hex decode (for test vectors); accepts leading zeros.
  static BigInt from_hex(const std::string& hex);

  /// Big-endian encode, left-padded with zeros to at least `min_len`.
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (false beyond bit_length).
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);

  std::strong_ordering operator<=>(const BigInt& other) const;
  bool operator==(const BigInt& other) const = default;

  BigInt operator+(const BigInt& other) const;
  /// Requires *this >= other (unsigned domain); throws otherwise.
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Knuth algorithm D: returns {quotient, remainder}. Throws
  /// std::domain_error on division by zero.
  std::pair<BigInt, BigInt> divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& divisor) const;
  BigInt operator%(const BigInt& divisor) const;

  /// (a * b) mod m.
  static BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// base^exp mod m. m must be >= 1; Montgomery path when m is odd.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp,
                        const BigInt& m);
  /// Multiplicative inverse mod m; returns zero BigInt if gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform value in [0, bound) using `random_bytes` as the entropy
  /// source (n -> n random octets). bound must be > 0.
  static BigInt random_below(
      const BigInt& bound,
      const std::function<Bytes(std::size_t)>& random_bytes);

  /// Miller-Rabin probable-prime test with `rounds` random bases.
  static bool is_probable_prime(
      const BigInt& n, int rounds,
      const std::function<Bytes(std::size_t)>& random_bytes);

  /// Random probable prime of exactly `bits` bits (top two bits set so
  /// products of two such primes have full length).
  static BigInt generate_prime(
      std::size_t bits, const std::function<Bytes(std::size_t)>& random_bytes);

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  void normalize();
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

  std::vector<std::uint32_t> limbs_;  // little-endian, normalized
};

}  // namespace tp::crypto
