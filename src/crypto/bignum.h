// Arbitrary-precision unsigned integers for RSA.
//
// Only the operations RSA needs: the value domain is non-negative integers
// (key material, moduli, message representatives are all unsigned), which
// keeps the invariants simple. Limbs are 32-bit, little-endian, normalized
// (no high zero limbs). Modular exponentiation uses Montgomery
// multiplication (CIOS) for odd moduli, which covers every RSA modulus and
// prime.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace tp::crypto {

class BigInt {
 public:
  BigInt() = default;                      // zero
  BigInt(std::uint64_t v);                 // NOLINT(implicit) convenience

  /// Big-endian byte-string decode (TPM/RSA wire convention).
  static BigInt from_bytes_be(BytesView bytes);
  /// Hex decode (for test vectors); accepts leading zeros.
  static BigInt from_hex(const std::string& hex);

  /// Big-endian encode, left-padded with zeros to at least `min_len`.
  Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (false beyond bit_length).
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i);

  std::strong_ordering operator<=>(const BigInt& other) const;
  bool operator==(const BigInt& other) const = default;

  BigInt operator+(const BigInt& other) const;
  /// Requires *this >= other (unsigned domain); throws otherwise.
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Knuth algorithm D: returns {quotient, remainder}. Throws
  /// std::domain_error on division by zero.
  std::pair<BigInt, BigInt> divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& divisor) const;
  BigInt operator%(const BigInt& divisor) const;

  /// (a * b) mod m.
  static BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// base^exp mod m. m must be >= 1; Montgomery path when m is odd.
  static BigInt mod_exp(const BigInt& base, const BigInt& exp,
                        const BigInt& m);
  /// Multiplicative inverse mod m; returns zero BigInt if gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);

  /// Uniform value in [0, bound) using `random_bytes` as the entropy
  /// source (n -> n random octets). bound must be > 0.
  static BigInt random_below(
      const BigInt& bound,
      const std::function<Bytes(std::size_t)>& random_bytes);

  /// Miller-Rabin probable-prime test with `rounds` random bases.
  static bool is_probable_prime(
      const BigInt& n, int rounds,
      const std::function<Bytes(std::size_t)>& random_bytes);

  /// Random probable prime of exactly `bits` bits (top two bits set so
  /// products of two such primes have full length).
  static BigInt generate_prime(
      std::size_t bits, const std::function<Bytes(std::size_t)>& random_bytes);

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  friend class MontgomeryCtx;

  void normalize();
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

  std::vector<std::uint32_t> limbs_;  // little-endian, normalized
};

/// Reusable Montgomery context for a fixed odd modulus m >= 3 (CIOS
/// multiplication). Construction precomputes n0inv = -m^{-1} mod 2^32 and
/// R^2 mod m (one full-width division) — the expensive, per-modulus part
/// of a modular exponentiation. Callers that exponentiate repeatedly
/// against the same modulus (RSA verification at the SP) build one ctx
/// per key and amortize that setup across every call.
///
/// Immutable after construction; safe to share across threads for
/// concurrent mod_exp calls.
class MontgomeryCtx {
 public:
  /// Exponents of at most this many bits take the plain left-to-right
  /// square-and-multiply path, skipping the windowed path's 16-entry
  /// table precompute (a win for every fixed RSA public exponent:
  /// e = 3, 17, 65537 all land far below the bound).
  static constexpr std::size_t kSmallExpBits = 24;

  /// Throws std::domain_error unless m is odd and >= 3.
  explicit MontgomeryCtx(const BigInt& m);

  const BigInt& modulus() const { return m_; }

  /// base^exp mod m. Auto-selects: plain square-and-multiply when
  /// exp.bit_length() <= kSmallExpBits, 4-bit fixed windows otherwise.
  BigInt mod_exp(const BigInt& base, const BigInt& exp) const;

  /// The 4-bit windowed path unconditionally (exposed so tests and
  /// benches can compare it against the small-exponent path).
  BigInt mod_exp_windowed(const BigInt& base, const BigInt& exp) const;

 private:
  using Limbs = std::vector<std::uint32_t>;

  Limbs to_vec(const BigInt& v) const;
  /// Montgomery product: a * b * R^{-1} mod m (all vectors length n_).
  Limbs mul(const Limbs& a, const Limbs& b) const;
  BigInt pow_small(const Limbs& base_mont, const BigInt& exp) const;
  BigInt pow_windowed(const Limbs& base_mont, const BigInt& exp) const;

  BigInt m_;
  std::size_t n_;        // limb count of m
  std::uint32_t n0inv_;  // -m^{-1} mod 2^32
  Limbs r2_;             // R^2 mod m, R = 2^(32 n_)
  Limbs one_;            // 1, zero-padded to n_ limbs
};

}  // namespace tp::crypto
