#include "crypto/bignum.h"

#include <algorithm>
#include <stdexcept>

namespace tp::crypto {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_limbs(std::vector<std::uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // byte i (from the big end) contributes to limb (n-1-i)/4.
    const std::size_t pos = bytes.size() - 1 - i;  // little-endian byte index
    out.limbs_[pos / 4] |= static_cast<std::uint32_t>(bytes[i])
                           << (8 * (pos % 4));
  }
  out.normalize();
  return out;
}

BigInt BigInt::from_hex(const std::string& hex) {
  std::string h = hex;
  if (h.size() % 2 != 0) h.insert(h.begin(), '0');
  return from_bytes_be(tp::from_hex(h));
}

Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  Bytes out;
  const std::size_t byte_len = (bit_length() + 7) / 8;
  const std::size_t total = std::max(byte_len, min_len);
  out.assign(total, 0);
  for (std::size_t i = 0; i < byte_len; ++i) {
    out[total - 1 - i] = static_cast<std::uint8_t>(
        limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "00";
  return tp::to_hex(to_bytes_be());
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

void BigInt::set_bit(std::size_t i) {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= (1u << (i % 32));
}

std::strong_ordering BigInt::operator<=>(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& other) const {
  std::vector<std::uint32_t> out(std::max(limbs_.size(), other.limbs_.size()) +
                                 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (*this < other) {
    throw std::domain_error("BigInt: subtraction underflow (unsigned domain)");
  }
  std::vector<std::uint32_t> out(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) {
      diff -= static_cast<std::int64_t>(other.limbs_[i]);
    }
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<std::uint32_t>(diff);
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (is_zero() || other.is_zero()) return BigInt();
  std::vector<std::uint32_t> out(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out[i + j]) + a * other.limbs_[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out[k]) + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigInt();
  if (bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  std::vector<std::uint32_t> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  std::vector<std::uint32_t> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t v =
        static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out[i] = static_cast<std::uint32_t>(v);
  }
  return from_limbs(std::move(out));
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (*this < divisor) return {BigInt(), *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    std::vector<std::uint32_t> q(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(q)), BigInt(rem)};
  }

  // Knuth algorithm D. Normalize so the divisor's top limb has its high
  // bit set.
  const std::size_t shift = 32 - (divisor.bit_length() % 32 == 0
                                      ? 32
                                      : divisor.bit_length() % 32);
  const BigInt u = *this << shift;
  const BigInt v = divisor << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.limbs_;
  std::vector<std::uint32_t> q(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t top =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = top / vn[n - 1];
    std::uint64_t rhat = top % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // After the adjustment loop qhat is q or q+1; qhat == kBase is only
    // possible when q == kBase-1, so clamping is exact and keeps the
    // 64-bit products below 2^64.
    if (qhat >= kBase) qhat = kBase - 1;

    // Multiply and subtract: un[j..j+n] -= qhat * vn.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xffffffffull) -
                             borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add the divisor back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q[j] = static_cast<std::uint32_t>(qhat);
  }

  un.resize(n);
  BigInt remainder = from_limbs(std::move(un)) >> shift;
  return {from_limbs(std::move(q)), std::move(remainder)};
}

BigInt BigInt::operator/(const BigInt& divisor) const {
  return divmod(divisor).first;
}

BigInt BigInt::operator%(const BigInt& divisor) const {
  return divmod(divisor).second;
}

BigInt BigInt::mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b) % m;
}

MontgomeryCtx::MontgomeryCtx(const BigInt& m)
    : m_(m), n_(m.limbs().size()) {
  if (m.is_even() || m < BigInt(3)) {
    throw std::domain_error("MontgomeryCtx: modulus must be odd and >= 3");
  }
  // n0inv = -m^{-1} mod 2^32 via Newton iteration on 2-adic inverse.
  std::uint32_t inv = 1;
  const std::uint32_t m0 = m.limbs()[0];
  for (int i = 0; i < 5; ++i) inv *= 2 - m0 * inv;
  n0inv_ = ~inv + 1;  // negate mod 2^32

  // R^2 mod m where R = 2^(32n): square-by-doubling.
  BigInt r2 = BigInt(1) << (32 * n_);
  r2 = r2 % m_;
  r2 = (r2 * r2) % m_;
  r2_ = to_vec(r2);
  one_ = to_vec(BigInt(1));
}

MontgomeryCtx::Limbs MontgomeryCtx::to_vec(const BigInt& v) const {
  Limbs out(v.limbs());
  out.resize(n_, 0);
  return out;
}

MontgomeryCtx::Limbs MontgomeryCtx::mul(const Limbs& a,
                                        const Limbs& b) const {
  const auto& m = m_.limbs();
  Limbs t(n_ + 2, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(t[j]) +
                                static_cast<std::uint64_t>(a[i]) * b[j] +
                                carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = static_cast<std::uint64_t>(t[n_]) + carry;
    t[n_] = static_cast<std::uint32_t>(cur);
    t[n_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    // u = t[0] * n0inv mod 2^32; t += u * m; t >>= 32
    const std::uint32_t u = t[0] * n0inv_;
    carry = 0;
    std::uint64_t sum = static_cast<std::uint64_t>(t[0]) +
                        static_cast<std::uint64_t>(u) * m[0];
    carry = sum >> 32;
    for (std::size_t j = 1; j < n_; ++j) {
      sum = static_cast<std::uint64_t>(t[j]) +
            static_cast<std::uint64_t>(u) * m[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(sum);
      carry = sum >> 32;
    }
    sum = static_cast<std::uint64_t>(t[n_]) + carry;
    t[n_ - 1] = static_cast<std::uint32_t>(sum);
    t[n_] = t[n_ + 1] + static_cast<std::uint32_t>(sum >> 32);
    t[n_ + 1] = 0;
  }

  t.resize(n_ + 1);
  // Conditional final subtraction.
  bool ge = t[n_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n_; i-- > 0;) {
      if (t[i] != m[i]) {
        ge = t[i] > m[i];
        break;
      }
    }
  }
  t.resize(n_);
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const std::int64_t d = static_cast<std::int64_t>(t[i]) -
                             static_cast<std::int64_t>(m[i]) - borrow;
      t[i] = static_cast<std::uint32_t>(d);
      borrow = d < 0 ? 1 : 0;
    }
  }
  return t;
}

BigInt MontgomeryCtx::pow_small(const Limbs& base_mont,
                                const BigInt& exp) const {
  // Left-to-right square-and-multiply: for a k-bit exponent, k-1
  // squarings plus one multiply per set bit, and no table precompute.
  // At e = 65537 that is 17 muls vs the windowed path's ~40.
  auto acc = base_mont;
  for (std::size_t i = exp.bit_length() - 1; i-- > 0;) {
    acc = mul(acc, acc);
    if (exp.bit(i)) acc = mul(acc, base_mont);
  }
  acc = mul(acc, one_);  // out of Montgomery form
  return BigInt::from_limbs(std::move(acc));
}

BigInt MontgomeryCtx::pow_windowed(const Limbs& base_mont,
                                   const BigInt& exp) const {
  // 4-bit fixed windows: b^0..b^15 precomputed in Montgomery form.
  std::vector<Limbs> table(16);
  table[0] = mul(one_, r2_);  // 1 in Montgomery form
  table[1] = base_mont;
  for (std::size_t i = 2; i < 16; ++i) {
    table[i] = mul(table[i - 1], base_mont);
  }

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  auto acc = table[0];
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) acc = mul(acc, acc);
    std::size_t idx = 0;
    for (int s = 3; s >= 0; --s) {
      idx = (idx << 1) |
            (exp.bit(w * 4 + static_cast<std::size_t>(s)) ? 1u : 0u);
    }
    if (idx != 0) acc = mul(acc, table[idx]);
  }
  acc = mul(acc, one_);  // out of Montgomery form
  return BigInt::from_limbs(std::move(acc));
}

BigInt MontgomeryCtx::mod_exp(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) return BigInt(1);
  const Limbs base_mont = mul(to_vec(base % m_), r2_);
  return exp.bit_length() <= kSmallExpBits ? pow_small(base_mont, exp)
                                           : pow_windowed(base_mont, exp);
}

BigInt MontgomeryCtx::mod_exp_windowed(const BigInt& base,
                                       const BigInt& exp) const {
  if (exp.is_zero()) return BigInt(1);
  return pow_windowed(mul(to_vec(base % m_), r2_), exp);
}

BigInt BigInt::mod_exp(const BigInt& base, const BigInt& exp,
                       const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (m == BigInt(1)) return BigInt();
  if (exp.is_zero()) return BigInt(1);

  const BigInt b = base % m;

  if (m.is_odd()) {
    return MontgomeryCtx(m).mod_exp(b, exp);
  }

  // Even modulus (rare; not an RSA case): plain square-and-multiply.
  BigInt result(1);
  BigInt cur = b;
  for (std::size_t i = 0; i < exp.bit_length(); ++i) {
    if (exp.bit(i)) result = (result * cur) % m;
    cur = (cur * cur) % m;
  }
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking coefficients as (value, negative?) pairs to
  // stay in the unsigned domain.
  if (m.is_zero()) throw std::domain_error("mod_inverse: zero modulus");
  BigInt r0 = m, r1 = a % m;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    const auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q * t1 with sign tracking.
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }

  if (r0 != BigInt(1)) return BigInt();  // not invertible
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::random_below(
    const BigInt& bound,
    const std::function<Bytes(std::size_t)>& random_bytes) {
  if (bound.is_zero()) {
    throw std::invalid_argument("random_below: zero bound");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  // Rejection sampling with the top byte masked to the bound's width.
  const unsigned top_bits = static_cast<unsigned>(bits % 8 == 0 ? 8 : bits % 8);
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << top_bits) - 1);
  for (;;) {
    Bytes buf = random_bytes(bytes);
    buf[0] &= mask;
    BigInt candidate = from_bytes_be(buf);
    if (candidate < bound) return candidate;
  }
}

bool BigInt::is_probable_prime(
    const BigInt& n, int rounds,
    const std::function<Bytes(std::size_t)>& random_bytes) {
  if (n < BigInt(2)) return false;
  // Trial division by small primes screens out most candidates cheaply.
  static constexpr std::uint32_t kSmallPrimes[] = {
      2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
      43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
      103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
      173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
      241, 251};
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++s;
  }

  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    // Base a in [2, n-2].
    const BigInt a =
        random_below(n - BigInt(3), random_bytes) + two;
    BigInt x = mod_exp(a, d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = mod_mul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(
    std::size_t bits, const std::function<Bytes(std::size_t)>& random_bytes) {
  if (bits < 16) throw std::invalid_argument("generate_prime: bits < 16");
  for (;;) {
    Bytes buf = random_bytes((bits + 7) / 8);
    BigInt candidate = from_bytes_be(buf);
    // Clamp to exactly `bits` bits, top two bits set, odd.
    for (std::size_t i = candidate.bit_length(); i > bits; --i) {
      // Clear any excess: rebuild via shift.
      candidate = candidate >> (candidate.bit_length() - bits);
    }
    candidate.set_bit(bits - 1);
    candidate.set_bit(bits - 2);
    candidate.set_bit(0);
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, 24, random_bytes)) return candidate;
  }
}

}  // namespace tp::crypto
