#include "crypto/sha1.h"

#include <stdexcept>

namespace tp::crypto {

namespace {
std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffer_len_ = 0;
  total_len_ = 0;
  finalized_ = false;
}

void Sha1::update(BytesView data) {
  if (finalized_) throw std::logic_error("Sha1: update after finalize");
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(take),
              buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_len_));
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(offset), data.end(),
              buffer_.begin());
    buffer_len_ = data.size() - offset;
  }
}

void Sha1::digest_into(std::span<std::uint8_t> out) {
  if (finalized_) throw std::logic_error("Sha1: double finalize");
  if (out.size() < kSha1DigestSize) {
    throw std::invalid_argument("Sha1: output buffer too small");
  }
  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[72] = {0x80};
  // Pad to 56 mod 64, then the 64-bit big-endian length.
  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  update(BytesView(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(BytesView(len_bytes, 8));
  finalized_ = true;

  for (int i = 0; i < 5; ++i) {
    for (int b = 0; b < 4; ++b) {
      out[static_cast<std::size_t>(4 * i + b)] =
          static_cast<std::uint8_t>(h_[static_cast<std::size_t>(i)] >>
                                    (24 - 8 * b));
    }
  }
}

Bytes Sha1::finalize() {
  Bytes digest(kSha1DigestSize);
  digest_into(digest);
  return digest;
}

Bytes Sha1::hash(BytesView data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finalize();
}

Sha1Digest Sha1::digest(BytesView data) {
  Sha1 ctx;
  ctx.update(data);
  Sha1Digest d;
  ctx.digest_into(d);
  return d;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace tp::crypto
