// ECDSA over NIST P-256 with SHA-256 and deterministic nonces.
//
// The signature scheme of the TPM 2.0 backend: attestation keys are
// P-256 keypairs, quotes and confirmation statements carry 64-byte
// r||s signatures. Nonce generation is RFC 6979: the per-signature k
// comes from the in-repo SP 800-90A HMAC-DRBG seeded with the private
// key and the message digest, so signing is deterministic (same key +
// message -> same signature) and never depends on an external entropy
// source being good at signing time.
//
// Verification has the same two tiers as RSA: a stateless ecdsa_verify
// (simple double-and-add; the correctness baseline) and a cached
// EcdsaVerifyContext that precomputes window tables for the public key
// and shares the generator table -- the SP's hot loop, several times
// faster than RSA-2048 verification (EXPERIMENTS.md F9).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "crypto/p256.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::crypto {

/// Serialized sizes: SEC1 uncompressed point and r||s signature.
inline constexpr std::size_t kEcdsaPublicKeySize = 1 + 2 * p256::kFieldSize;
inline constexpr std::size_t kEcdsaSignatureSize = 2 * p256::kFieldSize;

/// Public half: affine point coordinates, 32-byte big-endian each.
struct EcdsaPublicKey {
  Bytes x;
  Bytes y;

  /// SEC1 uncompressed form: 0x04 || x || y (65 bytes).
  Bytes serialize() const;
  static Result<EcdsaPublicKey> deserialize(BytesView data);

  /// Canonical fingerprint: SHA-256 over the serialization.
  Bytes fingerprint() const;

  bool operator==(const EcdsaPublicKey& other) const = default;
};

/// Private scalar d plus its cached public point.
struct EcdsaPrivateKey {
  Bytes d;  // 32-byte big-endian, 0 < d < n
  EcdsaPublicKey public_half;

  const EcdsaPublicKey& public_key() const { return public_half; }

  Bytes serialize() const;
  static Result<EcdsaPrivateKey> deserialize(BytesView data);
};

/// Generates a keypair; `random_bytes` supplies entropy (n -> n octets),
/// re-drawn until the scalar lands in [1, n-1].
EcdsaPrivateKey ecdsa_generate(
    const std::function<Bytes(std::size_t)>& random_bytes);

/// Deterministic ECDSA-P256-SHA256 signature: 64 bytes r||s. The nonce
/// follows RFC 6979 exactly (HMAC-DRBG(SHA-256) over int2octets(d) ||
/// bits2octets(H(message)))).
Bytes ecdsa_sign(const EcdsaPrivateKey& key, BytesView message);

/// Signs a precomputed 32-byte digest with an explicit nonce k. For
/// known-answer tests against fixed-k vectors; rejects k outside
/// [1, n-1] and degenerate (r == 0 or s == 0) outcomes.
Result<Bytes> ecdsa_sign_digest_with_k(const EcdsaPrivateKey& key,
                                       BytesView digest, BytesView k);

/// Verifies r||s over SHA-256(message). Malformed inputs and value
/// mismatches both report kAuthFail (mirroring rsa_verify).
Status ecdsa_verify(const EcdsaPublicKey& key, BytesView message,
                    BytesView signature);

struct EcdsaBatchItem;

/// Per-key verification context: precomputes a fixed-base window table
/// for the public point (~61 KiB, built once per enrollment) so each
/// verify is ~128 mixed point additions with no doublings and no final
/// field inversion. Verdict-identical to ecdsa_verify.
///
/// Immutable after construction; safe to share across threads.
class EcdsaVerifyContext {
 public:
  /// Keys that are not valid curve points (wrong length, coordinates
  /// >= p, off-curve) yield a context whose verify() always reports
  /// kAuthFail -- same containment behavior as RsaVerifyContext's
  /// degenerate-modulus fallback.
  explicit EcdsaVerifyContext(EcdsaPublicKey key);

  const EcdsaPublicKey& public_key() const { return key_; }

  /// True when the key parsed as a valid P-256 point.
  bool valid() const { return table_.has_value(); }

  /// Same contract as ecdsa_verify(public_key(), ...).
  Status verify(BytesView message, BytesView signature) const;

 private:
  friend std::vector<Status> ecdsa_verify_batch(
      std::span<const EcdsaBatchItem> items);
  EcdsaPublicKey key_;
  std::optional<p256::WindowTable> table_;
};

/// One item of a batched verification: a cached context plus the message
/// and r||s signature to check against it.
struct EcdsaBatchItem {
  const EcdsaVerifyContext* ctx = nullptr;
  BytesView message;
  BytesView signature;
};

/// Verifies every item and returns one status per item, in order --
/// decision-equivalent (bit for bit, including error kinds) to calling
/// item.ctx->verify(item.message, item.signature) one by one, but with
/// the per-item fixed costs amortized across the batch: message digests
/// run through the 4-way multi-buffer SHA-256, the per-item modular
/// inversion of s collapses to ONE inversion plus three multiplies per
/// item (Montgomery's batch-inversion trick -- sound because every
/// parsed s is nonzero), and the window-table walks run interleaved
/// with a randomized-linear-combination accept check and bisection
/// isolation of bad signatures (p256::verify_r_match_batch).
std::vector<Status> ecdsa_verify_batch(std::span<const EcdsaBatchItem> items);

}  // namespace tp::crypto
