// AES-128/192/256 block cipher (FIPS 197).
//
// The TPM emulator uses AES-256 internally to protect sealed blobs and
// wrapped keys (the real chip uses its storage hierarchy; the emulator
// derives symmetric protection keys from the SRK seed -- see
// tpm/tpm_device.cpp for the rationale).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace tp::crypto {

inline constexpr std::size_t kAesBlockSize = 16;

/// Expanded-key AES context. Key size selects AES-128/192/256.
class Aes {
 public:
  /// Throws std::invalid_argument unless key is 16, 24 or 32 bytes.
  explicit Aes(BytesView key);

  void encrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kAesBlockSize],
                     std::uint8_t out[kAesBlockSize]) const;

  int rounds() const { return rounds_; }

 private:
  int rounds_;
  // Round keys as 4-byte words, enough for AES-256 (15 round keys).
  std::array<std::uint32_t, 60> round_keys_{};
};

}  // namespace tp::crypto
