// SHA-1 (FIPS 180-4).
//
// TPM 1.2 is a SHA-1 device: PCRs are 20-byte SHA-1 digests and every
// extend/quote/seal composite is a SHA-1 computation, so the emulator needs
// a faithful implementation. SHA-1 is cryptographically broken for
// collision resistance; it is used here only to reproduce TPM 1.2
// semantics, and the application layer hashes with SHA-256.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace tp::crypto {

inline constexpr std::size_t kSha1DigestSize = 20;

/// Incremental SHA-1.
class Sha1 {
 public:
  Sha1();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused after.
  Bytes finalize();

  /// One-shot convenience.
  static Bytes hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace tp::crypto
