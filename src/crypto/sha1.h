// SHA-1 (FIPS 180-4).
//
// TPM 1.2 is a SHA-1 device: PCRs are 20-byte SHA-1 digests and every
// extend/quote/seal composite is a SHA-1 computation, so the emulator needs
// a faithful implementation. SHA-1 is cryptographically broken for
// collision resistance; it is used here only to reproduce TPM 1.2
// semantics, and the application layer hashes with SHA-256.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace tp::crypto {

inline constexpr std::size_t kSha1DigestSize = 20;

/// Fixed-size digest for allocation-free call sites.
using Sha1Digest = std::array<std::uint8_t, kSha1DigestSize>;

/// Incremental SHA-1. Cheap to copy; a partially-fed context is a
/// reusable midstate (see the note on Sha256 in sha256.h).
class Sha1 {
 public:
  Sha1();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused
  /// after (call reset() to start over).
  Bytes finalize();
  /// Allocation-free finalize: writes the 20-byte digest into `out`
  /// (which must hold at least kSha1DigestSize bytes).
  void digest_into(std::span<std::uint8_t> out);

  /// Rewinds to the freshly-constructed state; the object is reusable.
  void reset();

  /// One-shot convenience.
  static Bytes hash(BytesView data);
  /// One-shot without heap allocation.
  static Sha1Digest digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace tp::crypto
