// SHA-256 (FIPS 180-4). Application-layer hash for transactions, wire
// messages, and the HMAC-DRBG.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace tp::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

/// Fixed-size digest for allocation-free call sites.
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
///
/// The object is cheap to copy (a fixed ~112-byte state), which makes a
/// partially-fed context a reusable *midstate*: hash a common prefix
/// once, then copy the object per message. HMAC exploits this to pay for
/// the key block exactly once per key (see crypto/hmac.h).
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused
  /// after (call reset() to start over).
  Bytes finalize();
  /// Allocation-free finalize: writes the 32-byte digest into `out`
  /// (which must hold at least kSha256DigestSize bytes).
  void digest_into(std::span<std::uint8_t> out);

  /// Rewinds to the freshly-constructed state; the object is reusable.
  void reset();

  /// One-shot convenience.
  static Bytes hash(BytesView data);
  /// One-shot without heap allocation.
  static Sha256Digest digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace tp::crypto
