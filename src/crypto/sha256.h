// SHA-256 (FIPS 180-4). Application-layer hash for transactions, wire
// messages, and the HMAC-DRBG.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace tp::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused after.
  Bytes finalize();

  /// One-shot convenience.
  static Bytes hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace tp::crypto
