// HMAC (RFC 2104) over SHA-1 and SHA-256.
//
// Used for sealed-blob integrity inside the TPM emulator (SHA-1, matching
// the TPM 1.2 HMAC authorization design), by the HMAC-DRBG (SHA-256), and
// for secure-channel record authentication.
//
// Two APIs:
//   - hmac_sha1 / hmac_sha256: one-shot, pays the full key schedule
//     (ipad/opad derivation + two key-block compressions) per call;
//   - HmacSha1Ctx / HmacSha256Ctx: precomputes the inner/outer hash
//     midstates once per key, so each subsequent MAC costs exactly the
//     message blocks plus one outer finalization. Keyed callers on a hot
//     path (records, DRBG output, sealed blobs) hold one of these.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tp::crypto {

/// Reusable keyed-MAC context. After construction (or rekey()) the
/// context sits at the keyed midstate; update()/finalize_into() produce
/// one MAC, and finalization automatically re-arms the context for the
/// next message by cloning the cached inner midstate (a fixed-size copy,
/// no hashing).
template <typename Hash, std::size_t DigestSize>
class HmacCtx {
 public:
  static constexpr std::size_t kBlockSize = 64;
  static constexpr std::size_t kDigestSize = DigestSize;

  explicit HmacCtx(BytesView key) { rekey(key); }

  /// Re-keys the context: derives ipad/opad and absorbs one key block
  /// into each midstate. Discards any partial message.
  void rekey(BytesView key) {
    std::array<std::uint8_t, kBlockSize> k{};
    if (key.size() > kBlockSize) {
      Hash h;
      h.update(key);
      h.digest_into(k);  // first DigestSize bytes; rest stay zero
    } else {
      std::copy(key.begin(), key.end(), k.begin());
    }
    std::array<std::uint8_t, kBlockSize> pad;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    }
    inner_midstate_.reset();
    inner_midstate_.update(pad);
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }
    outer_midstate_.reset();
    outer_midstate_.update(pad);
    inner_ = inner_midstate_;
  }

  /// Absorbs message bytes.
  void update(BytesView data) { inner_.update(data); }

  /// Writes the MAC into `out` (>= kDigestSize bytes) and resets the
  /// context to the keyed midstate, ready for the next message.
  void finalize_into(std::span<std::uint8_t> out) {
    std::array<std::uint8_t, kDigestSize> inner_digest;
    inner_.digest_into(inner_digest);
    Hash outer = outer_midstate_;
    outer.update(inner_digest);
    outer.digest_into(out);
    inner_ = inner_midstate_;
  }

  /// Heap-allocating finalize (same reset-for-reuse semantics).
  Bytes finalize() {
    Bytes mac(kDigestSize);
    finalize_into(mac);
    return mac;
  }

  /// Discards any partial message; back to the keyed midstate.
  void reset() { inner_ = inner_midstate_; }

 private:
  Hash inner_midstate_;  // state after the 0x36-padded key block
  Hash outer_midstate_;  // state after the 0x5c-padded key block
  Hash inner_;           // running copy for the current message
};

using HmacSha1Ctx = HmacCtx<Sha1, kSha1DigestSize>;
using HmacSha256Ctx = HmacCtx<Sha256, kSha256DigestSize>;

Bytes hmac_sha1(BytesView key, BytesView message);
Bytes hmac_sha256(BytesView key, BytesView message);

}  // namespace tp::crypto
