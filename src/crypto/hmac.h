// HMAC (RFC 2104) over SHA-1 and SHA-256.
//
// Used for sealed-blob integrity inside the TPM emulator (SHA-1, matching
// the TPM 1.2 HMAC authorization design) and by the HMAC-DRBG (SHA-256).
#pragma once

#include "util/bytes.h"

namespace tp::crypto {

Bytes hmac_sha1(BytesView key, BytesView message);
Bytes hmac_sha256(BytesView key, BytesView message);

}  // namespace tp::crypto
