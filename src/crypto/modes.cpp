#include "crypto/modes.h"

#include <stdexcept>

namespace tp::crypto {

Bytes cbc_encrypt(const Aes& cipher, BytesView iv, BytesView plaintext) {
  if (iv.size() != kAesBlockSize) {
    throw std::invalid_argument("cbc_encrypt: IV must be 16 bytes");
  }
  const std::size_t pad =
      kAesBlockSize - (plaintext.size() % kAesBlockSize);
  const std::size_t full_blocks = plaintext.size() / kAesBlockSize;

  // Encrypt straight from the input view; only the final (partial +
  // PKCS#7 padding) block is materialized on the stack.
  Bytes out(plaintext.size() + pad);
  std::uint8_t chain[kAesBlockSize];
  std::copy(iv.begin(), iv.end(), chain);
  for (std::size_t b = 0; b < full_blocks; ++b) {
    const std::size_t off = b * kAesBlockSize;
    std::uint8_t block[kAesBlockSize];
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      block[i] = plaintext[off + i] ^ chain[i];
    }
    cipher.encrypt_block(block, &out[off]);
    std::copy(&out[off], &out[off] + kAesBlockSize, chain);
  }
  std::uint8_t last[kAesBlockSize];
  const std::size_t tail = plaintext.size() - full_blocks * kAesBlockSize;
  std::copy(plaintext.end() - static_cast<std::ptrdiff_t>(tail),
            plaintext.end(), last);
  std::fill(last + tail, last + kAesBlockSize,
            static_cast<std::uint8_t>(pad));
  for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= chain[i];
  cipher.encrypt_block(last, &out[full_blocks * kAesBlockSize]);
  return out;
}

Result<Bytes> cbc_decrypt(const Aes& cipher, BytesView iv,
                          BytesView ciphertext) {
  if (iv.size() != kAesBlockSize) {
    return Error{Err::kCryptoError, "cbc_decrypt: IV must be 16 bytes"};
  }
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0) {
    return Error{Err::kCryptoError,
                 "cbc_decrypt: ciphertext not a positive block multiple"};
  }
  Bytes out(ciphertext.size());
  std::uint8_t chain[kAesBlockSize];
  std::copy(iv.begin(), iv.end(), chain);
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    cipher.decrypt_block(&ciphertext[off], block);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      out[off + i] = block[i] ^ chain[i];
    }
    std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
              ciphertext.begin() + static_cast<std::ptrdiff_t>(off) +
                  kAesBlockSize,
              chain);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) {
    return Error{Err::kCryptoError, "cbc_decrypt: bad padding"};
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      return Error{Err::kCryptoError, "cbc_decrypt: bad padding"};
    }
  }
  out.resize(out.size() - pad);
  return out;
}

void ctr_crypt_into(const Aes& cipher, BytesView nonce, BytesView data,
                    std::uint8_t* out) {
  if (nonce.size() != kAesBlockSize) {
    throw std::invalid_argument("ctr_crypt: nonce must be 16 bytes");
  }
  std::uint8_t counter[kAesBlockSize];
  std::copy(nonce.begin(), nonce.end(), counter);

  std::uint8_t keystream[kAesBlockSize];
  for (std::size_t off = 0; off < data.size(); off += kAesBlockSize) {
    cipher.encrypt_block(counter, keystream);
    const std::size_t n = std::min(kAesBlockSize, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ keystream[i];
    // Big-endian increment of the counter block.
    for (int i = kAesBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
}

Bytes ctr_crypt(const Aes& cipher, BytesView nonce, BytesView data) {
  Bytes out(data.size());
  ctr_crypt_into(cipher, nonce, data, out.data());
  return out;
}

}  // namespace tp::crypto
