#include "crypto/modes.h"

#include <stdexcept>

namespace tp::crypto {

Bytes cbc_encrypt(const Aes& cipher, BytesView iv, BytesView plaintext) {
  if (iv.size() != kAesBlockSize) {
    throw std::invalid_argument("cbc_encrypt: IV must be 16 bytes");
  }
  const std::size_t pad =
      kAesBlockSize - (plaintext.size() % kAesBlockSize);
  Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out(padded.size());
  std::uint8_t chain[kAesBlockSize];
  std::copy(iv.begin(), iv.end(), chain);
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      block[i] = padded[off + i] ^ chain[i];
    }
    cipher.encrypt_block(block, &out[off]);
    std::copy(&out[off], &out[off] + kAesBlockSize, chain);
  }
  return out;
}

Result<Bytes> cbc_decrypt(const Aes& cipher, BytesView iv,
                          BytesView ciphertext) {
  if (iv.size() != kAesBlockSize) {
    return Error{Err::kCryptoError, "cbc_decrypt: IV must be 16 bytes"};
  }
  if (ciphertext.empty() || ciphertext.size() % kAesBlockSize != 0) {
    return Error{Err::kCryptoError,
                 "cbc_decrypt: ciphertext not a positive block multiple"};
  }
  Bytes out(ciphertext.size());
  std::uint8_t chain[kAesBlockSize];
  std::copy(iv.begin(), iv.end(), chain);
  for (std::size_t off = 0; off < ciphertext.size(); off += kAesBlockSize) {
    std::uint8_t block[kAesBlockSize];
    cipher.decrypt_block(&ciphertext[off], block);
    for (std::size_t i = 0; i < kAesBlockSize; ++i) {
      out[off + i] = block[i] ^ chain[i];
    }
    std::copy(ciphertext.begin() + static_cast<std::ptrdiff_t>(off),
              ciphertext.begin() + static_cast<std::ptrdiff_t>(off) +
                  kAesBlockSize,
              chain);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > kAesBlockSize || pad > out.size()) {
    return Error{Err::kCryptoError, "cbc_decrypt: bad padding"};
  }
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) {
      return Error{Err::kCryptoError, "cbc_decrypt: bad padding"};
    }
  }
  out.resize(out.size() - pad);
  return out;
}

Bytes ctr_crypt(const Aes& cipher, BytesView nonce, BytesView data) {
  if (nonce.size() != kAesBlockSize) {
    throw std::invalid_argument("ctr_crypt: nonce must be 16 bytes");
  }
  std::uint8_t counter[kAesBlockSize];
  std::copy(nonce.begin(), nonce.end(), counter);

  Bytes out(data.begin(), data.end());
  std::uint8_t keystream[kAesBlockSize];
  for (std::size_t off = 0; off < out.size(); off += kAesBlockSize) {
    cipher.encrypt_block(counter, keystream);
    const std::size_t n = std::min(kAesBlockSize, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    // Big-endian increment of the counter block.
    for (int i = kAesBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

}  // namespace tp::crypto
