#include "crypto/sha256_mb.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"

namespace tp::crypto {

namespace {

constexpr std::size_t kLanes = kSha256MbLanes;
constexpr std::size_t kBlock = 64;

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr32(std::uint32_t x, int k) {
  return (x >> k) | (x << (32 - k));
}

/// Four SHA-256 states, lane-minor: st[word][lane]. One 16-byte row per
/// state word keeps the whole working set in eight rows the vectorizer
/// can treat as 128-bit registers.
struct State4 {
  std::uint32_t v[8][kLanes];
};

void init4(State4& st) {
  static constexpr std::uint32_t kIv[8] = {0x6a09e667u, 0xbb67ae85u,
                                           0x3c6ef372u, 0xa54ff53au,
                                           0x510e527fu, 0x9b05688cu,
                                           0x1f83d9abu, 0x5be0cd19u};
  for (int i = 0; i < 8; ++i) {
    for (std::size_t l = 0; l < kLanes; ++l) st.v[i][l] = kIv[i];
  }
}

/// One compression round over four independent blocks. Every statement
/// of the scalar round function becomes a 4-wide loop; the lanes carry
/// no cross dependencies, so the four serial chains interleave freely.
void compress4(State4& st, const std::uint8_t* const blocks[kLanes]) {
  std::uint32_t w[64][kLanes];
  for (int i = 0; i < 16; ++i) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint8_t* b = blocks[l] + 4 * i;
      w[i][l] = (static_cast<std::uint32_t>(b[0]) << 24) |
                (static_cast<std::uint32_t>(b[1]) << 16) |
                (static_cast<std::uint32_t>(b[2]) << 8) |
                static_cast<std::uint32_t>(b[3]);
    }
  }
  for (int i = 16; i < 64; ++i) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint32_t s0 = rotr32(w[i - 15][l], 7) ^
                               rotr32(w[i - 15][l], 18) ^ (w[i - 15][l] >> 3);
      const std::uint32_t s1 = rotr32(w[i - 2][l], 17) ^
                               rotr32(w[i - 2][l], 19) ^ (w[i - 2][l] >> 10);
      w[i][l] = w[i - 16][l] + s0 + w[i - 7][l] + s1;
    }
  }

  std::uint32_t a[kLanes], b[kLanes], c[kLanes], d[kLanes];
  std::uint32_t e[kLanes], f[kLanes], g[kLanes], h[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    a[l] = st.v[0][l];
    b[l] = st.v[1][l];
    c[l] = st.v[2][l];
    d[l] = st.v[3][l];
    e[l] = st.v[4][l];
    f[l] = st.v[5][l];
    g[l] = st.v[6][l];
    h[l] = st.v[7][l];
  }
  for (int i = 0; i < 64; ++i) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint32_t s1 =
          rotr32(e[l], 6) ^ rotr32(e[l], 11) ^ rotr32(e[l], 25);
      const std::uint32_t ch = (e[l] & f[l]) ^ (~e[l] & g[l]);
      const std::uint32_t t1 = h[l] + s1 + ch + kK[i] + w[i][l];
      const std::uint32_t s0 =
          rotr32(a[l], 2) ^ rotr32(a[l], 13) ^ rotr32(a[l], 22);
      const std::uint32_t maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
      const std::uint32_t t2 = s0 + maj;
      h[l] = g[l];
      g[l] = f[l];
      f[l] = e[l];
      e[l] = d[l] + t1;
      d[l] = c[l];
      c[l] = b[l];
      b[l] = a[l];
      a[l] = t1 + t2;
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    st.v[0][l] += a[l];
    st.v[1][l] += b[l];
    st.v[2][l] += c[l];
    st.v[3][l] += d[l];
    st.v[4][l] += e[l];
    st.v[5][l] += f[l];
    st.v[6][l] += g[l];
    st.v[7][l] += h[l];
  }
}

void extract4(const State4& st, Sha256Digest out[kLanes]) {
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (int i = 0; i < 8; ++i) {
      for (int byte = 0; byte < 4; ++byte) {
        out[l][static_cast<std::size_t>(4 * i + byte)] =
            static_cast<std::uint8_t>(st.v[i][l] >> (24 - 8 * byte));
      }
    }
  }
}

/// Absorbs four equal-length tails (rem < 64 bytes each) plus the FIPS
/// 180-4 padding into `st`. `total_len` is the full message length that
/// the length field must encode (it may exceed `rem` when a prefix --
/// e.g. the HMAC key block -- was compressed beforehand).
void finish4(State4& st, const std::uint8_t* const tails[kLanes],
             std::size_t rem, std::uint64_t total_len) {
  // Equal lengths mean one shared padding schedule: either one final
  // block (rem < 56) or two.
  std::uint8_t pad[kLanes][2 * kBlock];
  const std::size_t pad_blocks = rem < 56 ? 1 : 2;
  const std::size_t pad_len = pad_blocks * kBlock;
  const std::uint64_t bit_len = total_len * 8;
  for (std::size_t l = 0; l < kLanes; ++l) {
    std::memset(pad[l], 0, pad_len);
    if (rem > 0) std::memcpy(pad[l], tails[l], rem);
    pad[l][rem] = 0x80;
    for (int i = 0; i < 8; ++i) {
      pad[l][pad_len - 8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
  }
  const std::uint8_t* blocks[kLanes];
  for (std::size_t block = 0; block < pad_blocks; ++block) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      blocks[l] = pad[l] + block * kBlock;
    }
    compress4(st, blocks);
  }
}

/// Core of both MB entry points: starting from `st` (IV or keyed
/// midstate), absorb four equal-length messages and finalize with
/// `prefix_len` extra bytes accounted in the length field.
void absorb_and_finish4(State4& st, const BytesView msgs[kLanes],
                        std::size_t prefix_len, Sha256Digest out[kLanes]) {
  const std::size_t len = msgs[0].size();
  const std::size_t full = len / kBlock;
  const std::uint8_t* blocks[kLanes];
  for (std::size_t block = 0; block < full; ++block) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      blocks[l] = msgs[l].data() + block * kBlock;
    }
    compress4(st, blocks);
  }
  const std::size_t rem = len % kBlock;
  const std::uint8_t* tails[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    tails[l] = rem > 0 ? msgs[l].data() + full * kBlock : nullptr;
  }
  finish4(st, tails, rem, prefix_len + len);
  extract4(st, out);
}

void require_equal_lengths(const BytesView msgs[kLanes]) {
  for (std::size_t l = 1; l < kLanes; ++l) {
    if (msgs[l].size() != msgs[0].size()) {
      throw std::invalid_argument("sha256_mb4: lane lengths differ");
    }
  }
}

/// RFC 2104 key block: key zero-padded to 64 bytes, pre-hashed if
/// longer (matching HmacCtx::rekey bit for bit).
std::array<std::uint8_t, kBlock> hmac_key_block(BytesView key) {
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    Sha256 h;
    h.update(key);
    h.digest_into(k);
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  return k;
}

}  // namespace

void sha256_mb4(const BytesView msgs[kSha256MbLanes],
                Sha256Digest out[kSha256MbLanes]) {
  require_equal_lengths(msgs);
  State4 st;
  init4(st);
  absorb_and_finish4(st, msgs, 0, out);
}

void sha256_many(const BytesView* msgs, std::size_t n, Sha256Digest* out) {
  std::size_t i = 0;
  while (i + kLanes <= n) {
    const bool equal = msgs[i + 1].size() == msgs[i].size() &&
                       msgs[i + 2].size() == msgs[i].size() &&
                       msgs[i + 3].size() == msgs[i].size();
    if (!equal) {
      out[i] = Sha256::digest(msgs[i]);
      ++i;
      continue;
    }
    sha256_mb4(&msgs[i], &out[i]);
    i += kLanes;
  }
  for (; i < n; ++i) out[i] = Sha256::digest(msgs[i]);
}

void hmac_sha256_mb4(const BytesView keys[kSha256MbLanes],
                     const BytesView msgs[kSha256MbLanes],
                     Sha256Digest out[kSha256MbLanes]) {
  require_equal_lengths(msgs);

  std::array<std::uint8_t, kBlock> kb[kLanes];
  std::uint8_t pads[kLanes][kBlock];
  const std::uint8_t* blocks[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) kb[l] = hmac_key_block(keys[l]);

  // Inner hash: H((K' ^ ipad) || message).
  State4 st;
  init4(st);
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      pads[l][i] = static_cast<std::uint8_t>(kb[l][i] ^ 0x36);
    }
    blocks[l] = pads[l];
  }
  compress4(st, blocks);
  Sha256Digest inner[kLanes];
  absorb_and_finish4(st, msgs, kBlock, inner);

  // Outer hash: H((K' ^ opad) || inner digest).
  init4(st);
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      pads[l][i] = static_cast<std::uint8_t>(kb[l][i] ^ 0x5c);
    }
    blocks[l] = pads[l];
  }
  compress4(st, blocks);
  BytesView inner_views[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    inner_views[l] = BytesView(inner[l].data(), inner[l].size());
  }
  absorb_and_finish4(st, inner_views, kBlock, out);
}

void hmac_sha256_many(BytesView key, const BytesView* msgs, std::size_t n,
                      Sha256Digest* out) {
  HmacSha256Ctx scalar(key);
  const BytesView keys[kLanes] = {key, key, key, key};
  std::size_t i = 0;
  while (i + kLanes <= n) {
    const bool equal = msgs[i + 1].size() == msgs[i].size() &&
                       msgs[i + 2].size() == msgs[i].size() &&
                       msgs[i + 3].size() == msgs[i].size();
    if (!equal) {
      scalar.update(msgs[i]);
      scalar.finalize_into(out[i]);
      ++i;
      continue;
    }
    hmac_sha256_mb4(keys, &msgs[i], &out[i]);
    i += kLanes;
  }
  for (; i < n; ++i) {
    scalar.update(msgs[i]);
    scalar.finalize_into(out[i]);
  }
}

}  // namespace tp::crypto
