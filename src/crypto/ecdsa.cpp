#include "crypto/ecdsa.h"

#include <memory>
#include <optional>
#include <utility>

#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "crypto/sha256_mb.h"

namespace tp::crypto {
namespace {

using p256::U256;

Error malformed(const char* what) {
  return Error{Err::kAuthFail, what};
}

/// bits2int of a SHA-256 digest, reduced into [0, n).
U256 digest_to_scalar(BytesView digest32) {
  return p256::reduce_mod_n(p256::from_bytes_be(digest32));
}

bool scalar_in_range(const U256& v) {
  return !v.is_zero() && p256::u256_less(v, p256::order_n());
}

/// One signing attempt with a candidate nonce; nullopt on the (rare)
/// degenerate outcomes r == 0 or s == 0, which callers retry.
std::optional<Bytes> sign_once(const U256& d, const U256& e, const U256& k) {
  const p256::AffinePoint point = p256::scalar_mul_base(k);
  if (point.infinity) return std::nullopt;
  const U256 r = p256::reduce_mod_n(point.x);
  if (r.is_zero()) return std::nullopt;
  const U256 s = p256::mul_mod_n(
      p256::inv_mod_n(k), p256::add_mod_n(e, p256::mul_mod_n(r, d)));
  if (s.is_zero()) return std::nullopt;
  return concat(p256::to_bytes_be(r), p256::to_bytes_be(s));
}

struct ParsedSignature {
  U256 r;
  U256 s;
};

std::optional<ParsedSignature> parse_signature(BytesView signature) {
  if (signature.size() != kEcdsaSignatureSize) return std::nullopt;
  ParsedSignature out;
  out.r = p256::from_bytes_be(signature.subspan(0, p256::kFieldSize));
  out.s = p256::from_bytes_be(signature.subspan(p256::kFieldSize));
  if (!scalar_in_range(out.r) || !scalar_in_range(out.s)) return std::nullopt;
  return out;
}

std::optional<p256::AffinePoint> key_to_point(const EcdsaPublicKey& key) {
  if (key.x.size() != p256::kFieldSize || key.y.size() != p256::kFieldSize) {
    return std::nullopt;
  }
  p256::AffinePoint q;
  q.x = p256::from_bytes_be(key.x);
  q.y = p256::from_bytes_be(key.y);
  q.infinity = false;
  if (!p256::on_curve(q)) return std::nullopt;
  return q;
}

}  // namespace

Bytes EcdsaPublicKey::serialize() const {
  Bytes out;
  out.reserve(kEcdsaPublicKeySize);
  out.push_back(0x04);
  append(out, x);
  append(out, y);
  return out;
}

Result<EcdsaPublicKey> EcdsaPublicKey::deserialize(BytesView data) {
  if (data.size() != kEcdsaPublicKeySize || data[0] != 0x04) {
    return Error{Err::kCryptoError, "EcdsaPublicKey: not a SEC1 uncompressed point"};
  }
  EcdsaPublicKey key;
  key.x.assign(data.begin() + 1, data.begin() + 1 + p256::kFieldSize);
  key.y.assign(data.begin() + 1 + p256::kFieldSize, data.end());
  return key;
}

Bytes EcdsaPublicKey::fingerprint() const { return Sha256::hash(serialize()); }

Bytes EcdsaPrivateKey::serialize() const {
  return concat(d, public_half.serialize());
}

Result<EcdsaPrivateKey> EcdsaPrivateKey::deserialize(BytesView data) {
  if (data.size() != p256::kFieldSize + kEcdsaPublicKeySize) {
    return Error{Err::kCryptoError, "EcdsaPrivateKey: bad length"};
  }
  EcdsaPrivateKey key;
  key.d.assign(data.begin(), data.begin() + p256::kFieldSize);
  auto pub = EcdsaPublicKey::deserialize(data.subspan(p256::kFieldSize));
  if (!pub.ok()) return pub.error();
  key.public_half = pub.take();
  return key;
}

EcdsaPrivateKey ecdsa_generate(
    const std::function<Bytes(std::size_t)>& random_bytes) {
  for (;;) {
    Bytes cand = random_bytes(p256::kFieldSize);
    const U256 d = p256::from_bytes_be(cand);
    if (!scalar_in_range(d)) continue;
    const p256::AffinePoint pub = p256::scalar_mul_base(d);
    EcdsaPrivateKey key;
    key.d = std::move(cand);
    key.public_half.x = p256::to_bytes_be(pub.x);
    key.public_half.y = p256::to_bytes_be(pub.y);
    return key;
  }
}

Bytes ecdsa_sign(const EcdsaPrivateKey& key, BytesView message) {
  const Bytes digest = Sha256::hash(message);
  const U256 e = digest_to_scalar(digest);
  const U256 d = p256::from_bytes_be(key.d);
  // RFC 6979: seed the DRBG with int2octets(d) || bits2octets(H(m)).
  // Our HmacDrbg is SP 800-90A HMAC-DRBG(SHA-256) -- the exact
  // construction the RFC specifies -- and its post-generate state update
  // matches the RFC's retry step, so candidate nonces reproduce the RFC
  // test vectors bit for bit (see EcdsaKnownAnswer tests).
  HmacDrbg drbg(concat(p256::to_bytes_be(d), p256::to_bytes_be(e)));
  for (;;) {
    const Bytes kb = drbg.generate(p256::kFieldSize);
    const U256 k = p256::from_bytes_be(kb);
    if (!scalar_in_range(k)) continue;
    if (auto sig = sign_once(d, e, k)) return *sig;
  }
}

Result<Bytes> ecdsa_sign_digest_with_k(const EcdsaPrivateKey& key,
                                       BytesView digest, BytesView k) {
  if (digest.size() != kSha256DigestSize) {
    return Error{Err::kInvalidArgument, "ecdsa_sign_digest_with_k: digest must be 32 bytes"};
  }
  if (k.size() != p256::kFieldSize) {
    return Error{Err::kInvalidArgument, "ecdsa_sign_digest_with_k: k must be 32 bytes"};
  }
  const U256 nonce = p256::from_bytes_be(k);
  if (!scalar_in_range(nonce)) {
    return Error{Err::kInvalidArgument, "ecdsa_sign_digest_with_k: k out of range"};
  }
  const U256 e = digest_to_scalar(digest);
  const U256 d = p256::from_bytes_be(key.d);
  if (auto sig = sign_once(d, e, nonce)) return *sig;
  return Error{Err::kCryptoError, "ecdsa_sign_digest_with_k: degenerate r or s"};
}

Status ecdsa_verify(const EcdsaPublicKey& key, BytesView message,
                    BytesView signature) {
  const auto sig = parse_signature(signature);
  if (!sig) return malformed("ecdsa_verify: malformed signature");
  const auto q = key_to_point(key);
  if (!q) return malformed("ecdsa_verify: invalid public key");
  const U256 e = digest_to_scalar(Sha256::hash(message));
  // s is public here, so the variable-time inversion is safe (and much
  // cheaper than the Fermat ladder signing uses for the secret nonce).
  const U256 w = p256::inv_mod_n_vartime(sig->s);
  const U256 u1 = p256::mul_mod_n(e, w);
  const U256 u2 = p256::mul_mod_n(sig->r, w);
  // Reference path: two independent scalar multiplications and a full
  // affine conversion. Slow but structurally unlike the table walk in
  // EcdsaVerifyContext, which the differential fuzz tests exploit.
  const p256::AffinePoint sum = p256::point_add(
      p256::scalar_mul(p256::generator(), u1), p256::scalar_mul(*q, u2));
  if (sum.infinity) return malformed("ecdsa_verify: signature mismatch");
  if (!(p256::reduce_mod_n(sum.x) == sig->r)) {
    return malformed("ecdsa_verify: signature mismatch");
  }
  return Status();
}

EcdsaVerifyContext::EcdsaVerifyContext(EcdsaPublicKey key)
    : key_(std::move(key)) {
  if (const auto q = key_to_point(key_)) table_.emplace(*q);
}

Status EcdsaVerifyContext::verify(BytesView message,
                                  BytesView signature) const {
  if (!table_) return malformed("EcdsaVerifyContext: invalid public key");
  const auto sig = parse_signature(signature);
  if (!sig) return malformed("EcdsaVerifyContext: malformed signature");
  const U256 e = digest_to_scalar(Sha256::hash(message));
  const U256 w = p256::inv_mod_n_vartime(sig->s);  // s is public
  const U256 u1 = p256::mul_mod_n(e, w);
  const U256 u2 = p256::mul_mod_n(sig->r, w);
  if (!p256::verify_r_match(*table_, u1, u2, sig->r)) {
    return malformed("EcdsaVerifyContext: signature mismatch");
  }
  return Status();
}

std::vector<Status> ecdsa_verify_batch(std::span<const EcdsaBatchItem> items) {
  const std::size_t n = items.size();
  std::vector<Status> out(n);

  // Gathered digest pass: equal-length messages (the common case -- SP
  // confirmation statements share one wire shape) ride the 4-way
  // multi-buffer kernel.
  std::vector<BytesView> msgs(n);
  for (std::size_t i = 0; i < n; ++i) msgs[i] = items[i].message;
  std::vector<Sha256Digest> digests(n);
  sha256_many(msgs.data(), n, digests.data());

  // Screening pass: items that fail statelessly (invalid key, malformed
  // signature) settle now with the exact single-verify error; the rest
  // join the batched point walk.
  struct Live {
    std::size_t index;
    U256 r, s, e;
  };
  std::vector<Live> live;
  live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<p256::WindowTable>* table =
        items[i].ctx ? &items[i].ctx->table_ : nullptr;
    if (!table || !*table) {
      out[i] = malformed("EcdsaVerifyContext: invalid public key");
      continue;
    }
    const auto sig = parse_signature(items[i].signature);
    if (!sig) {
      out[i] = malformed("EcdsaVerifyContext: malformed signature");
      continue;
    }
    const U256 e = digest_to_scalar(digests[i]);
    live.push_back(Live{i, sig->r, sig->s, e});
  }
  const std::size_t k = live.size();
  if (k == 0) return out;

  // Montgomery's batch-inversion trick: one variable-time inversion of
  // the product of all s values, unwound into every w = s^-1 with three
  // multiplies per item. Sound because parse_signature guarantees each
  // s is in [1, n), so the running product never vanishes.
  std::vector<U256> prefix(k);
  U256 acc = live[0].s;
  prefix[0] = acc;
  for (std::size_t j = 1; j < k; ++j) {
    acc = p256::mul_mod_n(acc, live[j].s);
    prefix[j] = acc;
  }
  U256 inv = p256::inv_mod_n_vartime(acc);  // s values are public
  std::vector<U256> w(k);
  for (std::size_t j = k; j-- > 1;) {
    w[j] = p256::mul_mod_n(inv, prefix[j - 1]);
    inv = p256::mul_mod_n(inv, live[j].s);
  }
  w[0] = inv;

  std::vector<U256> u1(k), u2(k), rs(k);
  std::vector<const p256::WindowTable*> tables(k);
  for (std::size_t j = 0; j < k; ++j) {
    u1[j] = p256::mul_mod_n(live[j].e, w[j]);
    u2[j] = p256::mul_mod_n(live[j].r, w[j]);
    rs[j] = live[j].r;
    tables[j] = &*items[live[j].index].ctx->table_;
  }
  const auto ok = std::make_unique<bool[]>(k);
  p256::verify_r_match_batch(tables.data(), u1.data(), u2.data(), rs.data(), k,
                             ok.get());
  for (std::size_t j = 0; j < k; ++j) {
    if (!ok[j]) {
      out[live[j].index] = malformed("EcdsaVerifyContext: signature mismatch");
    }
  }
  return out;
}

}  // namespace tp::crypto
