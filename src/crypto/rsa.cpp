#include "crypto/rsa.h"

#include <stdexcept>
#include <utility>

#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "crypto/sha256_mb.h"
#include "util/serial.h"

namespace tp::crypto {

namespace {

// DER-encoded DigestInfo prefixes (RFC 3447, section 9.2 notes).
const Bytes kSha1Prefix = from_hex("3021300906052b0e03021a05000414");
const Bytes kSha256Prefix =
    from_hex("3031300d060960864801650304020105000420");

Bytes digest_info(HashAlg alg, BytesView message) {
  // Stack-digest variants: every sign/verify hashes exactly once, so the
  // digest never needs its own heap buffer.
  switch (alg) {
    case HashAlg::kSha1:
      return concat(kSha1Prefix, Sha1::digest(message));
    case HashAlg::kSha256:
      return concat(kSha256Prefix, Sha256::digest(message));
  }
  throw std::logic_error("digest_info: bad alg");
}

// EMSA-PKCS1-v1_5 encoding of a prebuilt DigestInfo:
// 0x00 0x01 FF..FF 0x00 DigestInfo.
Result<Bytes> emsa_encode_info(BytesView t, std::size_t em_len) {
  if (em_len < t.size() + 11) {
    return Error{Err::kCryptoError, "emsa_encode: modulus too small"};
  }
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t.size() - 3, 0xff);
  em.push_back(0x00);
  append(em, t);
  return em;
}

Result<Bytes> emsa_encode(HashAlg alg, BytesView message, std::size_t em_len) {
  return emsa_encode_info(digest_info(alg, message), em_len);
}

// Private-key operation m^d mod n via the CRT (about 3-4x faster than a
// straight exponentiation and matches how real implementations behave).
BigInt private_op(const RsaPrivateKey& key, const BigInt& m) {
  const BigInt m1 = BigInt::mod_exp(m % key.p, key.dp, key.p);
  const BigInt m2 = BigInt::mod_exp(m % key.q, key.dq, key.q);
  // h = qinv * (m1 - m2) mod p, careful with unsigned subtraction.
  BigInt diff;
  if (m1 >= m2 % key.p) {
    diff = m1 - (m2 % key.p);
  } else {
    diff = (m1 + key.p) - (m2 % key.p);
  }
  const BigInt h = BigInt::mod_mul(key.qinv, diff, key.p);
  return m2 + key.q * h;
}

}  // namespace

Bytes RsaPublicKey::serialize() const {
  BinaryWriter w;
  w.var_bytes(n.to_bytes_be());
  w.var_bytes(e.to_bytes_be());
  return w.take();
}

Result<RsaPublicKey> RsaPublicKey::deserialize(BytesView data) {
  BinaryReader r(data);
  auto n_bytes = r.var_bytes();
  if (!n_bytes.ok()) return n_bytes.error();
  auto e_bytes = r.var_bytes();
  if (!e_bytes.ok()) return e_bytes.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  RsaPublicKey key{BigInt::from_bytes_be(n_bytes.value()),
                   BigInt::from_bytes_be(e_bytes.value())};
  if (key.n.is_zero() || key.e.is_zero()) {
    return Error{Err::kCryptoError, "RsaPublicKey: zero component"};
  }
  return key;
}

Bytes RsaPublicKey::fingerprint() const { return Sha256::hash(serialize()); }

Bytes RsaPrivateKey::serialize() const {
  BinaryWriter w;
  for (const BigInt* part : {&n, &e, &d, &p, &q, &dp, &dq, &qinv}) {
    w.var_bytes(part->to_bytes_be());
  }
  return w.take();
}

Result<RsaPrivateKey> RsaPrivateKey::deserialize(BytesView data) {
  BinaryReader r(data);
  RsaPrivateKey key;
  for (BigInt* part :
       {&key.n, &key.e, &key.d, &key.p, &key.q, &key.dp, &key.dq, &key.qinv}) {
    auto bytes = r.var_bytes();
    if (!bytes.ok()) return bytes.error();
    *part = BigInt::from_bytes_be(bytes.value());
  }
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  if (key.n.is_zero() || key.d.is_zero()) {
    return Error{Err::kCryptoError, "RsaPrivateKey: zero component"};
  }
  return key;
}

RsaPrivateKey rsa_generate(
    std::size_t bits, const std::function<Bytes(std::size_t)>& random_bytes) {
  if (bits < 512) throw std::invalid_argument("rsa_generate: bits < 512");
  const BigInt e(65537);

  RsaPrivateKey key;
  key.e = e;
  for (;;) {
    const BigInt p = BigInt::generate_prime(bits / 2, random_bytes);
    const BigInt q = BigInt::generate_prime(bits - bits / 2, random_bytes);
    if (p == q) continue;

    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;

    const BigInt p1 = p - BigInt(1);
    const BigInt q1 = q - BigInt(1);
    const BigInt phi = p1 * q1;
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;

    key.n = n;
    key.d = BigInt::mod_inverse(e, phi);
    key.p = p;
    key.q = q;
    key.dp = key.d % p1;
    key.dq = key.d % q1;
    key.qinv = BigInt::mod_inverse(q, p);
    return key;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, HashAlg alg, BytesView message) {
  const std::size_t k = key.modulus_bytes();
  auto em = emsa_encode(alg, message, k);
  if (!em.ok()) throw std::invalid_argument(em.error().to_string());
  const BigInt m = BigInt::from_bytes_be(em.value());
  const BigInt s = private_op(key, m);
  return s.to_bytes_be(k);
}

namespace {

// Shared tail of signature verification: compare the recovered message
// representative against the expected EMSA-PKCS1-v1_5 encoding.
Status check_recovered(const BigInt& m, HashAlg alg, BytesView message,
                       std::size_t k) {
  const Bytes em = m.to_bytes_be(k);
  auto expected = emsa_encode(alg, message, k);
  if (!expected.ok()) return expected.error();
  if (!ct_equal(em, expected.value())) {
    return Error{Err::kAuthFail, "rsa_verify: signature mismatch"};
  }
  return Status::ok_status();
}

}  // namespace

Status rsa_verify(const RsaPublicKey& key, HashAlg alg, BytesView message,
                  BytesView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) {
    return Error{Err::kAuthFail, "rsa_verify: bad signature length"};
  }
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) {
    return Error{Err::kAuthFail, "rsa_verify: representative out of range"};
  }
  const BigInt m = BigInt::mod_exp(s, key.e, key.n);
  return check_recovered(m, alg, message, k);
}

RsaVerifyContext::RsaVerifyContext(RsaPublicKey key)
    : key_(std::move(key)), k_(key_.modulus_bytes()) {
  if (key_.n.is_odd() && key_.n >= BigInt(3)) {
    mont_.emplace(key_.n);
  }
}

Status RsaVerifyContext::verify(HashAlg alg, BytesView message,
                                BytesView signature) const {
  if (!mont_.has_value()) {
    return rsa_verify(key_, alg, message, signature);
  }
  if (signature.size() != k_) {
    return Error{Err::kAuthFail, "rsa_verify: bad signature length"};
  }
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key_.n) {
    return Error{Err::kAuthFail, "rsa_verify: representative out of range"};
  }
  const BigInt m = mont_->mod_exp(s, key_.e);
  return check_recovered(m, alg, message, k_);
}

std::vector<Status> rsa_verify_batch(std::span<const RsaBatchItem> items) {
  const std::size_t n = items.size();
  std::vector<Status> out(n);

  // Gathered digest pass: the SHA-256 items (every TPM 1.2 confirmation
  // in practice) ride the 4-way multi-buffer kernel; SHA-1 items fall
  // back to the scalar hash.
  std::vector<Bytes> info(n);
  {
    std::vector<BytesView> msgs;
    std::vector<std::size_t> idx;
    msgs.reserve(n);
    idx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (items[i].alg == HashAlg::kSha256) {
        msgs.push_back(items[i].message);
        idx.push_back(i);
      } else {
        info[i] = digest_info(items[i].alg, items[i].message);
      }
    }
    std::vector<Sha256Digest> digests(msgs.size());
    sha256_many(msgs.data(), msgs.size(), digests.data());
    for (std::size_t j = 0; j < idx.size(); ++j) {
      info[idx[j]] = concat(kSha256Prefix, digests[j]);
    }
  }

  // Structural screen plus the per-item exponentiation. The modulus
  // differs per key, so the heavy multiply chain cannot merge across
  // items -- what batching buys here is the shared context (cached
  // Montgomery constants, one small-exponent ladder shape for the
  // fleet-wide e = 65537) and deferring every padding comparison into
  // one gathered pass below.
  struct Pending {
    std::size_t index;
    Bytes recovered;
    Bytes expected;
  };
  std::vector<Pending> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RsaVerifyContext* ctx = items[i].ctx;
    if (ctx == nullptr) {
      out[i] = Error{Err::kAuthFail, "rsa_verify: missing context"};
      continue;
    }
    if (!ctx->mont_.has_value()) {
      // Degenerate-modulus fallback, identical to the single path.
      out[i] = rsa_verify(ctx->key_, items[i].alg, items[i].message,
                          items[i].signature);
      continue;
    }
    if (items[i].signature.size() != ctx->k_) {
      out[i] = Error{Err::kAuthFail, "rsa_verify: bad signature length"};
      continue;
    }
    const BigInt s = BigInt::from_bytes_be(items[i].signature);
    if (s >= ctx->key_.n) {
      out[i] =
          Error{Err::kAuthFail, "rsa_verify: representative out of range"};
      continue;
    }
    const BigInt m = ctx->mont_->mod_exp(s, ctx->key_.e);
    auto expected = emsa_encode_info(info[i], ctx->k_);
    if (!expected.ok()) {
      out[i] = expected.error();
      continue;
    }
    pending.push_back(Pending{i, m.to_bytes_be(ctx->k_), expected.take()});
  }

  // Batched padding check: one accumulation pass over the gathered
  // recovered/expected pairs, constant-time within each item like
  // ct_equal on the single path.
  for (const Pending& p : pending) {
    std::uint8_t diff = 0;
    for (std::size_t b = 0; b < p.recovered.size(); ++b) {
      diff = static_cast<std::uint8_t>(diff | (p.recovered[b] ^ p.expected[b]));
    }
    out[p.index] = diff != 0
                       ? Status(Error{Err::kAuthFail,
                                      "rsa_verify: signature mismatch"})
                       : Status();
  }
  return out;
}

Result<Bytes> rsa_encrypt(
    const RsaPublicKey& key, BytesView plaintext,
    const std::function<Bytes(std::size_t)>& random_bytes) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 11 > k) {
    return Error{Err::kCryptoError, "rsa_encrypt: plaintext too long"};
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero) 0x00 M
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t ps_len = k - plaintext.size() - 3;
  while (em.size() < 2 + ps_len) {
    Bytes r = random_bytes(ps_len);
    for (std::uint8_t b : r) {
      if (b != 0 && em.size() < 2 + ps_len) em.push_back(b);
    }
  }
  em.push_back(0x00);
  append(em, plaintext);

  const BigInt m = BigInt::from_bytes_be(em);
  const BigInt c = BigInt::mod_exp(m, key.e, key.n);
  return c.to_bytes_be(k);
}

Result<Bytes> rsa_decrypt(const RsaPrivateKey& key, BytesView ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k) {
    return Error{Err::kCryptoError, "rsa_decrypt: bad ciphertext length"};
  }
  const BigInt c = BigInt::from_bytes_be(ciphertext);
  if (c >= key.n) {
    return Error{Err::kCryptoError, "rsa_decrypt: representative out of range"};
  }
  const BigInt m = private_op(key, c);
  const Bytes em = m.to_bytes_be(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    return Error{Err::kCryptoError, "rsa_decrypt: bad padding header"};
  }
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) {
    return Error{Err::kCryptoError, "rsa_decrypt: bad padding body"};
  }
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

}  // namespace tp::crypto
