// HMAC-DRBG with SHA-256 (NIST SP 800-90A).
//
// Deterministic when seeded deterministically, which is exactly what the
// simulation needs: the emulated TPM's RNG and every key generation is
// reproducible from the experiment seed, while the construction itself is
// the real cryptographic one.
//
// Holds one HmacSha256Ctx keyed with the current K: the generate loop
// (V = HMAC(K, V) per 32 output bytes) reuses the precomputed key
// midstates instead of re-deriving ipad/opad on every call, and the
// context is re-keyed only when K itself changes (twice per update()).
#pragma once

#include "crypto/hmac.h"
#include "util/bytes.h"

namespace tp::crypto {

class HmacDrbg {
 public:
  /// Instantiates from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(BytesView seed_material);

  /// Returns n pseudo-random bytes and advances the state.
  Bytes generate(std::size_t n);

  /// Mixes fresh material into the state.
  void reseed(BytesView seed_material);

 private:
  void update(BytesView provided);

  Sha256Digest key_;   // K
  Sha256Digest v_;     // V
  HmacSha256Ctx ctx_;  // keyed with the current K
};

}  // namespace tp::crypto
