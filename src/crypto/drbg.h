// HMAC-DRBG with SHA-256 (NIST SP 800-90A).
//
// Deterministic when seeded deterministically, which is exactly what the
// simulation needs: the emulated TPM's RNG and every key generation is
// reproducible from the experiment seed, while the construction itself is
// the real cryptographic one.
#pragma once

#include "util/bytes.h"

namespace tp::crypto {

class HmacDrbg {
 public:
  /// Instantiates from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(BytesView seed_material);

  /// Returns n pseudo-random bytes and advances the state.
  Bytes generate(std::size_t n);

  /// Mixes fresh material into the state.
  void reseed(BytesView seed_material);

 private:
  void update(BytesView provided);

  Bytes key_;  // K
  Bytes v_;    // V
};

}  // namespace tp::crypto
