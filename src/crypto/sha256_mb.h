// Multi-buffer SHA-256 / HMAC-SHA-256: four independent messages hashed
// in lockstep through one interleaved compression loop.
//
// The scalar compressor is latency-bound: each of the 64 rounds depends
// on the previous one, so the ALUs sit half idle. Interleaving four
// independent states turns the same loop body into four parallel
// dependency chains -- the out-of-order core (or the auto-vectorizer:
// every operation is a 32-bit add/rotate/bool, i.e. one SSE2 lane)
// fills the pipeline and the per-message cost drops well below the
// scalar path. This is the standard multi-buffer construction used by
// high-throughput TLS/IPsec stacks, applied here to the verify data
// plane's gather points: confirmation-statement digests and record MACs
// arrive in batches of equal-length buffers, exactly the shape the
// 4-lane kernel wants.
//
// Results are bit-for-bit identical to crypto/sha256.h (the batch_test
// parity suite fuzzes lengths straddling every padding boundary).
#pragma once

#include <cstddef>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tp::crypto {

/// Lane count of the interleaved compressor.
inline constexpr std::size_t kSha256MbLanes = 4;

/// Hashes four equal-length messages in lockstep. All four views must
/// have the same size (the padding schedule is shared across lanes);
/// throws std::invalid_argument otherwise.
void sha256_mb4(const BytesView msgs[kSha256MbLanes],
                Sha256Digest out[kSha256MbLanes]);

/// Hashes `n` messages of arbitrary length: runs of four equal-length
/// messages go through the interleaved kernel, everything else through
/// the scalar path. `msgs` and `out` must hold `n` entries. Safe for
/// any mix -- this is the drop-in batched replacement for a loop of
/// Sha256::digest calls.
void sha256_many(const BytesView* msgs, std::size_t n, Sha256Digest* out);

/// HMAC-SHA-256 over four (key, message) pairs in lockstep. Messages
/// must share one length; keys may differ (and may exceed the block
/// size -- they are pre-hashed per RFC 2104 like the scalar HmacCtx).
void hmac_sha256_mb4(const BytesView keys[kSha256MbLanes],
                     const BytesView msgs[kSha256MbLanes],
                     Sha256Digest out[kSha256MbLanes]);

/// HMAC-SHA-256 of `n` messages under one key: equal-length runs of four
/// ride the interleaved kernel, the remainder the scalar HmacCtx.
void hmac_sha256_many(BytesView key, const BytesView* msgs, std::size_t n,
                      Sha256Digest* out);

}  // namespace tp::crypto
