// RSA with PKCS#1 v1.5 signatures and encryption (RFC 3447).
//
// TPM 1.2 keys are RSA keys and TPM signatures/quotes are
// RSASSA-PKCS1-v1_5, so this is the exact primitive set the emulator and
// the service-provider verifier need. Private operations use the CRT.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "crypto/bignum.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::crypto {

/// Hash algorithm identifier carried inside PKCS#1 v1.5 DigestInfo.
enum class HashAlg { kSha1, kSha256 };

/// Public half: (n, e). Serializable for wire transport.
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  Bytes serialize() const;
  static Result<RsaPublicKey> deserialize(BytesView data);

  /// Canonical fingerprint: SHA-256 over the serialization.
  Bytes fingerprint() const;

  bool operator==(const RsaPublicKey& other) const = default;
};

/// Private key with CRT components.
struct RsaPrivateKey {
  BigInt n, e, d;
  BigInt p, q;
  BigInt dp, dq, qinv;  // d mod p-1, d mod q-1, q^-1 mod p

  RsaPublicKey public_key() const { return {n, e}; }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  Bytes serialize() const;
  static Result<RsaPrivateKey> deserialize(BytesView data);
};

/// Generates a keypair with public exponent 65537. `bits` is the modulus
/// size (>= 512). `random_bytes` supplies entropy (n -> n octets).
RsaPrivateKey rsa_generate(
    std::size_t bits, const std::function<Bytes(std::size_t)>& random_bytes);

/// RSASSA-PKCS1-v1_5 signature over `message` (hashed with `alg`).
Bytes rsa_sign(const RsaPrivateKey& key, HashAlg alg, BytesView message);

/// Verifies an RSASSA-PKCS1-v1_5 signature. Structural errors and value
/// mismatches both report kAuthFail.
Status rsa_verify(const RsaPublicKey& key, HashAlg alg, BytesView message,
                  BytesView signature);

/// Per-key verification context: caches the Montgomery context for the
/// key's modulus so repeated verifies against one public key (the SP's
/// hot loop — one enrolled client confirming many transactions) skip the
/// per-call R^2-mod-n setup. Verdicts are bit-identical to rsa_verify.
///
/// Immutable after construction; safe to share across threads.
class RsaVerifyContext {
 public:
  /// Keys with a degenerate modulus (even or < 3 — never produced by
  /// rsa_generate, but deserialization accepts them) fall back to the
  /// uncached rsa_verify path instead of failing construction.
  explicit RsaVerifyContext(RsaPublicKey key);

  const RsaPublicKey& public_key() const { return key_; }

  /// Same contract as rsa_verify(public_key(), ...).
  Status verify(HashAlg alg, BytesView message, BytesView signature) const;

 private:
  friend std::vector<Status> rsa_verify_batch(
      std::span<const struct RsaBatchItem> items);
  RsaPublicKey key_;
  std::size_t k_;  // modulus length in bytes
  std::optional<MontgomeryCtx> mont_;
};

/// One item of a batched verification: a cached context plus the hash
/// algorithm, message and signature to check against it.
struct RsaBatchItem {
  const RsaVerifyContext* ctx = nullptr;
  HashAlg alg = HashAlg::kSha256;
  BytesView message;
  BytesView signature;
};

/// Verifies every item and returns one status per item, in order --
/// verdict-identical to calling item.ctx->verify(...) one by one. The
/// modular exponentiation is irreducibly per-key (each item's modulus
/// differs), but the fixed costs around it gather: SHA-256 DigestInfo
/// digests run through the 4-way multi-buffer kernel, the structural
/// length/range screens complete over the whole batch before any
/// exponentiation starts, and the recovered-message padding comparison
/// is one constant-time accumulation pass over the gathered batch.
/// Items sharing a context reuse its cached Montgomery constants and
/// the shared small-exponent ladder shape (e = 65537 -> 17 multiplies).
std::vector<Status> rsa_verify_batch(std::span<const RsaBatchItem> items);

/// RSAES-PKCS1-v1_5 encryption; plaintext must be <= modulus_bytes - 11.
Result<Bytes> rsa_encrypt(const RsaPublicKey& key, BytesView plaintext,
                          const std::function<Bytes(std::size_t)>& random_bytes);

/// RSAES-PKCS1-v1_5 decryption.
Result<Bytes> rsa_decrypt(const RsaPrivateKey& key, BytesView ciphertext);

}  // namespace tp::crypto
