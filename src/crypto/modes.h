// AES block-cipher modes: CBC with PKCS#7 padding, and CTR.
#pragma once

#include "crypto/aes.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::crypto {

/// CBC encryption with PKCS#7 padding. IV must be 16 bytes.
Bytes cbc_encrypt(const Aes& cipher, BytesView iv, BytesView plaintext);

/// CBC decryption; validates and strips PKCS#7 padding. Returns
/// kCryptoError for malformed ciphertext or padding.
Result<Bytes> cbc_decrypt(const Aes& cipher, BytesView iv,
                          BytesView ciphertext);

/// CTR keystream XOR (encryption == decryption). Nonce must be 16 bytes
/// and is used as the initial counter block (big-endian increment).
Bytes ctr_crypt(const Aes& cipher, BytesView nonce, BytesView data);

/// Allocation-free CTR variant: XORs the keystream over `data` into
/// `out`, which must hold data.size() bytes and may alias `data` exactly
/// (in-place transform). The record path uses this to encrypt/decrypt
/// directly inside the frame buffer.
void ctr_crypt_into(const Aes& cipher, BytesView nonce, BytesView data,
                    std::uint8_t* out);

}  // namespace tp::crypto
