// Fixed-bucket latency histogram with lock-free recording.
//
// Buckets are geometric (ratio 1.25 by default) over a configurable range,
// so the relative error of any reported percentile is bounded by the
// bucket ratio (~25% worst case, far tighter than the run-to-run noise of
// the latency experiments). Recording is a single atomic add on the bucket
// plus atomic count/sum/min/max maintenance -- safe from any number of
// threads; snapshots are taken without stopping writers and are therefore
// weakly consistent (each atomic is read once, totals may disagree by a
// handful of in-flight samples).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tp::obs {

/// Point-in-time view of a histogram, safe to copy and format.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // same unit as the recorded values
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;

  /// Bucket upper bounds and the count that landed at or below each;
  /// the last bucket is the +inf overflow bucket.
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  /// Percentile estimate (q in [0,1]) by bucket interpolation.
  std::uint64_t percentile(double q) const;
  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p95() const { return percentile(0.95); }
  std::uint64_t p99() const { return percentile(0.99); }
};

class Histogram {
 public:
  struct Options {
    std::uint64_t lowest = 1'000;            // first bucket bound
    std::uint64_t highest = 120'000'000'000; // values above go to +inf
    double growth = 1.25;                    // geometric bucket ratio
  };

  /// Default range suits nanosecond latencies: 1 us .. 120 s.
  Histogram() : Histogram(Options{}) {}
  explicit Histogram(Options options);

  /// Records one sample. Lock-free; callable from any thread.
  void record(std::uint64_t value);

  HistogramSnapshot snapshot() const;

  /// Zeroes every bucket and the aggregates. Not atomic with respect to
  /// concurrent record() calls: in-flight samples may straddle the reset.
  void reset();

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;  // immutable after construction
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace tp::obs
