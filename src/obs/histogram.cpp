#include "obs/histogram.h"

#include <algorithm>

namespace tp::obs {

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample we are after, 1-based.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * count + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Report the bucket's upper bound, clamped into the observed range
      // so p100 == max and tiny histograms stay exact-ish.
      const std::uint64_t bound =
          i < bounds.size() ? bounds[i] : max;  // +inf bucket -> max
      return std::clamp(bound, min, max);
    }
  }
  return max;
}

Histogram::Histogram(Options options) {
  std::uint64_t bound = std::max<std::uint64_t>(1, options.lowest);
  const double growth = std::max(1.01, options.growth);
  while (bound < options.highest) {
    bounds_.push_back(bound);
    const auto next = static_cast<std::uint64_t>(bound * growth);
    bound = next > bound ? next : bound + 1;
  }
  bounds_.push_back(options.highest);
  // One extra +inf bucket for values above `highest`.
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // may be the +inf slot
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (min == ~0ull) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace tp::obs
