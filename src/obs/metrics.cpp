#include "obs/metrics.h"

#include <sstream>

namespace tp::obs {

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               Histogram::Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return *it->second;
}

std::vector<Registry::CounterSample> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSample{name, counter->value()});
  }
  return out;
}

std::vector<Registry::GaugeSample> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSample{name, gauge->value()});
  }
  return out;
}

std::vector<Registry::HistogramSample> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.push_back(HistogramSample{name, hist->snapshot()});
  }
  return out;
}

std::uint64_t Registry::counter_total(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, counter] : counters_) {
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      total += counter->value();
    }
  }
  return total;
}

void Registry::reset(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    if (std::string_view(name).substr(0, prefix.size()) == prefix) {
      counter->reset();
    }
  }
  for (auto& [name, gauge] : gauges_) {
    if (std::string_view(name).substr(0, prefix.size()) == prefix) {
      gauge->reset();
    }
  }
  for (auto& [name, hist] : histograms_) {
    if (std::string_view(name).substr(0, prefix.size()) == prefix) {
      hist->reset();
    }
  }
}

namespace {

// Metric names are code-controlled identifiers, but reject reasons feed
// into counter names, so escape the characters JSON cares about.
void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string Registry::to_json() const {
  const auto counter_samples = counters();
  const auto gauge_samples = gauges();
  const auto histogram_samples = histograms();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& sample : counter_samples) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, sample.name);
    out << ':' << sample.value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& sample : gauge_samples) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, sample.name);
    out << ':' << sample.value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& sample : histogram_samples) {
    if (!first) out << ',';
    first = false;
    const auto& s = sample.snapshot;
    append_json_string(out, sample.name);
    out << ":{\"count\":" << s.count << ",\"mean_us\":" << s.mean() / 1e3
        << ",\"min_us\":" << s.min / 1e3 << ",\"p50_us\":" << s.p50() / 1e3
        << ",\"p95_us\":" << s.p95() / 1e3 << ",\"p99_us\":" << s.p99() / 1e3
        << ",\"max_us\":" << s.max / 1e3 << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace tp::obs
