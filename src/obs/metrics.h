// Metrics registry: named counters and histograms for the serving stack.
//
// Registration (name -> instrument lookup) takes a mutex; the returned
// references are stable for the registry's lifetime, so hot paths look up
// once and then update lock-free. This is the usual two-tier design of
// server metric libraries (cf. Prometheus client internals) shrunk to what
// the verifier service needs: counters, latency histograms, scoped timers,
// and a JSON dump for the daemon's shutdown report.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace tp::obs {

/// Monotonic event counter. Saturates at uint64 max instead of wrapping,
/// so long-running aggregations (e.g. SpStats reject reasons) can never
/// overflow into misleading small values.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    while (true) {
      const std::uint64_t next = (cur > kMax - delta) ? kMax : cur + delta;
      if (value_.compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, session-table occupancy): unlike a
/// Counter it moves both ways, so readers see the current value, not a
/// total. Lock-free set/read; last writer wins.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Registry {
 public:
  /// Returns the counter/gauge/histogram named `name`, creating it on
  /// first use. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       Histogram::Options options = Histogram::Options{});

  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot snapshot;
  };

  /// Weakly-consistent point-in-time views (writers are not paused).
  std::vector<CounterSample> counters() const;
  std::vector<GaugeSample> gauges() const;
  std::vector<HistogramSample> histograms() const;

  /// Sum of all counters whose name starts with `prefix`.
  std::uint64_t counter_total(std::string_view prefix) const;

  /// Zeroes instruments whose name starts with `prefix` ("" = all).
  void reset(std::string_view prefix = "");

  /// {"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,mean,p50,p95,p99,...}}}
  /// Histogram values are reported in microseconds (they record ns).
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII wall-clock timer: records elapsed nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tp::obs
