// Captcha baseline: the defence the paper positions the trusted path
// against ("offers immediate value ... as a replacement for captchas").
//
// The service issues distorted-text challenges; humans solve them with
// high (but not perfect) probability, OCR bots with a probability that
// *rises* as solving services improve -- the structural weakness the
// comparison experiment (F2) quantifies. Distortion is an abstract knob
// in [0,1]: higher hurts bots more, but hurts humans too.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/drbg.h"
#include "devices/human.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace tp::captcha {

struct CaptchaChallenge {
  std::uint64_t id = 0;
  /// The text embedded in the (conceptual) distorted image. A solver --
  /// human or OCR -- "sees" this; whether it *recognizes* it correctly is
  /// the probabilistic part the models capture.
  std::string embedded_text;
  double distortion = 0.0;
};

class CaptchaService {
 public:
  explicit CaptchaService(BytesView seed, std::size_t code_len = 6);

  /// Issues a challenge with the given distortion level in [0,1].
  CaptchaChallenge issue(double distortion);

  /// One-shot check; consuming a challenge invalidates it.
  Status verify(std::uint64_t id, const std::string& answer);

  std::uint64_t issued() const { return issued_; }
  std::uint64_t solved() const { return solved_; }

 private:
  crypto::HmacDrbg drbg_;
  std::size_t code_len_;
  std::map<std::uint64_t, std::string> pending_;  // id -> solution
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t solved_ = 0;
};

/// P(human solves) for a human with `base` ability at `distortion`:
/// linear degradation, floor at 0.2 (from captcha usability studies,
/// heavy distortion pushes human accuracy toward chance).
double human_solve_prob(double base, double distortion);

/// Automated captcha solver (OCR or human-solving sweatshop API).
/// `strength` in [0,1] is the attacker quality knob of experiment F2:
/// 0.3 ~ 2011-era OCR, 0.9+ ~ outsourced human solving.
class OcrAttacker {
 public:
  OcrAttacker(double strength, SimRng rng)
      : strength_(strength), rng_(std::move(rng)) {}

  /// P(correct answer) at a given distortion: distortion suppresses OCR
  /// more sharply than humans.
  double solve_prob(double distortion) const;

  /// Attempts a challenge: returns the embedded text with solve_prob, a
  /// wrong guess otherwise (recognition is the probabilistic step).
  std::string attempt(const CaptchaChallenge& challenge);

 private:
  double strength_;
  SimRng rng_;
};

}  // namespace tp::captcha
