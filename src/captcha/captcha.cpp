#include "captcha/captcha.h"

#include <algorithm>

namespace tp::captcha {

namespace {
constexpr char kAlphabet[] = "abcdefghjkmnpqrstuvwxyz23456789";
constexpr std::size_t kAlphabetSize = sizeof(kAlphabet) - 1;
}  // namespace

CaptchaService::CaptchaService(BytesView seed, std::size_t code_len)
    : drbg_(concat(bytes_of("captcha-service:"), seed)),
      code_len_(code_len) {}

CaptchaChallenge CaptchaService::issue(double distortion) {
  distortion = std::clamp(distortion, 0.0, 1.0);
  const Bytes raw = drbg_.generate(code_len_);
  std::string text;
  text.reserve(code_len_);
  for (std::uint8_t b : raw) text.push_back(kAlphabet[b % kAlphabetSize]);

  CaptchaChallenge challenge;
  challenge.id = next_id_++;
  challenge.embedded_text = text;
  challenge.distortion = distortion;
  pending_[challenge.id] = text;
  ++issued_;
  return challenge;
}

Status CaptchaService::verify(std::uint64_t id, const std::string& answer) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    return Error{Err::kNotFound, "captcha: unknown or consumed challenge"};
  }
  const std::string solution = it->second;
  pending_.erase(it);  // one-shot
  if (answer != solution) {
    return Error{Err::kAuthFail, "captcha: wrong answer"};
  }
  ++solved_;
  return Status::ok_status();
}

double human_solve_prob(double base, double distortion) {
  distortion = std::clamp(distortion, 0.0, 1.0);
  return std::max(0.2, base * (1.0 - 0.35 * distortion));
}

double OcrAttacker::solve_prob(double distortion) const {
  distortion = std::clamp(distortion, 0.0, 1.0);
  // OCR degrades much faster with distortion than humans do; outsourced
  // human solving (strength near 1) barely degrades -- which is why
  // captchas lose the arms race, the structural point of experiment F2.
  const double human_like = strength_;                  // solver quality
  const double decay = 1.0 - (1.6 - strength_) * distortion;
  return std::clamp(human_like * decay, 0.0, 1.0);
}

std::string OcrAttacker::attempt(const CaptchaChallenge& challenge) {
  if (rng_.chance(solve_prob(challenge.distortion))) {
    return challenge.embedded_text;
  }
  // A wrong recognition: mangle one character.
  std::string guess = challenge.embedded_text;
  if (guess.empty()) return "?";
  const std::size_t pos = rng_.next_below(guess.size());
  guess[pos] = (guess[pos] == 'x') ? 'y' : 'x';
  return guess;
}

}  // namespace tp::captcha
