#include "model/checker.h"

#include <algorithm>
#include <unordered_map>

namespace tp::model {

namespace {

std::uint64_t fold_state(std::uint64_t fp, const World& w) {
  const auto* p = reinterpret_cast<const unsigned char*>(&w);
  for (std::size_t i = 0; i < sizeof(World); ++i) {
    fp = (fp ^ p[i]) * 0x100000001b3ull;
  }
  return fp;
}

}  // namespace

CheckResult check(const CheckerConfig& config) {
  CheckResult out;

  // The BFS queue IS the state vector: states are appended in discovery
  // order and expanded in that same order (head chases the tail), so no
  // separate queue is needed and indices double as parent links.
  std::vector<World> states;
  struct Meta {
    std::uint32_t parent;
    Action via;
    std::uint16_t depth;
  };
  std::vector<Meta> meta;
  std::unordered_map<World, std::uint32_t, WorldHash> index;

  const std::size_t reserve =
      config.max_states != 0 ? std::min<std::size_t>(config.max_states, 1u << 21)
                             : (1u << 16);
  states.reserve(reserve);
  meta.reserve(reserve);
  index.reserve(reserve);

  states.push_back(initial_world());
  meta.push_back(Meta{0, Action{}, 0});
  index.emplace(states.front(), 0u);
  std::uint64_t fp = fold_state(0xcbf29ce484222325ull, states.front());

  Action actions[kMaxActions];
  std::size_t head = 0;
  bool stop = false;
  while (head < states.size() && !stop) {
    const auto current = static_cast<std::uint32_t>(head++);
    // Copy out: states reallocates as successors are appended.
    const World world = states[current];
    const int depth = meta[current].depth;
    if (depth >= config.max_depth) continue;
    const std::size_t n = enumerate_actions(world, actions);
    for (std::size_t i = 0; i < n && !stop; ++i) {
      const StepOutcome step = step_world(world, actions[i], config.bugs);
      ++out.transitions;
      if (step.violated != Invariant::kNone) {
        Violation v;
        v.invariant = step.violated;
        v.state = step.next;
        v.trace.push_back(actions[i]);
        for (std::uint32_t at = current; at != 0; at = meta[at].parent) {
          v.trace.push_back(meta[at].via);
        }
        std::reverse(v.trace.begin(), v.trace.end());
        out.violations.push_back(std::move(v));
        if (config.stop_at_first_violation) stop = true;
        continue;  // a violating world is a counterexample, not a frontier
      }
      if (!step.changed) continue;  // self-loop: nothing new to explore
      if (index.find(step.next) != index.end()) continue;
      if (config.max_states != 0 && states.size() >= config.max_states) {
        out.state_cap_hit = true;
        continue;
      }
      index.emplace(step.next, static_cast<std::uint32_t>(states.size()));
      states.push_back(step.next);
      meta.push_back(Meta{current, actions[i],
                          static_cast<std::uint16_t>(depth + 1)});
      fp = fold_state(fp, step.next);
      out.max_depth_reached = std::max(out.max_depth_reached, depth + 1);
    }
  }

  out.states = states.size();
  out.frontier_exhausted = !out.state_cap_hit && !stop && head >= states.size();
  out.fingerprint = fp;
  return out;
}

}  // namespace tp::model
