// Bounded-depth breadth-first explorer over the symbolic protocol world.
//
// Walks every reachable interleaving of honest-party steps and
// Dolev-Yao deliveries from the initial world, deduplicating states by
// value (full 24-byte states are stored, so a hash collision can never
// hide a distinct state). Exploration is breadth-first, which makes
// every reported counterexample trace minimal: no shorter action
// sequence reaches any violation of the same invariant.
//
// Determinism: action enumeration has a fixed total order and the
// visited set is keyed by value, so two runs with the same config
// produce identical state counts, traces and discovery-order
// fingerprints -- asserted by tests/model_test.cpp and compared across
// CI runs the same way the chaos suite compares fault fingerprints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/protocol_model.h"

namespace tp::model {

struct CheckerConfig {
  /// Maximum number of actions from the initial world.
  int max_depth = 14;
  /// Visited-state cap; 0 means unbounded. When the cap trips the result
  /// is still sound for every state it did visit -- it just stops being
  /// exhaustive (state_cap_hit reports which).
  std::size_t max_states = 500000;
  SeededBugs bugs;
  /// Stop at the first (minimal) violation instead of collecting all.
  bool stop_at_first_violation = true;
};

struct Violation {
  Invariant invariant = Invariant::kNone;
  /// Minimal action sequence from the initial world; the last action is
  /// the one that trips the invariant.
  std::vector<Action> trace;
  World state;  // the world after the violating action
};

struct CheckResult {
  std::size_t states = 0;       // distinct states visited (deduplicated)
  std::size_t transitions = 0;  // edges evaluated
  int max_depth_reached = 0;
  bool state_cap_hit = false;
  /// Every reachable state within max_depth was visited: the invariants
  /// hold EXHAUSTIVELY up to that depth, not just on sampled runs.
  bool frontier_exhausted = false;
  /// FNV-1a over visited states in discovery order.
  std::uint64_t fingerprint = 0;
  std::vector<Violation> violations;
};

CheckResult check(const CheckerConfig& config);

}  // namespace tp::model
