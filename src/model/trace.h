// Counterexample rendering and replay mapping.
//
// A checker trace is a sequence of scheduler/attacker actions over the
// symbolic world. Two consumers:
//  * humans -- format_trace renders one action per line;
//  * the simulator -- trace_to_fault_script projects the attacker's
//    moves onto net::FaultScript entries (exactly-placed duplicates on
//    the canonical send indices of the honest enroll + confirm run), so
//    a counterexample found in the model replays against the REAL
//    client/SP/link stack under a seeded FaultInjector.
#pragma once

#include <string>
#include <vector>

#include "model/protocol_model.h"
#include "net/fault.h"

namespace tp::model {

std::string describe_action(Action action);
std::string format_trace(const std::vector<Action>& trace);

/// The send index a frame occupies in the clean one-enroll one-tx run
/// over the simulated link (both directions share one send counter):
/// EnrollBegin=0, EnrollChallenge=1, EnrollComplete=2, EnrollResult=3,
/// TxSubmit=4, TxChallenge=5, TxConfirm=6, TxResult=7. Returns -1 for
/// frames the honest run never sends (crafted garbage).
int canonical_send_index(std::uint8_t frame);

struct FaultScriptMapping {
  net::FaultScript script;
  /// Every attacker move in the trace mapped onto a link fault. When
  /// false the trace uses a move (e.g. crafted garbage) the link-level
  /// fault vocabulary cannot express; the script covers the rest.
  bool exact = false;
};

/// Projects a counterexample onto the fault script that reproduces its
/// deliveries on the real link: the first delivery of each frame is the
/// honest send, each re-delivery becomes a kDuplicate at that frame's
/// canonical send index.
FaultScriptMapping trace_to_fault_script(const std::vector<Action>& trace);

}  // namespace tp::model
