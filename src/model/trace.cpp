#include "model/trace.h"

#include <array>

namespace tp::model {

std::string describe_action(Action action) {
  std::string s = action_kind_name(action.kind);
  if (action.kind == ActionKind::kDeliverToSp ||
      action.kind == ActionKind::kDeliverToClient) {
    s += ": ";
    s += frame_name(action.frame);
  }
  return s;
}

std::string format_trace(const std::vector<Action>& trace) {
  std::string s;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    s += "  ";
    s += std::to_string(i + 1);
    s += ". ";
    s += describe_action(trace[i]);
    s += '\n';
  }
  return s;
}

int canonical_send_index(std::uint8_t frame) {
  if (frame == kFrameEnrollBegin) return 0;
  if (frame >= kFrameEnrollChallenge0 &&
      frame < kFrameEnrollChallenge0 + kEnrollNoncePool) {
    return 1;
  }
  if (frame >= kFrameEnrollCompleteGenuine0 &&
      frame < kFrameEnrollCompleteGenuine0 + kEnrollNoncePool) {
    return 2;
  }
  if (frame == kFrameEnrollResultOk || frame == kFrameEnrollResultReject) {
    return 3;
  }
  if (frame == kFrameTxSubmit) return 4;
  if (frame >= kFrameTxChallenge0 &&
      frame < kFrameTxChallenge0 + kTxNoncePool) {
    return 5;
  }
  if (frame >= kFrameTxConfirm0 && frame < tx_confirm_frame(kSigGarbage, 0)) {
    return 6;  // genuine-signature confirms, either verdict
  }
  if (frame == kFrameTxResultOk || frame == kFrameTxResultReject) return 7;
  return -1;  // crafted garbage: the honest run never sends it
}

FaultScriptMapping trace_to_fault_script(const std::vector<Action>& trace) {
  FaultScriptMapping out;
  out.exact = true;
  std::array<std::uint8_t, kFrameCount> delivered{};
  for (const Action& a : trace) {
    if (a.kind != ActionKind::kDeliverToSp &&
        a.kind != ActionKind::kDeliverToClient) {
      continue;  // honest-party moves happen on the real stack by itself
    }
    const int index = canonical_send_index(a.frame);
    if (index < 0) {
      out.exact = false;  // crafted frame: no link fault expresses it
      continue;
    }
    if (delivered[a.frame]++ == 0) {
      continue;  // first delivery: the honest send itself
    }
    out.script.forced.push_back(net::ForcedFault{
        static_cast<std::uint64_t>(index),
        static_cast<std::uint8_t>(net::FaultKind::kDuplicate)});
  }
  return out;
}

}  // namespace tp::model
