// Symbolic protocol world for the bounded model checker.
//
// The model closes the loop the core/shell split opens: because every
// protocol decision the SP makes is a pure function in proto/sp_core.h
// (and the client's retry/filter decisions in proto/client_core.h), a
// checker can drive the EXACT deployed decision logic against symbolic
// state -- no reimplementation of the protocol to drift out of sync.
// This file defines that symbolic state and its transition function;
// checker.h walks it breadth-first.
//
// World shape (one honest client, one SP, a Dolev-Yao network):
//  * Frames are drawn from a closed universe of at most 32 symbolic
//    values (nonces from small bounded pools, signatures identified by
//    the nonce they bind, one collapsed "garbage" value per role). The
//    attacker's knowledge is a bitmask over that universe.
//  * The network IS the attacker: an honest send only adds the frame to
//    the knowledge set, and a delivery takes any known (or craftable)
//    frame to either party. Drop, duplicate, reorder, replay and
//    cross-session splice all fall out of that one rule.
//  * The attacker cannot forge: a genuine enrollment evidence or
//    confirmation signature enters its knowledge only when the honest
//    client emits it. Garbage evidence/signatures are always craftable.
//  * Time does not pass: session expiry and retry backoff are out of
//    scope here (covered by the chaos suite); every other interleaving
//    is in scope.
//
// Seeded bugs (SeededBugs) let tests re-introduce the classic
// implementation mistakes -- skipped signature verification, a dropped
// settle action, a disabled replay screen -- and watch the checker
// produce the minimal attack each enables.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "proto/sp_core.h"

namespace tp::model {

// ---- bounded symbol pools --------------------------------------------

inline constexpr std::uint8_t kEnrollNoncePool = 4;
inline constexpr std::uint8_t kTxNoncePool = 4;
/// Signature symbol for "no / garbage signature" (a rejected confirm
/// carries none; a crafted one carries bytes that verify against
/// nothing).
inline constexpr std::uint8_t kSigGarbage = kTxNoncePool;

// ---- the frame universe ----------------------------------------------

/// Symbolic frame ids, tightly packed so the knowledge set is one u32.
enum Frame : std::uint8_t {
  kFrameEnrollBegin = 0,
  /// EnrollChallenge carrying enroll nonce n: kFrameEnrollChallenge0 + n.
  kFrameEnrollChallenge0 = 1,
  /// EnrollComplete with GENUINE evidence bound to enroll nonce n (only
  /// the honest client can mint these): kFrameEnrollCompleteGenuine0 + n.
  kFrameEnrollCompleteGenuine0 = kFrameEnrollChallenge0 + kEnrollNoncePool,
  /// EnrollComplete with garbage evidence (always craftable).
  kFrameEnrollCompleteGarbage =
      kFrameEnrollCompleteGenuine0 + kEnrollNoncePool,
  kFrameEnrollResultOk,
  kFrameEnrollResultReject,
  kFrameTxSubmit,
  /// TxChallenge carrying tx nonce n: kFrameTxChallenge0 + n.
  kFrameTxChallenge0,
  /// TxConfirm(sig, verdict): kFrameTxConfirm0 + sig * 2 + verdict,
  /// sig in [0, kTxNoncePool] (== kSigGarbage for none/garbage),
  /// verdict 0 = confirmed, 1 = rejected.
  kFrameTxConfirm0 = kFrameTxChallenge0 + kTxNoncePool,
  kFrameTxResultOk = kFrameTxConfirm0 + (kTxNoncePool + 1) * 2,
  kFrameTxResultReject,
  kFrameCount,
};
static_assert(kFrameCount <= 32, "knowledge set must fit one u32");

inline constexpr std::uint8_t kNoFrame = 0xFF;
inline constexpr std::uint8_t kNoNonce = 0xFF;

constexpr std::uint8_t tx_confirm_frame(std::uint8_t sig,
                                        std::uint8_t rejected) {
  return static_cast<std::uint8_t>(kFrameTxConfirm0 + sig * 2 + rejected);
}
constexpr std::uint8_t tx_confirm_sig(std::uint8_t frame) {
  return static_cast<std::uint8_t>((frame - kFrameTxConfirm0) / 2);
}
constexpr bool tx_confirm_rejected(std::uint8_t frame) {
  return ((frame - kFrameTxConfirm0) & 1) != 0;
}

std::string frame_name(std::uint8_t frame);

// ---- world state ------------------------------------------------------

/// SessionState wire values 0..4; this marks "no slot claimed yet".
inline constexpr std::uint8_t kNoSession = 5;

/// The packed global state: SP tables, client FSM, attacker knowledge.
/// Plain bytes with no padding so the checker can hash and compare it
/// wholesale (full states are stored, not hashes -- a hash collision
/// must not mask a distinct state).
struct World {
  // -- SP: one enrollment slot (keyed by the client id) --
  std::uint8_t enroll_state = kNoSession;  // proto::SessionState or kNoSession
  std::uint8_t enroll_nonce = kNoNonce;    // challenge nonce in the slot
  std::uint8_t enroll_req = kNoFrame;      // cached request digest (frame id)
  std::uint8_t enroll_resp = kNoFrame;     // cached response (frame id)
  // -- SP: one confirmation slot (the client's transaction) --
  std::uint8_t tx_state = kNoSession;
  std::uint8_t tx_nonce = kNoNonce;
  std::uint8_t tx_req = kNoFrame;
  std::uint8_t tx_resp = kNoFrame;
  // -- SP: registries --
  std::uint8_t enrolled = 0;     // crypto port knows the client
  std::uint8_t replay_mask = 0;  // genuine sig ids in the replay cache
  std::uint8_t next_enroll_nonce = 0;  // DRBG position (nonces never repeat)
  std::uint8_t next_tx_nonce = 0;
  /// Accepted-settle count per tx nonce, 2 bits each (saturates at 3);
  /// the exactly-once invariant is "every field <= 1".
  std::uint8_t accept_counts = 0;
  // -- honest client --
  std::uint8_t c_enroll_fsm = 0;  // proto::SessionState (client's mirror FSM)
  std::uint8_t c_tx_fsm = 0;
  std::uint8_t c_enroll_nonce = kNoNonce;  // challenge the client attested
  std::uint8_t c_tx_nonce = kNoNonce;      // challenge shown to the human
  std::uint8_t c_signed_mask = 0;  // tx nonces the human genuinely confirmed
  std::uint8_t c_flags = 0;        // ClientFlag bits
  // -- attacker --
  std::uint8_t knowledge_bytes[4] = {0, 0, 0, 0};  // u32 bitmask over Frame

  std::uint32_t knowledge() const {
    std::uint32_t k = 0;
    std::memcpy(&k, knowledge_bytes, sizeof(k));
    return k;
  }
  void set_knowledge(std::uint32_t k) {
    std::memcpy(knowledge_bytes, &k, sizeof(k));
  }
  bool knows(std::uint8_t frame) const {
    return (knowledge() >> frame) & 1u;
  }
  void learn(std::uint8_t frame) {
    set_knowledge(knowledge() | (1u << frame));
  }

  std::uint8_t accepts(std::uint8_t nonce) const {
    return static_cast<std::uint8_t>((accept_counts >> (2 * nonce)) & 3u);
  }

  bool operator==(const World& o) const {
    return std::memcmp(this, &o, sizeof(World)) == 0;
  }
};
static_assert(sizeof(World) == 23, "World must stay tightly packed");

enum ClientFlag : std::uint8_t {
  kClientEnrolled = 1 << 0,     // EnrollResult(ok) observed
  kClientTxSettled = 1 << 1,    // TxResult observed
  kClientVerdictGiven = 1 << 2, // the human answered this challenge
};

struct WorldHash {
  std::size_t operator()(const World& w) const {
    // FNV-1a over the packed bytes.
    const auto* p = reinterpret_cast<const unsigned char*>(&w);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < sizeof(World); ++i) {
      h = (h ^ p[i]) * 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

// ---- attacker / scheduler actions ------------------------------------

enum class ActionKind : std::uint8_t {
  kClientStart = 0,   // honest client begins enrollment
  kClientSubmitTx,    // honest client submits its transaction
  kClientConfirm,     // the human confirms the held challenge
  kClientReject,      // the human rejects the held challenge
  kDeliverToSp,       // attacker delivers `frame` to the SP
  kDeliverToClient,   // attacker delivers `frame` to the client
};

struct Action {
  ActionKind kind = ActionKind::kClientStart;
  std::uint8_t frame = kNoFrame;
};

const char* action_kind_name(ActionKind kind);

// ---- invariants -------------------------------------------------------

enum class Invariant : std::uint8_t {
  kNone = 0,
  /// A challenge nonce settles as accepted at most once.
  kTxExactlyOnce,
  /// An accepted confirmation carries the genuine signature for the
  /// session's nonce, and the human really confirmed that nonce.
  kNoForgedConfirm,
  /// The SP only registers an enrollment whose evidence is genuine and
  /// bound to the session's challenge.
  kNoUnattestedEnroll,
};

const char* invariant_name(Invariant invariant);

// ---- seeded bugs ------------------------------------------------------

/// Deliberate defects the checker can re-introduce. Each mirrors a
/// plausible shell mistake; the tests assert the checker finds the
/// attack each one (or each pair) enables, and that single defence
/// layers failing alone stay safe (defence in depth).
struct SeededBugs {
  /// The crypto port reports every evidence/signature check as passing.
  bool skip_crypto_verify = false;
  /// The shell drops the settle decision's kApplyState action: sessions
  /// never leave kChallengeSent, so a challenge stays consumable.
  bool drop_settle_apply = false;
  /// The signature replay cache is never consulted.
  bool skip_replay_screen = false;

  bool any() const {
    return skip_crypto_verify || drop_settle_apply || skip_replay_screen;
  }
};

// ---- transition function ---------------------------------------------

struct StepOutcome {
  World next;
  /// The action changed nothing (e.g. a delivered frame the receiver
  /// discards and everyone already knew). Self-loops are skipped by the
  /// checker.
  bool changed = false;
  Invariant violated = Invariant::kNone;
};

/// Applies one action to the world. Pure: same (world, action, bugs) ->
/// same outcome. SP decisions run through proto::sp_* and client
/// filtering through proto::client_classify_rx -- the deployed logic.
StepOutcome step_world(const World& world, Action action,
                       const SeededBugs& bugs);

/// Enumerates every action available to the scheduler/attacker in
/// `world`, in a fixed deterministic order, into `out` (capacity must be
/// >= kMaxActions). Returns the count.
inline constexpr std::size_t kMaxActions =
    4 + kFrameCount * 2;  // client steps + both delivery directions
std::size_t enumerate_actions(const World& world, Action* out);

/// The initial world: empty tables, idle client, attacker knowing only
/// the public begin frames' shapes (EnrollBegin and TxSubmit carry no
/// secret and are always craftable; they are not knowledge-gated).
World initial_world();

}  // namespace tp::model
