#include "model/protocol_model.h"

#include "proto/client_core.h"
#include "proto/reject_code.h"
#include "proto/session_fsm.h"

namespace tp::model {

namespace {

using proto::SessionEvent;
using proto::SessionPhase;
using proto::SessionState;

SessionState to_state(std::uint8_t s) { return static_cast<SessionState>(s); }

/// Mutable handles on one of the SP's two session slots, so the enroll
/// and confirm paths share one implementation.
struct Slot {
  std::uint8_t* state;
  std::uint8_t* nonce;
  std::uint8_t* req;
  std::uint8_t* resp;
};

Slot enroll_slot(World& w) {
  return {&w.enroll_state, &w.enroll_nonce, &w.enroll_req, &w.enroll_resp};
}
Slot tx_slot(World& w) {
  return {&w.tx_state, &w.tx_nonce, &w.tx_req, &w.tx_resp};
}

/// The slot's cached-response view against an incoming request digest --
/// the same shape sp::ServiceProvider::replay_view builds from its
/// SessionTable entry.
proto::SpReplayView replay_view(const Slot& s, std::uint8_t digest) {
  proto::SpReplayView v;
  v.session_found = *s.state != kNoSession;
  if (!v.session_found) return v;
  v.live_challenge = to_state(*s.state) == SessionState::kChallengeSent;
  v.terminal = proto::session_state_terminal(to_state(*s.state));
  v.digest_matches = *s.req == digest;
  v.has_response = *s.resp != kNoFrame;
  return v;
}

proto::SpSessionView session_view(const Slot& s) {
  proto::SpSessionView v;
  v.found = *s.state != kNoSession;
  // Time never passes in the model, so a slot is never deadline-collected
  // (expiry interleavings are the chaos suite's job).
  v.deadline_passed = false;
  v.state = v.found ? to_state(*s.state) : SessionState::kIdle;
  return v;
}

/// EnrollBegin / TxSubmit against the SP.
void sp_handle_begin(World& w, SessionPhase phase) {
  Slot s = phase == SessionPhase::kEnroll ? enroll_slot(w) : tx_slot(w);
  const std::uint8_t digest = phase == SessionPhase::kEnroll
                                  ? kFrameEnrollBegin
                                  : kFrameTxSubmit;
  if (proto::sp_screen_begin_retransmit(replay_view(s, digest)) ==
      proto::SpRetransmit::kReplayResponse) {
    w.learn(*s.resp);
    return;
  }
  std::uint8_t& next = phase == SessionPhase::kEnroll ? w.next_enroll_nonce
                                                      : w.next_tx_nonce;
  const std::uint8_t pool =
      phase == SessionPhase::kEnroll ? kEnrollNoncePool : kTxNoncePool;
  if (next >= pool) return;  // nonce pool exhausted: bounds the space
  const proto::SpBegin decision = proto::sp_begin(phase);
  *s.state = static_cast<std::uint8_t>(decision.next_state);
  *s.nonce = next++;  // the DRBG never repeats a challenge
  *s.req = digest;
  const std::uint8_t resp =
      phase == SessionPhase::kEnroll
          ? static_cast<std::uint8_t>(kFrameEnrollChallenge0 + *s.nonce)
          : static_cast<std::uint8_t>(kFrameTxChallenge0 + *s.nonce);
  *s.resp = resp;
  w.learn(resp);
}

/// EnrollComplete against the SP: retransmit screen, gate, screen,
/// symbolic evidence check, settle -- the shell's exact pipeline.
Invariant sp_handle_enroll_complete(World& w, std::uint8_t frame,
                                    const SeededBugs& bugs) {
  Slot s = enroll_slot(w);
  switch (proto::sp_screen_complete_retransmit(replay_view(s, frame))) {
    case proto::SpRetransmit::kReplayResponse:
      w.learn(*s.resp);
      return Invariant::kNone;
    case proto::SpRetransmit::kRetryMismatch:
      w.learn(kFrameEnrollResultReject);
      return Invariant::kNone;
    case proto::SpRetransmit::kProcess:
      break;
  }
  const proto::SpGate gate =
      proto::sp_gate_complete(SessionPhase::kEnroll, session_view(s));
  if (gate.state_valid) {
    *s.state = static_cast<std::uint8_t>(gate.next_state);
  }
  if (!gate.session_live) {
    w.learn(kFrameEnrollResultReject);
    return Invariant::kNone;
  }
  // Enrollment's screen runs on defaults: its only gate is the evidence
  // check (same as the shell).
  const proto::SpScreen screen =
      proto::sp_screen_complete(proto::SpCompleteFacts{});
  const bool genuine =
      frame >= kFrameEnrollCompleteGenuine0 &&
      frame < kFrameEnrollCompleteGenuine0 + kEnrollNoncePool;
  const std::uint8_t bound_nonce =
      genuine ? static_cast<std::uint8_t>(frame - kFrameEnrollCompleteGenuine0)
              : kNoNonce;
  const bool evidence_ok =
      bugs.skip_crypto_verify || (genuine && bound_nonce == *s.nonce);

  proto::SpSettleInput in;
  in.state = to_state(*s.state);
  in.session_live = true;
  in.session_found = true;
  in.need_verify = screen.need_verify;
  in.verify_ok = evidence_ok;
  in.pre_reject = screen.reject;
  in.idempotent = true;
  const proto::SpSettle settle =
      proto::sp_settle_complete(SessionPhase::kEnroll, in);
  if (settle.state_valid && !bugs.drop_settle_apply) {
    *s.state = static_cast<std::uint8_t>(settle.next_state);
  }
  Invariant violated = Invariant::kNone;
  std::uint8_t resp = kFrameEnrollResultReject;
  if (settle.accepted) {
    w.enrolled = 1;
    resp = kFrameEnrollResultOk;
    if (!(genuine && bound_nonce == w.enroll_nonce)) {
      violated = Invariant::kNoUnattestedEnroll;
    }
  }
  *s.req = frame;
  *s.resp = resp;
  w.learn(resp);
  return violated;
}

/// TxConfirm against the SP.
Invariant sp_handle_tx_confirm(World& w, std::uint8_t frame,
                               const SeededBugs& bugs) {
  Slot s = tx_slot(w);
  switch (proto::sp_screen_complete_retransmit(replay_view(s, frame))) {
    case proto::SpRetransmit::kReplayResponse:
      w.learn(*s.resp);
      return Invariant::kNone;
    case proto::SpRetransmit::kRetryMismatch:
      w.learn(kFrameTxResultReject);
      return Invariant::kNone;
    case proto::SpRetransmit::kProcess:
      break;
  }
  const proto::SpGate gate =
      proto::sp_gate_complete(SessionPhase::kConfirm, session_view(s));
  if (gate.state_valid) {
    *s.state = static_cast<std::uint8_t>(gate.next_state);
  }
  if (!gate.session_live) {
    w.learn(kFrameTxResultReject);
    return Invariant::kNone;
  }
  const std::uint8_t sig = tx_confirm_sig(frame);
  proto::SpCompleteFacts facts;
  facts.client_matches = true;  // one client; splicing ids is out of scope
  facts.require_trusted_path = true;
  facts.enrolled = w.enrolled != 0;
  facts.verdict = tx_confirm_rejected(frame)
                      ? proto::SpCompleteFacts::Verdict::kRejected
                      : proto::SpCompleteFacts::Verdict::kConfirmed;
  facts.signature_replayed = !bugs.skip_replay_screen &&
                             sig < kTxNoncePool &&
                             ((w.replay_mask >> sig) & 1u) != 0;
  const proto::SpScreen screen = proto::sp_screen_complete(facts);
  // Symbolic crypto port: a signature verifies iff it is genuine and
  // binds exactly the challenge this session issued.
  const bool sig_ok =
      bugs.skip_crypto_verify || (sig < kTxNoncePool && sig == *s.nonce);

  proto::SpSettleInput in;
  in.state = to_state(*s.state);
  in.session_live = true;
  in.session_found = true;
  in.need_verify = screen.need_verify;
  in.verify_ok = sig_ok;
  in.pre_reject = screen.reject;
  in.verify_reject = proto::RejectCode::kBadSignature;
  in.idempotent = true;
  const proto::SpSettle settle =
      proto::sp_settle_complete(SessionPhase::kConfirm, in);
  if (settle.state_valid && !bugs.drop_settle_apply) {
    *s.state = static_cast<std::uint8_t>(settle.next_state);
  }
  Invariant violated = Invariant::kNone;
  std::uint8_t resp = kFrameTxResultReject;
  if (settle.accepted) {
    resp = kFrameTxResultOk;
    if (settle.record_signature && sig < kTxNoncePool) {
      w.replay_mask = static_cast<std::uint8_t>(w.replay_mask | (1u << sig));
    }
    const std::uint8_t nonce = w.tx_nonce;  // live session => in-pool
    if (w.accepts(nonce) >= 1) violated = Invariant::kTxExactlyOnce;
    if (w.accepts(nonce) < 3) {
      w.accept_counts =
          static_cast<std::uint8_t>(w.accept_counts + (1u << (2 * nonce)));
    }
    if (violated == Invariant::kNone &&
        !(sig < kTxNoncePool && sig == nonce &&
          ((w.c_signed_mask >> sig) & 1u) != 0)) {
      violated = Invariant::kNoForgedConfirm;
    }
  }
  *s.req = frame;
  *s.resp = resp;
  w.learn(resp);
  return violated;
}

Invariant sp_handle(World& w, std::uint8_t frame, const SeededBugs& bugs) {
  if (frame == kFrameEnrollBegin) {
    sp_handle_begin(w, SessionPhase::kEnroll);
    return Invariant::kNone;
  }
  if (frame == kFrameTxSubmit) {
    sp_handle_begin(w, SessionPhase::kConfirm);
    return Invariant::kNone;
  }
  if (frame >= kFrameEnrollCompleteGenuine0 &&
      frame <= kFrameEnrollCompleteGarbage) {
    return sp_handle_enroll_complete(w, frame, bugs);
  }
  if (frame >= kFrameTxConfirm0 && frame < kFrameTxResultOk) {
    return sp_handle_tx_confirm(w, frame, bugs);
  }
  // Response frames aimed at the SP: not a request, silently ignored
  // (the real frame demux answers a typed reject; neither changes SP
  // state, so the model folds them away).
  return Invariant::kNone;
}

/// What the honest client's exchange loop is waiting for right now.
enum class Await : std::uint8_t {
  kNothing,  // idle, terminal, or the human is mid-decision (not draining)
  kEnrollChallenge,
  kEnrollResult,
  kTxChallenge,
  kTxResult,
};

Await client_await(const World& w) {
  if (to_state(w.c_enroll_fsm) == SessionState::kChallengeSent) {
    return w.c_enroll_nonce == kNoNonce ? Await::kEnrollChallenge
                                        : Await::kEnrollResult;
  }
  if (to_state(w.c_tx_fsm) == SessionState::kChallengeSent) {
    if (w.c_tx_nonce == kNoNonce) return Await::kTxChallenge;
    if ((w.c_flags & kClientVerdictGiven) != 0) return Await::kTxResult;
  }
  return Await::kNothing;
}

bool frame_matches(Await await, std::uint8_t frame) {
  switch (await) {
    case Await::kNothing:
      return false;
    case Await::kEnrollChallenge:
      return frame >= kFrameEnrollChallenge0 &&
             frame < kFrameEnrollChallenge0 + kEnrollNoncePool;
    case Await::kEnrollResult:
      return frame == kFrameEnrollResultOk || frame == kFrameEnrollResultReject;
    case Await::kTxChallenge:
      return frame >= kFrameTxChallenge0 &&
             frame < kFrameTxChallenge0 + kTxNoncePool;
    case Await::kTxResult:
      return frame == kFrameTxResultOk || frame == kFrameTxResultReject;
  }
  return false;
}

void client_handle(World& w, std::uint8_t frame) {
  const Await await = client_await(w);
  if (await == Await::kNothing) return;  // not draining the link
  // The exchange loop's acceptance filter -- the deployed decision
  // function from proto/client_core.h. Symbolic frames are always
  // well-formed; a corrupted frame is just a garbage symbol.
  proto::ClientRxEvent rx;
  rx.delivered = true;
  rx.link_exhausted = false;
  rx.want_type = frame_matches(await, frame);
  rx.well_formed = true;
  if (proto::client_classify_rx(rx) != proto::ClientRxDecision::kAccept) {
    return;  // stale/foreign frame: discard and keep draining
  }
  switch (await) {
    case Await::kNothing:
      return;
    case Await::kEnrollChallenge: {
      // Attest the challenge and answer. The emission is legal iff the
      // shared FSM demands kVerify here -- same table the client runs.
      const proto::Step st =
          proto::step(SessionPhase::kEnroll, SessionState::kChallengeSent,
                      SessionEvent::kComplete);
      if (st.action != proto::SessionAction::kVerify) return;
      w.c_enroll_fsm = static_cast<std::uint8_t>(st.next);
      w.c_enroll_nonce =
          static_cast<std::uint8_t>(frame - kFrameEnrollChallenge0);
      w.learn(static_cast<std::uint8_t>(kFrameEnrollCompleteGenuine0 +
                                        w.c_enroll_nonce));
      return;
    }
    case Await::kEnrollResult: {
      const bool ok = frame == kFrameEnrollResultOk;
      const proto::Step st =
          proto::step(SessionPhase::kEnroll, to_state(w.c_enroll_fsm),
                      ok ? SessionEvent::kVerifyOk : SessionEvent::kVerifyFail);
      w.c_enroll_fsm = static_cast<std::uint8_t>(st.next);
      if (ok) w.c_flags = static_cast<std::uint8_t>(w.c_flags | kClientEnrolled);
      return;
    }
    case Await::kTxChallenge:
      // Hand the challenge to the human; the verdict is a separate
      // scheduler action (kClientConfirm / kClientReject).
      w.c_tx_nonce = static_cast<std::uint8_t>(frame - kFrameTxChallenge0);
      return;
    case Await::kTxResult: {
      const bool ok = frame == kFrameTxResultOk;
      const proto::Step st =
          proto::step(SessionPhase::kConfirm, to_state(w.c_tx_fsm),
                      ok ? SessionEvent::kVerifyOk : SessionEvent::kVerifyFail);
      w.c_tx_fsm = static_cast<std::uint8_t>(st.next);
      w.c_flags = static_cast<std::uint8_t>(w.c_flags | kClientTxSettled);
      return;
    }
  }
}

}  // namespace

std::string frame_name(std::uint8_t frame) {
  if (frame == kFrameEnrollBegin) return "EnrollBegin";
  if (frame >= kFrameEnrollChallenge0 &&
      frame < kFrameEnrollChallenge0 + kEnrollNoncePool) {
    return "EnrollChallenge(n" +
           std::to_string(frame - kFrameEnrollChallenge0) + ")";
  }
  if (frame >= kFrameEnrollCompleteGenuine0 &&
      frame < kFrameEnrollCompleteGenuine0 + kEnrollNoncePool) {
    return "EnrollComplete(quote:n" +
           std::to_string(frame - kFrameEnrollCompleteGenuine0) + ")";
  }
  if (frame == kFrameEnrollCompleteGarbage) return "EnrollComplete(garbage)";
  if (frame == kFrameEnrollResultOk) return "EnrollResult(ok)";
  if (frame == kFrameEnrollResultReject) return "EnrollResult(reject)";
  if (frame == kFrameTxSubmit) return "TxSubmit";
  if (frame >= kFrameTxChallenge0 &&
      frame < kFrameTxChallenge0 + kTxNoncePool) {
    return "TxChallenge(m" + std::to_string(frame - kFrameTxChallenge0) + ")";
  }
  if (frame >= kFrameTxConfirm0 && frame < kFrameTxResultOk) {
    const std::uint8_t sig = tx_confirm_sig(frame);
    const std::string verdict =
        tx_confirm_rejected(frame) ? "rejected" : "confirmed";
    if (sig == kSigGarbage) {
      return "TxConfirm(" +
             (tx_confirm_rejected(frame) ? std::string("none")
                                         : std::string("garbage")) +
             "," + verdict + ")";
    }
    return "TxConfirm(sig:m" + std::to_string(sig) + "," + verdict + ")";
  }
  if (frame == kFrameTxResultOk) return "TxResult(ok)";
  if (frame == kFrameTxResultReject) return "TxResult(reject)";
  return "?";
}

const char* action_kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kClientStart: return "client: begin enrollment";
    case ActionKind::kClientSubmitTx: return "client: submit transaction";
    case ActionKind::kClientConfirm: return "human: confirm challenge";
    case ActionKind::kClientReject: return "human: reject challenge";
    case ActionKind::kDeliverToSp: return "attacker: deliver to SP";
    case ActionKind::kDeliverToClient: return "attacker: deliver to client";
  }
  return "?";
}

const char* invariant_name(Invariant invariant) {
  switch (invariant) {
    case Invariant::kNone: return "none";
    case Invariant::kTxExactlyOnce: return "tx-exactly-once";
    case Invariant::kNoForgedConfirm: return "no-forged-confirm";
    case Invariant::kNoUnattestedEnroll: return "no-unattested-enroll";
  }
  return "?";
}

World initial_world() {
  World w;
  // The begin frames carry no secret (a client id is public); the
  // attacker can craft them from the start. Pre-marking them known keeps
  // "the client sent one" and "the attacker crafted one" from splitting
  // otherwise-identical states.
  w.learn(kFrameEnrollBegin);
  w.learn(kFrameTxSubmit);
  return w;
}

std::size_t enumerate_actions(const World& w, Action* out) {
  std::size_t n = 0;
  // Honest-party moves first, then deliveries in frame order: a fixed
  // total order makes every exploration deterministic.
  // The client (re)starts enrollment from idle or after a refused
  // attempt, and submits a fresh transaction whenever no exchange is in
  // flight -- the shared FSM's kBegin edge covers both (a real client
  // makes many transactions).
  if (to_state(w.c_enroll_fsm) == SessionState::kIdle ||
      to_state(w.c_enroll_fsm) == SessionState::kFailed) {
    out[n++] = {ActionKind::kClientStart, kNoFrame};
  }
  if ((w.c_flags & kClientEnrolled) != 0 &&
      to_state(w.c_tx_fsm) != SessionState::kChallengeSent) {
    out[n++] = {ActionKind::kClientSubmitTx, kNoFrame};
  }
  if (to_state(w.c_tx_fsm) == SessionState::kChallengeSent &&
      w.c_tx_nonce != kNoNonce && (w.c_flags & kClientVerdictGiven) == 0) {
    out[n++] = {ActionKind::kClientConfirm, kNoFrame};
    out[n++] = {ActionKind::kClientReject, kNoFrame};
  }
  // Deliveries to the SP: begins and garbage are always craftable;
  // genuine evidence and signatures only once observed on the wire.
  out[n++] = {ActionKind::kDeliverToSp, kFrameEnrollBegin};
  for (std::uint8_t i = 0; i < kEnrollNoncePool; ++i) {
    const auto f =
        static_cast<std::uint8_t>(kFrameEnrollCompleteGenuine0 + i);
    if (w.knows(f)) out[n++] = {ActionKind::kDeliverToSp, f};
  }
  out[n++] = {ActionKind::kDeliverToSp, kFrameEnrollCompleteGarbage};
  out[n++] = {ActionKind::kDeliverToSp, kFrameTxSubmit};
  for (std::uint8_t sig = 0; sig < kTxNoncePool; ++sig) {
    // The verdict byte is plaintext: knowing a signature under either
    // verdict lets the attacker splice it onto both.
    if (w.knows(tx_confirm_frame(sig, 0)) ||
        w.knows(tx_confirm_frame(sig, 1))) {
      out[n++] = {ActionKind::kDeliverToSp, tx_confirm_frame(sig, 0)};
      out[n++] = {ActionKind::kDeliverToSp, tx_confirm_frame(sig, 1)};
    }
  }
  out[n++] = {ActionKind::kDeliverToSp, tx_confirm_frame(kSigGarbage, 0)};
  out[n++] = {ActionKind::kDeliverToSp, tx_confirm_frame(kSigGarbage, 1)};
  // Deliveries to the client: any observed response frame (challenges
  // and results are unforgeable -- minting one needs the SP identity the
  // secure transport pins -- but replayable at will).
  const auto to_client = [&](std::uint8_t f) {
    if (w.knows(f)) out[n++] = {ActionKind::kDeliverToClient, f};
  };
  for (std::uint8_t i = 0; i < kEnrollNoncePool; ++i) {
    to_client(static_cast<std::uint8_t>(kFrameEnrollChallenge0 + i));
  }
  to_client(kFrameEnrollResultOk);
  to_client(kFrameEnrollResultReject);
  for (std::uint8_t i = 0; i < kTxNoncePool; ++i) {
    to_client(static_cast<std::uint8_t>(kFrameTxChallenge0 + i));
  }
  to_client(kFrameTxResultOk);
  to_client(kFrameTxResultReject);
  return n;
}

StepOutcome step_world(const World& world, Action action,
                       const SeededBugs& bugs) {
  StepOutcome out;
  out.next = world;
  World& w = out.next;
  switch (action.kind) {
    case ActionKind::kClientStart: {
      const proto::Step st = proto::step(
          SessionPhase::kEnroll, to_state(w.c_enroll_fsm), SessionEvent::kBegin);
      if (st.action == proto::SessionAction::kSendChallenge) {
        w.c_enroll_fsm = static_cast<std::uint8_t>(st.next);
        w.c_enroll_nonce = kNoNonce;  // fresh exchange awaits its challenge
        w.learn(kFrameEnrollBegin);
      }
      break;
    }
    case ActionKind::kClientSubmitTx: {
      const proto::Step st = proto::step(
          SessionPhase::kConfirm, to_state(w.c_tx_fsm), SessionEvent::kBegin);
      if (st.action == proto::SessionAction::kSendChallenge) {
        w.c_tx_fsm = static_cast<std::uint8_t>(st.next);
        w.c_tx_nonce = kNoNonce;  // fresh exchange: new challenge, new verdict
        w.c_flags = static_cast<std::uint8_t>(
            w.c_flags & ~(kClientVerdictGiven | kClientTxSettled));
        w.learn(kFrameTxSubmit);
      }
      break;
    }
    case ActionKind::kClientConfirm:
    case ActionKind::kClientReject: {
      const proto::Step st =
          proto::step(SessionPhase::kConfirm, to_state(w.c_tx_fsm),
                      SessionEvent::kComplete);
      if (st.action != proto::SessionAction::kVerify) break;
      w.c_tx_fsm = static_cast<std::uint8_t>(st.next);
      w.c_flags = static_cast<std::uint8_t>(w.c_flags | kClientVerdictGiven);
      if (action.kind == ActionKind::kClientConfirm) {
        // The human confirmed: the device signs exactly this challenge.
        w.c_signed_mask =
            static_cast<std::uint8_t>(w.c_signed_mask | (1u << w.c_tx_nonce));
        w.learn(tx_confirm_frame(w.c_tx_nonce, 0));
      } else {
        // Rejected confirmations carry no signature.
        w.learn(tx_confirm_frame(kSigGarbage, 1));
      }
      break;
    }
    case ActionKind::kDeliverToSp:
      out.violated = sp_handle(w, action.frame, bugs);
      break;
    case ActionKind::kDeliverToClient:
      client_handle(w, action.frame);
      break;
  }
  out.changed = !(out.next == world);
  return out;
}

}  // namespace tp::model
