#include "cluster/verifier_cluster.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/log.h"

namespace tp::cluster {

namespace {

using Clock = std::chrono::steady_clock;

ClusterConfig validated(ClusterConfig config) {
  if (config.num_shards == 0) {
    throw std::invalid_argument(
        "ClusterConfig::num_shards must be >= 1 (a cluster with no shards "
        "cannot own any client)");
  }
  return config;
}

}  // namespace

VerifierCluster::VerifierCluster(ClusterConfig config)
    : config_(validated(std::move(config))),
      epoch_(Clock::now()),
      router_(config_.virtual_nodes) {
  if (config_.metrics != nullptr) {
    registry_ = config_.metrics;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  c_remapped_keys_ = &registry_->counter("cluster.remapped_keys");
  c_handoff_sessions_ = &registry_->counter("cluster.handoff_sessions");
  c_handoff_replay_keys_ =
      &registry_->counter("cluster.handoff_replay_keys");
  c_parked_frames_ = &registry_->counter("cluster.parked_frames");
  c_rebalances_ = &registry_->counter("cluster.rebalances");
  c_shard_restarts_ = &registry_->counter("cluster.shard_restarts");

  members_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    router_.add_shard(id);
    members_.push_back(make_member(id));
  }
  next_shard_id_ = static_cast<std::uint32_t>(config_.num_shards);
}

VerifierCluster::~VerifierCluster() { drain(); }

store::DurableLog* VerifierCluster::log_for(std::uint32_t id) {
  if (!durable()) return nullptr;
  auto it = logs_.find(id);
  if (it != logs_.end()) return it->second.get();
  auto backend = config_.durable_backend_factory(id);
  if (backend == nullptr) {
    throw std::invalid_argument(
        "ClusterConfig::durable_backend_factory returned nullptr for shard " +
        std::to_string(id));
  }
  store::DurableLogConfig log_config;
  log_config.backend = backend.get();
  log_config.compact_journal_bytes = config_.compact_journal_bytes;
  auto log = std::make_unique<store::DurableLog>(log_config);
  store::DurableLog* raw = log.get();
  backends_.emplace(id, std::move(backend));
  logs_.emplace(id, std::move(log));
  return raw;
}

std::unique_ptr<VerifierCluster::Member> VerifierCluster::make_member(
    std::uint32_t id) {
  auto member = std::make_unique<Member>();
  member->id = id;
  svc::SvcConfig svc_config = config_.svc;
  // One SP per cluster shard: the shard is the unit of parallelism, and
  // handoff stays exact because key ownership decides placement (an
  // inner hash router would need client-id strings a bundle lacks).
  svc_config.num_workers = 1;
  // Member-private registry: per-shard stats must not alias across
  // members (every service names its inner SP "sp.shard0").
  svc_config.metrics = nullptr;
  svc_config.sp.metrics = nullptr;
  // Shared timeline: a deadline exported by one shard means the same
  // instant on every other.
  svc_config.epoch = epoch_;
  // Distinct nonce stream per shard.
  svc_config.sp.seed = concat(
      svc_config.sp.seed, bytes_of(":cluster-shard" + std::to_string(id)));
  // Disjoint tx-id spaces (2^40 ids each): a confirmation session moved
  // by handoff can never collide with an id its new owner issues.
  svc_config.sp.tx_id_base = (static_cast<std::uint64_t>(id) + 1) << 40;
  // Durable mode: wire this id's cluster-owned DurableLog in (the SP
  // constructor recovers snapshot + journal through it, which is what
  // makes restart_shard a rebuild rather than a state loss). Overrides
  // whatever the template carried -- one log must never serve two SPs.
  svc_config.sp.durable = log_for(id);
  member->service =
      std::make_unique<svc::VerifierService>(std::move(svc_config));
  return member;
}

VerifierCluster::Member& VerifierCluster::member(std::uint32_t id) {
  for (auto& m : members_) {
    if (m->id == id) return *m;
  }
  throw std::invalid_argument("unknown cluster shard id " +
                              std::to_string(id));
}

const VerifierCluster::Member& VerifierCluster::member(
    std::uint32_t id) const {
  for (const auto& m : members_) {
    if (m->id == id) return *m;
  }
  throw std::invalid_argument("unknown cluster shard id " +
                              std::to_string(id));
}

void VerifierCluster::start() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& m : members_) m->service->start();
}

void VerifierCluster::drain() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& m : members_) m->service->drain();
}

std::size_t VerifierCluster::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return members_.size();
}

std::vector<std::uint32_t> VerifierCluster::shard_ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return router_.shard_ids();
}

std::uint32_t VerifierCluster::shard_for(std::string_view client_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return router_.shard_for(client_id);
}

svc::VerifierService& VerifierCluster::shard_service(std::uint32_t shard_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return *member(shard_id).service;
}

sp::ServiceProvider& VerifierCluster::shard_sp(std::uint32_t shard_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return member(shard_id).service->shard_sp(0);
}

std::future<svc::SvcResponse> VerifierCluster::submit(
    const std::string& client_id, Bytes frame) {
  for (;;) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_, std::try_to_lock);
      if (lock.owns_lock()) {
        return member(router_.shard_for(client_id))
            .service->submit(client_id, std::move(frame));
      }
    }
    // Router locked exclusively: a rebalance is (probably) in flight.
    // Park the frame under park_mu_ -- the rebalancer collects the list
    // under the same lock before clearing the flag, so a parked frame is
    // always replayed. If the flag is already clear the rebalance just
    // ended (or the try-lock failed spuriously); retry the normal path.
    {
      std::lock_guard<std::mutex> g(park_mu_);
      if (rebalance_active_.load(std::memory_order_acquire)) {
        ParkedFrame parked;
        parked.client_id = client_id;
        parked.frame = std::move(frame);
        std::future<svc::SvcResponse> future = parked.promise.get_future();
        parked_.push_back(std::move(parked));
        c_parked_frames_->inc();
        return future;
      }
    }
    std::this_thread::yield();
  }
}

svc::SvcResponse VerifierCluster::call(const std::string& client_id,
                                       BytesView frame) {
  return submit(client_id, Bytes(frame.begin(), frame.end())).get();
}

void VerifierCluster::set_rebalance_active(bool active) {
  std::lock_guard<std::mutex> g(park_mu_);
  rebalance_active_.store(active, std::memory_order_release);
}

void VerifierCluster::migrate_to(const ConsistentHashRouter& next) {
  std::uint64_t remapped = 0;
  std::uint64_t sessions = 0;
  std::uint64_t replay = 0;
  for (auto& src : members_) {
    for (auto& dst : members_) {
      if (src->id == dst->id || !next.has_shard(dst->id)) continue;
      sp::HandoffBundle bundle =
          src->service->shard_sp(0).extract_for_handoff(
              [&](const proto::SessionTable::Key& key) {
                return next.shard_for_point(
                           ConsistentHashRouter::point_of_key(key)) ==
                       dst->id;
              });
      // Nothing of this source's moved to this destination: skip the
      // import (it would only copy the replay-digest superset around).
      if (bundle.enrolled.empty() && bundle.session_count() == 0 &&
          bundle.dedup.empty()) {
        continue;
      }
      remapped += bundle.enrolled.size();
      sessions += bundle.session_count();
      replay += bundle.replay_digests.size();
      dst->service->shard_sp(0).import_handoff(std::move(bundle));
    }
  }
  c_remapped_keys_->inc(remapped);
  c_handoff_sessions_->inc(sessions);
  c_handoff_replay_keys_->inc(replay);

  if (durable()) {
    // Handoff mutated members outside the journaled frame path. While
    // everything is still drained, snapshot each member so no shard's
    // stale journal can resurrect sessions its SP just handed off (or
    // miss the ones it just imported).
    for (auto& m : members_) m->service->shard_sp(0).checkpoint();
  }
}

void VerifierCluster::kill_shard(std::uint32_t shard_id,
                                 std::uint64_t at_bytes) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = backends_.find(shard_id);
  if (it == backends_.end()) {
    throw std::invalid_argument(
        "kill_shard: shard " + std::to_string(shard_id) +
        " has no durable backend (durable mode off, or unknown id)");
  }
  if (!it->second->supports_crash_injection()) {
    throw std::invalid_argument(
        "kill_shard: shard " + std::to_string(shard_id) +
        "'s storage backend does not support crash injection");
  }
  it->second->crash_at_bytes(at_bytes);
}

bool VerifierCluster::shard_crashed(std::uint32_t shard_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return member(shard_id).service->crashed();
}

store::StorageBackend& VerifierCluster::shard_backend(
    std::uint32_t shard_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = backends_.find(shard_id);
  if (it == backends_.end()) {
    throw std::invalid_argument(
        "shard " + std::to_string(shard_id) +
        " has no durable backend (durable mode off, or unknown id)");
  }
  return *it->second;
}

void VerifierCluster::restart_shard(std::uint32_t shard_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!durable()) {
    throw std::invalid_argument(
        "restart_shard requires durable mode (set "
        "ClusterConfig::durable_backend_factory)");
  }
  member(shard_id);  // unknown ids throw before we stop the world
  set_rebalance_active(true);
  // Live shards finish their queues normally; a crashed shard's worker
  // fails its remainder with kShutdown (those senders retry and land in
  // the parked list or on the rebuilt shard).
  for (auto& m : members_) m->service->drain();

  auto backend_it = backends_.find(shard_id);
  if (backend_it != backends_.end() &&
      backend_it->second->supports_crash_injection()) {
    backend_it->second->clear_crash_point();
  }
  for (auto& m : members_) {
    if (m->id != shard_id) continue;
    // Destroy before rebuilding: one DurableLog serves one SP, and the
    // fresh SP's constructor recovers snapshot + journal through it.
    m.reset();
    m = make_member(shard_id);
    break;
  }

  for (auto& m : members_) m->service->start();
  c_shard_restarts_->inc();
  publish_gauges_locked();
  TP_LOG(kInfo, "cluster")
      << "shard " << shard_id << " restarted from its journal ("
      << c_shard_restarts_->value() << " restarts so far)";

  std::vector<ParkedFrame> parked;
  {
    std::lock_guard<std::mutex> g(park_mu_);
    rebalance_active_.store(false, std::memory_order_release);
    parked.swap(parked_);
  }
  lock.unlock();
  replay_parked(std::move(parked));
}

std::uint32_t VerifierCluster::add_shard() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  set_rebalance_active(true);
  // Queued frames finish on their old owner against pre-move state --
  // processed exactly once, equivalent to re-routing them.
  for (auto& m : members_) m->service->drain();

  const std::uint32_t id = next_shard_id_++;
  ConsistentHashRouter next = router_;
  next.add_shard(id);
  members_.push_back(make_member(id));
  migrate_to(next);
  router_ = std::move(next);

  for (auto& m : members_) m->service->start();
  c_rebalances_->inc();
  publish_gauges_locked();
  TP_LOG(kInfo, "cluster") << "shard " << id << " joined ("
                           << members_.size() << " shards, "
                           << c_handoff_sessions_->value()
                           << " sessions handed off so far)";

  std::vector<ParkedFrame> parked;
  {
    std::lock_guard<std::mutex> g(park_mu_);
    rebalance_active_.store(false, std::memory_order_release);
    parked.swap(parked_);
  }
  lock.unlock();
  replay_parked(std::move(parked));
  return id;
}

void VerifierCluster::remove_shard(std::uint32_t shard_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!router_.has_shard(shard_id)) {
    throw std::invalid_argument("unknown cluster shard id " +
                                std::to_string(shard_id));
  }
  if (router_.num_shards() == 1) {
    throw std::invalid_argument(
        "cannot remove the last cluster shard (its clients would have no "
        "owner)");
  }
  set_rebalance_active(true);
  for (auto& m : members_) m->service->drain();

  ConsistentHashRouter next = router_;
  next.remove_shard(shard_id);
  migrate_to(next);
  router_ = std::move(next);
  members_.erase(std::find_if(members_.begin(), members_.end(),
                              [shard_id](const std::unique_ptr<Member>& m) {
                                return m->id == shard_id;
                              }));
  // Shard ids are never reused, so the departed id's storage is dead
  // weight (migrate_to just checkpointed its emptied state). The member
  // (and its SP, which held the log pointer) is already destroyed.
  logs_.erase(shard_id);
  backends_.erase(shard_id);

  for (auto& m : members_) m->service->start();
  c_rebalances_->inc();
  publish_gauges_locked();
  TP_LOG(kInfo, "cluster") << "shard " << shard_id << " left ("
                           << members_.size() << " shards remain)";

  std::vector<ParkedFrame> parked;
  {
    std::lock_guard<std::mutex> g(park_mu_);
    rebalance_active_.store(false, std::memory_order_release);
    parked.swap(parked_);
  }
  lock.unlock();
  replay_parked(std::move(parked));
}

void VerifierCluster::replay_parked(std::vector<ParkedFrame> parked) {
  for (ParkedFrame& p : parked) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    member(router_.shard_for(p.client_id))
        .service->submit_with_promise(p.client_id, std::move(p.frame),
                                      std::move(p.promise));
  }
}

sp::SpStats VerifierCluster::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  sp::SpStats total;
  for (const auto& m : members_) {
    const sp::SpStats s = m->service->stats();
    total.enrolled += s.enrolled;
    total.enroll_rejected += s.enroll_rejected;
    total.tx_accepted += s.tx_accepted;
    total.tx_rejected += s.tx_rejected;
    for (std::size_t i = 0; i < tpm::kNumQuoteFormats; ++i) {
      total.enrolled_by_format[i] += s.enrolled_by_format[i];
      total.tx_accepted_by_format[i] += s.tx_accepted_by_format[i];
    }
    for (std::size_t i = 0; i < proto::kRejectCodeCount; ++i) {
      total.rejects_by_code[i] += s.rejects_by_code[i];
    }
    total.sessions_evicted += s.sessions_evicted;
    total.sessions_expired += s.sessions_expired;
  }
  return total;
}

void VerifierCluster::publish_gauges() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  publish_gauges_locked();
}

void VerifierCluster::publish_gauges_locked() {
  for (const auto& m : members_) {
    sp::ServiceProvider& sp = m->service->shard_sp(0);
    const std::string prefix = "cluster.shard." + std::to_string(m->id);
    registry_->gauge(prefix + ".accepts")
        .set(static_cast<std::int64_t>(m->service->stats().tx_accepted));
    registry_->gauge(prefix + ".sessions")
        .set(static_cast<std::int64_t>(sp.session_table_occupancy()));
    registry_->gauge(prefix + ".enrolled")
        .set(static_cast<std::int64_t>(sp.enrolled_count()));
    registry_->gauge(prefix + ".queue_depth")
        .set(static_cast<std::int64_t>(m->service->queued()));
    registry_->gauge(prefix + ".memory_bytes")
        .set(static_cast<std::int64_t>(sp.memory_bytes()));
  }
}

}  // namespace tp::cluster
