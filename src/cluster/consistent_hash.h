// Consistent-hash routing for the verifier cluster.
//
// The single-process ShardRouter (svc/shard_router.h) maps client -> shard
// with `hash % N`: changing N remaps almost every client, which would turn
// every cluster resize into a full-state migration. This router hashes
// both shards and clients onto one 64-bit ring instead. Each shard owns
// `virtual_nodes` points ("vnodes"); a client belongs to the first vnode
// clockwise from its own point. Adding a shard therefore steals only the
// arcs its new vnodes land on -- in expectation K/N of the keys for N
// shards -- and removing one redistributes only the leaver's arcs. The
// vnode count trades lookup-table size against arc-length variance (the
// uniformity the cluster tests assert).
//
// Determinism is part of the contract: a client's point is derived from
// proto::SessionTable::client_key (truncated SHA-256 of the client id)
// and vnode points from SHA-256 of "ring:<shard>:<replica>", so routing
// is identical across processes, platforms and restarts -- no std::hash,
// whose distribution and stability are unspecified. Using the session-key
// digest for clients also means the router can place *state* it only
// knows by key: shard handoff bundles carry 16-byte session keys, not
// client-id strings, and ownership of a key is decidable from the key
// alone (shard_for_point(point_of_key(k))).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "proto/session_table.h"

namespace tp::cluster {

class ConsistentHashRouter {
 public:
  /// `virtual_nodes` is the number of ring points per shard (0 is
  /// clamped to 1). More vnodes -> smoother key distribution, linearly
  /// larger ring.
  explicit ConsistentHashRouter(std::size_t virtual_nodes = 64);

  /// Adds `shard_id`'s vnodes to the ring. No-op if already a member.
  void add_shard(std::uint32_t shard_id);
  /// Removes `shard_id`'s vnodes. No-op if not a member.
  void remove_shard(std::uint32_t shard_id);
  bool has_shard(std::uint32_t shard_id) const;

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t virtual_nodes() const { return virtual_nodes_; }
  /// Member shard ids, ascending.
  const std::vector<std::uint32_t>& shard_ids() const { return shards_; }

  /// Owner of `client_id`. The ring must be non-empty.
  std::uint32_t shard_for(std::string_view client_id) const {
    return shard_for_point(point_of(client_id));
  }
  /// Owner of a raw ring point (used to place handed-off state known
  /// only by its session key). The ring must be non-empty.
  std::uint32_t shard_for_point(std::uint64_t point) const;

  /// A client's ring point: the leading 8 bytes (big-endian) of its
  /// session key, i.e. of truncated SHA-256(client_id).
  static std::uint64_t point_of(std::string_view client_id) {
    return point_of_key(proto::SessionTable::client_key(client_id));
  }
  static std::uint64_t point_of_key(const proto::SessionTable::Key& key) {
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < 8; ++i) p = (p << 8) | key[i];
    return p;
  }

 private:
  struct VNode {
    std::uint64_t point = 0;
    std::uint32_t shard = 0;
  };

  std::size_t virtual_nodes_;
  std::vector<VNode> ring_;          // sorted by (point, shard)
  std::vector<std::uint32_t> shards_;  // sorted member ids
};

}  // namespace tp::cluster
