#include "cluster/consistent_hash.h"

#include <algorithm>
#include <string>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tp::cluster {

namespace {

std::uint64_t vnode_point(std::uint32_t shard, std::size_t replica) {
  // Deterministic across processes: vnode placement is part of the
  // routing contract, not an in-memory accident.
  const std::string label =
      "ring:" + std::to_string(shard) + ":" + std::to_string(replica);
  const crypto::Sha256Digest d = crypto::Sha256::digest(
      BytesView(reinterpret_cast<const std::uint8_t*>(label.data()),
                label.size()));
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < 8; ++i) p = (p << 8) | d[i];
  return p;
}

}  // namespace

ConsistentHashRouter::ConsistentHashRouter(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

void ConsistentHashRouter::add_shard(std::uint32_t shard_id) {
  if (has_shard(shard_id)) return;
  shards_.insert(
      std::lower_bound(shards_.begin(), shards_.end(), shard_id), shard_id);
  ring_.reserve(ring_.size() + virtual_nodes_);
  for (std::size_t r = 0; r < virtual_nodes_; ++r) {
    ring_.push_back(VNode{vnode_point(shard_id, r), shard_id});
  }
  // (point, shard) order: the shard tiebreak makes a (vanishingly rare)
  // point collision resolve identically everywhere.
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

void ConsistentHashRouter::remove_shard(std::uint32_t shard_id) {
  const auto member = std::lower_bound(shards_.begin(), shards_.end(),
                                       shard_id);
  if (member == shards_.end() || *member != shard_id) return;
  shards_.erase(member);
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard_id](const VNode& v) {
                               return v.shard == shard_id;
                             }),
              ring_.end());
}

bool ConsistentHashRouter::has_shard(std::uint32_t shard_id) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard_id);
}

std::uint32_t ConsistentHashRouter::shard_for_point(
    std::uint64_t point) const {
  // First vnode clockwise (>= point), wrapping to the ring's start.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& v, std::uint64_t p) { return v.point < p; });
  return it != ring_.end() ? it->shard : ring_.front().shard;
}

}  // namespace tp::cluster
