// Shared-nothing verifier cluster with consistent-hash routing and live
// shard handoff.
//
// One VerifierService scales the SP across worker threads inside a
// process; this layer scales across *shards that can join and leave*,
// which is what a deployment actually resizes. Each cluster shard is a
// complete vertical slice -- its own svc::VerifierService wrapping its
// own sp::ServiceProvider, bounded SessionTable / ReplayCache /
// SubmitDedup, and metrics -- so shards share no protocol state at all
// and the single-threaded SP correctness argument carries over verbatim.
// A ConsistentHashRouter gives every client a stable home shard and
// bounds resize churn to ~K/N keys (see consistent_hash.h).
//
// Rebalance is stop-the-world and state-preserving. add_shard():
//
//   1. Mark the rebalance active: new submits are *parked* (their
//      promises retained) instead of blocking or failing.
//   2. drain() every member service -- queued frames finish on their
//      old owner, which is equivalent to re-routing them (they are
//      processed exactly once, against pre-move state).
//   3. For every (source, destination) pair whose ownership changes
//      under the next ring, extract_for_handoff() pulls the moving
//      clients' sessions, verify contexts, dedup entries and the
//      source's replay digests; import_handoff() replays them into the
//      destination with deadlines, cached responses and exactly-once
//      guards intact.
//   4. Swap the ring, restart every service, then re-route the parked
//      frames through the new ring (their futures resolve exactly once).
//
// A client mid-exchange therefore survives its shard changing: a settled
// transaction's retransmit still replays the cached response on the new
// owner (no double-execution), a half-open challenge can still be
// completed there, and a replayed signature is still screened. The
// cluster chaos test drives all of this under ~26% fault injection.
//
// Durable mode adds a crash story on top. With a
// durable_backend_factory set, every shard id owns a StorageBackend +
// DurableLog that the *cluster* keeps across member incarnations: the
// shard's SP journals each settled mutation before replying (the
// write-ahead contract in src/store), kill_shard() arms a torn-write
// process death at an arbitrary journal offset, and restart_shard()
// rebuilds the member from snapshot + journal -- acked state survives,
// retransmits replay byte-identical cached responses, and exactly-once
// holds across process deaths, not just rebalances. Handoff and
// recovery share one serialization (store::ShardState), so migrate_to
// checkpoints durable members after every move: a shard's snapshot can
// never resurrect sessions that were handed off to another owner.
//
// Thread-safety: submit()/call()/stats() are safe from any thread,
// including concurrently with add_shard()/remove_shard(). Per-shard
// accessors (shard_service/shard_sp) and publish_gauges() follow the
// VerifierService rule: touch SP internals only while the cluster is
// quiesced (the rebalancer publishes gauges itself at every resize).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/consistent_hash.h"
#include "obs/metrics.h"
#include "store/durable_log.h"
#include "store/storage_backend.h"
#include "svc/verifier_service.h"

namespace tp::cluster {

struct ClusterConfig {
  /// Initial shard count (ids 0..num_shards-1). Must be >= 1; the
  /// constructor throws std::invalid_argument on 0.
  std::size_t num_shards = 4;
  /// Ring points per shard (consistent_hash.h); 0 is clamped to 1.
  std::size_t virtual_nodes = 64;
  /// Template for every member service. Two fields are overridden per
  /// member: num_workers is forced to 1 (a cluster shard IS the unit of
  /// parallelism -- one SP per shard keeps handoff exact, since bundles
  /// carry session keys, not the client-id strings an inner hash router
  /// would need), and metrics is pointed at a member-private registry so
  /// per-shard stats stay separable. The SP seed is mixed with the shard
  /// id, and every member gets a disjoint sp.tx_id_base so transaction
  /// ids are globally unique -- a moved confirmation session can never
  /// collide with an id its new owner issued itself.
  svc::SvcConfig svc;
  /// Cluster-level registry (router counters + per-shard gauges);
  /// nullptr -> the cluster owns a private one.
  obs::Registry* metrics = nullptr;
  /// Durable mode: when set, every shard id gets its own StorageBackend
  /// from this factory (called once per id; the cluster owns the result
  /// and keeps it across member incarnations, so a restarted shard
  /// recovers from the journal its predecessor wrote). nullptr (default)
  /// keeps shards in-memory-only -- kill_shard()/restart_shard() then
  /// throw. Any `svc.sp.durable` set on the template is ignored: the
  /// cluster wires each member's log itself.
  std::function<std::unique_ptr<store::StorageBackend>(std::uint32_t)>
      durable_backend_factory;
  /// Per-shard journal size that triggers snapshot compaction
  /// (DurableLogConfig::compact_journal_bytes); 0 disables automatic
  /// compaction. Only meaningful with durable_backend_factory set.
  std::uint64_t compact_journal_bytes = 1u << 20;
};

class VerifierCluster {
 public:
  /// Throws std::invalid_argument when config.num_shards == 0.
  explicit VerifierCluster(ClusterConfig config);
  ~VerifierCluster();

  VerifierCluster(const VerifierCluster&) = delete;
  VerifierCluster& operator=(const VerifierCluster&) = delete;

  /// Starts every member service. Idempotent.
  void start();
  /// Gracefully drains every member service.
  void drain();

  std::size_t num_shards() const;
  /// Member shard ids, ascending (ids are never reused).
  std::vector<std::uint32_t> shard_ids() const;
  std::uint32_t shard_for(std::string_view client_id) const;

  /// Routes the frame to its owner shard's service. During a rebalance
  /// the request is parked and re-routed afterwards; the future always
  /// resolves exactly once either way.
  std::future<svc::SvcResponse> submit(const std::string& client_id,
                                       Bytes frame);
  /// Synchronous convenience: submit and wait.
  svc::SvcResponse call(const std::string& client_id, BytesView frame);

  /// Adds a new shard (id = next unused), migrating the ~K/N keys the
  /// new ring assigns to it. Returns the new shard's id. Stop-the-world:
  /// concurrent submits are parked and replayed through the new ring.
  std::uint32_t add_shard();
  /// Drains `shard_id` out of the cluster, migrating every key it owns
  /// to the surviving shards. At least one shard must remain (throws
  /// std::invalid_argument otherwise; unknown ids throw too).
  void remove_shard(std::uint32_t shard_id);

  /// Member access for setup/inspection (quiesced only; see header).
  svc::VerifierService& shard_service(std::uint32_t shard_id);
  sp::ServiceProvider& shard_sp(std::uint32_t shard_id);

  /// Arms a process-death injection on `shard_id`'s storage backend:
  /// the journal append that crosses `at_bytes` (cumulative appended
  /// bytes, the backend's monotone axis -- see
  /// StorageBackend::appended_total) keeps only the prefix below the
  /// mark (a torn write) and kills the shard. Requires durable mode and
  /// a backend with crash-injection support (the in-memory test
  /// backend); throws std::invalid_argument otherwise. Safe while the
  /// cluster is serving.
  void kill_shard(std::uint32_t shard_id, std::uint64_t at_bytes);

  /// True once `shard_id`'s member service died on an armed crash.
  /// A crashed shard rejects everything with kShutdown until
  /// restart_shard() rebuilds it.
  bool shard_crashed(std::uint32_t shard_id);

  /// Rebuilds a (typically crashed) shard from its journal:
  /// stop-the-world like add_shard() -- concurrent submits park -- then
  /// the member service is discarded and reconstructed; its SP recovers
  /// snapshot + journal through the shard's DurableLog, so every
  /// mutation the dead incarnation acked survives and every retransmit
  /// replays its cached response byte-identically. The ring is
  /// unchanged (same id, same ownership). Parked frames are re-routed
  /// afterwards. Bumps cluster.shard_restarts. Requires durable mode.
  void restart_shard(std::uint32_t shard_id);

  /// The storage backend owned for `shard_id` (durable mode only;
  /// throws std::invalid_argument otherwise). The backend is
  /// thread-safe; tests read appended_total() to aim kill_shard().
  store::StorageBackend& shard_backend(std::uint32_t shard_id);

  /// Protocol stats aggregated across members (safe while running:
  /// member registries are atomic).
  sp::SpStats stats() const;

  /// Refreshes the per-shard gauges
  /// (cluster.shard.<id>.{accepts,sessions,queue_depth,memory_bytes}).
  /// Call quiesced, or let the rebalancer do it.
  void publish_gauges();

  /// Cluster-level registry (router counters + per-shard gauges).
  obs::Registry& metrics() { return *registry_; }

  /// Enrolled clients whose owner changed across all resizes.
  std::uint64_t remapped_keys() const { return c_remapped_keys_->value(); }
  /// Live sessions moved by handoff across all resizes.
  std::uint64_t handoff_sessions() const {
    return c_handoff_sessions_->value();
  }
  /// Replay-cache digests copied by handoff across all resizes.
  std::uint64_t handoff_replay_keys() const {
    return c_handoff_replay_keys_->value();
  }
  /// Frames parked (and re-routed) during rebalances.
  std::uint64_t parked_frames() const { return c_parked_frames_->value(); }
  /// Crash-restart cycles performed by restart_shard().
  std::uint64_t shard_restarts() const { return c_shard_restarts_->value(); }

 private:
  struct Member {
    std::uint32_t id = 0;
    std::unique_ptr<svc::VerifierService> service;
  };

  struct ParkedFrame {
    std::string client_id;
    Bytes frame;
    std::promise<svc::SvcResponse> promise;
  };

  /// Non-const: durable mode lazily creates the id's backend + log.
  std::unique_ptr<Member> make_member(std::uint32_t id);
  /// The id's DurableLog, created (with its backend) on first use and
  /// kept across member incarnations. nullptr when not durable.
  store::DurableLog* log_for(std::uint32_t id);
  bool durable() const { return bool(config_.durable_backend_factory); }
  Member& member(std::uint32_t id);
  const Member& member(std::uint32_t id) const;
  /// Moves every key that `next` assigns to a different member than
  /// `router_` does. Caller holds mu_ exclusively with all services
  /// drained; counters are bumped here.
  void migrate_to(const ConsistentHashRouter& next);
  void set_rebalance_active(bool active);
  void replay_parked(std::vector<ParkedFrame> parked);
  void publish_gauges_locked();

  ClusterConfig config_;
  /// Shared t=0 for every member's session timeline, so deadlines keep
  /// their meaning when sessions move between shards.
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;

  /// Guards router_ + members_: shared for routing/submitting, exclusive
  /// for resizes.
  mutable std::shared_mutex mu_;
  /// Durable-mode storage, keyed by shard id and owned by the cluster
  /// (NOT the member): a member incarnation dies on an injected crash,
  /// but its journal must survive for the next incarnation to recover.
  /// Declared before members_ so destruction runs members (whose SPs
  /// hold raw DurableLog pointers) -> logs -> backends.
  std::unordered_map<std::uint32_t, std::unique_ptr<store::StorageBackend>>
      backends_;
  std::unordered_map<std::uint32_t, std::unique_ptr<store::DurableLog>>
      logs_;

  ConsistentHashRouter router_;
  std::vector<std::unique_ptr<Member>> members_;
  std::uint32_t next_shard_id_ = 0;

  /// Parked-frame protocol: submits that cannot take mu_ shared check
  /// rebalance_active_ under park_mu_ -- if a rebalance is in flight
  /// they park, otherwise they retry the normal path. The rebalancer
  /// clears the flag and collects the parked list under the same lock,
  /// so no frame can slip into a list nobody will replay.
  std::mutex park_mu_;
  std::atomic<bool> rebalance_active_{false};
  std::vector<ParkedFrame> parked_;

  obs::Counter* c_remapped_keys_;
  obs::Counter* c_handoff_sessions_;
  obs::Counter* c_handoff_replay_keys_;
  obs::Counter* c_parked_frames_;
  obs::Counter* c_rebalances_;
  obs::Counter* c_shard_restarts_;
};

}  // namespace tp::cluster
