// Client-side orchestrator: the untrusted host software that drives the
// protocol.
//
// Everything here runs OUTSIDE the isolated environment -- it is the code
// malware can tamper with. Its honesty is NOT a security assumption: if a
// compromised orchestrator alters the transaction, the PAL shows the
// altered summary to the human (who rejects it); if it alters nonces,
// digests or signatures, the service provider's checks fail. The
// orchestrator exists so there is a correct implementation for the benign
// case; the adversary models in src/host are its evil twins.
#pragma once

#include <optional>
#include <string>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "proto/session_fsm.h"
#include "drtm/platform.h"
#include "net/channel.h"
#include "net/secure_channel.h"
#include "obs/metrics.h"
#include "pal/session.h"
#include "tpm/privacy_ca.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace tp::core {

/// Retransmission policy for one client<->SP exchange. An exchange that
/// gets no (usable) response backs off on the virtual clock --
/// exponential with decorrelated jitter (sleep = min(cap, uniform(base,
/// 3 * previous))) -- and retransmits the same frame through the same
/// proto::Session, so a retry is a legal FSM transition, never a new
/// session. The default (one attempt) preserves fail-fast semantics on
/// clean links.
struct RetryPolicy {
  /// Total send attempts per exchange (1 = no retry).
  std::uint32_t max_attempts = 1;
  SimDuration backoff_base = SimDuration::millis(100);
  SimDuration backoff_cap = SimDuration::seconds(5);
  /// Overall virtual-time budget for one exchange, backoff included;
  /// <= 0 bounds by attempts only.
  SimDuration deadline = SimDuration{0};
  /// Seed of the jitter stream (decorrelated from the network's RNG).
  std::uint64_t jitter_seed = 0x726574727969ull;
};

struct ClientConfig {
  std::string client_id = "client-0";
  std::uint32_t key_bits = 1024;
  std::uint32_t code_len = 6;
  std::uint32_t max_attempts = 3;
  SimDuration user_timeout = SimDuration::seconds(60);

  RetryPolicy retry;
  /// Optional registry for the client's retry counters
  /// ("client.retries", "client.exchange_give_ups",
  /// "client.stale_frames_discarded"); nullptr -> not counted.
  obs::Registry* metrics = nullptr;
};

class TrustedPathClient {
 public:
  /// `sp_link` is this client's endpoint of the link to the service
  /// provider. `aik_certificate` was obtained from the Privacy CA out of
  /// band (see tpm::PrivacyCa). This 1.2-only convenience ctor wraps the
  /// certificate's serialization.
  TrustedPathClient(drtm::Platform& platform, net::Endpoint& sp_link,
                    const tpm::AikCertificate& aik_certificate,
                    ClientConfig config);

  /// Format-agnostic ctor: `credential` is the serialized attestation
  /// certificate matching the platform's backend (tpm::AikCertificate
  /// for kTpm12, tpm::AkCertificate for kTpm2); it rides EnrollComplete
  /// verbatim. The enrollment's quote format is the platform's.
  TrustedPathClient(drtm::Platform& platform, net::Endpoint& sp_link,
                    Bytes credential, ClientConfig config);

  /// The human (or adversary) answering PAL prompts.
  void set_user_agent(pal::UserAgent* agent) { driver_.set_user_agent(agent); }

  /// Replaces the default plaintext transport (e.g., with a
  /// net::SecureClientTransport). The transport must outlive the client.
  void set_transport(net::RpcTransport* transport) {
    transport_ = transport;
  }

  /// Runs the full enrollment handshake, including the ENROLL PAL
  /// session. On success the client holds the sealed confirmation key.
  Status enroll();

  bool enrolled() const { return sealed_key_.has_value(); }
  const Bytes& confirmation_pubkey() const { return pubkey_; }

  /// The sealed confirmation key as stored on the client's (untrusted)
  /// disk. Deliberately public: the threat model gives malware this blob,
  /// and the system stays secure anyway -- it is sealed to the PAL.
  /// Precondition: enrolled().
  const Bytes& sealed_key_blob() const { return sealed_key_.value(); }

  struct ConfirmOutcome {
    bool accepted = false;        // the SP's decision
    Verdict verdict = Verdict::kTimeout;  // the PAL's verdict
    std::string reason;
    /// The SP's typed reject (kNone when accepted).
    proto::RejectCode code = proto::RejectCode::kNone;
    pal::SessionTiming timing;    // the CONFIRM session's breakdown
  };

  /// Submits a transaction and drives the confirmation session. Returns
  /// the SP's decision; transport or protocol failures surface as errors.
  Result<ConfirmOutcome> submit_transaction(const std::string& summary,
                                            BytesView payload);

  /// A transaction to include in a batch: (summary, payload).
  using BatchTx = std::pair<std::string, Bytes>;

  struct BatchOutcome {
    Verdict verdict = Verdict::kTimeout;  // one verdict for the batch
    std::vector<TxResult> results;        // SP decision per transaction
    pal::SessionTiming timing;            // the single session's breakdown

    std::size_t accepted_count() const {
      std::size_t n = 0;
      for (const auto& r : results) n += r.accepted ? 1 : 0;
      return n;
    }
  };

  /// Batch extension: submits all transactions, runs ONE confirmation
  /// session covering the whole batch (the user sees every transaction
  /// and types one code), then settles each with the SP individually.
  /// Amortizes the session cost across the batch (ablation A1).
  Result<BatchOutcome> submit_batch(const std::vector<BatchTx>& txs);

  struct LimitedOutcome {
    bool accepted = false;
    Verdict verdict = Verdict::kTimeout;
    bool limit_exceeded = false;    // the PAL refused before asking
    std::uint64_t spent_cents = 0;  // cumulative after this transaction
    std::uint64_t limit_cents = 0;  // the sealed (authoritative) limit
    std::string reason;
    /// The SP's typed reject (kNone when accepted).
    proto::RejectCode code = proto::RejectCode::kNone;
    pal::SessionTiming timing;
  };

  /// Spending-limit extension: like submit_transaction, but the PAL
  /// enforces a cumulative cap stored in rollback-protected sealed state.
  /// `limit_cents` is honoured only on the first call (it initializes the
  /// sealed state); afterwards the sealed limit governs.
  Result<LimitedOutcome> submit_limited_transaction(
      const std::string& summary, BytesView payload,
      std::uint64_t amount_cents, std::uint64_t limit_cents);

  /// The current sealed spending state (what malware could try to roll
  /// back); empty before the first limited transaction.
  const Bytes& spending_state_blob() const { return spending_state_; }
  /// Test/attack hook: replace the stored state blob (models malware
  /// swapping the file on disk).
  void set_spending_state_blob(Bytes blob) {
    spending_state_ = std::move(blob);
  }

  /// Retransmissions performed so far (0 with the default policy).
  std::uint64_t retries() const { return retries_; }
  /// Exchanges that exhausted every attempt without a usable response.
  std::uint64_t exchange_give_ups() const { return give_ups_; }

 private:
  /// One deadline-bounded, retrying request/response exchange: applies
  /// `event` to `fsm` (checking the FSM demands `want_action`) before
  /// every attempt, filters responses down to `want_type`, and
  /// deserializes to Msg -- anything else (corrupt, stale, duplicated
  /// frames) is discarded and, when attempts remain, retried after a
  /// jittered backoff charged to the platform clock.
  template <typename Msg>
  Result<Msg> exchange_msg(proto::Session& fsm, proto::SessionEvent event,
                           proto::SessionAction want_action,
                           const char* where, MsgType type, BytesView payload,
                           MsgType want_type);

  drtm::Platform* platform_;
  net::PlainRpc plain_transport_;
  net::RpcTransport* transport_;
  Bytes credential_;  // serialized attestation certificate (see ctors)
  ClientConfig config_;
  pal::SessionDriver driver_;
  pal::PalDescriptor pal_;
  Bytes pubkey_;
  std::optional<Bytes> sealed_key_;
  Bytes spending_state_;
  SimRng retry_rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t give_ups_ = 0;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_give_ups_ = nullptr;
  obs::Counter* c_stale_ = nullptr;
};

}  // namespace tp::core
