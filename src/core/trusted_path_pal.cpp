#include "core/trusted_path_pal.h"

#include "crypto/ecdsa.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "devices/human.h"
#include "drtm/late_launch.h"
#include "pal/sealed_state.h"
#include "tpm/tpm2_device.h"
#include "tpm/tpm_device.h"
#include "util/serial.h"

namespace tp::core {

namespace {

using tpm::PcrSelection;

// Confirmation codes avoid visually ambiguous characters (0/O, 1/l, i).
constexpr char kCodeAlphabet[] = "abcdefghjkmnpqrstuvwxyz23456789";
constexpr std::size_t kCodeAlphabetSize = sizeof(kCodeAlphabet) - 1;

// Release only at locality 2: the PAL environment.
constexpr std::uint8_t kPalOnlyLocality = 1u << 2;

// ---- backend dispatch ---------------------------------------------------
// One PAL image serves both TPM generations; which device it drives is a
// property of the platform it was launched on, never of the (untrusted)
// marshalled input.

bool on_tpm2(pal::PalContext& ctx) {
  return ctx.backend() == tpm::QuoteFormat::kTpm2;
}

Bytes pal_random(pal::PalContext& ctx, std::size_t n) {
  return on_tpm2(ctx) ? ctx.tpm2().get_random(n) : ctx.tpm().get_random(n);
}

Result<Bytes> pal_seal(pal::PalContext& ctx, const PcrSelection& selection,
                       std::uint8_t release_locality_mask, BytesView data) {
  return on_tpm2(ctx)
             ? ctx.tpm2().seal(ctx.locality(), selection,
                               release_locality_mask, data)
             : ctx.tpm().seal(ctx.locality(), selection,
                              release_locality_mask, data);
}

Result<Bytes> pal_unseal(pal::PalContext& ctx, BytesView blob) {
  return on_tpm2(ctx) ? ctx.tpm2().unseal(ctx.locality(), blob)
                      : ctx.tpm().unseal(ctx.locality(), blob);
}

// The sealed confirmation-key material carries a one-byte format tag so
// the CONFIRM path recovers the signature scheme from the blob itself --
// both backends use the tagged layout.
Bytes pack_confirmation_key(tpm::QuoteFormat format, BytesView key) {
  Bytes packed;
  packed.reserve(1 + key.size());
  packed.push_back(static_cast<std::uint8_t>(format));
  append(packed, key);
  return packed;
}

/// The unsealed confirmation key, parsed per its tag. Exactly one member
/// matching the tag is engaged.
struct ConfirmationSigner {
  std::optional<crypto::RsaPrivateKey> rsa;
  std::optional<crypto::EcdsaPrivateKey> ecdsa;

  static Result<ConfirmationSigner> unpack(BytesView material) {
    if (material.empty()) {
      return Error{Err::kCryptoError, "confirm: empty sealed key material"};
    }
    const auto format = tpm::quote_format_from_wire(material[0]);
    if (!format.has_value()) {
      return Error{Err::kCryptoError,
                   "confirm: unknown confirmation-key format"};
    }
    const BytesView body = material.subspan(1);
    ConfirmationSigner signer;
    if (*format == tpm::QuoteFormat::kTpm2) {
      auto key = crypto::EcdsaPrivateKey::deserialize(body);
      if (!key.ok()) return key.error();
      signer.ecdsa = key.take();
    } else {
      auto key = crypto::RsaPrivateKey::deserialize(body);
      if (!key.ok()) return key.error();
      signer.rsa = key.take();
    }
    return signer;
  }

  /// Signs `statement`, charging the scheme's compute cost.
  Bytes sign(pal::PalContext& ctx, BytesView statement) const {
    if (ecdsa.has_value()) {
      ctx.charge_compute("sign", pal_ecdsa_sign_cost());
      return crypto::ecdsa_sign(*ecdsa, statement);
    }
    ctx.charge_compute("sign", pal_sign_cost(static_cast<std::uint32_t>(
                                   rsa->n.bit_length())));
    return crypto::rsa_sign(*rsa, crypto::HashAlg::kSha256, statement);
  }
};

std::string make_code(pal::PalContext& ctx, std::uint32_t len) {
  const Bytes raw = pal_random(ctx, len);
  std::string code;
  code.reserve(len);
  for (std::uint8_t b : raw) {
    code.push_back(kCodeAlphabet[b % kCodeAlphabetSize]);
  }
  return code;
}

devices::DisplayContent confirmation_screen(const std::string& summary,
                                            const std::string& code,
                                            std::uint32_t attempt,
                                            std::uint32_t max_attempts) {
  devices::DisplayContent screen;
  screen.lines = {
      "=== TRUSTED PATH: CONFIRM TRANSACTION ===",
      std::string(devices::kFieldTransaction) + summary,
      std::string(devices::kFieldCode) + code,
      "Type the code to confirm, or 'reject' to decline.",
      "Attempt " + std::to_string(attempt) + " of " +
          std::to_string(max_attempts),
  };
  return screen;
}

Status run_enroll(pal::PalContext& ctx, BytesView body) {
  auto input = PalEnrollInput::unmarshal(body);
  if (!input.ok()) return input.error();

  // Key generation inside the isolated environment: seed a software DRBG
  // from the TPM once (pulling every candidate from the chip would cost
  // seconds of GetRandom), cycles charged to the CPU model. The scheme
  // follows the platform's TPM generation: RSA beside a 1.2 chip, P-256
  // beside a 2.0 chip.
  PalEnrollOutput out;
  Bytes key_material;
  if (on_tpm2(ctx)) {
    ctx.charge_compute("keygen", pal_ecdsa_keygen_cost());
    crypto::HmacDrbg prng(ctx.tpm2().get_random(32));
    const crypto::EcdsaPrivateKey key = crypto::ecdsa_generate(
        [&prng](std::size_t n) { return prng.generate(n); });
    out.pubkey = key.public_key().serialize();
    key_material =
        pack_confirmation_key(tpm::QuoteFormat::kTpm2, key.serialize());
  } else {
    ctx.charge_compute("keygen", pal_keygen_cost(input.value().key_bits));
    crypto::HmacDrbg prng(ctx.tpm().get_random(32));
    const crypto::RsaPrivateKey key = crypto::rsa_generate(
        input.value().key_bits,
        [&prng](std::size_t n) { return prng.generate(n); });
    out.pubkey = key.public_key().serialize();
    key_material =
        pack_confirmation_key(tpm::QuoteFormat::kTpm12, key.serialize());
  }

  // Seal the private key to the identity PCR's CURRENT value -- which,
  // because we are running measured, is this PAL's own identity (PCR 17
  // on AMD SKINIT, PCR 18 on Intel TXT).
  auto sealed = pal_seal(ctx, PcrSelection::of({ctx.identity_pcr()}),
                         kPalOnlyLocality, key_material);
  secure_wipe(key_material);
  if (!sealed.ok()) return sealed.error();
  out.sealed_key = sealed.take();

  // Quote the platform's attestation selection with the key<->nonce
  // binding as external data.
  const Bytes binding =
      enrollment_quote_binding(out.pubkey, input.value().nonce);
  if (on_tpm2(ctx)) {
    auto quote = ctx.tpm2().quote(binding, ctx.attestation_selection());
    if (!quote.ok()) return quote.error();
    out.quote = quote.value().serialize();
  } else {
    auto quote = ctx.tpm().quote(binding, ctx.attestation_selection());
    if (!quote.ok()) return quote.error();
    out.quote = quote.value().serialize();
  }

  ctx.set_output(out.marshal());
  return Status::ok_status();
}

Status run_confirm(pal::PalContext& ctx, BytesView body) {
  auto input_r = PalConfirmInput::unmarshal(body);
  if (!input_r.ok()) return input_r.error();
  const PalConfirmInput& input = input_r.value();
  if (input.code_len == 0 || input.max_attempts == 0) {
    return Error{Err::kInvalidArgument, "confirm: degenerate parameters"};
  }

  PalConfirmOutput out;
  const SimDuration timeout{input.user_timeout_ns};

  for (std::uint32_t attempt = 1; attempt <= input.max_attempts; ++attempt) {
    out.attempts = attempt;
    // A fresh code every attempt: an observed code is never reusable.
    const std::string code = make_code(ctx, input.code_len);
    const auto line = ctx.show_and_read_line(
        confirmation_screen(input.tx_summary, code, attempt,
                            input.max_attempts),
        timeout);
    if (!line.has_value()) {
      out.verdict = Verdict::kTimeout;
      break;
    }
    if (*line == devices::kRejectLine) {
      out.verdict = Verdict::kRejected;
      break;
    }
    if (*line == code) {
      out.verdict = Verdict::kConfirmed;
      break;
    }
    out.verdict = Verdict::kRejected;  // exhausted attempts -> rejected
  }

  if (out.verdict == Verdict::kConfirmed) {
    // Unseal succeeds only under this PAL's measurement at locality 2.
    auto key_material = pal_unseal(ctx, input.sealed_key);
    if (!key_material.ok()) {
      ctx.show(devices::DisplayContent{{"TRUSTED PATH ERROR: key unavailable"}});
      return key_material.error();
    }
    auto signer = ConfirmationSigner::unpack(key_material.value());
    secure_wipe(key_material.value());
    if (!signer.ok()) return signer.error();

    out.signature = signer.value().sign(
        ctx, confirmation_statement(input.tx_digest, input.nonce,
                                    Verdict::kConfirmed));
  }

  ctx.show(devices::DisplayContent{
      {std::string("TRUSTED PATH: session finished (") +
       verdict_name(out.verdict) + ")"}});
  ctx.set_output(out.marshal());
  return Status::ok_status();
}

devices::DisplayContent batch_screen(const std::vector<BatchItem>& items,
                                     const std::string& code,
                                     std::uint32_t attempt,
                                     std::uint32_t max_attempts) {
  devices::DisplayContent screen;
  screen.lines.push_back("=== TRUSTED PATH: CONFIRM " +
                         std::to_string(items.size()) + " TRANSACTIONS ===");
  screen.lines.push_back(std::string(devices::kFieldTransaction) +
                         batch_summary(items));
  for (std::size_t i = 0; i < items.size(); ++i) {
    screen.lines.push_back("  [" + std::to_string(i + 1) + "] " +
                           items[i].summary);
  }
  screen.lines.push_back(std::string(devices::kFieldCode) + code);
  screen.lines.push_back(
      "Type the code to confirm ALL of the above, or 'reject'.");
  screen.lines.push_back("Attempt " + std::to_string(attempt) + " of " +
                         std::to_string(max_attempts));
  return screen;
}

Status run_confirm_batch(pal::PalContext& ctx, BytesView body) {
  auto input_r = PalBatchConfirmInput::unmarshal(body);
  if (!input_r.ok()) return input_r.error();
  const PalBatchConfirmInput& input = input_r.value();
  if (input.items.empty() || input.code_len == 0 || input.max_attempts == 0) {
    return Error{Err::kInvalidArgument, "batch confirm: degenerate input"};
  }

  PalBatchConfirmOutput out;
  const SimDuration timeout{input.user_timeout_ns};
  for (std::uint32_t attempt = 1; attempt <= input.max_attempts; ++attempt) {
    out.attempts = attempt;
    const std::string code = make_code(ctx, input.code_len);
    const auto line = ctx.show_and_read_line(
        batch_screen(input.items, code, attempt, input.max_attempts),
        timeout);
    if (!line.has_value()) {
      out.verdict = Verdict::kTimeout;
      break;
    }
    if (*line == devices::kRejectLine) {
      out.verdict = Verdict::kRejected;
      break;
    }
    if (*line == code) {
      out.verdict = Verdict::kConfirmed;
      break;
    }
    out.verdict = Verdict::kRejected;
  }

  if (out.verdict == Verdict::kConfirmed) {
    auto key_material = pal_unseal(ctx, input.sealed_key);
    if (!key_material.ok()) return key_material.error();
    auto signer = ConfirmationSigner::unpack(key_material.value());
    secure_wipe(key_material.value());
    if (!signer.ok()) return signer.error();
    for (const BatchItem& item : input.items) {
      out.signatures.push_back(signer.value().sign(
          ctx, confirmation_statement(item.tx_digest, item.nonce,
                                      Verdict::kConfirmed)));
    }
  }

  ctx.show(devices::DisplayContent{
      {std::string("TRUSTED PATH: batch finished (") +
       verdict_name(out.verdict) + ")"}});
  ctx.set_output(out.marshal());
  return Status::ok_status();
}

// Spending state: (limit_cents, spent_cents) in rollback-protected
// sealed storage.
struct SpendingState {
  std::uint64_t limit_cents = 0;
  std::uint64_t spent_cents = 0;

  Bytes marshal() const {
    BinaryWriter w;
    w.u64(limit_cents);
    w.u64(spent_cents);
    return w.take();
  }
  static Result<SpendingState> unmarshal(BytesView data) {
    BinaryReader r(data);
    SpendingState s;
    auto limit = r.u64();
    if (!limit.ok()) return limit.error();
    s.limit_cents = limit.value();
    auto spent = r.u64();
    if (!spent.ok()) return spent.error();
    s.spent_cents = spent.value();
    if (auto st = r.expect_exhausted(); !st.ok()) return st.error();
    return s;
  }
};

std::string cents_to_string(std::uint64_t cents) {
  return std::to_string(cents / 100) + "." +
         (cents % 100 < 10 ? "0" : "") + std::to_string(cents % 100);
}

Status run_confirm_limited(pal::PalContext& ctx, BytesView body) {
  if (on_tpm2(ctx)) {
    // The rollback-protected spending state rides the 1.2 monotonic
    // counter; the 2.0 emulator does not model NV counters (yet).
    return Error{Err::kUnsupported,
                 "limited confirm: not available on the TPM 2.0 backend"};
  }
  auto input_r = PalLimitedConfirmInput::unmarshal(body);
  if (!input_r.ok()) return input_r.error();
  const PalLimitedConfirmInput& input = input_r.value();
  if (input.code_len == 0 || input.max_attempts == 0) {
    return Error{Err::kInvalidArgument, "limited confirm: degenerate input"};
  }

  pal::SealedStateChannel channel(ctx.tpm(), kSpendingCounterId);
  const tpm::PcrSelection policy =
      tpm::PcrSelection::of({ctx.identity_pcr()});

  // Load or initialize the spending state. The input's limit only counts
  // on FIRST use; afterwards the sealed value is authoritative -- malware
  // rewriting the input cannot raise the cap.
  SpendingState state;
  if (input.sealed_state.empty()) {
    if (input.limit_cents == 0) {
      return Error{Err::kInvalidArgument, "limited confirm: zero limit"};
    }
    state.limit_cents = input.limit_cents;
  } else {
    auto loaded = channel.load(ctx.locality(), input.sealed_state);
    if (!loaded.ok()) return loaded.error();  // kReplay on rollback
    auto parsed = SpendingState::unmarshal(loaded.value());
    if (!parsed.ok()) return parsed.error();
    state = parsed.value();
  }

  PalLimitedConfirmOutput out;
  out.limit_cents = state.limit_cents;
  out.spent_cents = state.spent_cents;

  // Hard policy gate BEFORE involving the user.
  if (state.spent_cents + input.amount_cents > state.limit_cents) {
    out.verdict = Verdict::kRejected;
    out.limit_exceeded = true;
    ctx.show(devices::DisplayContent{
        {"TRUSTED PATH: spending limit exceeded",
         "limit " + cents_to_string(state.limit_cents) + ", spent " +
             cents_to_string(state.spent_cents) + ", requested " +
             cents_to_string(input.amount_cents)}});
    ctx.set_output(out.marshal());
    return Status::ok_status();
  }

  const SimDuration timeout{input.user_timeout_ns};
  for (std::uint32_t attempt = 1; attempt <= input.max_attempts; ++attempt) {
    out.attempts = attempt;
    const std::string code = make_code(ctx, input.code_len);
    devices::DisplayContent screen =
        confirmation_screen(input.tx_summary, code, attempt,
                            input.max_attempts);
    screen.lines.insert(
        screen.lines.begin() + 2,
        "LIMIT: " + cents_to_string(state.limit_cents) + " (spent " +
            cents_to_string(state.spent_cents) + ", this tx " +
            cents_to_string(input.amount_cents) + ")");
    const auto line = ctx.show_and_read_line(screen, timeout);
    if (!line.has_value()) {
      out.verdict = Verdict::kTimeout;
      break;
    }
    if (*line == devices::kRejectLine) {
      out.verdict = Verdict::kRejected;
      break;
    }
    if (*line == code) {
      out.verdict = Verdict::kConfirmed;
      break;
    }
    out.verdict = Verdict::kRejected;
  }

  if (out.verdict == Verdict::kConfirmed) {
    auto key_material = ctx.tpm().unseal(ctx.locality(), input.sealed_key);
    if (!key_material.ok()) return key_material.error();
    auto signer = ConfirmationSigner::unpack(key_material.value());
    secure_wipe(key_material.value());
    if (!signer.ok()) return signer.error();
    out.signature = signer.value().sign(
        ctx, confirmation_statement(input.tx_digest, input.nonce,
                                    Verdict::kConfirmed));

    // Commit the new total; the counter bump invalidates the old blob.
    state.spent_cents += input.amount_cents;
    out.spent_cents = state.spent_cents;
    auto saved = channel.save(ctx.locality(), policy,
                              static_cast<std::uint8_t>(1u << 2),
                              state.marshal());
    if (!saved.ok()) return saved.error();
    out.new_sealed_state = saved.take();
  }

  ctx.set_output(out.marshal());
  return Status::ok_status();
}

Status run_confirm_quote(pal::PalContext& ctx, BytesView body) {
  if (on_tpm2(ctx)) {
    // The quote-per-transaction ablation is specified against the 1.2
    // QuoteResult wire format and AIK certificates; the sealed-key
    // design is the supported path on 2.0 platforms.
    return Error{Err::kUnsupported,
                 "quote confirm: not available on the TPM 2.0 backend"};
  }
  auto input_r = PalQuoteConfirmInput::unmarshal(body);
  if (!input_r.ok()) return input_r.error();
  const PalQuoteConfirmInput& input = input_r.value();
  if (input.code_len == 0 || input.max_attempts == 0) {
    return Error{Err::kInvalidArgument, "quote confirm: degenerate input"};
  }

  PalQuoteConfirmOutput out;
  const SimDuration timeout{input.user_timeout_ns};
  for (std::uint32_t attempt = 1; attempt <= input.max_attempts; ++attempt) {
    out.attempts = attempt;
    const std::string code = make_code(ctx, input.code_len);
    const auto line = ctx.show_and_read_line(
        confirmation_screen(input.tx_summary, code, attempt,
                            input.max_attempts),
        timeout);
    if (!line.has_value()) {
      out.verdict = Verdict::kTimeout;
      break;
    }
    if (*line == devices::kRejectLine) {
      out.verdict = Verdict::kRejected;
      break;
    }
    if (*line == code) {
      out.verdict = Verdict::kConfirmed;
      break;
    }
    out.verdict = Verdict::kRejected;
  }

  if (out.verdict == Verdict::kConfirmed) {
    auto quote = ctx.tpm().quote(
        quote_confirmation_binding(input.tx_digest, input.nonce),
        ctx.attestation_selection());
    if (!quote.ok()) return quote.error();
    out.quote = quote.value().serialize();
  }
  ctx.set_output(out.marshal());
  return Status::ok_status();
}

Status pal_entry(pal::PalContext& ctx) {
  BinaryReader r(ctx.input());
  auto cmd = r.u8();
  if (!cmd.ok()) return cmd.error();
  const Bytes body(ctx.input().begin() + 1, ctx.input().end());
  switch (static_cast<PalCommand>(cmd.value())) {
    case PalCommand::kEnroll:
      return run_enroll(ctx, body);
    case PalCommand::kConfirm:
      return run_confirm(ctx, body);
    case PalCommand::kConfirmBatch:
      return run_confirm_batch(ctx, body);
    case PalCommand::kConfirmLimited:
      return run_confirm_limited(ctx, body);
    case PalCommand::kConfirmQuote:
      return run_confirm_quote(ctx, body);
  }
  return Error{Err::kInvalidArgument, "pal: unknown command"};
}

}  // namespace

// ---- marshalling -------------------------------------------------------

Bytes PalEnrollInput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PalCommand::kEnroll));
  w.var_bytes(nonce);
  w.u32(key_bits);
  return w.take();
}

Result<PalEnrollInput> PalEnrollInput::unmarshal(BytesView data) {
  BinaryReader r(data);
  PalEnrollInput in;
  auto nonce = r.var_bytes();
  if (!nonce.ok()) return nonce.error();
  in.nonce = nonce.take();
  auto bits = r.u32();
  if (!bits.ok()) return bits.error();
  in.key_bits = bits.value();
  if (in.key_bits < 512 || in.key_bits > 4096) {
    return Error{Err::kInvalidArgument, "enroll: bad key size"};
  }
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return in;
}

Bytes PalEnrollOutput::marshal() const {
  BinaryWriter w;
  w.var_bytes(pubkey);
  w.var_bytes(sealed_key);
  w.var_bytes(quote);
  return w.take();
}

Result<PalEnrollOutput> PalEnrollOutput::unmarshal(BytesView data) {
  BinaryReader r(data);
  PalEnrollOutput out;
  auto pk = r.var_bytes();
  if (!pk.ok()) return pk.error();
  out.pubkey = pk.take();
  auto sealed = r.var_bytes();
  if (!sealed.ok()) return sealed.error();
  out.sealed_key = sealed.take();
  auto quote = r.var_bytes();
  if (!quote.ok()) return quote.error();
  out.quote = quote.take();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return out;
}

Bytes enrollment_quote_binding(BytesView pubkey, BytesView nonce) {
  return crypto::Sha256::hash(concat(pubkey, nonce));
}

Bytes PalConfirmInput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PalCommand::kConfirm));
  w.var_string(tx_summary);
  w.var_bytes(tx_digest);
  w.var_bytes(nonce);
  w.var_bytes(sealed_key);
  w.u32(code_len);
  w.u32(max_attempts);
  w.u64(static_cast<std::uint64_t>(user_timeout_ns));
  return w.take();
}

Result<PalConfirmInput> PalConfirmInput::unmarshal(BytesView data) {
  BinaryReader r(data);
  PalConfirmInput in;
  auto summary = r.var_string();
  if (!summary.ok()) return summary.error();
  in.tx_summary = summary.take();
  auto digest = r.var_bytes();
  if (!digest.ok()) return digest.error();
  in.tx_digest = digest.take();
  auto nonce = r.var_bytes();
  if (!nonce.ok()) return nonce.error();
  in.nonce = nonce.take();
  auto sealed = r.var_bytes();
  if (!sealed.ok()) return sealed.error();
  in.sealed_key = sealed.take();
  auto code_len = r.u32();
  if (!code_len.ok()) return code_len.error();
  in.code_len = code_len.value();
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  in.max_attempts = attempts.value();
  auto timeout = r.u64();
  if (!timeout.ok()) return timeout.error();
  in.user_timeout_ns = static_cast<std::int64_t>(timeout.value());
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return in;
}

Bytes PalConfirmOutput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(verdict));
  w.var_bytes(signature);
  w.u32(attempts);
  return w.take();
}

Result<PalConfirmOutput> PalConfirmOutput::unmarshal(BytesView data) {
  BinaryReader r(data);
  PalConfirmOutput out;
  auto v = r.u8();
  if (!v.ok()) return v.error();
  if (v.value() < 1 || v.value() > 3) {
    return Error{Err::kInvalidArgument, "confirm output: bad verdict"};
  }
  out.verdict = static_cast<Verdict>(v.value());
  auto sig = r.var_bytes();
  if (!sig.ok()) return sig.error();
  out.signature = sig.take();
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  out.attempts = attempts.value();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return out;
}

Bytes PalBatchConfirmInput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PalCommand::kConfirmBatch));
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const BatchItem& item : items) {
    w.var_string(item.summary);
    w.var_bytes(item.tx_digest);
    w.var_bytes(item.nonce);
  }
  w.var_bytes(sealed_key);
  w.u32(code_len);
  w.u32(max_attempts);
  w.u64(static_cast<std::uint64_t>(user_timeout_ns));
  return w.take();
}

Result<PalBatchConfirmInput> PalBatchConfirmInput::unmarshal(BytesView data) {
  BinaryReader r(data);
  PalBatchConfirmInput in;
  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() > 64) {
    return Error{Err::kInvalidArgument, "batch: too many items"};
  }
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    BatchItem item;
    auto summary = r.var_string();
    if (!summary.ok()) return summary.error();
    item.summary = summary.take();
    auto digest = r.var_bytes();
    if (!digest.ok()) return digest.error();
    item.tx_digest = digest.take();
    auto nonce = r.var_bytes();
    if (!nonce.ok()) return nonce.error();
    item.nonce = nonce.take();
    in.items.push_back(std::move(item));
  }
  auto sealed = r.var_bytes();
  if (!sealed.ok()) return sealed.error();
  in.sealed_key = sealed.take();
  auto code_len = r.u32();
  if (!code_len.ok()) return code_len.error();
  in.code_len = code_len.value();
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  in.max_attempts = attempts.value();
  auto timeout = r.u64();
  if (!timeout.ok()) return timeout.error();
  in.user_timeout_ns = static_cast<std::int64_t>(timeout.value());
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return in;
}

Bytes PalBatchConfirmOutput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(verdict));
  w.u32(static_cast<std::uint32_t>(signatures.size()));
  for (const Bytes& sig : signatures) w.var_bytes(sig);
  w.u32(attempts);
  return w.take();
}

Result<PalBatchConfirmOutput> PalBatchConfirmOutput::unmarshal(
    BytesView data) {
  BinaryReader r(data);
  PalBatchConfirmOutput out;
  auto v = r.u8();
  if (!v.ok()) return v.error();
  if (v.value() < 1 || v.value() > 3) {
    return Error{Err::kInvalidArgument, "batch output: bad verdict"};
  }
  out.verdict = static_cast<Verdict>(v.value());
  auto count = r.u32();
  if (!count.ok()) return count.error();
  if (count.value() > 64) {
    return Error{Err::kInvalidArgument, "batch output: too many signatures"};
  }
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto sig = r.var_bytes();
    if (!sig.ok()) return sig.error();
    out.signatures.push_back(sig.take());
  }
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  out.attempts = attempts.value();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return out;
}

Bytes PalLimitedConfirmInput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PalCommand::kConfirmLimited));
  w.var_string(tx_summary);
  w.var_bytes(tx_digest);
  w.var_bytes(nonce);
  w.var_bytes(sealed_key);
  w.u64(amount_cents);
  w.u64(limit_cents);
  w.var_bytes(sealed_state);
  w.u32(code_len);
  w.u32(max_attempts);
  w.u64(static_cast<std::uint64_t>(user_timeout_ns));
  return w.take();
}

Result<PalLimitedConfirmInput> PalLimitedConfirmInput::unmarshal(
    BytesView data) {
  BinaryReader r(data);
  PalLimitedConfirmInput in;
  auto summary = r.var_string();
  if (!summary.ok()) return summary.error();
  in.tx_summary = summary.take();
  auto digest = r.var_bytes();
  if (!digest.ok()) return digest.error();
  in.tx_digest = digest.take();
  auto nonce = r.var_bytes();
  if (!nonce.ok()) return nonce.error();
  in.nonce = nonce.take();
  auto sealed = r.var_bytes();
  if (!sealed.ok()) return sealed.error();
  in.sealed_key = sealed.take();
  auto amount = r.u64();
  if (!amount.ok()) return amount.error();
  in.amount_cents = amount.value();
  auto limit = r.u64();
  if (!limit.ok()) return limit.error();
  in.limit_cents = limit.value();
  auto state = r.var_bytes();
  if (!state.ok()) return state.error();
  in.sealed_state = state.take();
  auto code_len = r.u32();
  if (!code_len.ok()) return code_len.error();
  in.code_len = code_len.value();
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  in.max_attempts = attempts.value();
  auto timeout = r.u64();
  if (!timeout.ok()) return timeout.error();
  in.user_timeout_ns = static_cast<std::int64_t>(timeout.value());
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return in;
}

Bytes PalLimitedConfirmOutput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(verdict));
  w.var_bytes(signature);
  w.var_bytes(new_sealed_state);
  w.u64(spent_cents);
  w.u64(limit_cents);
  w.u8(limit_exceeded ? 1 : 0);
  w.u32(attempts);
  return w.take();
}

Result<PalLimitedConfirmOutput> PalLimitedConfirmOutput::unmarshal(
    BytesView data) {
  BinaryReader r(data);
  PalLimitedConfirmOutput out;
  auto v = r.u8();
  if (!v.ok()) return v.error();
  if (v.value() < 1 || v.value() > 3) {
    return Error{Err::kInvalidArgument, "limited output: bad verdict"};
  }
  out.verdict = static_cast<Verdict>(v.value());
  auto sig = r.var_bytes();
  if (!sig.ok()) return sig.error();
  out.signature = sig.take();
  auto state = r.var_bytes();
  if (!state.ok()) return state.error();
  out.new_sealed_state = state.take();
  auto spent = r.u64();
  if (!spent.ok()) return spent.error();
  out.spent_cents = spent.value();
  auto limit = r.u64();
  if (!limit.ok()) return limit.error();
  out.limit_cents = limit.value();
  auto exceeded = r.u8();
  if (!exceeded.ok()) return exceeded.error();
  out.limit_exceeded = exceeded.value() != 0;
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  out.attempts = attempts.value();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return out;
}

Bytes PalQuoteConfirmInput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PalCommand::kConfirmQuote));
  w.var_string(tx_summary);
  w.var_bytes(tx_digest);
  w.var_bytes(nonce);
  w.u32(code_len);
  w.u32(max_attempts);
  w.u64(static_cast<std::uint64_t>(user_timeout_ns));
  return w.take();
}

Result<PalQuoteConfirmInput> PalQuoteConfirmInput::unmarshal(BytesView data) {
  BinaryReader r(data);
  PalQuoteConfirmInput in;
  auto summary = r.var_string();
  if (!summary.ok()) return summary.error();
  in.tx_summary = summary.take();
  auto digest = r.var_bytes();
  if (!digest.ok()) return digest.error();
  in.tx_digest = digest.take();
  auto nonce = r.var_bytes();
  if (!nonce.ok()) return nonce.error();
  in.nonce = nonce.take();
  auto code_len = r.u32();
  if (!code_len.ok()) return code_len.error();
  in.code_len = code_len.value();
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  in.max_attempts = attempts.value();
  auto timeout = r.u64();
  if (!timeout.ok()) return timeout.error();
  in.user_timeout_ns = static_cast<std::int64_t>(timeout.value());
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return in;
}

Bytes PalQuoteConfirmOutput::marshal() const {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(verdict));
  w.var_bytes(quote);
  w.u32(attempts);
  return w.take();
}

Result<PalQuoteConfirmOutput> PalQuoteConfirmOutput::unmarshal(
    BytesView data) {
  BinaryReader r(data);
  PalQuoteConfirmOutput out;
  auto v = r.u8();
  if (!v.ok()) return v.error();
  if (v.value() < 1 || v.value() > 3) {
    return Error{Err::kInvalidArgument, "quote output: bad verdict"};
  }
  out.verdict = static_cast<Verdict>(v.value());
  auto quote = r.var_bytes();
  if (!quote.ok()) return quote.error();
  out.quote = quote.take();
  auto attempts = r.u32();
  if (!attempts.ok()) return attempts.error();
  out.attempts = attempts.value();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return out;
}

Bytes quote_confirmation_binding(BytesView tx_digest, BytesView nonce) {
  return crypto::Sha256::hash(
      concat(bytes_of("TP-QUOTE-CONFIRM-v1"), tx_digest, nonce));
}

Status verify_quote_confirmation(
    const crypto::RsaPublicKey& aik,
    const std::vector<AttestationPolicy>& accepted, BytesView tx_digest,
    BytesView nonce, BytesView quote_bytes) {
  auto quote = tpm::QuoteResult::deserialize(quote_bytes);
  if (!quote.ok()) return quote.error();
  if (auto s = tpm::verify_quote(
          aik, quote.value(), quote_confirmation_binding(tx_digest, nonce));
      !s.ok()) {
    return s;
  }
  for (const auto& policy : accepted) {
    if (quote.value().selection != policy.selection ||
        quote.value().pcr_values.size() != policy.values.size()) {
      continue;
    }
    bool all_equal = true;
    for (std::size_t i = 0; i < policy.values.size(); ++i) {
      if (!ct_equal(quote.value().pcr_values[i], policy.values[i])) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) return Status::ok_status();
  }
  return Error{Err::kPcrMismatch,
               "quote confirmation: PCRs match no accepted policy"};
}

std::string batch_summary(const std::vector<BatchItem>& items) {
  std::string combined = std::to_string(items.size()) + " transactions: ";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) combined += " | ";
    combined += items[i].summary;
  }
  return combined;
}

// ---- descriptor & cost model ---------------------------------------------

pal::PalDescriptor make_trusted_path_pal() {
  pal::PalDescriptor pal;
  pal.name = kPalName;
  pal.image = pal::PalDescriptor::make_image(kPalName, kPalVersion);
  pal.entry = pal_entry;
  return pal;
}

Bytes golden_pcr17(crypto::HashAlg alg) {
  const pal::PalDescriptor pal = make_trusted_path_pal();
  return drtm::predicted_extend_of(pal.image, alg);
}

AttestationPolicy attestation_policy(drtm::DrtmTechnology technology,
                                     const drtm::TxtArtifacts& txt,
                                     tpm::QuoteFormat format) {
  const crypto::HashAlg alg = format == tpm::QuoteFormat::kTpm2
                                  ? crypto::HashAlg::kSha256
                                  : crypto::HashAlg::kSha1;
  AttestationPolicy policy;
  policy.format = format;
  if (technology == drtm::DrtmTechnology::kAmdSkinit) {
    policy.selection = tpm::PcrSelection::of({17});
    policy.values = {golden_pcr17(alg)};
    policy.label = "amd-skinit";
  } else {
    policy.selection = tpm::PcrSelection::of({17, 18});
    policy.values = {drtm::predicted_txt_pcr17(txt, alg), golden_pcr17(alg)};
    policy.label = "intel-txt";
  }
  if (format == tpm::QuoteFormat::kTpm2) policy.label += "-tpm2";
  return policy;
}

SimDuration pal_keygen_cost(std::uint32_t key_bits) {
  // Prime search scales roughly with bits^4 for fixed-count MR rounds on
  // a 2008-class CPU; anchored at ~350 ms for RSA-1024.
  const double ratio = static_cast<double>(key_bits) / 1024.0;
  return SimDuration::seconds(0.35 * ratio * ratio * ratio * ratio);
}

SimDuration pal_sign_cost(std::uint32_t key_bits) {
  // One CRT private exponentiation; ~6 ms at 1024 bits, ~bits^3 scaling.
  const double ratio = static_cast<double>(key_bits) / 1024.0;
  return SimDuration::seconds(0.006 * ratio * ratio * ratio);
}

SimDuration pal_ecdsa_keygen_cost() {
  // One P-256 base-point multiply (no prime search): flat ~2 ms on the
  // same CPU class -- the dramatic keygen win of the ECC backend.
  return SimDuration::millis(2);
}

SimDuration pal_ecdsa_sign_cost() {
  // Also one base-point multiply plus a few field ops.
  return SimDuration::millis(2);
}

}  // namespace tp::core
