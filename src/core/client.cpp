#include "core/client.h"

namespace tp::core {

namespace {

// The client drives the SAME transition table the SP's session layer
// runs (proto::step), one proto::Session handle per exchange: before
// sending a message it applies the corresponding event and checks the
// FSM demands exactly the action it is about to perform. A mismatch
// means the orchestrator is about to emit a sequence the verifier would
// refuse -- surfaced as kBadState instead of a wire round-trip.
Status expect_action(const proto::Step& step, proto::SessionAction want,
                     const char* where) {
  if (step.action != want) {
    return Error{Err::kBadState,
                 std::string(where) + ": protocol session out of step"};
  }
  return Status::ok_status();
}

}  // namespace

TrustedPathClient::TrustedPathClient(drtm::Platform& platform,
                                     net::Endpoint& sp_link,
                                     tpm::AikCertificate aik_certificate,
                                     ClientConfig config)
    : platform_(&platform),
      plain_transport_(sp_link),
      transport_(&plain_transport_),
      aik_certificate_(std::move(aik_certificate)),
      config_(std::move(config)),
      driver_(platform),
      pal_(make_trusted_path_pal()) {}

Result<Bytes> TrustedPathClient::exchange(MsgType type, BytesView payload) {
  auto frame = transport_->exchange(envelope(type, payload));
  if (!frame.ok()) return frame.error();
  auto opened = open_envelope(frame.value());
  if (!opened.ok()) return opened.error();
  return opened.value().second;
}

Status TrustedPathClient::enroll() {
  proto::Session fsm(proto::SessionPhase::kEnroll);

  // 1. Request a challenge.
  if (auto s = expect_action(fsm.apply(proto::SessionEvent::kBegin),
                             proto::SessionAction::kSendChallenge, "enroll");
      !s.ok()) {
    return s;
  }
  auto challenge_bytes =
      exchange(MsgType::kEnrollBegin,
               EnrollBegin{config_.client_id}.serialize());
  if (!challenge_bytes.ok()) return challenge_bytes.error();
  auto challenge = EnrollChallenge::deserialize(challenge_bytes.value());
  if (!challenge.ok()) return challenge.error();

  // 2. Run the ENROLL PAL session.
  PalEnrollInput pal_input;
  pal_input.nonce = challenge.value().nonce;
  pal_input.key_bits = config_.key_bits;
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status;
  auto pal_out = PalEnrollOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();

  // 3. Send the key + quote + AIK certificate to the SP.
  EnrollComplete complete;
  complete.client_id = config_.client_id;
  complete.confirmation_pubkey = pal_out.value().pubkey;
  complete.quote = pal_out.value().quote;
  complete.aik_certificate = aik_certificate_.serialize();
  if (auto s = expect_action(fsm.apply(proto::SessionEvent::kComplete),
                             proto::SessionAction::kVerify, "enroll");
      !s.ok()) {
    return s;
  }
  auto result_bytes =
      exchange(MsgType::kEnrollComplete, complete.serialize());
  if (!result_bytes.ok()) return result_bytes.error();
  auto result = EnrollResult::deserialize(result_bytes.value());
  if (!result.ok()) return result.error();
  fsm.apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                    : proto::SessionEvent::kVerifyFail);
  if (!result.value().accepted) {
    return Error{Err::kAuthFail,
                 "enrollment rejected: " + result.value().reason};
  }

  pubkey_ = pal_out.value().pubkey;
  sealed_key_ = pal_out.value().sealed_key;
  return Status::ok_status();
}

Result<TrustedPathClient::ConfirmOutcome>
TrustedPathClient::submit_transaction(const std::string& summary,
                                      BytesView payload) {
  if (!enrolled()) {
    return Error{Err::kBadState, "submit: client not enrolled"};
  }
  proto::Session fsm(proto::SessionPhase::kConfirm);

  // 1. Submit the transaction; receive the challenge.
  if (auto s = expect_action(fsm.apply(proto::SessionEvent::kBegin),
                             proto::SessionAction::kSendChallenge, "submit");
      !s.ok()) {
    return s.error();
  }
  TxSubmit submit{config_.client_id, summary,
                  Bytes(payload.begin(), payload.end())};
  auto challenge_bytes = exchange(MsgType::kTxSubmit, submit.serialize());
  if (!challenge_bytes.ok()) return challenge_bytes.error();
  auto challenge = TxChallenge::deserialize(challenge_bytes.value());
  if (!challenge.ok()) return challenge.error();

  // 2. Run the CONFIRM PAL session.
  PalConfirmInput pal_input;
  pal_input.tx_summary = summary;
  pal_input.tx_digest = submit.digest();
  pal_input.nonce = challenge.value().nonce;
  pal_input.sealed_key = *sealed_key_;
  pal_input.code_len = config_.code_len;
  pal_input.max_attempts = config_.max_attempts;
  pal_input.user_timeout_ns = config_.user_timeout.ns;
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status.error();
  auto pal_out = PalConfirmOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();

  // 3. Report the verdict (and signature, if confirmed).
  TxConfirm confirm;
  confirm.client_id = config_.client_id;
  confirm.tx_id = challenge.value().tx_id;
  confirm.verdict = pal_out.value().verdict;
  confirm.signature = pal_out.value().signature;
  if (auto s = expect_action(fsm.apply(proto::SessionEvent::kComplete),
                             proto::SessionAction::kVerify, "submit");
      !s.ok()) {
    return s.error();
  }
  auto result_bytes = exchange(MsgType::kTxConfirm, confirm.serialize());
  if (!result_bytes.ok()) return result_bytes.error();
  auto result = TxResult::deserialize(result_bytes.value());
  if (!result.ok()) return result.error();
  fsm.apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                    : proto::SessionEvent::kVerifyFail);

  ConfirmOutcome outcome;
  outcome.accepted = result.value().accepted;
  outcome.verdict = pal_out.value().verdict;
  outcome.reason = result.value().reason;
  outcome.code = result.value().code;
  outcome.timing = session.value().timing;
  return outcome;
}

Result<TrustedPathClient::BatchOutcome> TrustedPathClient::submit_batch(
    const std::vector<BatchTx>& txs) {
  if (!enrolled()) {
    return Error{Err::kBadState, "submit_batch: client not enrolled"};
  }
  if (txs.empty()) {
    return Error{Err::kInvalidArgument, "submit_batch: empty batch"};
  }

  // 1. Submit every transaction, collecting one challenge each.
  PalBatchConfirmInput pal_input;
  pal_input.sealed_key = *sealed_key_;
  pal_input.code_len = config_.code_len;
  pal_input.max_attempts = config_.max_attempts;
  pal_input.user_timeout_ns = config_.user_timeout.ns;
  // One protocol session per transaction in the batch (the PAL session
  // is shared; the wire sessions are not).
  std::vector<proto::Session> fsms(txs.size(),
                                   proto::Session(proto::SessionPhase::kConfirm));
  std::vector<std::uint64_t> tx_ids;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto& [summary, payload] = txs[i];
    if (auto s = expect_action(fsms[i].apply(proto::SessionEvent::kBegin),
                               proto::SessionAction::kSendChallenge,
                               "submit_batch");
        !s.ok()) {
      return s.error();
    }
    TxSubmit submit{config_.client_id, summary, payload};
    auto challenge_bytes = exchange(MsgType::kTxSubmit, submit.serialize());
    if (!challenge_bytes.ok()) return challenge_bytes.error();
    auto challenge = TxChallenge::deserialize(challenge_bytes.value());
    if (!challenge.ok()) return challenge.error();
    pal_input.items.push_back(
        BatchItem{summary, submit.digest(), challenge.value().nonce});
    tx_ids.push_back(challenge.value().tx_id);
  }

  // 2. One session for the whole batch.
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status.error();
  auto pal_out = PalBatchConfirmOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();
  const bool confirmed = pal_out.value().verdict == Verdict::kConfirmed;
  if (confirmed && pal_out.value().signatures.size() != txs.size()) {
    return Error{Err::kInternal, "submit_batch: signature count mismatch"};
  }

  // 3. Settle each transaction with the SP.
  BatchOutcome outcome;
  outcome.verdict = pal_out.value().verdict;
  outcome.timing = session.value().timing;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    TxConfirm confirm;
    confirm.client_id = config_.client_id;
    confirm.tx_id = tx_ids[i];
    confirm.verdict = pal_out.value().verdict;
    if (confirmed) confirm.signature = pal_out.value().signatures[i];
    if (auto s = expect_action(fsms[i].apply(proto::SessionEvent::kComplete),
                               proto::SessionAction::kVerify, "submit_batch");
        !s.ok()) {
      return s.error();
    }
    auto result_bytes = exchange(MsgType::kTxConfirm, confirm.serialize());
    if (!result_bytes.ok()) return result_bytes.error();
    auto result = TxResult::deserialize(result_bytes.value());
    if (!result.ok()) return result.error();
    fsms[i].apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                          : proto::SessionEvent::kVerifyFail);
    outcome.results.push_back(result.take());
  }
  return outcome;
}

Result<TrustedPathClient::LimitedOutcome>
TrustedPathClient::submit_limited_transaction(const std::string& summary,
                                              BytesView payload,
                                              std::uint64_t amount_cents,
                                              std::uint64_t limit_cents) {
  if (!enrolled()) {
    return Error{Err::kBadState, "submit_limited: client not enrolled"};
  }
  proto::Session fsm(proto::SessionPhase::kConfirm);

  if (auto s = expect_action(fsm.apply(proto::SessionEvent::kBegin),
                             proto::SessionAction::kSendChallenge,
                             "submit_limited");
      !s.ok()) {
    return s.error();
  }
  TxSubmit submit{config_.client_id, summary,
                  Bytes(payload.begin(), payload.end())};
  auto challenge_bytes = exchange(MsgType::kTxSubmit, submit.serialize());
  if (!challenge_bytes.ok()) return challenge_bytes.error();
  auto challenge = TxChallenge::deserialize(challenge_bytes.value());
  if (!challenge.ok()) return challenge.error();

  PalLimitedConfirmInput pal_input;
  pal_input.tx_summary = summary;
  pal_input.tx_digest = submit.digest();
  pal_input.nonce = challenge.value().nonce;
  pal_input.sealed_key = *sealed_key_;
  pal_input.amount_cents = amount_cents;
  pal_input.limit_cents = limit_cents;
  pal_input.sealed_state = spending_state_;
  pal_input.code_len = config_.code_len;
  pal_input.max_attempts = config_.max_attempts;
  pal_input.user_timeout_ns = config_.user_timeout.ns;
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status.error();
  auto pal_out = PalLimitedConfirmOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();

  if (!pal_out.value().new_sealed_state.empty()) {
    spending_state_ = pal_out.value().new_sealed_state;
  }

  TxConfirm confirm;
  confirm.client_id = config_.client_id;
  confirm.tx_id = challenge.value().tx_id;
  confirm.verdict = pal_out.value().verdict;
  confirm.signature = pal_out.value().signature;
  if (auto s = expect_action(fsm.apply(proto::SessionEvent::kComplete),
                             proto::SessionAction::kVerify, "submit_limited");
      !s.ok()) {
    return s.error();
  }
  auto result_bytes = exchange(MsgType::kTxConfirm, confirm.serialize());
  if (!result_bytes.ok()) return result_bytes.error();
  auto result = TxResult::deserialize(result_bytes.value());
  if (!result.ok()) return result.error();
  fsm.apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                    : proto::SessionEvent::kVerifyFail);

  LimitedOutcome outcome;
  outcome.accepted = result.value().accepted;
  outcome.verdict = pal_out.value().verdict;
  outcome.limit_exceeded = pal_out.value().limit_exceeded;
  outcome.spent_cents = pal_out.value().spent_cents;
  outcome.limit_cents = pal_out.value().limit_cents;
  outcome.reason = result.value().reason;
  outcome.code = result.value().code;
  outcome.timing = session.value().timing;
  return outcome;
}

}  // namespace tp::core
