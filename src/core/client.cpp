#include "core/client.h"

#include <algorithm>
#include <optional>

#include "proto/client_core.h"

namespace tp::core {

namespace {

// Deterministic per-client jitter stream: same policy seed, different
// client ids -> decorrelated backoff (avoids retry synchronization
// across a fleet sharing one config).
std::uint64_t jitter_seed_for(const ClientConfig& config) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : config.client_id) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  }
  return h ^ config.retry.jitter_seed;
}

}  // namespace

TrustedPathClient::TrustedPathClient(drtm::Platform& platform,
                                     net::Endpoint& sp_link,
                                     const tpm::AikCertificate& aik_certificate,
                                     ClientConfig config)
    : TrustedPathClient(platform, sp_link, aik_certificate.serialize(),
                        std::move(config)) {}

TrustedPathClient::TrustedPathClient(drtm::Platform& platform,
                                     net::Endpoint& sp_link,
                                     Bytes credential, ClientConfig config)
    : platform_(&platform),
      plain_transport_(sp_link),
      transport_(&plain_transport_),
      credential_(std::move(credential)),
      config_(std::move(config)),
      driver_(platform),
      pal_(make_trusted_path_pal()),
      retry_rng_(jitter_seed_for(config_)) {
  if (config_.metrics != nullptr) {
    c_retries_ = &config_.metrics->counter("client.retries");
    c_give_ups_ = &config_.metrics->counter("client.exchange_give_ups");
    c_stale_ = &config_.metrics->counter("client.stale_frames_discarded");
  }
}

template <typename Msg>
Result<Msg> TrustedPathClient::exchange_msg(
    proto::Session& fsm, proto::SessionEvent event,
    proto::SessionAction want_action, const char* where, MsgType type,
    BytesView payload, MsgType want_type) {
  const Bytes frame = envelope(type, payload);
  SimClock& clock = platform_->clock();
  const RetryPolicy& policy = config_.retry;
  const std::uint32_t attempts =
      std::max<std::uint32_t>(policy.max_attempts, 1);
  const bool deadline_bounded = policy.deadline.ns > 0;
  const SimTime deadline = clock.now() + policy.deadline;
  SimDuration backoff = policy.backoff_base;
  Error last{Err::kTimeout, std::string(where) + ": no usable response"};

  const proto::ClientBackoffPolicy backoff_policy{policy.backoff_base.ns,
                                                  policy.backoff_cap.ns};
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter (proto::client_plan_backoff): sleep =
      // min(cap, uniform(base, 3 * prev)), charged to the virtual clock
      // (nothing real sleeps).
      backoff = proto::client_plan_backoff(backoff_policy, backoff,
                                           retry_rng_);
      clock.charge("net:retry-backoff", backoff);
      if (deadline_bounded && clock.now() >= deadline) break;
      ++retries_;
      if (c_retries_ != nullptr) c_retries_->inc();
    }
    // A retransmission replays the SAME event through the shared FSM --
    // a begin re-opens the session, a completion retries the settle --
    // and the transition table must still demand the action we are about
    // to repeat. A mismatch means this retry would be an illegal message,
    // not a recovery.
    if (!proto::client_may_send(fsm, event, want_action)) {
      return Error{Err::kBadState,
                   std::string(where) + ": protocol session out of step"};
    }
    auto response = transport_->exchange(frame);
    // Drain delivered frames until one is the well-formed response we
    // want (proto::client_classify_rx): corrupt, stale or duplicated
    // frames are noise queued ahead of the answer, not the answer; an
    // exhausted link ends the attempt.
    while (true) {
      proto::ClientRxEvent rx;
      std::optional<Result<Msg>> parsed;
      if (!response.ok()) {
        const Err code = response.error().code;
        last = response.error();
        // kTimeout / kUnsupported: nothing more is pending. Any other
        // code means a frame WAS delivered but was unusable; there may
        // be another behind it.
        rx.link_exhausted = code == Err::kTimeout || code == Err::kUnsupported;
      } else {
        rx.delivered = true;
        auto opened = open_envelope(response.value());
        if (opened.ok() && opened.value().first == want_type) {
          rx.want_type = true;
          parsed.emplace(Msg::deserialize(opened.value().second));
          if (parsed->ok()) {
            rx.well_formed = true;
          } else {
            last = parsed->error();
          }
        } else if (opened.ok()) {
          last = Error{Err::kBadState,
                       std::string(where) + ": unexpected response type"};
        } else {
          last = opened.error();
        }
      }
      const proto::ClientRxDecision decision = proto::client_classify_rx(rx);
      if (decision == proto::ClientRxDecision::kAccept) {
        return *std::move(parsed);
      }
      if (decision == proto::ClientRxDecision::kNextAttempt) break;
      if (c_stale_ != nullptr) c_stale_->inc();
      response = transport_->receive_pending();
    }
    if (deadline_bounded && clock.now() >= deadline) break;
  }
  ++give_ups_;
  if (c_give_ups_ != nullptr) c_give_ups_->inc();
  return last;
}

Status TrustedPathClient::enroll() {
  proto::Session fsm(proto::SessionPhase::kEnroll);

  // 1. Request a challenge.
  auto challenge = exchange_msg<EnrollChallenge>(
      fsm, proto::SessionEvent::kBegin, proto::SessionAction::kSendChallenge,
      "enroll", MsgType::kEnrollBegin,
      EnrollBegin{config_.client_id}.serialize(), MsgType::kEnrollChallenge);
  if (!challenge.ok()) return challenge.error();

  // 2. Run the ENROLL PAL session.
  PalEnrollInput pal_input;
  pal_input.nonce = challenge.value().nonce;
  pal_input.key_bits = config_.key_bits;
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status;
  auto pal_out = PalEnrollOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();

  // 3. Send the key + quote + attestation certificate to the SP, tagged
  // with this platform's quote format.
  EnrollComplete complete;
  complete.client_id = config_.client_id;
  complete.format = platform_->backend();
  complete.confirmation_pubkey = pal_out.value().pubkey;
  complete.quote = pal_out.value().quote;
  complete.aik_certificate = credential_;
  auto result = exchange_msg<EnrollResult>(
      fsm, proto::SessionEvent::kComplete, proto::SessionAction::kVerify,
      "enroll", MsgType::kEnrollComplete, complete.serialize(),
      MsgType::kEnrollResult);
  if (!result.ok()) return result.error();
  fsm.apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                    : proto::SessionEvent::kVerifyFail);
  if (!result.value().accepted) {
    return Error{Err::kAuthFail,
                 "enrollment rejected: " + result.value().reason};
  }

  pubkey_ = pal_out.value().pubkey;
  sealed_key_ = pal_out.value().sealed_key;
  return Status::ok_status();
}

Result<TrustedPathClient::ConfirmOutcome>
TrustedPathClient::submit_transaction(const std::string& summary,
                                      BytesView payload) {
  if (!enrolled()) {
    return Error{Err::kBadState, "submit: client not enrolled"};
  }
  proto::Session fsm(proto::SessionPhase::kConfirm);

  // 1. Submit the transaction; receive the challenge.
  TxSubmit submit{config_.client_id, summary,
                  Bytes(payload.begin(), payload.end())};
  auto challenge = exchange_msg<TxChallenge>(
      fsm, proto::SessionEvent::kBegin, proto::SessionAction::kSendChallenge,
      "submit", MsgType::kTxSubmit, submit.serialize(),
      MsgType::kTxChallenge);
  if (!challenge.ok()) return challenge.error();

  // 2. Run the CONFIRM PAL session.
  PalConfirmInput pal_input;
  pal_input.tx_summary = summary;
  pal_input.tx_digest = submit.digest();
  pal_input.nonce = challenge.value().nonce;
  pal_input.sealed_key = *sealed_key_;
  pal_input.code_len = config_.code_len;
  pal_input.max_attempts = config_.max_attempts;
  pal_input.user_timeout_ns = config_.user_timeout.ns;
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status.error();
  auto pal_out = PalConfirmOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();

  // 3. Report the verdict (and signature, if confirmed).
  TxConfirm confirm;
  confirm.client_id = config_.client_id;
  confirm.tx_id = challenge.value().tx_id;
  confirm.verdict = pal_out.value().verdict;
  confirm.signature = pal_out.value().signature;
  auto result = exchange_msg<TxResult>(
      fsm, proto::SessionEvent::kComplete, proto::SessionAction::kVerify,
      "submit", MsgType::kTxConfirm, confirm.serialize(), MsgType::kTxResult);
  if (!result.ok()) return result.error();
  fsm.apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                    : proto::SessionEvent::kVerifyFail);

  ConfirmOutcome outcome;
  outcome.accepted = result.value().accepted;
  outcome.verdict = pal_out.value().verdict;
  outcome.reason = result.value().reason;
  outcome.code = result.value().code;
  outcome.timing = session.value().timing;
  return outcome;
}

Result<TrustedPathClient::BatchOutcome> TrustedPathClient::submit_batch(
    const std::vector<BatchTx>& txs) {
  if (!enrolled()) {
    return Error{Err::kBadState, "submit_batch: client not enrolled"};
  }
  if (txs.empty()) {
    return Error{Err::kInvalidArgument, "submit_batch: empty batch"};
  }

  // 1. Submit every transaction, collecting one challenge each.
  PalBatchConfirmInput pal_input;
  pal_input.sealed_key = *sealed_key_;
  pal_input.code_len = config_.code_len;
  pal_input.max_attempts = config_.max_attempts;
  pal_input.user_timeout_ns = config_.user_timeout.ns;
  // One protocol session per transaction in the batch (the PAL session
  // is shared; the wire sessions are not).
  std::vector<proto::Session> fsms(txs.size(),
                                   proto::Session(proto::SessionPhase::kConfirm));
  std::vector<std::uint64_t> tx_ids;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto& [summary, payload] = txs[i];
    TxSubmit submit{config_.client_id, summary, payload};
    auto challenge = exchange_msg<TxChallenge>(
        fsms[i], proto::SessionEvent::kBegin,
        proto::SessionAction::kSendChallenge, "submit_batch",
        MsgType::kTxSubmit, submit.serialize(), MsgType::kTxChallenge);
    if (!challenge.ok()) return challenge.error();
    pal_input.items.push_back(
        BatchItem{summary, submit.digest(), challenge.value().nonce});
    tx_ids.push_back(challenge.value().tx_id);
  }

  // 2. One session for the whole batch.
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status.error();
  auto pal_out = PalBatchConfirmOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();
  const bool confirmed = pal_out.value().verdict == Verdict::kConfirmed;
  if (confirmed && pal_out.value().signatures.size() != txs.size()) {
    return Error{Err::kInternal, "submit_batch: signature count mismatch"};
  }

  // 3. Settle each transaction with the SP.
  BatchOutcome outcome;
  outcome.verdict = pal_out.value().verdict;
  outcome.timing = session.value().timing;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    TxConfirm confirm;
    confirm.client_id = config_.client_id;
    confirm.tx_id = tx_ids[i];
    confirm.verdict = pal_out.value().verdict;
    if (confirmed) confirm.signature = pal_out.value().signatures[i];
    auto result = exchange_msg<TxResult>(
        fsms[i], proto::SessionEvent::kComplete, proto::SessionAction::kVerify,
        "submit_batch", MsgType::kTxConfirm, confirm.serialize(),
        MsgType::kTxResult);
    if (!result.ok()) return result.error();
    fsms[i].apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                          : proto::SessionEvent::kVerifyFail);
    outcome.results.push_back(result.take());
  }
  return outcome;
}

Result<TrustedPathClient::LimitedOutcome>
TrustedPathClient::submit_limited_transaction(const std::string& summary,
                                              BytesView payload,
                                              std::uint64_t amount_cents,
                                              std::uint64_t limit_cents) {
  if (!enrolled()) {
    return Error{Err::kBadState, "submit_limited: client not enrolled"};
  }
  proto::Session fsm(proto::SessionPhase::kConfirm);

  TxSubmit submit{config_.client_id, summary,
                  Bytes(payload.begin(), payload.end())};
  auto challenge = exchange_msg<TxChallenge>(
      fsm, proto::SessionEvent::kBegin, proto::SessionAction::kSendChallenge,
      "submit_limited", MsgType::kTxSubmit, submit.serialize(),
      MsgType::kTxChallenge);
  if (!challenge.ok()) return challenge.error();

  PalLimitedConfirmInput pal_input;
  pal_input.tx_summary = summary;
  pal_input.tx_digest = submit.digest();
  pal_input.nonce = challenge.value().nonce;
  pal_input.sealed_key = *sealed_key_;
  pal_input.amount_cents = amount_cents;
  pal_input.limit_cents = limit_cents;
  pal_input.sealed_state = spending_state_;
  pal_input.code_len = config_.code_len;
  pal_input.max_attempts = config_.max_attempts;
  pal_input.user_timeout_ns = config_.user_timeout.ns;
  auto session = driver_.run(pal_, pal_input.marshal());
  if (!session.ok()) return session.error();
  if (!session.value().status.ok()) return session.value().status.error();
  auto pal_out = PalLimitedConfirmOutput::unmarshal(session.value().output);
  if (!pal_out.ok()) return pal_out.error();

  if (!pal_out.value().new_sealed_state.empty()) {
    spending_state_ = pal_out.value().new_sealed_state;
  }

  TxConfirm confirm;
  confirm.client_id = config_.client_id;
  confirm.tx_id = challenge.value().tx_id;
  confirm.verdict = pal_out.value().verdict;
  confirm.signature = pal_out.value().signature;
  auto result = exchange_msg<TxResult>(
      fsm, proto::SessionEvent::kComplete, proto::SessionAction::kVerify,
      "submit_limited", MsgType::kTxConfirm, confirm.serialize(),
      MsgType::kTxResult);
  if (!result.ok()) return result.error();
  fsm.apply(result.value().accepted ? proto::SessionEvent::kVerifyOk
                                    : proto::SessionEvent::kVerifyFail);

  LimitedOutcome outcome;
  outcome.accepted = result.value().accepted;
  outcome.verdict = pal_out.value().verdict;
  outcome.limit_exceeded = pal_out.value().limit_exceeded;
  outcome.spent_cents = pal_out.value().spent_cents;
  outcome.limit_cents = pal_out.value().limit_cents;
  outcome.reason = result.value().reason;
  outcome.code = result.value().code;
  outcome.timing = session.value().timing;
  return outcome;
}

}  // namespace tp::core
