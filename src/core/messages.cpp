#include "core/messages.h"

#include "crypto/sha256.h"
#include "util/serial.h"

namespace tp::core {

namespace {
// Shared strict-read helpers: every message finishes with
// expect_exhausted so trailing garbage is rejected.
Result<std::string> read_string(BinaryReader& r) { return r.var_string(); }
}  // namespace

// ---- EnrollBegin -------------------------------------------------------

Bytes EnrollBegin::serialize() const {
  BinaryWriter w;
  w.var_string(client_id);
  return w.take();
}

Result<EnrollBegin> EnrollBegin::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = read_string(r);
  if (!id.ok()) return id.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return EnrollBegin{id.take()};
}

// ---- EnrollChallenge ----------------------------------------------------

Bytes EnrollChallenge::serialize() const {
  BinaryWriter w;
  w.var_bytes(nonce);
  return w.take();
}

Result<EnrollChallenge> EnrollChallenge::deserialize(BytesView data) {
  BinaryReader r(data);
  auto nonce = r.var_bytes();
  if (!nonce.ok()) return nonce.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return EnrollChallenge{nonce.take()};
}

// ---- EnrollComplete ------------------------------------------------------

Bytes EnrollComplete::serialize() const {
  BinaryWriter w;
  w.var_string(client_id);
  w.u8(static_cast<std::uint8_t>(format));
  w.var_bytes(confirmation_pubkey);
  w.var_bytes(quote);
  w.var_bytes(aik_certificate);
  return w.take();
}

Result<EnrollComplete> EnrollComplete::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = read_string(r);
  if (!id.ok()) return id.error();
  auto tag = r.u8();
  if (!tag.ok()) return tag.error();
  const auto format = tpm::quote_format_from_wire(tag.value());
  if (!format.has_value()) {
    return Error{Err::kInvalidArgument, "EnrollComplete: unknown quote format"};
  }
  auto pk = r.var_bytes();
  if (!pk.ok()) return pk.error();
  auto quote = r.var_bytes();
  if (!quote.ok()) return quote.error();
  auto cert = r.var_bytes();
  if (!cert.ok()) return cert.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  EnrollComplete msg;
  msg.client_id = id.take();
  msg.format = *format;
  msg.confirmation_pubkey = pk.take();
  msg.quote = quote.take();
  msg.aik_certificate = cert.take();
  return msg;
}

// ---- EnrollResult ---------------------------------------------------------

Bytes EnrollResult::serialize() const {
  BinaryWriter w;
  w.u8(accepted ? 1 : 0);
  w.var_string(reason);
  w.u8(static_cast<std::uint8_t>(code));
  return w.take();
}

Result<EnrollResult> EnrollResult::deserialize(BytesView data) {
  BinaryReader r(data);
  auto flag = r.u8();
  if (!flag.ok()) return flag.error();
  auto reason = read_string(r);
  if (!reason.ok()) return reason.error();
  auto code = r.u8();
  if (!code.ok()) return code.error();
  if (!proto::reject_code_valid(code.value())) {
    return Error{Err::kInvalidArgument, "EnrollResult: bad reject code"};
  }
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return EnrollResult{flag.value() != 0, reason.take(),
                      static_cast<proto::RejectCode>(code.value())};
}

// ---- TxSubmit ---------------------------------------------------------------

Bytes TxSubmit::digest() const {
  BinaryWriter w;
  w.var_string(summary);
  w.var_bytes(payload);
  return crypto::Sha256::hash(w.data());
}

Bytes TxSubmit::serialize() const {
  BinaryWriter w;
  w.var_string(client_id);
  w.var_string(summary);
  w.var_bytes(payload);
  return w.take();
}

Result<TxSubmit> TxSubmit::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = read_string(r);
  if (!id.ok()) return id.error();
  auto summary = read_string(r);
  if (!summary.ok()) return summary.error();
  auto payload = r.var_bytes();
  if (!payload.ok()) return payload.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return TxSubmit{id.take(), summary.take(), payload.take()};
}

// ---- TxChallenge -------------------------------------------------------------

Bytes TxChallenge::serialize() const {
  BinaryWriter w;
  w.u64(tx_id);
  w.var_bytes(nonce);
  return w.take();
}

Result<TxChallenge> TxChallenge::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = r.u64();
  if (!id.ok()) return id.error();
  auto nonce = r.var_bytes();
  if (!nonce.ok()) return nonce.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return TxChallenge{id.value(), nonce.take()};
}

// ---- TxConfirm ------------------------------------------------------------------

Bytes TxConfirm::serialize() const {
  BinaryWriter w;
  w.var_string(client_id);
  w.u64(tx_id);
  w.u8(static_cast<std::uint8_t>(verdict));
  w.var_bytes(signature);
  return w.take();
}

Result<TxConfirm> TxConfirm::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = read_string(r);
  if (!id.ok()) return id.error();
  auto tx = r.u64();
  if (!tx.ok()) return tx.error();
  auto v = r.u8();
  if (!v.ok()) return v.error();
  if (v.value() < 1 || v.value() > 3) {
    return Error{Err::kInvalidArgument, "TxConfirm: bad verdict"};
  }
  auto sig = r.var_bytes();
  if (!sig.ok()) return sig.error();
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return TxConfirm{id.take(), tx.value(), static_cast<Verdict>(v.value()),
                   sig.take()};
}

// ---- TxResult ----------------------------------------------------------------------

Bytes TxResult::serialize() const {
  BinaryWriter w;
  w.u64(tx_id);
  w.u8(accepted ? 1 : 0);
  w.var_string(reason);
  w.u8(static_cast<std::uint8_t>(code));
  return w.take();
}

Result<TxResult> TxResult::deserialize(BytesView data) {
  BinaryReader r(data);
  auto id = r.u64();
  if (!id.ok()) return id.error();
  auto flag = r.u8();
  if (!flag.ok()) return flag.error();
  auto reason = read_string(r);
  if (!reason.ok()) return reason.error();
  auto code = r.u8();
  if (!code.ok()) return code.error();
  if (!proto::reject_code_valid(code.value())) {
    return Error{Err::kInvalidArgument, "TxResult: bad reject code"};
  }
  if (auto s = r.expect_exhausted(); !s.ok()) return s.error();
  return TxResult{id.value(), flag.value() != 0, reason.take(),
                  static_cast<proto::RejectCode>(code.value())};
}

// ---- statement & envelope -------------------------------------------------

Bytes confirmation_statement(BytesView tx_digest, BytesView nonce,
                             Verdict verdict) {
  BinaryWriter w;
  w.var_string("TP-CONFIRM-v1");
  w.var_bytes(tx_digest);
  w.var_bytes(nonce);
  w.u8(static_cast<std::uint8_t>(verdict));
  return w.take();
}

Bytes envelope(MsgType type, BytesView payload) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(payload);
  return w.take();
}

Result<std::pair<MsgType, Bytes>> open_envelope(BytesView frame) {
  if (frame.empty()) {
    return Error{Err::kInvalidArgument, "envelope: empty frame"};
  }
  const std::uint8_t tag = frame[0];
  if (tag < 1 || tag > 8) {
    return Error{Err::kInvalidArgument, "envelope: unknown message type"};
  }
  return std::make_pair(static_cast<MsgType>(tag),
                        Bytes(frame.begin() + 1, frame.end()));
}

}  // namespace tp::core
