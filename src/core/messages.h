// Wire messages of the uni-directional trusted path protocol.
//
// Two phases (see DESIGN.md):
//   Enrollment:   EnrollBegin -> EnrollChallenge -> EnrollComplete ->
//                 EnrollResult
//   Confirmation: TxSubmit -> TxChallenge -> TxConfirm -> TxResult
//
// Every message is framed as: u8 type tag || payload. Deserialization is
// strict: unknown tags, truncation and trailing bytes are rejected, since
// the receiver is by assumption talking to a compromised host.
#pragma once

#include <cstdint>
#include <string>

#include "proto/reject_code.h"
#include "tpm/attestation.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::core {

enum class MsgType : std::uint8_t {
  kEnrollBegin = 1,
  kEnrollChallenge = 2,
  kEnrollComplete = 3,
  kEnrollResult = 4,
  kTxSubmit = 5,
  kTxChallenge = 6,
  kTxConfirm = 7,
  kTxResult = 8,
};

/// The PAL's verdict on one confirmation session.
enum class Verdict : std::uint8_t {
  kConfirmed = 1,  // human typed the matching code
  kRejected = 2,   // human typed the reject line (or code check failed)
  kTimeout = 3,    // nobody answered
};

constexpr const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kConfirmed: return "confirmed";
    case Verdict::kRejected: return "rejected";
    case Verdict::kTimeout: return "timeout";
  }
  return "unknown";
}

// ---- enrollment ------------------------------------------------------

struct EnrollBegin {
  std::string client_id;

  Bytes serialize() const;
  static Result<EnrollBegin> deserialize(BytesView data);
};

struct EnrollChallenge {
  Bytes nonce;  // 20 bytes of SP freshness

  Bytes serialize() const;
  static Result<EnrollChallenge> deserialize(BytesView data);
};

struct EnrollComplete {
  std::string client_id;
  Bytes confirmation_pubkey;  // serialized confirmation public key
                              // (RsaPublicKey for kTpm12, SEC1 point for
                              // kTpm2)
  Bytes quote;                // serialized quote (tpm::QuoteResult for
                              // kTpm12, tpm::Tpm2Quote for kTpm2)
  Bytes aik_certificate;      // serialized attestation-key certificate
                              // (tpm::AikCertificate for kTpm12,
                              // tpm::AkCertificate for kTpm2)
  /// Which attestation backend produced the evidence above. On the wire
  /// as one u8 after client_id; unknown tags are rejected at parse time
  /// so the SP's per-format dispatch never sees an undefined format.
  tpm::QuoteFormat format = tpm::QuoteFormat::kTpm12;

  Bytes serialize() const;
  static Result<EnrollComplete> deserialize(BytesView data);
};

struct EnrollResult {
  bool accepted = false;
  std::string reason;
  /// Typed counterpart of `reason` (kNone when accepted). On the wire as
  /// one u8; the string stays alongside for log compatibility.
  proto::RejectCode code = proto::RejectCode::kNone;

  Bytes serialize() const;
  static Result<EnrollResult> deserialize(BytesView data);
};

// ---- transaction confirmation ----------------------------------------

struct TxSubmit {
  std::string client_id;
  std::string summary;  // human-readable ("pay 100 EUR to bob")
  Bytes payload;        // the full transaction body

  /// SHA-256 over (summary, payload): what the PAL signs and the SP
  /// checks; any bit flip in either field changes it.
  Bytes digest() const;

  Bytes serialize() const;
  static Result<TxSubmit> deserialize(BytesView data);
};

struct TxChallenge {
  std::uint64_t tx_id = 0;
  Bytes nonce;  // one-time, binds the confirmation to this submission

  Bytes serialize() const;
  static Result<TxChallenge> deserialize(BytesView data);
};

struct TxConfirm {
  std::string client_id;
  std::uint64_t tx_id = 0;
  Verdict verdict = Verdict::kTimeout;
  Bytes signature;  // PAL signature; empty unless kConfirmed

  Bytes serialize() const;
  static Result<TxConfirm> deserialize(BytesView data);
};

struct TxResult {
  std::uint64_t tx_id = 0;
  bool accepted = false;
  std::string reason;
  /// Typed counterpart of `reason` (kNone when accepted). On the wire as
  /// one u8; the string stays alongside for log compatibility.
  proto::RejectCode code = proto::RejectCode::kNone;

  Bytes serialize() const;
  static Result<TxResult> deserialize(BytesView data);
};

// ---- signature statement ----------------------------------------------

/// The byte string the confirmation PAL signs: domain tag, transaction
/// digest, SP nonce and verdict. Computed identically by PAL and SP.
Bytes confirmation_statement(BytesView tx_digest, BytesView nonce,
                             Verdict verdict);

// ---- envelope ----------------------------------------------------------

/// Frames a payload with its type tag.
Bytes envelope(MsgType type, BytesView payload);

/// Splits a frame into (type, payload view into `frame`).
Result<std::pair<MsgType, Bytes>> open_envelope(BytesView frame);

}  // namespace tp::core
