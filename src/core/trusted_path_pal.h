// The trusted-path PAL: the paper's primary contribution.
//
// One PAL image implements both protocol commands, which is essential:
// the confirmation key is sealed to PCR 17 = H(0 || H(image)), so the
// sealing PAL and the unsealing PAL must be the *same measured image*.
//
//   ENROLL  (once): generate an RSA confirmation keypair inside the
//           isolated environment, seal the private half to this PAL's own
//           measurement (locality 2 only), and emit the public key plus a
//           TPM quote over PCR 17 whose external data binds the key to
//           the service provider's nonce.
//
//   CONFIRM (per transaction): render the transaction summary and a fresh
//           random code on the exclusive display, wait for the human to
//           re-type the code on the physical keyboard, then unseal the
//           key and sign (tx digest, SP nonce, verdict). Malware cannot
//           inject the code (hardware input path), cannot alter the shown
//           transaction (exclusive display), and cannot extract or use
//           the key (sealed to this PAL).
#pragma once

#include <cstdint>
#include <string>

#include "core/messages.h"
#include "drtm/platform.h"
#include "pal/pal.h"
#include "tpm/pcr.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace tp::core {

inline constexpr char kPalName[] = "tp-confirmation-pal";
inline constexpr std::uint32_t kPalVersion = 1;

/// PAL command selector (first byte of the marshalled input).
enum class PalCommand : std::uint8_t {
  kEnroll = 1,
  kConfirm = 2,
  kConfirmBatch = 3,
  kConfirmLimited = 4,  // spending-limit extension (stateful)
  kConfirmQuote = 5,    // design alternative: quote instead of sealed key
};

// ---- ENROLL ----------------------------------------------------------

struct PalEnrollInput {
  Bytes nonce;                  // SP enrollment nonce
  std::uint32_t key_bits = 1024;  // RSA size; ignored on a TPM 2.0
                                  // platform (P-256 is fixed-size)

  Bytes marshal() const;
  static Result<PalEnrollInput> unmarshal(BytesView data);
};

struct PalEnrollOutput {
  Bytes pubkey;      // serialized confirmation public key (RsaPublicKey
                     // on 1.2 platforms, SEC1 P-256 point on 2.0)
  Bytes sealed_key;  // format-tagged private key sealed to this PAL
                     // (identity PCR, locality 2)
  Bytes quote;       // serialized quote over the attestation selection
                     // (QuoteResult on 1.2, Tpm2Quote on 2.0),
                     // external = SHA-256(pubkey || nonce)

  Bytes marshal() const;
  static Result<PalEnrollOutput> unmarshal(BytesView data);
};

/// External data the enrollment quote carries (recomputed by the SP).
Bytes enrollment_quote_binding(BytesView pubkey, BytesView nonce);

// ---- CONFIRM ----------------------------------------------------------

struct PalConfirmInput {
  std::string tx_summary;       // what the human must see
  Bytes tx_digest;              // SHA-256 of the full transaction
  Bytes nonce;                  // SP challenge for this transaction
  Bytes sealed_key;             // from enrollment
  std::uint32_t code_len = 6;
  std::uint32_t max_attempts = 3;   // typo tolerance
  std::int64_t user_timeout_ns = 60'000'000'000;  // 60 s per attempt

  Bytes marshal() const;
  static Result<PalConfirmInput> unmarshal(BytesView data);
};

struct PalConfirmOutput {
  Verdict verdict = Verdict::kTimeout;
  Bytes signature;          // over confirmation_statement(...); only for
                            // kConfirmed
  std::uint32_t attempts = 0;

  Bytes marshal() const;
  static Result<PalConfirmOutput> unmarshal(BytesView data);
};

// ---- CONFIRM (batch) ----------------------------------------------------
//
// Extension: confirm several transactions in ONE session. The user sees
// all of them on the trusted screen and types one code; the PAL signs
// each (digest, nonce) pair individually, so the SP-side verification is
// unchanged. Amortizes launch + Unseal across the batch (ablation A1).

struct BatchItem {
  std::string summary;
  Bytes tx_digest;
  Bytes nonce;
};

struct PalBatchConfirmInput {
  std::vector<BatchItem> items;
  Bytes sealed_key;
  std::uint32_t code_len = 6;
  std::uint32_t max_attempts = 3;
  std::int64_t user_timeout_ns = 60'000'000'000;

  Bytes marshal() const;
  static Result<PalBatchConfirmInput> unmarshal(BytesView data);
};

struct PalBatchConfirmOutput {
  Verdict verdict = Verdict::kTimeout;  // one verdict for the whole batch
  std::vector<Bytes> signatures;        // one per item iff kConfirmed
  std::uint32_t attempts = 0;

  Bytes marshal() const;
  static Result<PalBatchConfirmOutput> unmarshal(BytesView data);
};

/// The combined transaction line the batch screen shows (and the human
/// compares against their combined intention).
std::string batch_summary(const std::vector<BatchItem>& items);

// ---- CONFIRM (spending limit) ---------------------------------------------
//
// Stateful extension: the PAL enforces a cumulative spending limit that
// even total host compromise cannot raise or roll back. The limit and
// the running total live in rollback-protected sealed state (see
// pal/sealed_state.h): on first use the state is initialized with the
// limit the user sees on the trusted screen; afterwards the limit in the
// marshalled input is IGNORED in favour of the sealed one, and a stale
// state blob (the rollback attack: "replay yesterday's total") is
// rejected by the monotonic-counter check.

/// The TPM monotonic counter dedicated to spending state.
inline constexpr std::uint32_t kSpendingCounterId = 0x53'50;

struct PalLimitedConfirmInput {
  std::string tx_summary;
  Bytes tx_digest;
  Bytes nonce;
  Bytes sealed_key;
  std::uint64_t amount_cents = 0;
  std::uint64_t limit_cents = 0;  // honoured only when state is empty
  Bytes sealed_state;             // empty = first use
  std::uint32_t code_len = 6;
  std::uint32_t max_attempts = 3;
  std::int64_t user_timeout_ns = 60'000'000'000;

  Bytes marshal() const;
  static Result<PalLimitedConfirmInput> unmarshal(BytesView data);
};

struct PalLimitedConfirmOutput {
  Verdict verdict = Verdict::kTimeout;
  Bytes signature;                 // only for kConfirmed
  Bytes new_sealed_state;          // replaces the old blob on confirm
  std::uint64_t spent_cents = 0;   // cumulative, incl. this transaction
  std::uint64_t limit_cents = 0;   // the sealed (authoritative) limit
  bool limit_exceeded = false;     // rejected without asking the user
  std::uint32_t attempts = 0;

  Bytes marshal() const;
  static Result<PalLimitedConfirmOutput> unmarshal(BytesView data);
};

// ---- CONFIRM (quote design alternative) -----------------------------------
//
// Ablation A2: instead of the enrolled sealed signing key, the PAL could
// attest each confirmation directly with TPM_Quote (external data binds
// the transaction). Pros: no enrollment phase, no key storage. Cons: a
// Quote per transaction (the most expensive TPM command on most chips)
// and an AIK-certificate check per transaction at the SP. The sealed-key
// design the paper uses wins on the recurring path; this command and
// bench_design_ablation quantify by how much.

struct PalQuoteConfirmInput {
  std::string tx_summary;
  Bytes tx_digest;
  Bytes nonce;
  std::uint32_t code_len = 6;
  std::uint32_t max_attempts = 3;
  std::int64_t user_timeout_ns = 60'000'000'000;

  Bytes marshal() const;
  static Result<PalQuoteConfirmInput> unmarshal(BytesView data);
};

struct PalQuoteConfirmOutput {
  Verdict verdict = Verdict::kTimeout;
  Bytes quote;  // serialized tpm::QuoteResult; only for kConfirmed
  std::uint32_t attempts = 0;

  Bytes marshal() const;
  static Result<PalQuoteConfirmOutput> unmarshal(BytesView data);
};

/// What the quote's external data must be for a confirmed transaction.
Bytes quote_confirmation_binding(BytesView tx_digest, BytesView nonce);

struct AttestationPolicy;  // defined below

/// SP-side check for the quote design: AIK signature, nonce binding, and
/// PCR values matching one accepted policy.
Status verify_quote_confirmation(
    const crypto::RsaPublicKey& aik,
    const std::vector<AttestationPolicy>& accepted, BytesView tx_digest,
    BytesView nonce, BytesView quote_bytes);

// ---- descriptor & golden values ------------------------------------------

/// The genuine PAL (identity + behaviour).
pal::PalDescriptor make_trusted_path_pal();

/// The post-launch value of the PCR holding the genuine PAL's identity
/// (PCR 17 on AMD, PCR 18 on Intel -- the value is the same, the register
/// differs): what the service provider publishes as the golden
/// measurement. `alg` selects the PCR bank (SHA-1 on 1.2 platforms,
/// SHA-256 on 2.0).
Bytes golden_pcr17(crypto::HashAlg alg = crypto::HashAlg::kSha1);

/// What a valid enrollment quote must show for one platform flavour:
/// exactly this PCR selection holding exactly these values, in the
/// quote format the policy is published for. A 1.2 quote never matches
/// a kTpm2 policy and vice versa (the banks differ).
struct AttestationPolicy {
  tpm::PcrSelection selection;
  std::vector<Bytes> values;
  std::string label;  // for SP logs ("amd-skinit", "intel-txt-tpm2", ...)
  tpm::QuoteFormat format = tpm::QuoteFormat::kTpm12;
};

/// The published golden policy for a DRTM technology and TPM generation.
/// For Intel TXT the policy additionally pins the SINIT ACM +
/// launch-control-policy chain in PCR 17. kTpm2 policies carry SHA-256
/// golden values; their labels get a "-tpm2" suffix.
AttestationPolicy attestation_policy(
    drtm::DrtmTechnology technology, const drtm::TxtArtifacts& txt = {},
    tpm::QuoteFormat format = tpm::QuoteFormat::kTpm12);

/// Compute cost model of in-PAL software crypto, charged to the virtual
/// clock (2008-class CPU: keygen dominated by prime search, sign by one
/// CRT exponentiation).
SimDuration pal_keygen_cost(std::uint32_t key_bits);
SimDuration pal_sign_cost(std::uint32_t key_bits);
/// P-256 keygen and signing each cost about one base-point multiply on
/// the same CPU class -- the flat ~2 ms that makes the 2.0 enrollment
/// path so much cheaper than RSA keygen.
SimDuration pal_ecdsa_keygen_cost();
SimDuration pal_ecdsa_sign_cost();

}  // namespace tp::core
