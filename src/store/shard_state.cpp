#include "store/shard_state.h"

#include <algorithm>
#include <utility>

#include "util/serial.h"

namespace tp::store {
namespace {

using Session = proto::SessionTable::Session;

constexpr std::uint32_t kSnapshotMagic = 0x54505353;  // "TPSS"
constexpr std::uint16_t kSnapshotVersion = 1;
// Journal upserts order after every snapshot entry regardless of seq
// values (snapshot tokens are small indices).
constexpr std::uint64_t kJournalTokenBase = 1ull << 63;

std::string map_key(BytesView bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::string map_key(const SessionKey& key) {
  return map_key(BytesView(key.data(), key.size()));
}

void write_session(BinaryWriter& w, const SessionKey& key,
                   const Session& s) {
  w.raw(BytesView(key.data(), key.size()));
  w.u8(static_cast<std::uint8_t>(s.state));
  w.u64(static_cast<std::uint64_t>(s.deadline.ns));
  w.raw(BytesView(s.client.data(), s.client.size()));
  w.u8(s.nonce_len);
  w.raw(BytesView(s.nonce.data(), s.nonce.size()));
  w.raw(BytesView(s.tx_digest.data(), s.tx_digest.size()));
  w.raw(BytesView(s.request_digest.data(), s.request_digest.size()));
  w.u16(s.response_len);
  w.raw(BytesView(s.response.data(), s.response.size()));
}

template <std::size_t N>
Status read_array(BinaryReader& r, std::array<std::uint8_t, N>& out) {
  auto v = r.view(N);
  if (!v.ok()) return v.error();
  std::copy(v.value().begin(), v.value().end(), out.begin());
  return Status::ok_status();
}

Status read_session(BinaryReader& r, SessionKey& key, Session& s) {
  if (Status st = read_array(r, key); !st.ok()) return st;
  auto state = r.u8();
  if (!state.ok()) return state.error();
  if (state.value() >= proto::kSessionStateCount) {
    return Status(Err::kInvalidArgument, "session state out of range");
  }
  s.state = static_cast<proto::SessionState>(state.value());
  auto deadline = r.u64();
  if (!deadline.ok()) return deadline.error();
  s.deadline.ns = static_cast<std::int64_t>(deadline.value());
  if (Status st = read_array(r, s.client); !st.ok()) return st;
  auto nonce_len = r.u8();
  if (!nonce_len.ok()) return nonce_len.error();
  if (nonce_len.value() > proto::SessionTable::kMaxNonceLen) {
    return Status(Err::kInvalidArgument, "nonce length out of range");
  }
  s.nonce_len = nonce_len.value();
  if (Status st = read_array(r, s.nonce); !st.ok()) return st;
  if (Status st = read_array(r, s.tx_digest); !st.ok()) return st;
  if (Status st = read_array(r, s.request_digest); !st.ok()) return st;
  auto response_len = r.u16();
  if (!response_len.ok()) return response_len.error();
  if (response_len.value() > proto::SessionTable::kMaxCachedResponseLen) {
    return Status(Err::kInvalidArgument, "cached response length out of range");
  }
  s.response_len = response_len.value();
  if (Status st = read_array(r, s.response); !st.ok()) return st;
  return Status::ok_status();
}

void write_dedup(BinaryWriter& w, const DedupRow& row) {
  w.raw(BytesView(row.client.data(), row.client.size()));
  w.raw(BytesView(row.digest.data(), row.digest.size()));
  w.u64(row.tx_id);
}

Status read_dedup(BinaryReader& r, DedupRow& row) {
  if (Status st = read_array(r, row.client); !st.ok()) return st;
  if (Status st = read_array(r, row.digest); !st.ok()) return st;
  auto tx = r.u64();
  if (!tx.ok()) return tx.error();
  row.tx_id = tx.value();
  return Status::ok_status();
}

}  // namespace

Bytes serialize_shard_state(const ShardState& state) {
  BinaryWriter w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u64(state.last_seq);
  w.u64(static_cast<std::uint64_t>(state.source_now_ns));
  w.u64(state.next_tx_id);
  w.u64(state.tx_accepted_total);
  w.u32(static_cast<std::uint32_t>(state.enroll_sessions.size()));
  for (const SessionEntry& e : state.enroll_sessions) {
    write_session(w, e.key, e.session);
  }
  w.u32(static_cast<std::uint32_t>(state.tx_sessions.size()));
  for (const SessionEntry& e : state.tx_sessions) {
    write_session(w, e.key, e.session);
  }
  w.u32(static_cast<std::uint32_t>(state.enrolled.size()));
  for (const EnrolledClient& c : state.enrolled) {
    w.var_string(c.id);
    w.var_bytes(c.key_blob);
  }
  w.u32(static_cast<std::uint32_t>(state.replay_digests.size()));
  for (const ReplayDigest& d : state.replay_digests) {
    w.raw(BytesView(d.data(), d.size()));
  }
  w.u32(static_cast<std::uint32_t>(state.dedup.size()));
  for (const DedupRow& row : state.dedup) write_dedup(w, row);
  // Seal the whole blob: a snapshot is read exactly once per recovery,
  // so the CRC is cheap insurance against silent media damage.
  const std::uint32_t crc = crc32c(w.data());
  w.u32(crc);
  return w.take();
}

Result<ShardState> deserialize_shard_state(BytesView blob) {
  if (blob.size() < 4 + 4) {
    return Error{Err::kInvalidArgument, "snapshot too short"};
  }
  const BytesView body = blob.subspan(0, blob.size() - 4);
  BinaryReader crc_reader(blob.subspan(blob.size() - 4));
  if (crc32c(body) != crc_reader.u32().value()) {
    return Error{Err::kCryptoError, "snapshot crc mismatch"};
  }
  BinaryReader r(body);
  if (r.u32().value() != kSnapshotMagic) {
    return Error{Err::kCryptoError, "snapshot magic mismatch"};
  }
  const std::uint16_t version = r.u16().value();
  if (version != kSnapshotVersion) {
    return Error{Err::kUnsupported,
                 "snapshot version " + std::to_string(version)};
  }
  ShardState state;
  state.last_seq = r.u64().value();
  state.source_now_ns = static_cast<std::int64_t>(r.u64().value());
  state.next_tx_id = r.u64().value();
  state.tx_accepted_total = r.u64().value();

  auto read_sessions = [&r](std::vector<SessionEntry>& out) -> Status {
    auto count = r.u32();
    if (!count.ok()) return count.error();
    for (std::uint32_t i = 0; i < count.value(); ++i) {
      SessionEntry e;
      if (Status st = read_session(r, e.key, e.session); !st.ok()) return st;
      out.push_back(e);
    }
    return Status::ok_status();
  };
  if (Status st = read_sessions(state.enroll_sessions); !st.ok()) return st.error();
  if (Status st = read_sessions(state.tx_sessions); !st.ok()) return st.error();

  auto n_enrolled = r.u32();
  if (!n_enrolled.ok()) return n_enrolled.error();
  for (std::uint32_t i = 0; i < n_enrolled.value(); ++i) {
    EnrolledClient c;
    auto id = r.var_string();
    if (!id.ok()) return id.error();
    c.id = id.take();
    auto blob_bytes = r.var_bytes();
    if (!blob_bytes.ok()) return blob_bytes.error();
    c.key_blob = blob_bytes.take();
    if (c.key_blob.empty()) {
      return Error{Err::kInvalidArgument, "enrolled client with empty key"};
    }
    state.enrolled.push_back(std::move(c));
  }
  auto n_digests = r.u32();
  if (!n_digests.ok()) return n_digests.error();
  for (std::uint32_t i = 0; i < n_digests.value(); ++i) {
    ReplayDigest d{};
    if (Status st = read_array(r, d); !st.ok()) return st.error();
    state.replay_digests.push_back(d);
  }
  auto n_dedup = r.u32();
  if (!n_dedup.ok()) return n_dedup.error();
  for (std::uint32_t i = 0; i < n_dedup.value(); ++i) {
    DedupRow row;
    if (Status st = read_dedup(r, row); !st.ok()) return st.error();
    state.dedup.push_back(row);
  }
  if (Status st = r.expect_exhausted(); !st.ok()) {
    return Error{Err::kInvalidArgument, "snapshot trailing bytes"};
  }
  return state;
}

Bytes enroll_begin_body(std::int64_t now_ns, const SessionKey& key,
                        const Session& session) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now_ns));
  write_session(w, key, session);
  return w.take();
}

Bytes enroll_settle_body(std::int64_t now_ns, const SessionKey& key,
                         const Session& session, std::string_view client_id,
                         BytesView key_blob) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now_ns));
  write_session(w, key, session);
  w.var_string(client_id);
  w.var_bytes(key_blob);
  return w.take();
}

Bytes tx_begin_body(std::int64_t now_ns, const SessionKey& key,
                    const Session& session, std::uint64_t next_tx_id,
                    const DedupRow* dedup) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now_ns));
  write_session(w, key, session);
  w.u64(next_tx_id);
  w.u8(dedup != nullptr ? 1 : 0);
  if (dedup != nullptr) write_dedup(w, *dedup);
  return w.take();
}

Bytes tx_settle_body(std::int64_t now_ns, const SessionKey& key,
                     const Session& session, std::uint64_t next_tx_id,
                     std::uint64_t tx_accepted_total,
                     const ReplayDigest* digest) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now_ns));
  write_session(w, key, session);
  w.u64(next_tx_id);
  w.u64(tx_accepted_total);
  w.u8(digest != nullptr ? 1 : 0);
  if (digest != nullptr) w.raw(BytesView(digest->data(), digest->size()));
  return w.take();
}

Bytes replay_digest_body(std::int64_t now_ns, const ReplayDigest& digest) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now_ns));
  w.raw(BytesView(digest.data(), digest.size()));
  return w.take();
}

Bytes dedup_row_body(std::int64_t now_ns, const DedupRow& row) {
  BinaryWriter w;
  w.u64(static_cast<std::uint64_t>(now_ns));
  write_dedup(w, row);
  return w.take();
}

ShardStateBuilder::ShardStateBuilder(ShardState base) {
  source_now_ns_ = base.source_now_ns;
  next_tx_id_ = base.next_tx_id;
  tx_accepted_total_ = base.tx_accepted_total;
  last_seq_ = base.last_seq;
  auto seed_sessions = [this](SessionMap& map,
                              std::vector<SessionEntry>& entries) {
    for (SessionEntry& e : entries) {
      map.index.emplace(map_key(e.key), map.recs.size());
      // Snapshot entries keep their relative order; kJournalTokenBase
      // guarantees every journal upsert sorts after them on ties.
      map.recs.push_back(SessionRec{std::move(e), next_token_++});
    }
  };
  seed_sessions(enroll_, base.enroll_sessions);
  seed_sessions(tx_, base.tx_sessions);
  for (EnrolledClient& c : base.enrolled) {
    enrolled_index_.emplace(c.id, enrolled_.size());
    enrolled_.push_back(std::move(c));
  }
  for (const ReplayDigest& d : base.replay_digests) add_digest(d);
  for (const DedupRow& row : base.dedup) add_dedup(row);
}

void ShardStateBuilder::upsert(SessionMap& map, const SessionKey& key,
                               const Session& session, bool arm_token) {
  const std::string k = map_key(key);
  auto it = map.index.find(k);
  if (it == map.index.end()) {
    map.index.emplace(k, map.recs.size());
    map.recs.push_back(
        SessionRec{SessionEntry{key, session}, kJournalTokenBase + next_token_++});
    return;
  }
  SessionRec& rec = map.recs[it->second];
  rec.entry.session = session;
  // A begin re-arms the arrival token (the live table moves the slot to
  // the LRU back); a settle leaves it where its begin put it.
  if (arm_token) rec.token = kJournalTokenBase + next_token_++;
}

void ShardStateBuilder::add_digest(const ReplayDigest& digest) {
  const std::string k = map_key(BytesView(digest.data(), digest.size()));
  if (digest_index_.contains(k)) return;
  digest_index_.emplace(k, digests_.size());
  digests_.push_back(digest);
}

void ShardStateBuilder::add_dedup(const DedupRow& row) {
  const std::string k = map_key(row.client) + map_key(row.digest);
  auto it = dedup_index_.find(k);
  if (it != dedup_index_.end()) {
    dedup_[it->second].tx_id = row.tx_id;
    return;
  }
  dedup_index_.emplace(k, dedup_.size());
  dedup_.push_back(row);
}

Status ShardStateBuilder::apply(const JournalRecord& record) {
  if (record.seq <= last_seq_) return Status::ok_status();  // idempotence
  BinaryReader r(record.body);
  auto now = r.u64();
  if (!now.ok()) return now.error();
  const auto now_ns = static_cast<std::int64_t>(now.value());
  // Every arm fully parses before mutating, so a structurally invalid
  // record can never half-apply.
  auto exhausted = [&r, &record]() -> Status {
    if (Status st = r.expect_exhausted(); !st.ok()) {
      return Status(Err::kInvalidArgument,
                    std::string("trailing bytes in ") +
                        record_type_name(record.type) + " record");
    }
    return Status::ok_status();
  };

  switch (record.type) {
    case RecordType::kEnrollBegin: {
      SessionKey key{};
      Session session;
      if (Status st = read_session(r, key, session); !st.ok()) return st;
      if (Status st = exhausted(); !st.ok()) return st;
      upsert(enroll_, key, session, /*arm_token=*/true);
      break;
    }
    case RecordType::kEnrollSettle: {
      SessionKey key{};
      Session session;
      if (Status st = read_session(r, key, session); !st.ok()) return st;
      auto id = r.var_string();
      if (!id.ok()) return id.error();
      auto blob = r.var_bytes();
      if (!blob.ok()) return blob.error();
      if (Status st = exhausted(); !st.ok()) return st;
      upsert(enroll_, key, session, /*arm_token=*/false);
      if (!blob.value().empty()) {
        auto it = enrolled_index_.find(id.value());
        if (it != enrolled_index_.end()) {
          enrolled_[it->second].key_blob = blob.take();
        } else {
          enrolled_index_.emplace(id.value(), enrolled_.size());
          enrolled_.push_back(EnrolledClient{id.take(), blob.take()});
        }
      }
      break;
    }
    case RecordType::kTxBegin: {
      SessionKey key{};
      Session session;
      if (Status st = read_session(r, key, session); !st.ok()) return st;
      auto next_tx = r.u64();
      if (!next_tx.ok()) return next_tx.error();
      auto has_dedup = r.u8();
      if (!has_dedup.ok()) return has_dedup.error();
      DedupRow row;
      if (has_dedup.value() != 0) {
        if (Status st = read_dedup(r, row); !st.ok()) return st;
      }
      if (Status st = exhausted(); !st.ok()) return st;
      upsert(tx_, key, session, /*arm_token=*/true);
      next_tx_id_ = std::max(next_tx_id_, next_tx.value());
      if (has_dedup.value() != 0) add_dedup(row);
      break;
    }
    case RecordType::kTxSettle: {
      SessionKey key{};
      Session session;
      if (Status st = read_session(r, key, session); !st.ok()) return st;
      auto next_tx = r.u64();
      if (!next_tx.ok()) return next_tx.error();
      auto accepted = r.u64();
      if (!accepted.ok()) return accepted.error();
      auto has_digest = r.u8();
      if (!has_digest.ok()) return has_digest.error();
      ReplayDigest digest{};
      if (has_digest.value() != 0) {
        if (Status st = read_array(r, digest); !st.ok()) return st;
      }
      if (Status st = exhausted(); !st.ok()) return st;
      upsert(tx_, key, session, /*arm_token=*/false);
      next_tx_id_ = std::max(next_tx_id_, next_tx.value());
      tx_accepted_total_ = std::max(tx_accepted_total_, accepted.value());
      if (has_digest.value() != 0) add_digest(digest);
      break;
    }
    case RecordType::kReplayDigest: {
      ReplayDigest digest{};
      if (Status st = read_array(r, digest); !st.ok()) return st;
      if (Status st = exhausted(); !st.ok()) return st;
      add_digest(digest);
      break;
    }
    case RecordType::kDedupRow: {
      DedupRow row;
      if (Status st = read_dedup(r, row); !st.ok()) return st;
      if (Status st = exhausted(); !st.ok()) return st;
      add_dedup(row);
      break;
    }
  }
  source_now_ns_ = std::max(source_now_ns_, now_ns);
  last_seq_ = record.seq;
  ++applied_;
  return Status::ok_status();
}

ShardState ShardStateBuilder::take() {
  ShardState out;
  auto materialize = [](SessionMap& map) {
    std::sort(map.recs.begin(), map.recs.end(),
              [](const SessionRec& a, const SessionRec& b) {
                if (a.entry.session.deadline.ns != b.entry.session.deadline.ns) {
                  return a.entry.session.deadline.ns <
                         b.entry.session.deadline.ns;
                }
                return a.token < b.token;
              });
    std::vector<SessionEntry> entries;
    entries.reserve(map.recs.size());
    for (SessionRec& rec : map.recs) entries.push_back(std::move(rec.entry));
    return entries;
  };
  out.enroll_sessions = materialize(enroll_);
  out.tx_sessions = materialize(tx_);
  std::sort(enrolled_.begin(), enrolled_.end(),
            [](const EnrolledClient& a, const EnrolledClient& b) {
              return a.id < b.id;
            });
  out.enrolled = std::move(enrolled_);
  out.replay_digests = std::move(digests_);
  out.dedup = std::move(dedup_);
  out.source_now_ns = source_now_ns_;
  out.next_tx_id = next_tx_id_;
  out.tx_accepted_total = tx_accepted_total_;
  out.last_seq = last_seq_;
  return out;
}

}  // namespace tp::store
