// ShardState: one serialization for everything a verifier shard must
// not forget, shared by crash recovery and shard handoff.
//
// PR 8 established the durable-state vocabulary when it taught shards
// to hand live state to each other: enroll/tx sessions (with their
// cached idempotent replies), enrolled attestation keys, replay-cache
// digests and SubmitDedup rows. Crash recovery needs exactly the same
// set, so this module gives that vocabulary a byte format and two
// producers: a snapshot (the whole ShardState, CRC-sealed) and journal
// record bodies (one frame's worth of deltas). Recovery = deserialize
// snapshot, then fold journal records into it via ShardStateBuilder;
// the result feeds the same restore path import_handoff uses.
//
// Invariants the builder maintains:
//   - Sessions materialize in ascending (deadline, arrival) order -- the
//     order SessionTable::restore() wants so LRU order == deadline order
//     survives recovery. A session's arrival token is armed by its
//     begin-type record and kept by its settle (settling does not
//     re-arm the eviction clock, matching the live table).
//   - Records are idempotent: a duplicated record (same seq) is skipped,
//     and records already covered by the snapshot (seq <= last_seq) are
//     skipped, which is what makes the compaction crash window
//     ("snapshot written, journal not yet truncated") safe.
//   - Counters (next_tx_id, tx_accepted_total, source_now) max-merge, so
//     replaying any suffix of history lands on the final value.
//
// Enrolled keys are carried as opaque serialized-AttestationKey blobs:
// the store layer never parses them, so it depends on proto (session
// layout) but not on tpm.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/session_table.h"
#include "store/journal.h"
#include "util/bytes.h"
#include "util/result.h"

namespace tp::store {

using SessionKey = proto::SessionTable::Key;
using SessionEntry = proto::SessionTable::Entry;
using ReplayDigest = std::array<std::uint8_t, 16>;

/// One admitted client: identity plus its serialized AttestationKey
/// (tpm::AttestationKey::serialize). An empty blob never appears in a
/// ShardState -- rejected enrollments leave only their terminal session.
struct EnrolledClient {
  std::string id;
  Bytes key_blob;
};

/// One SubmitDedup row: (submitting client tag, payload digest) -> the
/// tx id its challenge was issued under.
struct DedupRow {
  SessionKey client{};
  SessionKey digest{};
  std::uint64_t tx_id = 0;
};

struct ShardState {
  std::vector<SessionEntry> enroll_sessions;  // ascending deadline
  std::vector<SessionEntry> tx_sessions;      // ascending deadline
  std::vector<EnrolledClient> enrolled;       // sorted by id
  std::vector<ReplayDigest> replay_digests;   // oldest first (FIFO order)
  std::vector<DedupRow> dedup;
  /// Virtual-clock position of the source shard when the state was
  /// captured; restore() advances the destination to it.
  std::int64_t source_now_ns = 0;
  std::uint64_t next_tx_id = 0;
  std::uint64_t tx_accepted_total = 0;
  /// Highest journal seq this state covers (snapshot compaction cursor).
  std::uint64_t last_seq = 0;

  bool empty() const {
    return enroll_sessions.empty() && tx_sessions.empty() &&
           enrolled.empty() && replay_digests.empty() && dedup.empty() &&
           next_tx_id == 0 && tx_accepted_total == 0;
  }
};

/// Snapshot codec: versioned, CRC32-C sealed. deserialize returns a
/// typed error (kCryptoError for CRC/magic damage, kInvalidArgument for
/// structural damage) rather than ever trusting corrupt bytes.
Bytes serialize_shard_state(const ShardState& state);
Result<ShardState> deserialize_shard_state(BytesView blob);

/// Journal record bodies (the payload after the seq+type header). Every
/// body leads with the shard's virtual-clock position so recovery can
/// re-arm deadlines against the clock the sessions were created under.
Bytes enroll_begin_body(std::int64_t now_ns, const SessionKey& key,
                        const proto::SessionTable::Session& session);
Bytes enroll_settle_body(std::int64_t now_ns, const SessionKey& key,
                         const proto::SessionTable::Session& session,
                         std::string_view client_id, BytesView key_blob);
Bytes tx_begin_body(std::int64_t now_ns, const SessionKey& key,
                    const proto::SessionTable::Session& session,
                    std::uint64_t next_tx_id, const DedupRow* dedup);
Bytes tx_settle_body(std::int64_t now_ns, const SessionKey& key,
                     const proto::SessionTable::Session& session,
                     std::uint64_t next_tx_id, std::uint64_t tx_accepted_total,
                     const ReplayDigest* digest);
Bytes replay_digest_body(std::int64_t now_ns, const ReplayDigest& digest);
Bytes dedup_row_body(std::int64_t now_ns, const DedupRow& row);

/// Folds decoded journal records into a base state (usually the
/// snapshot). apply() returns a typed error for a structurally invalid
/// body -- the caller treats it like any other corrupt record (keep the
/// prefix, surface the fault).
class ShardStateBuilder {
 public:
  explicit ShardStateBuilder(ShardState base);

  /// Applies one record. Records with seq <= the base snapshot's
  /// last_seq or <= the last applied seq are skipped (idempotence);
  /// skipped records still return ok.
  Status apply(const JournalRecord& record);

  /// Records actually folded in (excludes skipped duplicates).
  std::uint64_t applied() const { return applied_; }

  /// Materializes the final state (sessions sorted, enrolled sorted by
  /// id). The builder is spent afterwards.
  ShardState take();

 private:
  struct SessionRec {
    SessionEntry entry;
    std::uint64_t token = 0;  // arrival order for deadline ties
  };
  struct SessionMap {
    std::vector<SessionRec> recs;
    std::unordered_map<std::string, std::size_t> index;  // key bytes -> rec
  };

  void upsert(SessionMap& map, const SessionKey& key,
              const proto::SessionTable::Session& session, bool arm_token);
  void add_digest(const ReplayDigest& digest);
  void add_dedup(const DedupRow& row);

  SessionMap enroll_;
  SessionMap tx_;
  std::vector<EnrolledClient> enrolled_;
  std::unordered_map<std::string, std::size_t> enrolled_index_;
  std::vector<ReplayDigest> digests_;
  std::unordered_map<std::string, std::size_t> digest_index_;
  std::vector<DedupRow> dedup_;
  std::unordered_map<std::string, std::size_t> dedup_index_;
  std::int64_t source_now_ns_ = 0;
  std::uint64_t next_tx_id_ = 0;
  std::uint64_t tx_accepted_total_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t next_token_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace tp::store
