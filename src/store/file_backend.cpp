#include "store/file_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace tp::store {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("FileBackend: " + what + ": " +
                           std::strerror(errno));
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open for fsync " + path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + path);
  }
  ::close(fd);
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return {};
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

}  // namespace

FileBackend::FileBackend(std::string directory) : dir_(std::move(directory)) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    fail("mkdir " + dir_);
  }
  journal_fd_ =
      ::open(journal_path().c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (journal_fd_ < 0) fail("open " + journal_path());
  struct stat st{};
  if (::fstat(journal_fd_, &st) != 0) fail("fstat " + journal_path());
  journal_bytes_ = static_cast<std::uint64_t>(st.st_size);
  appended_total_ = journal_bytes_;
}

FileBackend::~FileBackend() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::string FileBackend::journal_path() const { return dir_ + "/journal.wal"; }
std::string FileBackend::snapshot_path() const {
  return dir_ + "/snapshot.bin";
}

void FileBackend::append_journal(BytesView record) {
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n = ::write(journal_fd_, record.data() + written,
                              record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write " + journal_path());
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fdatasync(journal_fd_) != 0) fail("fdatasync " + journal_path());
  journal_bytes_ += record.size();
  appended_total_ += record.size();
}

Bytes FileBackend::read_journal() const { return read_file(journal_path()); }

void FileBackend::reset_journal() {
  if (::ftruncate(journal_fd_, 0) != 0) fail("ftruncate " + journal_path());
  if (::fdatasync(journal_fd_) != 0) fail("fdatasync " + journal_path());
  journal_bytes_ = 0;
}

void FileBackend::write_snapshot(BytesView blob) {
  const std::string tmp = snapshot_path() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + tmp);
  std::size_t written = 0;
  while (written < blob.size()) {
    const ssize_t n = ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    fail("rename " + tmp);
  }
  fsync_path(dir_);
}

Bytes FileBackend::read_snapshot() const { return read_file(snapshot_path()); }

std::uint64_t FileBackend::journal_bytes() const { return journal_bytes_; }

std::uint64_t FileBackend::appended_total() const { return appended_total_; }

}  // namespace tp::store
