// Durability seam for the verifier's write-ahead journal.
//
// A StorageBackend owns exactly two byte streams per shard: an
// append-only journal and a single snapshot blob. The contract is the
// minimum the recovery path needs and nothing more:
//
//   - append_journal() is durable-before-return: once it returns, the
//     record survives a process death. A backend that throws from
//     append_journal() guarantees that AT MOST a prefix of the record
//     was persisted (a torn write) -- never interior bytes.
//   - write_snapshot() atomically replaces the previous snapshot; a
//     crash leaves either the old blob or the new one, never a mix.
//   - reset_journal() truncates the journal to empty (after a snapshot
//     has captured its effects).
//
// MemoryBackend is the deterministic test double. Its crash injector
// speaks *cumulative* append offsets -- bytes ever appended, monotone
// across reset_journal() -- so a test can arm "die N bytes from now"
// and the point stays valid even if a compaction truncates the file in
// between. The append that crosses the armed offset keeps only the
// prefix up to it (a torn write) and throws CrashInjected; every later
// append throws too, because a dead process does not come back until
// someone clears the crash point and re-runs recovery.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "util/bytes.h"

namespace tp::store {

/// Thrown by fault-injecting backends at an armed crash point. The
/// verifier service treats it as the process dying mid-frame: the
/// in-memory shard state is poison from that moment on and only a
/// restart-from-journal brings the shard back.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(std::uint64_t offset)
      : std::runtime_error("injected crash at journal offset " +
                           std::to_string(offset)),
        offset_(offset) {}

  /// Cumulative journal offset (bytes ever appended) where the backend
  /// stopped persisting.
  std::uint64_t offset() const { return offset_; }

 private:
  std::uint64_t offset_ = 0;
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Appends `record` to the journal, durable before return. May throw
  /// CrashInjected (fault-injecting backends) or std::runtime_error
  /// (real I/O failure); either way at most a prefix was persisted.
  virtual void append_journal(BytesView record) = 0;

  /// The full journal contents (possibly ending in a torn record).
  virtual Bytes read_journal() const = 0;

  /// Truncates the journal to empty.
  virtual void reset_journal() = 0;

  /// Atomically replaces the snapshot blob.
  virtual void write_snapshot(BytesView blob) = 0;

  /// The current snapshot blob; empty when none was ever written.
  virtual Bytes read_snapshot() const = 0;

  /// Current journal size in bytes (compaction trigger input).
  virtual std::uint64_t journal_bytes() const = 0;

  /// Cumulative bytes ever appended to the journal, monotone across
  /// reset_journal(). Crash points are expressed on this axis.
  virtual std::uint64_t appended_total() const = 0;

  /// Crash-injection seam. The base implementation is a no-op so
  /// callers (the cluster's kill_shard) need not know the concrete
  /// backend type; only backends that return true from
  /// supports_crash_injection() honour the calls.
  virtual bool supports_crash_injection() const { return false; }

  /// Arms a crash at cumulative append offset `offset`: the append that
  /// would cross it keeps only the prefix up to `offset` and throws
  /// CrashInjected, as do all later appends until clear_crash_point().
  virtual void crash_at_bytes(std::uint64_t offset) { (void)offset; }

  virtual void clear_crash_point() {}
};

/// Deterministic in-memory backend for tests and benches. Thread-safe:
/// the svc worker appends while the test thread arms crash points and
/// reads offsets.
class MemoryBackend final : public StorageBackend {
 public:
  void append_journal(BytesView record) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (crash_at_.has_value() &&
        appended_total_ + record.size() > *crash_at_) {
      // Torn write: persist only the bytes up to the armed offset.
      const std::uint64_t keep =
          *crash_at_ > appended_total_ ? *crash_at_ - appended_total_ : 0;
      journal_.insert(journal_.end(), record.begin(),
                      record.begin() + static_cast<std::ptrdiff_t>(keep));
      appended_total_ += keep;
      throw CrashInjected(*crash_at_);
    }
    append(journal_, record);
    appended_total_ += record.size();
  }

  Bytes read_journal() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return journal_;
  }

  void reset_journal() override {
    std::lock_guard<std::mutex> lock(mu_);
    journal_.clear();
  }

  void write_snapshot(BytesView blob) override {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_.assign(blob.begin(), blob.end());
  }

  Bytes read_snapshot() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  std::uint64_t journal_bytes() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return journal_.size();
  }

  std::uint64_t appended_total() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return appended_total_;
  }

  bool supports_crash_injection() const override { return true; }

  void crash_at_bytes(std::uint64_t offset) override {
    std::lock_guard<std::mutex> lock(mu_);
    crash_at_ = offset;
  }

  void clear_crash_point() override {
    std::lock_guard<std::mutex> lock(mu_);
    crash_at_.reset();
  }

  /// Test hook: overwrite the journal wholesale (corruption suites).
  void set_journal(Bytes journal) {
    std::lock_guard<std::mutex> lock(mu_);
    journal_ = std::move(journal);
  }

 private:
  mutable std::mutex mu_;
  Bytes journal_;
  Bytes snapshot_;
  std::uint64_t appended_total_ = 0;
  std::optional<std::uint64_t> crash_at_;
};

}  // namespace tp::store
