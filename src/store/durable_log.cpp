#include "store/durable_log.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tp::store {

DurableLog::DurableLog(DurableLogConfig config)
    : config_(config), backend_(config.backend) {
  if (backend_ == nullptr) {
    throw std::invalid_argument("DurableLog: backend is required");
  }
}

Result<ShardState> DurableLog::recover() {
  stats_ = RecoveryStats{};
  ShardState base;
  const Bytes snapshot = backend_->read_snapshot();
  if (!snapshot.empty()) {
    auto parsed = deserialize_shard_state(snapshot);
    if (!parsed.ok()) {
      return Error{parsed.error().code,
                   "snapshot unreadable: " + parsed.error().message};
    }
    base = parsed.take();
    stats_.snapshot_bytes = snapshot.size();
    last_snapshot_bytes_ = snapshot.size();
  }
  const std::int64_t snapshot_now = base.source_now_ns;
  std::uint64_t last_seq = base.last_seq;

  const Bytes journal = backend_->read_journal();
  const JournalDecode decoded = decode_journal(journal);
  stats_.truncated_tail_bytes = journal.size() - decoded.valid_bytes;
  if (decoded.corruption.has_value()) {
    stats_.had_corruption = true;
    stats_.corruption = decoded.corruption->to_string();
  }

  ShardStateBuilder builder(std::move(base));
  for (const JournalRecord& record : decoded.records) {
    if (Status st = builder.apply(record); !st.ok()) {
      // A framed record whose body will not parse is corruption of the
      // same kind the CRC catches; keep the prefix applied so far.
      stats_.had_corruption = true;
      stats_.corruption = std::string("journal record body (") +
                          record_type_name(record.type) +
                          ", seq " + std::to_string(record.seq) +
                          "): " + st.error().message;
      break;
    }
    last_seq = std::max(last_seq, record.seq);
  }
  stats_.replayed_records = builder.applied();

  ShardState state = builder.take();
  stats_.snapshot_age_ns =
      state.source_now_ns > snapshot_now ? state.source_now_ns - snapshot_now
                                         : 0;
  next_seq_ = std::max(next_seq_, last_seq + 1);
  if (stats_.truncated_tail_bytes > 0 || stats_.had_corruption) {
    // Amputate the torn/corrupt tail NOW: appends land at the journal's
    // end, so leaving the garbage in place would orphan every record a
    // later incarnation writes -- the decoder stops at the damage, and
    // the recovery after next would silently lose everything appended
    // beyond it. Snapshotting the recovered state and resetting the
    // journal makes the damage unreachable instead. (Crash-safe: the
    // snapshot is written before the reset, and replaying the old
    // journal on top of the new snapshot is a no-op -- every surviving
    // record's seq is <= the snapshot's last_seq.)
    compact(state);
  }
  return state;
}

void DurableLog::append(RecordType type, BytesView body) {
  const Bytes record = encode_record(next_seq_, type, body);
  backend_->append_journal(record);
  // Only advance the cursor once the backend accepted the record: a
  // torn append (CrashInjected) must not consume the seq, or a restart
  // that reuses this DurableLog would leave a gap.
  ++next_seq_;
  ++records_appended_;
}

bool DurableLog::should_compact() const {
  if (config_.compact_journal_bytes == 0) return false;
  const std::uint64_t journal = backend_->journal_bytes();
  // Ratio rule (see DurableLogConfig): the journal must also have
  // outgrown the last snapshot, or compaction writes more bytes than it
  // reclaims and steady-state overhead degenerates to O(state) per
  // journaled byte.
  return journal >= config_.compact_journal_bytes &&
         journal >= last_snapshot_bytes_;
}

void DurableLog::compact(const ShardState& state) {
  ShardState stamped = state;
  stamped.last_seq = next_seq_ - 1;
  const Bytes snapshot = serialize_shard_state(stamped);
  backend_->write_snapshot(snapshot);
  backend_->reset_journal();
  last_snapshot_bytes_ = snapshot.size();
}

}  // namespace tp::store
