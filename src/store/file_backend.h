// POSIX append-file backend for verifier_daemon's journal.
//
// Layout under the configured directory:
//   journal.wal   -- the append-only record stream
//   snapshot.bin  -- the compacted ShardState blob
//
// Durability discipline:
//   - append_journal: one write(2) of the whole record followed by
//     fdatasync. A crash mid-write leaves a prefix -- exactly the torn
//     tail decode_journal tolerates.
//   - write_snapshot: write to snapshot.bin.tmp, fsync, rename over
//     snapshot.bin, fsync the directory -- the standard atomic-replace
//     dance, so recovery sees the old or the new snapshot, never a mix.
#pragma once

#include <cstdint>
#include <string>

#include "store/storage_backend.h"

namespace tp::store {

class FileBackend final : public StorageBackend {
 public:
  /// Opens (creating if needed) the journal directory. Throws
  /// std::runtime_error on any I/O failure.
  explicit FileBackend(std::string directory);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  void append_journal(BytesView record) override;
  Bytes read_journal() const override;
  void reset_journal() override;
  void write_snapshot(BytesView blob) override;
  Bytes read_snapshot() const override;
  std::uint64_t journal_bytes() const override;
  std::uint64_t appended_total() const override;

  const std::string& directory() const { return dir_; }

 private:
  std::string journal_path() const;
  std::string snapshot_path() const;

  std::string dir_;
  int journal_fd_ = -1;
  std::uint64_t journal_bytes_ = 0;
  /// Cumulative bytes appended, seeded with the on-disk size at open so
  /// the axis stays monotone across restarts of the same directory.
  std::uint64_t appended_total_ = 0;
};

}  // namespace tp::store
