// DurableLog: a shard's write-ahead journal plus compacted snapshot,
// glued to one StorageBackend.
//
// Lifecycle:
//   - recover() reads snapshot + journal and folds them into a
//     ShardState (the longest valid prefix; torn tails and corrupt
//     records are tolerated and reported via recovery_stats()). It also
//     positions the append cursor past everything recovered, so a
//     restarted shard continues the same seq space.
//   - append() frames and persists one record, durable before return.
//     The caller (ServiceProvider) invokes it before releasing the
//     frame's reply -- that ordering IS the write-ahead contract.
//   - compact() replaces snapshot+journal with the current state. The
//     crash window between write_snapshot and reset_journal is safe:
//     the snapshot carries last_seq and replay skips covered records.
//
// One DurableLog belongs to one shard (single svc worker; durable mode
// forces num_workers == 1), so appends are not internally synchronized
// beyond what the backend provides.
#pragma once

#include <cstdint>
#include <string>

#include "store/journal.h"
#include "store/shard_state.h"
#include "store/storage_backend.h"
#include "util/result.h"

namespace tp::store {

struct DurableLogConfig {
  StorageBackend* backend = nullptr;  // required, caller-owned
  /// Journal size that triggers should_compact(); 0 disables automatic
  /// compaction (the journal then only shrinks via explicit compact()).
  /// The trigger additionally requires the journal to have reached the
  /// last snapshot's size: a snapshot costs O(state) bytes to write, so
  /// compacting a journal smaller than the snapshot would spend more
  /// I/O than it reclaims. The ratio rule bounds amortized compaction
  /// cost at one snapshot byte per journal byte regardless of how this
  /// floor relates to the state size.
  std::uint64_t compact_journal_bytes = 1u << 20;
};

/// What the last recover() found; surfaced as sp.recovery.* metrics and
/// printed by verifier_daemon at startup.
struct RecoveryStats {
  std::uint64_t replayed_records = 0;   // journal records folded in
  std::uint64_t truncated_tail_bytes = 0;  // torn bytes dropped
  bool had_corruption = false;
  std::string corruption;               // typed description when corrupt
  std::uint64_t snapshot_bytes = 0;
  /// Virtual-time gap between the snapshot and the newest journal
  /// record -- how much history replay had to cover.
  std::int64_t snapshot_age_ns = 0;
};

class DurableLog {
 public:
  explicit DurableLog(DurableLogConfig config);

  /// Folds snapshot + journal into a ShardState. A torn tail or a
  /// corrupt record keeps the valid prefix (details in
  /// recovery_stats()); an unreadable *snapshot* is a hard error --
  /// there is no safe prefix of a snapshot.
  Result<ShardState> recover();

  const RecoveryStats& recovery_stats() const { return stats_; }

  /// Appends one record with the next seq. Durable before return; may
  /// throw CrashInjected / std::runtime_error from the backend.
  void append(RecordType type, BytesView body);

  /// Seq the next append will use.
  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t records_appended() const { return records_appended_; }

  bool should_compact() const;

  /// Snapshots `state` (stamped with the current seq cursor) and resets
  /// the journal.
  void compact(const ShardState& state);

  StorageBackend& backend() { return *backend_; }

 private:
  DurableLogConfig config_;
  StorageBackend* backend_;
  RecoveryStats stats_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t records_appended_ = 0;
  /// Size of the newest snapshot this log has seen (written by
  /// compact() or read back by recover()); input to the ratio rule.
  std::uint64_t last_snapshot_bytes_ = 0;
};

}  // namespace tp::store
