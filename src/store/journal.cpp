#include "store/journal.h"

#include <array>

#include "util/serial.h"

namespace tp::store {
namespace {

// CRC32-C (Castagnoli, reflected polynomial 0x82f63b78), table-driven.
// The kernel/SSE4.2 polynomial rather than zlib's 0x04c11db7: stronger
// Hamming distance at these record sizes and hardware-accelerated
// everywhere we would ever want to swap the implementation.
std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
constexpr std::size_t kPayloadHeader = 9;  // u64 seq + u8 type

}  // namespace

std::uint32_t crc32c(BytesView data) {
  static const std::array<std::uint32_t, 256> kTable = make_crc32c_table();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

std::string JournalCorruption::to_string() const {
  return "journal record #" + std::to_string(record_index) + " at offset " +
         std::to_string(byte_offset) + ": " + journal_fault_name(fault);
}

Bytes encode_record(std::uint64_t seq, RecordType type, BytesView body) {
  BinaryWriter payload;
  payload.reserve(kPayloadHeader + body.size());
  payload.u64(seq);
  payload.u8(static_cast<std::uint8_t>(type));
  payload.raw(body);

  BinaryWriter frame;
  frame.reserve(kFrameHeader + payload.data().size());
  frame.u32(static_cast<std::uint32_t>(payload.data().size()));
  frame.u32(crc32c(payload.data()));
  frame.raw(payload.data());
  return frame.take();
}

JournalDecode decode_journal(BytesView data) {
  JournalDecode out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      // Fewer bytes than a frame header: the tail of a torn append.
      out.truncated_tail = true;
      break;
    }
    BinaryReader header(data.subspan(pos, kFrameHeader));
    const std::uint32_t len = header.u32().value();
    const std::uint32_t crc = header.u32().value();
    if (len < kPayloadHeader || len > kMaxRecordPayload) {
      out.corruption = JournalCorruption{out.records.size(), pos,
                                         len < kPayloadHeader
                                             ? JournalFault::kShortPayload
                                             : JournalFault::kBadLength};
      break;
    }
    if (data.size() - pos - kFrameHeader < len) {
      // The header is intact but the payload runs past end-of-file: the
      // record itself was torn mid-append.
      out.truncated_tail = true;
      break;
    }
    const BytesView payload = data.subspan(pos + kFrameHeader, len);
    if (crc32c(payload) != crc) {
      out.corruption = JournalCorruption{out.records.size(), pos,
                                         JournalFault::kBadCrc};
      break;
    }
    BinaryReader reader(payload);
    JournalRecord record;
    record.seq = reader.u64().value();
    const std::uint8_t tag = reader.u8().value();
    if (!record_type_known(tag)) {
      out.corruption = JournalCorruption{out.records.size(), pos,
                                         JournalFault::kBadType};
      break;
    }
    record.type = static_cast<RecordType>(tag);
    record.body = reader.raw(reader.remaining()).take();
    out.records.push_back(std::move(record));
    pos += kFrameHeader + len;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace tp::store
