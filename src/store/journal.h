// CRC-framed write-ahead journal encoding for SP durable mutations.
//
// Record framing on the wire:
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//   payload = [u64 seq][u8 type][body...]
//
// `seq` is a per-shard monotone counter; the snapshot records the last
// seq it covers, so a replay after "snapshot written but journal not yet
// truncated" (the compaction crash window) skips the already-captured
// prefix instead of applying it twice.
//
// Decode draws a hard line between the two ways a journal goes bad:
//
//   - Torn tail (benign). The process died mid-append, so the file ends
//     with a prefix of a record: fewer than 8 header bytes, or a header
//     whose payload extends past end-of-file. Recovery keeps everything
//     before it and reports `truncated_tail`. By the write-ahead
//     contract the torn record's frame never released a reply, so
//     dropping it loses nothing a client observed.
//   - Corruption (typed error). A record that is *present* but wrong:
//     CRC mismatch, absurd length, unknown type tag, or a short payload.
//     Decode stops at the first such record, keeps the valid prefix, and
//     names the record index, byte offset and fault kind so operators
//     can tell bit-rot from a torn write.
//
// Either way decode_journal() never throws and never reads out of
// bounds: it is directly fuzzable (tests/fuzz_test.cpp feeds it random
// bytes and mutated valid journals).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace tp::store {

/// Journal record kinds. One frame handled by the SP emits exactly one
/// record, so a torn write can never persist half a frame's correlated
/// mutations (e.g. a replay digest without its settled session — which
/// would turn a retransmit into a permanent kSigReplay reject).
enum class RecordType : std::uint8_t {
  /// Enrollment challenge issued: enroll session upserted (with the
  /// cached challenge reply, so a retransmit after recovery is
  /// byte-identical).
  kEnrollBegin = 1,
  /// Enrollment settled: terminal enroll session plus, when admitted,
  /// the client id and serialized attestation key.
  kEnrollSettle = 2,
  /// Transaction challenge issued: tx session, advanced tx-id counter
  /// and the SubmitDedup row that maps the submission back to its tx.
  kTxBegin = 3,
  /// Transaction settled: terminal tx session, accept counter, and the
  /// replay-cache digest when the confirmation signature was recorded.
  kTxSettle = 4,
  /// Standalone replay-cache digest (import/backfill paths).
  kReplayDigest = 5,
  /// Standalone dedup row (import/backfill paths).
  kDedupRow = 6,
};

constexpr const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kEnrollBegin: return "enroll_begin";
    case RecordType::kEnrollSettle: return "enroll_settle";
    case RecordType::kTxBegin: return "tx_begin";
    case RecordType::kTxSettle: return "tx_settle";
    case RecordType::kReplayDigest: return "replay_digest";
    case RecordType::kDedupRow: return "dedup_row";
  }
  return "unknown";
}

constexpr bool record_type_known(std::uint8_t tag) {
  return tag >= static_cast<std::uint8_t>(RecordType::kEnrollBegin) &&
         tag <= static_cast<std::uint8_t>(RecordType::kDedupRow);
}

/// Largest accepted payload. Real records are a few hundred bytes; the
/// bound keeps a corrupt length field from driving a giant allocation.
constexpr std::size_t kMaxRecordPayload = 1u << 20;  // 1 MiB

struct JournalRecord {
  std::uint64_t seq = 0;
  RecordType type = RecordType::kEnrollBegin;
  Bytes body;
};

/// Why decode stopped early at a record that is present but wrong.
enum class JournalFault : std::uint8_t {
  kBadLength,   // payload_len zero or above kMaxRecordPayload
  kBadCrc,      // CRC32-C mismatch over the payload
  kBadType,     // unknown record type tag
  kShortPayload // payload too short for the seq+type header
};

constexpr const char* journal_fault_name(JournalFault f) {
  switch (f) {
    case JournalFault::kBadLength: return "bad_length";
    case JournalFault::kBadCrc: return "bad_crc";
    case JournalFault::kBadType: return "bad_type";
    case JournalFault::kShortPayload: return "short_payload";
  }
  return "unknown";
}

/// Typed description of the first corrupt record: which record (index
/// in the journal), where it starts (byte offset), and what is wrong.
struct JournalCorruption {
  std::size_t record_index = 0;
  std::size_t byte_offset = 0;
  JournalFault fault = JournalFault::kBadCrc;

  std::string to_string() const;
};

struct JournalDecode {
  /// The longest valid record prefix.
  std::vector<JournalRecord> records;
  /// Bytes covered by `records` (decode consumed exactly this much).
  std::size_t valid_bytes = 0;
  /// The journal ends in a partial record (benign torn write).
  bool truncated_tail = false;
  /// Set when decode stopped at a corrupt (not merely torn) record.
  std::optional<JournalCorruption> corruption;

  bool clean() const { return !truncated_tail && !corruption.has_value(); }
};

/// CRC32-C (Castagnoli), software table implementation. Exposed for
/// tests and for the snapshot codec.
std::uint32_t crc32c(BytesView data);

/// Frames one record: header + CRC + payload as described above.
Bytes encode_record(std::uint64_t seq, RecordType type, BytesView body);

/// Decodes as many whole valid records as the buffer holds. Total: never
/// throws, never reads out of bounds; see the file comment for the
/// torn-tail vs corruption split.
JournalDecode decode_journal(BytesView data);

}  // namespace tp::store
