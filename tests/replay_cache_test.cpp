// Bounded replay cache: data-structure invariants (O(1) membership,
// FIFO eviction, fixed memory) and the SP-level guarantee that replacing
// the unbounded std::set did not open a replay window.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"
#include "sp/replay_cache.h"

namespace tp::sp {
namespace {

Bytes sig_of(int i) { return bytes_of("signature-" + std::to_string(i)); }

// ----------------------------------------------------- data structure

TEST(ReplayCache, MembershipAndDuplicateInsert) {
  ReplayCache cache(16);
  EXPECT_FALSE(cache.contains(sig_of(1)));
  EXPECT_TRUE(cache.insert(sig_of(1)));
  EXPECT_TRUE(cache.contains(sig_of(1)));
  EXPECT_FALSE(cache.insert(sig_of(1)));  // duplicate: no-op
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, SizeNeverExceedsCapacityAndMemoryIsFixed) {
  ReplayCache cache(64);
  const std::size_t baseline = cache.memory_bytes();
  for (int i = 0; i < 10000; ++i) {
    cache.insert(sig_of(i));
    ASSERT_LE(cache.size(), 64u);
  }
  EXPECT_EQ(cache.size(), 64u);
  // All storage is allocated up front; churn must not grow it.
  EXPECT_EQ(cache.memory_bytes(), baseline);
}

TEST(ReplayCache, EvictionIsStrictlyFifo) {
  ReplayCache cache(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(cache.insert(sig_of(i)));
  // Inserting 4 more evicts exactly the 4 oldest, in order.
  for (int i = 8; i < 12; ++i) EXPECT_TRUE(cache.insert(sig_of(i)));
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(cache.contains(sig_of(i)));
  for (int i = 4; i < 12; ++i) EXPECT_TRUE(cache.contains(sig_of(i)));
}

TEST(ReplayCache, HeavyChurnKeepsProbeTableConsistent) {
  // Backward-shift deletion stress: every eviction rearranges probe
  // chains; membership of the newest `capacity` entries must stay exact.
  ReplayCache cache(32);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(cache.insert(sig_of(i)));
    // The newest min(i+1, 32) signatures are present, the one just
    // beyond the window is not.
    EXPECT_TRUE(cache.contains(sig_of(i)));
    if (i >= 32) {
      EXPECT_TRUE(cache.contains(sig_of(i - 31)));
      EXPECT_FALSE(cache.contains(sig_of(i - 32)));
    }
  }
}

TEST(ReplayCache, CapacityZeroClampsToOne) {
  ReplayCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  EXPECT_TRUE(cache.insert(sig_of(1)));
  EXPECT_TRUE(cache.insert(sig_of(2)));
  EXPECT_FALSE(cache.contains(sig_of(1)));
  EXPECT_TRUE(cache.contains(sig_of(2)));
}

// ----------------------------------------------------- SP integration

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

TEST(SpReplayBound, MemoryBoundedAndWindowedReplayStillRejected) {
  DeploymentConfig cfg;
  cfg.client_id = "alice";
  cfg.seed = bytes_of("replay-bound");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.replay_cache_capacity = 8;  // tiny, to force eviction
  Deployment world(cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(7)), "");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());

  const std::size_t memory_before = world.sp().replay_cache_memory_bytes();

  // Drive 3x the cache capacity of genuine confirmations through the SP,
  // capturing each accepted TxConfirm for replay attempts.
  std::vector<core::TxConfirm> accepted;
  for (int i = 0; i < 24; ++i) {
    const std::string summary = "pay " + std::to_string(i);
    agent.set_intended_summary(summary);

    core::TxSubmit submit{"alice", summary, bytes_of("p")};
    const auto challenge = world.sp().begin_transaction(submit);
    core::PalConfirmInput in;
    in.tx_summary = summary;
    in.tx_digest = submit.digest();
    in.nonce = challenge.nonce;
    in.sealed_key = world.client().sealed_key_blob();
    pal::SessionDriver driver(world.platform());
    driver.set_user_agent(&agent);
    auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
    ASSERT_TRUE(session.ok());
    auto out = core::PalConfirmOutput::unmarshal(session.value().output);
    ASSERT_TRUE(out.ok());

    core::TxConfirm confirm{"alice", challenge.tx_id,
                            core::Verdict::kConfirmed,
                            out.value().signature};
    ASSERT_TRUE(world.sp().complete_transaction(confirm).accepted);
    accepted.push_back(confirm);

    // The cache never outgrows its configured bound.
    ASSERT_LE(world.sp().replay_cache_size(), 8u);
  }
  EXPECT_EQ(world.sp().replay_cache_memory_bytes(), memory_before);

  // Straight replays of settled confirmations are all rejected: recent
  // ones may hit either defence layer, and even signatures the cache has
  // evicted die at the one-shot challenge map.
  for (const auto& confirm : accepted) {
    EXPECT_FALSE(world.sp().complete_transaction(confirm).accepted);
  }

  // Eviction must never re-admit a signature that is still inside the
  // pending-tx window: open a fresh challenge and present each of the 8
  // most recent signatures (all still cached) against it. The replay
  // cache must fire before signature verification even runs.
  for (std::size_t i = accepted.size() - 8; i < accepted.size(); ++i) {
    core::TxSubmit submit{"alice", "forged", bytes_of("p")};
    const auto challenge = world.sp().begin_transaction(submit);
    core::TxConfirm replay{"alice", challenge.tx_id,
                           core::Verdict::kConfirmed,
                           accepted[i].signature};
    EXPECT_FALSE(world.sp().complete_transaction(replay).accepted);
  }
  EXPECT_GE(world.sp().stats().rejects(proto::RejectCode::kReplayedSignature),
            8u);
}

}  // namespace
}  // namespace tp::sp
