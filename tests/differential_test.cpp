// Differential corpus replay: shell-on-SpCore vs the pre-refactor twin.
//
// The core/shell refactor (proto::SpCore driving a thin ServiceProvider
// shell) promises byte-identical frame handling. This suite pins that
// promise three ways:
//
//   1. A deterministic corpus of protocol traffic -- clean exchanges,
//      byte-identical retransmits, replayed signatures, cross-client
//      confirms, expired sessions, mutated/garbage frames, batch-flush
//      conflicts -- is replayed through handle_frame one frame at a time
//      and through handle_frame_batch in whole-epoch chunks; every
//      response must match byte for byte and the final counters/tables
//      must agree.
//   2. The sequential responses are folded into an order-sensitive
//      FNV-1a fingerprint that was recorded from the PRE-refactor
//      ServiceProvider (the 1,001-line monolithic handle_frame). The
//      constant below IS the pre-refactor twin: any post-refactor
//      behaviour drift -- one byte, one reject code, one nonce -- breaks
//      the fingerprint.
//   3. The same corpus runs under the direct-call API where a message
//      counterpart exists, asserting the collapsed entry points cannot
//      drift from the frame path.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/trusted_path_pal.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "util/rng.h"

namespace tp {
namespace {

// Golden fingerprints recorded from the pre-refactor ServiceProvider
// (commit 4303e45, the sequential monolithic handle_frame). Do not
// update these casually: a mismatch means the refactor changed wire
// behaviour.
constexpr std::uint64_t kGoldenResponseFingerprint = 0x7b0e86ca49e5e0ddull;
constexpr std::uint64_t kGoldenStateFingerprint = 0xa00dec8b2909c128ull;

std::uint64_t fnv1a(std::uint64_t h, BytesView data) {
  for (const std::uint8_t b : data) {
    h = (h ^ b) * 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * 0x100000001b3ull;
    v >>= 8;
  }
  return h;
}

// One batch of frames handled at a single session-timeline position.
struct Epoch {
  SimTime now{0};
  std::vector<Bytes> frames;
};

sp::SpConfig corpus_sp_config(tpm::PrivacyCa& ca) {
  sp::SpConfig cfg;
  cfg.golden_pcr17 = core::golden_pcr17();
  cfg.ca_public = ca.public_key();
  cfg.seed = bytes_of("differential-sp");
  // Small tables so the corpus exercises eviction pressure too.
  cfg.enroll_session_capacity = 8;
  cfg.tx_session_capacity = 16;
  return cfg;
}

/// Builds the corpus by driving a generation SP (identical config and
/// nonce stream as the replay SPs) and recording every (now, frame)
/// pair. The PAL runs real enrollment/confirmation sessions so the
/// corpus carries genuine quotes and signatures.
class CorpusBuilder {
 public:
  CorpusBuilder()
      : world_(make_world()),
        ca_(world_.ca()),
        gen_(corpus_sp_config(ca_)),
        driver_(world_.platform()),
        agent_(devices::HumanModel(human_params(), SimRng(11)), "") {
    driver_.set_user_agent(&agent_);
    credential_ =
        ca_.certify("diff-client", world_.platform().tpm().aik_public())
            .serialize();
  }

  std::vector<Epoch> build() {
    std::vector<Epoch> corpus;

    // Epoch 0: a clean enrollment, its byte-identical retransmits, and a
    // flood of one-sided begins from other clients (eviction pressure).
    begin_epoch(corpus, SimTime{0});
    const Bytes enroll_begin = core::envelope(
        core::MsgType::kEnrollBegin,
        core::EnrollBegin{"diff-client"}.serialize());
    const Bytes challenge_frame = record(corpus, enroll_begin);
    record(corpus, enroll_begin);  // retransmit -> replayed challenge
    const Bytes enroll_complete = make_enroll_complete(challenge_frame);
    record(corpus, enroll_complete);
    record(corpus, enroll_complete);  // retransmit -> replayed result
    record(corpus, core::envelope(core::MsgType::kEnrollComplete,
                            mutate_tail(enroll_complete)));  // retry mismatch
    for (int i = 0; i < 10; ++i) {
      record(corpus,
             core::envelope(core::MsgType::kEnrollBegin,
                      core::EnrollBegin{"bystander-" + std::to_string(i)}
                          .serialize()));
    }

    // Epoch 1: confirmations -- accepted, duplicated, replayed signature
    // under a fresh challenge, wrong client, explicit user verdicts,
    // garbage signature, unknown tx.
    begin_epoch(corpus, SimTime{0} + SimDuration::seconds(1));
    const auto [confirm_a, sig_a] = make_confirmed_tx(corpus, "pay 10 to a");
    record(corpus, confirm_a);
    record(corpus, confirm_a);  // retransmit -> replayed result
    record(corpus, core::envelope(core::MsgType::kTxConfirm,
                            mutate_tail(confirm_a)));  // retry mismatch

    // Replay the accepted signature against a fresh challenge.
    const std::uint64_t tx_replay =
        submit_tx(corpus, "diff-client", "pay 10 to a");
    record(corpus, confirm_frame("diff-client", tx_replay,
                                 core::Verdict::kConfirmed, sig_a));
    // Unknown transaction id.
    record(corpus, confirm_frame("diff-client", 0xdead,
                                 core::Verdict::kConfirmed, sig_a));
    // Wrong client on a live session.
    const std::uint64_t tx_cross =
        submit_tx(corpus, "diff-client", "pay 20 to b");
    record(corpus, confirm_frame("mallory", tx_cross,
                                 core::Verdict::kConfirmed, sig_a));
    // Human said no / nobody answered.
    const std::uint64_t tx_no = submit_tx(corpus, "diff-client", "pay 30");
    record(corpus,
           confirm_frame("diff-client", tx_no, core::Verdict::kRejected, {}));
    const std::uint64_t tx_silent =
        submit_tx(corpus, "diff-client", "pay 40");
    record(corpus, confirm_frame("diff-client", tx_silent,
                                 core::Verdict::kTimeout, {}));
    // Garbage signature on a live session.
    const std::uint64_t tx_junk = submit_tx(corpus, "diff-client", "pay 50");
    record(corpus, confirm_frame("diff-client", tx_junk,
                                 core::Verdict::kConfirmed,
                                 rng_.next_bytes(96)));

    // Epoch 2: batch-flush conflicts -- duplicate tx ids and duplicate
    // signature bytes inside one epoch, interleaved with other types.
    begin_epoch(corpus, SimTime{0} + SimDuration::seconds(2));
    const auto [confirm_b, sig_b] = make_confirmed_tx(corpus, "batch 1");
    const auto [confirm_c, sig_c] = make_confirmed_tx(corpus, "batch 2");
    record(corpus, confirm_b);
    record(corpus, confirm_c);
    record(corpus, confirm_b);  // same tx id + signature: forces a flush
    record(corpus, confirm_frame("diff-client",
                                 submit_tx(corpus, "batch 3"),
                                 core::Verdict::kConfirmed, sig_c));

    // Epoch 3: malformed payloads, unexpected types, raw garbage.
    begin_epoch(corpus, SimTime{0} + SimDuration::seconds(3));
    record(corpus, core::envelope(core::MsgType::kEnrollBegin, Bytes{0xff}));
    record(corpus, core::envelope(core::MsgType::kEnrollComplete, Bytes{}));
    record(corpus, core::envelope(core::MsgType::kTxSubmit, Bytes{0x01}));
    record(corpus, core::envelope(core::MsgType::kTxConfirm, Bytes{0x02, 0x03}));
    record(corpus, core::envelope(core::MsgType::kTxChallenge,
                            core::TxChallenge{9, Bytes(20, 1)}.serialize()));
    record(corpus, core::envelope(core::MsgType::kEnrollResult,
                            core::EnrollResult{true, "ok"}.serialize()));
    for (int i = 0; i < 12; ++i) {
      record(corpus, rng_.next_bytes(rng_.next_below(48)));
    }

    // Epoch 4: far future -- a challenge issued in epoch 3 has expired.
    begin_epoch(corpus, SimTime{0} + SimDuration::seconds(3));
    const std::uint64_t tx_stale = submit_tx(corpus, "expire me");
    begin_epoch(corpus, SimTime{0} + SimDuration::seconds(400));
    record(corpus, confirm_frame("diff-client", tx_stale,
                                 core::Verdict::kConfirmed, sig_b));
    // And a fresh exchange still works at the new timeline position.
    const auto [confirm_d, sig_d] = make_confirmed_tx(corpus, "late pay");
    record(corpus, confirm_d);
    (void)sig_d;
    return corpus;
  }

 private:
  static sp::Deployment make_world() {
    sp::DeploymentConfig cfg;
    cfg.client_id = "diff-client";
    cfg.seed = bytes_of("differential-world");
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    return sp::Deployment(cfg);
  }

  static devices::HumanParams human_params() {
    devices::HumanParams hp;
    hp.typo_prob = 0.0;
    hp.attention = 1.0;
    return hp;
  }

  void begin_epoch(std::vector<Epoch>& corpus, SimTime now) {
    corpus.push_back(Epoch{now, {}});
    gen_.advance_time_to(now);
  }

  /// Records `frame` into the open epoch and plays it through the
  /// generation SP, returning the response (the corpus builder needs the
  /// challenges it contains).
  Bytes record(std::vector<Epoch>& corpus, Bytes frame) {
    const Bytes response = gen_.handle_frame(frame, corpus.back().now);
    corpus.back().frames.push_back(std::move(frame));
    return response;
  }

  Bytes make_enroll_complete(const Bytes& challenge_frame) {
    auto opened = core::open_envelope(challenge_frame);
    EXPECT_TRUE(opened.ok());
    auto challenge = core::EnrollChallenge::deserialize(opened.value().second);
    EXPECT_TRUE(challenge.ok());
    core::PalEnrollInput in;
    in.nonce = challenge.value().nonce;
    in.key_bits = 768;
    auto session = driver_.run(core::make_trusted_path_pal(), in.marshal());
    EXPECT_TRUE(session.ok() && session.value().status.ok());
    auto out = core::PalEnrollOutput::unmarshal(session.value().output);
    EXPECT_TRUE(out.ok());
    sealed_key_ = out.value().sealed_key;
    core::EnrollComplete complete;
    complete.client_id = "diff-client";
    complete.confirmation_pubkey = out.value().pubkey;
    complete.quote = out.value().quote;
    complete.aik_certificate = credential_;
    return core::envelope(core::MsgType::kEnrollComplete, complete.serialize());
  }

  std::uint64_t submit_tx(std::vector<Epoch>& corpus,
                          const std::string& client,
                          const std::string& summary) {
    core::TxSubmit submit{client, summary, bytes_of("p:" + summary)};
    const Bytes response = record(
        corpus, core::envelope(core::MsgType::kTxSubmit, submit.serialize()));
    auto opened = core::open_envelope(response);
    EXPECT_TRUE(opened.ok());
    auto challenge = core::TxChallenge::deserialize(opened.value().second);
    EXPECT_TRUE(challenge.ok());
    last_nonce_ = challenge.value().nonce;
    last_digest_ = submit.digest();
    return challenge.value().tx_id;
  }
  std::uint64_t submit_tx(std::vector<Epoch>& corpus,
                          const std::string& summary) {
    return submit_tx(corpus, "diff-client", summary);
  }

  static Bytes confirm_frame(const std::string& client, std::uint64_t tx_id,
                             core::Verdict verdict, Bytes signature) {
    core::TxConfirm confirm;
    confirm.client_id = client;
    confirm.tx_id = tx_id;
    confirm.verdict = verdict;
    confirm.signature = std::move(signature);
    return core::envelope(core::MsgType::kTxConfirm, confirm.serialize());
  }

  /// Submits + runs the real confirmation PAL: a genuinely accepted
  /// TxConfirm frame and its signature bytes.
  std::pair<Bytes, Bytes> make_confirmed_tx(std::vector<Epoch>& corpus,
                                            const std::string& summary) {
    agent_.set_intended_summary(summary);
    const std::uint64_t tx_id = submit_tx(corpus, summary);
    core::PalConfirmInput in;
    in.tx_summary = summary;
    in.tx_digest = last_digest_;
    in.nonce = last_nonce_;
    in.sealed_key = sealed_key_;
    auto session = driver_.run(core::make_trusted_path_pal(), in.marshal());
    EXPECT_TRUE(session.ok() && session.value().status.ok());
    auto out = core::PalConfirmOutput::unmarshal(session.value().output);
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.value().verdict, core::Verdict::kConfirmed);
    return {confirm_frame("diff-client", tx_id, core::Verdict::kConfirmed,
                          out.value().signature),
            out.value().signature};
  }

  Bytes mutate_tail(const Bytes& frame) {
    auto opened = core::open_envelope(frame);
    EXPECT_TRUE(opened.ok());
    Bytes payload = opened.value().second;
    if (!payload.empty()) payload.back() ^= 0x01;
    return payload;
  }

  sp::Deployment world_;
  tpm::PrivacyCa& ca_;
  sp::ServiceProvider gen_;
  pal::SessionDriver driver_;
  pal::HumanAgent agent_;
  Bytes credential_;
  Bytes sealed_key_;
  Bytes last_nonce_;
  Bytes last_digest_;
  SimRng rng_{0xd1ffull};
};

std::uint64_t state_fingerprint(sp::ServiceProvider& sp) {
  const sp::SpStats stats = sp.stats();
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a_u64(h, stats.enrolled);
  h = fnv1a_u64(h, stats.enroll_rejected);
  h = fnv1a_u64(h, stats.tx_accepted);
  h = fnv1a_u64(h, stats.tx_rejected);
  for (const std::uint64_t v : stats.rejects_by_code) h = fnv1a_u64(h, v);
  h = fnv1a_u64(h, stats.sessions_evicted);
  h = fnv1a_u64(h, stats.sessions_expired);
  h = fnv1a_u64(h, sp.session_table_occupancy());
  h = fnv1a_u64(h, sp.replay_cache_size());
  h = fnv1a_u64(h, sp.enrolled_count());
  h = fnv1a_u64(h, sp.replayed_challenges());
  h = fnv1a_u64(h, sp.replayed_results());
  return h;
}

class DifferentialCorpus : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    builder_ = new CorpusBuilder();
    corpus_ = new std::vector<Epoch>(builder_->build());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
    delete builder_;
    builder_ = nullptr;
  }

  static CorpusBuilder* builder_;
  static std::vector<Epoch>* corpus_;
};

CorpusBuilder* DifferentialCorpus::builder_ = nullptr;
std::vector<Epoch>* DifferentialCorpus::corpus_ = nullptr;

TEST_F(DifferentialCorpus, SequentialReplayMatchesPreRefactorFingerprint) {
  sp::Deployment ca_world = [] {
    sp::DeploymentConfig cfg;
    cfg.client_id = "diff-client";
    cfg.seed = bytes_of("differential-world");
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    return sp::Deployment(cfg);
  }();
  sp::ServiceProvider seq(corpus_sp_config(ca_world.ca()));

  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const Epoch& epoch : *corpus_) {
    for (const Bytes& frame : epoch.frames) {
      const Bytes response = seq.handle_frame(frame, epoch.now);
      ASSERT_FALSE(response.empty());
      h = fnv1a(h, response);
      h = (h ^ 0x7c) * 0x100000001b3ull;  // frame separator
    }
  }
  std::printf("response fingerprint: 0x%016llx\n",
              static_cast<unsigned long long>(h));
  std::printf("state fingerprint:    0x%016llx\n",
              static_cast<unsigned long long>(state_fingerprint(seq)));
  EXPECT_EQ(h, kGoldenResponseFingerprint)
      << "handle_frame responses drifted from the pre-refactor twin";
  EXPECT_EQ(state_fingerprint(seq), kGoldenStateFingerprint)
      << "final SP state drifted from the pre-refactor twin";
}

TEST_F(DifferentialCorpus, BatchedReplayIsByteIdenticalToSequential) {
  sp::Deployment ca_world = [] {
    sp::DeploymentConfig cfg;
    cfg.client_id = "diff-client";
    cfg.seed = bytes_of("differential-world");
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    return sp::Deployment(cfg);
  }();
  sp::ServiceProvider seq(corpus_sp_config(ca_world.ca()));
  sp::ServiceProvider bat(corpus_sp_config(ca_world.ca()));

  for (const Epoch& epoch : *corpus_) {
    std::vector<Bytes> seq_out;
    for (const Bytes& frame : epoch.frames) {
      seq_out.push_back(seq.handle_frame(frame, epoch.now));
    }
    std::vector<BytesView> views;
    views.reserve(epoch.frames.size());
    for (const Bytes& frame : epoch.frames) views.emplace_back(frame);
    const std::vector<Bytes> bat_out = bat.handle_frame_batch(views, epoch.now);
    ASSERT_EQ(seq_out.size(), bat_out.size());
    for (std::size_t i = 0; i < seq_out.size(); ++i) {
      EXPECT_EQ(seq_out[i], bat_out[i]) << "frame " << i << " diverged";
    }
  }
  EXPECT_EQ(state_fingerprint(seq), state_fingerprint(bat));
  EXPECT_EQ(seq.session_table_memory_bytes(), bat.session_table_memory_bytes());
}

}  // namespace
}  // namespace tp
