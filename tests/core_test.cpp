// Core protocol tests: message formats, the trusted-path PAL, and the
// statement the whole security argument hangs on.
#include <gtest/gtest.h>

#include "core/messages.h"
#include "core/trusted_path_pal.h"
#include "crypto/rsa.h"
#include "drtm/late_launch.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "tpm/quote.h"

namespace tp::core {
namespace {

using drtm::Platform;
using drtm::PlatformConfig;

PlatformConfig test_platform_config(const std::string& id = "client-A") {
  PlatformConfig cfg;
  cfg.platform_id = id;
  cfg.seed = bytes_of("core-test:" + id);
  cfg.tpm_key_bits = 768;
  return cfg;
}

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

// ---------------------------------------------------------------- Messages

TEST(Messages, AllRoundTrip) {
  {
    const EnrollBegin m{"client-1"};
    EXPECT_EQ(EnrollBegin::deserialize(m.serialize()).value().client_id,
              "client-1");
  }
  {
    const EnrollChallenge m{Bytes{1, 2, 3}};
    EXPECT_EQ(EnrollChallenge::deserialize(m.serialize()).value().nonce,
              (Bytes{1, 2, 3}));
  }
  {
    const EnrollComplete m{"c", Bytes{4}, Bytes{5, 6}, Bytes{7}};
    auto back = EnrollComplete::deserialize(m.serialize()).value();
    EXPECT_EQ(back.client_id, "c");
    EXPECT_EQ(back.confirmation_pubkey, Bytes{4});
    EXPECT_EQ(back.quote, (Bytes{5, 6}));
    EXPECT_EQ(back.aik_certificate, Bytes{7});
  }
  {
    const EnrollResult m{true, "ok"};
    auto back = EnrollResult::deserialize(m.serialize()).value();
    EXPECT_TRUE(back.accepted);
    EXPECT_EQ(back.reason, "ok");
  }
  {
    const TxSubmit m{"c", "pay 5", Bytes{9, 9}};
    auto back = TxSubmit::deserialize(m.serialize()).value();
    EXPECT_EQ(back.summary, "pay 5");
    EXPECT_EQ(back.digest(), m.digest());
  }
  {
    const TxChallenge m{77, Bytes{1}};
    auto back = TxChallenge::deserialize(m.serialize()).value();
    EXPECT_EQ(back.tx_id, 77u);
  }
  {
    const TxConfirm m{"c", 77, Verdict::kConfirmed, Bytes{2, 2}};
    auto back = TxConfirm::deserialize(m.serialize()).value();
    EXPECT_EQ(back.verdict, Verdict::kConfirmed);
    EXPECT_EQ(back.signature, (Bytes{2, 2}));
  }
  {
    const TxResult m{77, false, "nope"};
    auto back = TxResult::deserialize(m.serialize()).value();
    EXPECT_FALSE(back.accepted);
    EXPECT_EQ(back.reason, "nope");
  }
}

TEST(Messages, DeserializeRejectsTruncationAndTrailing) {
  const TxSubmit m{"c", "pay 5", Bytes{9}};
  Bytes wire = m.serialize();
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(TxSubmit::deserialize(truncated).ok());
  Bytes padded = wire;
  padded.push_back(0x00);
  EXPECT_FALSE(TxSubmit::deserialize(padded).ok());
}

TEST(Messages, TxConfirmRejectsBadVerdict) {
  TxConfirm m{"c", 1, Verdict::kConfirmed, {}};
  Bytes wire = m.serialize();
  // Patch the verdict byte (after client_id length+1 bytes and u64).
  wire[4 + 1 + 8] = 99;
  EXPECT_FALSE(TxConfirm::deserialize(wire).ok());
}

TEST(Messages, DigestBindsSummaryAndPayload) {
  const TxSubmit a{"c", "pay 5", Bytes{1}};
  const TxSubmit b{"c", "pay 6", Bytes{1}};
  const TxSubmit c{"c", "pay 5", Bytes{2}};
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Messages, ConfirmationStatementBindsAllFields) {
  const Bytes d1(32, 1), d2(32, 2), n1(20, 3), n2(20, 4);
  const Bytes base = confirmation_statement(d1, n1, Verdict::kConfirmed);
  EXPECT_NE(base, confirmation_statement(d2, n1, Verdict::kConfirmed));
  EXPECT_NE(base, confirmation_statement(d1, n2, Verdict::kConfirmed));
  EXPECT_NE(base, confirmation_statement(d1, n1, Verdict::kRejected));
}

TEST(Messages, EnvelopeRoundTripAndValidation) {
  const Bytes frame = envelope(MsgType::kTxSubmit, Bytes{1, 2});
  auto opened = open_envelope(frame);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().first, MsgType::kTxSubmit);
  EXPECT_EQ(opened.value().second, (Bytes{1, 2}));
  EXPECT_FALSE(open_envelope({}).ok());
  EXPECT_FALSE(open_envelope(Bytes{0x99}).ok());
}

// ------------------------------------------------------- PAL marshalling

TEST(PalMarshalling, EnrollInputRoundTrip) {
  PalEnrollInput in;
  in.nonce = Bytes(20, 7);
  in.key_bits = 2048;
  Bytes wire = in.marshal();
  EXPECT_EQ(wire[0], static_cast<std::uint8_t>(PalCommand::kEnroll));
  auto back = PalEnrollInput::unmarshal(BytesView(wire).subspan(1));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().nonce, in.nonce);
  EXPECT_EQ(back.value().key_bits, 2048u);
}

TEST(PalMarshalling, EnrollInputRejectsSillyKeySizes) {
  PalEnrollInput in;
  in.key_bits = 64;
  Bytes wire = in.marshal();
  EXPECT_FALSE(PalEnrollInput::unmarshal(BytesView(wire).subspan(1)).ok());
}

TEST(PalMarshalling, ConfirmInputRoundTrip) {
  PalConfirmInput in;
  in.tx_summary = "pay 10 EUR to bob";
  in.tx_digest = Bytes(32, 1);
  in.nonce = Bytes(20, 2);
  in.sealed_key = Bytes(100, 3);
  in.code_len = 8;
  in.max_attempts = 2;
  in.user_timeout_ns = 5'000'000'000;
  Bytes wire = in.marshal();
  auto back = PalConfirmInput::unmarshal(BytesView(wire).subspan(1));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().tx_summary, in.tx_summary);
  EXPECT_EQ(back.value().code_len, 8u);
  EXPECT_EQ(back.value().user_timeout_ns, 5'000'000'000);
}

TEST(PalMarshalling, ConfirmOutputRoundTripAndValidation) {
  PalConfirmOutput out;
  out.verdict = Verdict::kConfirmed;
  out.signature = Bytes(96, 9);
  out.attempts = 2;
  auto back = PalConfirmOutput::unmarshal(out.marshal());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().verdict, Verdict::kConfirmed);
  EXPECT_EQ(back.value().attempts, 2u);
  EXPECT_FALSE(PalConfirmOutput::unmarshal(Bytes{9}).ok());
}

// ------------------------------------------------------------ PAL: enroll

class PalTest : public ::testing::Test {
 protected:
  PalTest()
      : platform_(test_platform_config()),
        driver_(platform_),
        pal_(make_trusted_path_pal()) {}

  PalEnrollOutput enroll(const Bytes& nonce) {
    PalEnrollInput in;
    in.nonce = nonce;
    in.key_bits = 768;
    auto session = driver_.run(pal_, in.marshal());
    EXPECT_TRUE(session.ok());
    EXPECT_TRUE(session.value().status.ok())
        << session.value().status.to_string();
    auto out = PalEnrollOutput::unmarshal(session.value().output);
    EXPECT_TRUE(out.ok());
    return out.take();
  }

  Platform platform_;
  pal::SessionDriver driver_;
  pal::PalDescriptor pal_;
};

TEST_F(PalTest, EnrollProducesVerifiableQuoteAtGoldenMeasurement) {
  const Bytes nonce(20, 5);
  const PalEnrollOutput out = enroll(nonce);

  auto quote = tpm::QuoteResult::deserialize(out.quote);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(tpm::verify_quote(platform_.tpm().aik_public(), quote.value(),
                                enrollment_quote_binding(out.pubkey, nonce))
                  .ok());
  ASSERT_EQ(quote.value().pcr_values.size(), 1u);
  EXPECT_EQ(quote.value().pcr_values[0], golden_pcr17());
}

TEST_F(PalTest, GoldenPcr17MatchesLaunchPrediction) {
  const auto m = drtm::LateLaunch::measure(pal_.image, bytes_of("whatever"));
  EXPECT_EQ(m.predicted_pcr_values()[0], golden_pcr17());
}

TEST_F(PalTest, EnrollKeyIsSealedNotBare) {
  const PalEnrollOutput out = enroll(Bytes(20, 5));
  // The blob must not be loadable as a plain private key.
  EXPECT_FALSE(crypto::RsaPrivateKey::deserialize(out.sealed_key).ok());
  // And the OS cannot unseal it (locality + capped PCR).
  EXPECT_FALSE(
      platform_.tpm().unseal(tpm::Locality::kOs, out.sealed_key).ok());
}

// ----------------------------------------------------------- PAL: confirm

class ConfirmTest : public PalTest {
 protected:
  ConfirmTest() { out_ = enroll(Bytes(20, 5)); }

  PalConfirmInput confirm_input(const std::string& summary) {
    TxSubmit submit{"client-A", summary, bytes_of("payload")};
    PalConfirmInput in;
    in.tx_summary = summary;
    in.tx_digest = submit.digest();
    in.nonce = Bytes(20, 9);
    in.sealed_key = out_.sealed_key;
    return in;
  }

  Result<PalConfirmOutput> run_confirm(const PalConfirmInput& in,
                                       pal::UserAgent* agent) {
    driver_.set_user_agent(agent);
    auto session = driver_.run(pal_, in.marshal());
    if (!session.ok()) return session.error();
    if (!session.value().status.ok()) return session.value().status.error();
    return PalConfirmOutput::unmarshal(session.value().output);
  }

  crypto::RsaPublicKey pubkey() {
    return crypto::RsaPublicKey::deserialize(out_.pubkey).take();
  }

  PalEnrollOutput out_;
};

TEST_F(ConfirmTest, AttentiveHumanConfirmsAndSignatureVerifies) {
  const auto in = confirm_input("pay 10 EUR to bob");
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)),
                        "pay 10 EUR to bob");
  auto out = run_confirm(in, &agent);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().verdict, Verdict::kConfirmed);
  EXPECT_EQ(out.value().attempts, 1u);
  EXPECT_TRUE(crypto::rsa_verify(
                  pubkey(), crypto::HashAlg::kSha256,
                  confirmation_statement(in.tx_digest, in.nonce,
                                         Verdict::kConfirmed),
                  out.value().signature)
                  .ok());
}

TEST_F(ConfirmTest, SignatureDoesNotVerifyForDifferentTransaction) {
  const auto in = confirm_input("pay 10 EUR to bob");
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)),
                        "pay 10 EUR to bob");
  auto out = run_confirm(in, &agent);
  ASSERT_TRUE(out.ok());
  const TxSubmit other{"client-A", "pay 9999 EUR to mallory",
                       bytes_of("payload")};
  EXPECT_FALSE(crypto::rsa_verify(
                   pubkey(), crypto::HashAlg::kSha256,
                   confirmation_statement(other.digest(), in.nonce,
                                          Verdict::kConfirmed),
                   out.value().signature)
                   .ok());
}

TEST_F(ConfirmTest, HumanRejectsMismatchedTransaction) {
  // Malware substituted the transaction; the trusted display shows the
  // forgery and the attentive user declines.
  const auto in = confirm_input("pay 9999 EUR to mallory");
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)),
                        "pay 10 EUR to bob");
  auto out = run_confirm(in, &agent);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().verdict, Verdict::kRejected);
  EXPECT_TRUE(out.value().signature.empty());
}

TEST_F(ConfirmTest, UnattendedSessionTimesOut) {
  const auto in = confirm_input("pay 10 EUR to bob");
  auto out = run_confirm(in, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().verdict, Verdict::kTimeout);
  EXPECT_TRUE(out.value().signature.empty());
}

TEST_F(ConfirmTest, TypoRetriesThenSucceeds) {
  // An agent that fat-fingers the first attempt, then types correctly.
  class TypoAgent : public pal::UserAgent {
   public:
    std::optional<SimDuration> on_prompt(
        const devices::DisplayContent& screen,
        devices::Keyboard& kb) override {
      std::string code = screen.find_field(devices::kFieldCode);
      if (++calls_ == 1) code[0] = (code[0] == 'x') ? 'y' : 'x';
      kb.press_line(devices::KeySource::kPhysical, code);
      return SimDuration::seconds(3);
    }
    int calls_ = 0;
  };
  TypoAgent agent;
  const auto in = confirm_input("pay 10 EUR to bob");
  auto out = run_confirm(in, &agent);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().verdict, Verdict::kConfirmed);
  EXPECT_EQ(out.value().attempts, 2u);
}

TEST_F(ConfirmTest, AllAttemptsWrongRejects) {
  class HopelessAgent : public pal::UserAgent {
   public:
    std::optional<SimDuration> on_prompt(const devices::DisplayContent&,
                                         devices::Keyboard& kb) override {
      kb.press_line(devices::KeySource::kPhysical, "nope");
      return SimDuration::seconds(2);
    }
  };
  HopelessAgent agent;
  auto in = confirm_input("pay 10 EUR to bob");
  in.max_attempts = 3;
  auto out = run_confirm(in, &agent);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().verdict, Verdict::kRejected);
  EXPECT_EQ(out.value().attempts, 3u);
}

TEST_F(ConfirmTest, FreshCodeEveryAttempt) {
  class CodeCollector : public pal::UserAgent {
   public:
    std::optional<SimDuration> on_prompt(
        const devices::DisplayContent& screen,
        devices::Keyboard& kb) override {
      codes.push_back(screen.find_field(devices::kFieldCode));
      kb.press_line(devices::KeySource::kPhysical, "wrong");
      return SimDuration::seconds(1);
    }
    std::vector<std::string> codes;
  };
  CodeCollector agent;
  auto in = confirm_input("t");
  in.max_attempts = 3;
  ASSERT_TRUE(run_confirm(in, &agent).ok());
  ASSERT_EQ(agent.codes.size(), 3u);
  EXPECT_NE(agent.codes[0], agent.codes[1]);
  EXPECT_NE(agent.codes[1], agent.codes[2]);
}

TEST_F(ConfirmTest, DegenerateParametersRejected) {
  auto in = confirm_input("t");
  in.code_len = 0;
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)), "t");
  driver_.set_user_agent(&agent);
  auto session = driver_.run(pal_, in.marshal());
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session.value().status.ok());
}

TEST_F(ConfirmTest, SealedKeyFromAnotherPlatformFails) {
  Platform other(test_platform_config("client-B"));
  pal::SessionDriver other_driver(other);
  auto in = confirm_input("pay 10 EUR to bob");  // sealed on platform A
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)),
                        "pay 10 EUR to bob");
  other_driver.set_user_agent(&agent);
  auto session = other_driver.run(pal_, in.marshal());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().status.code(), Err::kAuthFail);
}

TEST(CostModel, ScalesWithKeySize) {
  EXPECT_GT(pal_keygen_cost(2048).ns, pal_keygen_cost(1024).ns * 8);
  EXPECT_GT(pal_sign_cost(2048).ns, pal_sign_cost(1024).ns * 4);
}

}  // namespace
}  // namespace tp::core
