// Tests for the extension features: Intel TXT launch flavour, batch
// confirmation, rollback-protected sealed state, TPM ownership/OIAP
// authorization, and the SP baseline policy mode.
#include <gtest/gtest.h>

#include "core/trusted_path_pal.h"
#include "drtm/late_launch.h"
#include "host/adversary.h"
#include "pal/human_agent.h"
#include "pal/sealed_state.h"
#include "pal/session.h"
#include "sp/deployment.h"

namespace tp {
namespace {

using core::Verdict;
using drtm::DrtmTechnology;

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

sp::DeploymentConfig fast_config(const std::string& id,
                                 DrtmTechnology tech) {
  sp::DeploymentConfig cfg;
  cfg.client_id = id;
  cfg.seed = bytes_of("ext-test:" + id);
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.technology = tech;
  return cfg;
}

// ------------------------------------------------------------ Intel TXT

TEST(IntelTxt, MeasurementChainUsesPcr17And18And19) {
  drtm::PlatformConfig pc;
  pc.seed = bytes_of("txt");
  pc.tpm_key_bits = 768;
  pc.technology = DrtmTechnology::kIntelTxt;
  drtm::Platform platform(pc);
  EXPECT_EQ(platform.identity_pcr(), 18u);

  drtm::LateLaunch launcher(platform);
  const Bytes image = pal::PalDescriptor::make_image("mle", 1);
  auto guard = launcher.launch(image, bytes_of("in"));
  ASSERT_TRUE(guard.ok());

  // PCR17 = SINIT + LCP chain, PCR18 = MLE identity, PCR19 = inputs.
  EXPECT_EQ(platform.tpm().pcr_read(17).value(),
            drtm::predicted_txt_pcr17(pc.txt));
  EXPECT_EQ(platform.tpm().pcr_read(18).value(),
            drtm::predicted_extend_of(image));
  EXPECT_EQ(platform.tpm().pcr_read(19).value(),
            drtm::predicted_extend_of(bytes_of("in")));
}

TEST(IntelTxt, ExitCapsCoverPcr19Too) {
  drtm::PlatformConfig pc;
  pc.seed = bytes_of("txt2");
  pc.tpm_key_bits = 768;
  pc.technology = DrtmTechnology::kIntelTxt;
  drtm::Platform platform(pc);
  drtm::LateLaunch launcher(platform);
  Bytes pcr19_inside;
  {
    auto guard = launcher.launch(pal::PalDescriptor::make_image("m", 1),
                                 bytes_of("in"));
    ASSERT_TRUE(guard.ok());
    auto hold = guard.take();
    pcr19_inside = platform.tpm().pcr_read(19).value();
  }
  EXPECT_NE(platform.tpm().pcr_read(19).value(), pcr19_inside);
}

TEST(IntelTxt, EndToEndEnrollAndConfirm) {
  sp::Deployment world(fast_config("txt-client", DrtmTechnology::kIntelTxt));
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)),
                        "pay 10 EUR to bob");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());
  auto outcome =
      world.client().submit_transaction("pay 10 EUR to bob", bytes_of("p"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().accepted);
}

TEST(IntelTxt, GoldenIdentityValueSameRegisterDiffers) {
  const auto skinit = core::attestation_policy(DrtmTechnology::kAmdSkinit);
  const auto txt = core::attestation_policy(DrtmTechnology::kIntelTxt);
  EXPECT_EQ(skinit.selection, tpm::PcrSelection::of({17}));
  EXPECT_EQ(txt.selection, tpm::PcrSelection::of({17, 18}));
  // The PAL identity value is the same digest; it just lives in a
  // different register.
  EXPECT_EQ(skinit.values[0], txt.values[1]);
  EXPECT_NE(txt.values[0], txt.values[1]);
}

TEST(IntelTxt, SpRejectsWrongSinitChain) {
  // A TXT platform with a non-standard (e.g., outdated/forged) SINIT ACM
  // produces a different PCR17 chain: the SP must reject enrollment.
  auto cfg = fast_config("txt-evil", DrtmTechnology::kIntelTxt);
  sp::Deployment world(cfg);

  // Rebuild the platform with different artifacts than the SP accepts.
  drtm::PlatformConfig pc;
  pc.platform_id = "txt-evil-platform";
  pc.seed = bytes_of("evil-sinit");
  pc.tpm_key_bits = 768;
  pc.technology = DrtmTechnology::kIntelTxt;
  pc.txt.sinit_acm = bytes_of("forged SINIT module");
  drtm::Platform rogue(pc);

  const auto challenge =
      world.sp().begin_enrollment(core::EnrollBegin{"txt-evil"});
  core::PalEnrollInput in;
  in.nonce = challenge.nonce;
  in.key_bits = 768;
  pal::SessionDriver driver(rogue);
  auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().status.ok());
  auto out = core::PalEnrollOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());

  core::EnrollComplete msg;
  msg.client_id = "txt-evil";
  msg.confirmation_pubkey = out.value().pubkey;
  msg.quote = out.value().quote;
  msg.aik_certificate =
      world.ca().certify("txt-evil", rogue.tpm().aik_public()).serialize();
  EXPECT_FALSE(world.sp().complete_enrollment(msg).accepted);
}

TEST(IntelTxt, SealedKeyDoesNotCrossTechnologies) {
  // A key sealed under SKINIT (PCR17 = PAL identity) cannot be used on a
  // TXT launch of the same PAL on the same TPM: PCR17 holds the SINIT
  // chain there. (One physical machine has one technology; this guards
  // the *code* against conflating the two.)
  drtm::PlatformConfig pc;
  pc.seed = bytes_of("cross");
  pc.tpm_key_bits = 768;
  pc.technology = DrtmTechnology::kAmdSkinit;
  drtm::Platform platform(pc);
  pal::SessionDriver driver(platform);

  core::PalEnrollInput in;
  in.nonce = Bytes(20, 1);
  in.key_bits = 768;
  auto session = driver.run(core::make_trusted_path_pal(), in.marshal());
  auto out = core::PalEnrollOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());

  // "Re-flash" the machine to TXT (simulation-only thought experiment).
  drtm::PlatformConfig pc2 = pc;
  pc2.technology = DrtmTechnology::kIntelTxt;
  drtm::Platform txt_platform(pc2);
  // The sealed blob belongs to the OTHER TpmDevice instance; cross-device
  // unsealing already fails (kAuthFail). The point here: even on the same
  // platform object, PCR17 after a TXT launch never matches the SKINIT
  // sealing composite -- assert via golden values.
  EXPECT_NE(drtm::predicted_txt_pcr17(pc2.txt), core::golden_pcr17());
}

// ---------------------------------------------------- Batch confirmation

class BatchTest : public ::testing::Test {
 protected:
  BatchTest()
      : world_(fast_config("batcher", DrtmTechnology::kAmdSkinit)),
        agent_(devices::HumanModel(perfect_human(), SimRng(2)), "") {
    world_.client().set_user_agent(&agent_);
    EXPECT_TRUE(world_.client().enroll().ok());
  }

  std::vector<core::TrustedPathClient::BatchTx> make_batch(std::size_t n) {
    std::vector<core::TrustedPathClient::BatchTx> txs;
    std::vector<core::BatchItem> preview;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string summary = "pay " + std::to_string(i + 1) + " EUR";
      txs.emplace_back(summary, bytes_of("payload"));
      preview.push_back(core::BatchItem{summary, {}, {}});
    }
    agent_.set_intended_summary(core::batch_summary(preview));
    return txs;
  }

  sp::Deployment world_;
  pal::HumanAgent agent_;
};

TEST_F(BatchTest, AllTransactionsAcceptedInOneSession) {
  auto outcome = world_.client().submit_batch(make_batch(5));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().verdict, Verdict::kConfirmed);
  EXPECT_EQ(outcome.value().accepted_count(), 5u);
  EXPECT_EQ(world_.sp().stats().tx_accepted, 5u);
  // One session: exactly one unseal was paid.
  EXPECT_LT(outcome.value().timing.tpm.ns,
            2 * tpm::default_chip().unseal.ns);
}

TEST_F(BatchTest, BatchOfOneEqualsSingleConfirm) {
  auto outcome = world_.client().submit_batch(make_batch(1));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().accepted_count(), 1u);
}

TEST_F(BatchTest, RejectionRejectsWholeBatch) {
  auto txs = make_batch(4);
  agent_.set_intended_summary("something completely different");
  auto outcome = world_.client().submit_batch(txs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().verdict, Verdict::kRejected);
  EXPECT_EQ(outcome.value().accepted_count(), 0u);
  EXPECT_EQ(world_.sp().stats().tx_accepted, 0u);
}

TEST_F(BatchTest, EmptyBatchRejected) {
  auto outcome = world_.client().submit_batch({});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.code(), Err::kInvalidArgument);
}

TEST_F(BatchTest, SignaturesAreItemSpecific) {
  // Swapping two signatures between transactions must fail at the SP:
  // each signature binds its own (digest, nonce).
  auto txs = make_batch(2);
  // Drive the protocol manually to intercept.
  core::PalBatchConfirmInput pal_input;
  pal_input.sealed_key = world_.client().sealed_key_blob();
  std::vector<std::uint64_t> tx_ids;
  for (const auto& [summary, payload] : txs) {
    core::TxSubmit submit{"batcher", summary, payload};
    auto challenge = world_.sp().begin_transaction(submit);
    pal_input.items.push_back(
        core::BatchItem{summary, submit.digest(), challenge.nonce});
    tx_ids.push_back(challenge.tx_id);
  }
  pal::SessionDriver driver(world_.platform());
  driver.set_user_agent(&agent_);
  agent_.set_intended_summary(core::batch_summary(pal_input.items));
  auto session =
      driver.run(core::make_trusted_path_pal(), pal_input.marshal());
  ASSERT_TRUE(session.ok());
  auto out = core::PalBatchConfirmOutput::unmarshal(session.value().output);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().verdict, Verdict::kConfirmed);
  ASSERT_EQ(out.value().signatures.size(), 2u);

  // Deliver with swapped signatures.
  for (std::size_t i = 0; i < 2; ++i) {
    core::TxConfirm confirm;
    confirm.client_id = "batcher";
    confirm.tx_id = tx_ids[i];
    confirm.verdict = Verdict::kConfirmed;
    confirm.signature = out.value().signatures[1 - i];  // the swap
    EXPECT_FALSE(world_.sp().complete_transaction(confirm).accepted);
  }
}

TEST(BatchMarshalling, RoundTrip) {
  core::PalBatchConfirmInput in;
  in.items = {{"a", Bytes(32, 1), Bytes(20, 2)},
              {"b", Bytes(32, 3), Bytes(20, 4)}};
  in.sealed_key = Bytes(64, 5);
  in.code_len = 8;
  Bytes wire = in.marshal();
  auto back =
      core::PalBatchConfirmInput::unmarshal(BytesView(wire).subspan(1));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().items.size(), 2u);
  EXPECT_EQ(back.value().items[1].summary, "b");
  EXPECT_EQ(back.value().code_len, 8u);

  core::PalBatchConfirmOutput out;
  out.verdict = Verdict::kConfirmed;
  out.signatures = {Bytes(96, 6), Bytes(96, 7)};
  out.attempts = 1;
  auto out_back = core::PalBatchConfirmOutput::unmarshal(out.marshal());
  ASSERT_TRUE(out_back.ok());
  EXPECT_EQ(out_back.value().signatures.size(), 2u);
}

TEST(BatchMarshalling, RejectsOversizedBatch) {
  core::PalBatchConfirmInput in;
  for (int i = 0; i < 65; ++i) {
    in.items.push_back(core::BatchItem{"x", Bytes(32, 1), Bytes(20, 2)});
  }
  Bytes wire = in.marshal();
  EXPECT_FALSE(
      core::PalBatchConfirmInput::unmarshal(BytesView(wire).subspan(1)).ok());
}

// ------------------------------------------------- Sealed-state rollback

class SealedStateTest : public ::testing::Test {
 protected:
  SealedStateTest()
      : tpm_(tpm::default_chip(), bytes_of("ss"), clock_,
             tpm::TpmDevice::Options{.key_bits = 768}),
        channel_(tpm_, /*counter_id=*/7) {}

  SimClock clock_;
  tpm::TpmDevice tpm_;
  pal::SealedStateChannel channel_;
};

TEST_F(SealedStateTest, SaveLoadRoundTrip) {
  auto blob = channel_.save(tpm::Locality::kPal,
                            tpm::PcrSelection::of({10}), 0xff,
                            bytes_of("balance=100"));
  ASSERT_TRUE(blob.ok());
  auto state = channel_.load(tpm::Locality::kPal, blob.value());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(string_of(state.value()), "balance=100");
}

TEST_F(SealedStateTest, StaleBlobIsReplay) {
  auto old_blob = channel_.save(tpm::Locality::kPal,
                                tpm::PcrSelection::of({10}), 0xff,
                                bytes_of("limit-not-reached"));
  ASSERT_TRUE(old_blob.ok());
  auto new_blob = channel_.save(tpm::Locality::kPal,
                                tpm::PcrSelection::of({10}), 0xff,
                                bytes_of("limit-reached"));
  ASSERT_TRUE(new_blob.ok());
  // The rollback attack: feed the PAL the pre-limit state.
  EXPECT_EQ(channel_.load(tpm::Locality::kPal, old_blob.value()).code(),
            Err::kReplay);
  // The fresh blob still loads.
  EXPECT_TRUE(channel_.load(tpm::Locality::kPal, new_blob.value()).ok());
}

TEST_F(SealedStateTest, LoadIsRepeatableUntilNextSave) {
  auto blob = channel_.save(tpm::Locality::kPal,
                            tpm::PcrSelection::of({10}), 0xff,
                            bytes_of("s"));
  ASSERT_TRUE(blob.ok());
  EXPECT_TRUE(channel_.load(tpm::Locality::kPal, blob.value()).ok());
  EXPECT_TRUE(channel_.load(tpm::Locality::kPal, blob.value()).ok());
}

TEST_F(SealedStateTest, IndependentChannelsIndependentCounters) {
  pal::SealedStateChannel other(tpm_, 8);
  auto blob = channel_.save(tpm::Locality::kPal,
                            tpm::PcrSelection::of({10}), 0xff, bytes_of("a"));
  ASSERT_TRUE(blob.ok());
  // Saving on ANOTHER channel must not invalidate this one.
  ASSERT_TRUE(other
                  .save(tpm::Locality::kPal, tpm::PcrSelection::of({10}),
                        0xff, bytes_of("b"))
                  .ok());
  EXPECT_TRUE(channel_.load(tpm::Locality::kPal, blob.value()).ok());
}

TEST_F(SealedStateTest, TamperedBlobRejected) {
  auto blob = channel_.save(tpm::Locality::kPal,
                            tpm::PcrSelection::of({10}), 0xff, bytes_of("s"));
  ASSERT_TRUE(blob.ok());
  Bytes tampered = blob.value();
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_EQ(channel_.load(tpm::Locality::kPal, tampered).code(),
            Err::kAuthFail);
}

// -------------------------------------------------- Ownership and OIAP

class OwnershipTest : public ::testing::Test {
 protected:
  OwnershipTest()
      : tpm_(tpm::default_chip(), bytes_of("own"), clock_,
             tpm::TpmDevice::Options{.key_bits = 768}) {}

  // Computes a valid auth for the given params with the given secret.
  Status authorized(std::uint32_t session, const Bytes& params,
                    BytesView secret,
                    const std::function<Status(BytesView, BytesView)>& cmd) {
    auto nonce_even = tpm_.oiap_nonce(session);
    if (!nonce_even.ok()) return nonce_even.error();
    const Bytes nonce_odd(20, 0xab);
    const Bytes auth = tpm::TpmDevice::compute_auth(
        secret, params, nonce_even.value(), nonce_odd);
    return cmd(nonce_odd, auth);
  }

  SimClock clock_;
  tpm::TpmDevice tpm_;
  const Bytes owner_secret_ = bytes_of("owner-password-hash");
};

TEST_F(OwnershipTest, TakeOwnershipOnce) {
  EXPECT_FALSE(tpm_.owned());
  EXPECT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  EXPECT_TRUE(tpm_.owned());
  EXPECT_EQ(tpm_.take_ownership(owner_secret_).code(), Err::kBadState);
  EXPECT_FALSE(tpm_.take_ownership({}).ok());
}

TEST_F(OwnershipTest, OwnerNvDefineWithValidAuth) {
  ASSERT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  auto session = tpm_.oiap_start();
  ASSERT_TRUE(session.ok());
  const std::uint32_t index = 0x10000001;
  const Bytes params = tpm::TpmDevice::owner_nv_define_params(index, 64);
  EXPECT_TRUE(authorized(session.value(), params, owner_secret_,
                         [&](BytesView nonce_odd, BytesView auth) {
                           return tpm_.owner_nv_define(session.value(), index,
                                                       64, nonce_odd, auth);
                         })
                  .ok());
  EXPECT_TRUE(tpm_.nv_write(index, bytes_of("protected data")).ok());
}

TEST_F(OwnershipTest, WrongSecretRejected) {
  ASSERT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  auto session = tpm_.oiap_start();
  ASSERT_TRUE(session.ok());
  const std::uint32_t index = 0x10000002;
  const Bytes params = tpm::TpmDevice::owner_nv_define_params(index, 64);
  EXPECT_EQ(authorized(session.value(), params, bytes_of("wrong"),
                       [&](BytesView nonce_odd, BytesView auth) {
                         return tpm_.owner_nv_define(session.value(), index,
                                                     64, nonce_odd, auth);
                       })
                .code(),
            Err::kAuthFail);
}

TEST_F(OwnershipTest, AuthValueCannotBeReplayed) {
  ASSERT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  auto session = tpm_.oiap_start();
  ASSERT_TRUE(session.ok());
  const std::uint32_t index = 0x10000003;
  const Bytes params = tpm::TpmDevice::owner_nv_define_params(index, 64);

  auto nonce_even = tpm_.oiap_nonce(session.value());
  ASSERT_TRUE(nonce_even.ok());
  const Bytes nonce_odd(20, 0xcd);
  const Bytes auth = tpm::TpmDevice::compute_auth(
      owner_secret_, params, nonce_even.value(), nonce_odd);
  ASSERT_TRUE(
      tpm_.owner_nv_define(session.value(), index, 64, nonce_odd, auth)
          .ok());
  // Same auth again: the even nonce rolled, the HMAC no longer matches.
  EXPECT_EQ(tpm_.owner_nv_define(session.value(), 0x10000004, 64, nonce_odd,
                                 auth)
                .code(),
            Err::kAuthFail);
}

TEST_F(OwnershipTest, ParamsAreBoundByAuth) {
  // An auth computed for one (index, size) must not authorize another.
  ASSERT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  auto session = tpm_.oiap_start();
  ASSERT_TRUE(session.ok());
  auto nonce_even = tpm_.oiap_nonce(session.value());
  const Bytes nonce_odd(20, 1);
  const Bytes auth_for_small = tpm::TpmDevice::compute_auth(
      owner_secret_, tpm::TpmDevice::owner_nv_define_params(0x10000005, 16),
      nonce_even.value(), nonce_odd);
  EXPECT_EQ(tpm_.owner_nv_define(session.value(), 0x10000005, 2048,
                                 nonce_odd, auth_for_small)
                .code(),
            Err::kAuthFail);
}

TEST_F(OwnershipTest, OwnerProtectedRangeEnforced) {
  ASSERT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  auto session = tpm_.oiap_start();
  EXPECT_EQ(tpm_.owner_nv_define(session.value(), 0x100, 64, Bytes(20, 0),
                                 Bytes(20, 0))
                .code(),
            Err::kInvalidArgument);
}

TEST_F(OwnershipTest, UnownedTpmRefusesOwnerCommands) {
  auto session = tpm_.oiap_start();
  EXPECT_EQ(tpm_.owner_nv_define(session.value(), 0x10000006, 64,
                                 Bytes(20, 0), Bytes(20, 0))
                .code(),
            Err::kBadState);
}

TEST_F(OwnershipTest, OwnerClearDestroysSealedStorage) {
  ASSERT_TRUE(tpm_.take_ownership(owner_secret_).ok());
  auto blob = tpm_.seal(tpm::Locality::kOs, tpm::PcrSelection::of({10}),
                        0xff, bytes_of("secret"));
  ASSERT_TRUE(blob.ok());

  auto session = tpm_.oiap_start();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(authorized(session.value(),
                         tpm::TpmDevice::owner_clear_params(), owner_secret_,
                         [&](BytesView nonce_odd, BytesView auth) {
                           return tpm_.owner_clear(session.value(), nonce_odd,
                                                   auth);
                         })
                  .ok());
  EXPECT_FALSE(tpm_.owned());
  // The old blob is permanently dead: new SRK seed.
  EXPECT_EQ(tpm_.unseal(tpm::Locality::kOs, blob.value()).code(),
            Err::kAuthFail);
}

// ----------------------------------------------------- SP baseline mode

TEST(SpBaselineMode, NoDefenseExecutesAnything) {
  sp::SpConfig cfg;
  cfg.golden_pcr17 = core::golden_pcr17();
  cfg.ca_public = crypto::RsaPublicKey{crypto::BigInt(3), crypto::BigInt(3)};
  cfg.require_trusted_path = false;
  sp::ServiceProvider sp(cfg);

  const core::TxSubmit submit{"anyone", "drain the account", bytes_of("x")};
  const auto challenge = sp.begin_transaction(submit);
  core::TxConfirm confirm;
  confirm.client_id = "anyone";
  confirm.tx_id = challenge.tx_id;
  confirm.verdict = Verdict::kConfirmed;
  confirm.signature = Bytes(8, 0);  // garbage
  EXPECT_TRUE(sp.complete_transaction(confirm).accepted);
  EXPECT_EQ(sp.stats().tx_accepted, 1u);
}

}  // namespace
}  // namespace tp
