// Differential parity suites for the batched verify data plane.
//
// Every batch primitive in the repo claims bit-for-bit decision
// equivalence with its single-item counterpart; these tests hold it to
// that over fuzzed inputs: multi-buffer SHA-256/HMAC against the scalar
// hashes across lengths straddling every padding boundary, batch RSA
// and ECDSA verification against the per-item contexts over mixes of
// valid, corrupted and malformed inputs (including the
// one-bad-signature-in-batch case, where the bisection must isolate
// exactly the offending index), the ring-buffer queue against its
// contract, and the SP batch frame path against sequential handle_frame
// on a twin service provider. Run via `ctest -L batch`; CI repeats the
// label under ASan and UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/trusted_path_pal.h"
#include "crypto/drbg.h"
#include "crypto/ecdsa.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/sha256_mb.h"
#include "devices/human.h"
#include "pal/session.h"
#include "sp/service_provider.h"
#include "svc/bounded_queue.h"
#include "tpm/attestation.h"
#include "tpm/privacy_ca.h"

namespace tp {
namespace {

Bytes rng_bytes(crypto::HmacDrbg& rng, std::size_t n) {
  return rng.generate(n);
}

std::uint64_t rng_u64(crypto::HmacDrbg& rng) {
  const Bytes b = rng.generate(8);
  std::uint64_t v = 0;
  for (std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

// ---- multi-buffer SHA-256 / HMAC ---------------------------------------

TEST(Sha256MbTest, ParityAcrossPaddingBoundaries) {
  crypto::HmacDrbg rng(bytes_of("batch-test:sha-mb"));
  // Every length from empty through two blocks, plus the exact padding
  // cliffs (55/56: length field fits or spills; 63/64: block edge) a
  // second block out.
  for (std::size_t len = 0; len <= 130; ++len) {
    Bytes msgs[4];
    BytesView views[4];
    for (int l = 0; l < 4; ++l) {
      msgs[l] = rng_bytes(rng, len);
      views[l] = msgs[l];
    }
    crypto::Sha256Digest got[4];
    crypto::sha256_mb4(views, got);
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(got[l], crypto::Sha256::digest(views[l]))
          << "len=" << len << " lane=" << l;
    }
  }
}

TEST(Sha256MbTest, RejectsUnequalLengths) {
  Bytes a(10, 0x41), b(11, 0x42);
  BytesView views[4] = {a, a, b, a};
  crypto::Sha256Digest out[4];
  EXPECT_THROW(crypto::sha256_mb4(views, out), std::invalid_argument);
}

TEST(Sha256MbTest, ManyHandlesMixedLengths) {
  crypto::HmacDrbg rng(bytes_of("batch-test:sha-many"));
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng_u64(rng) % 13;
    std::vector<Bytes> msgs(n);
    std::vector<BytesView> views(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of equal-length runs (exercises the 4-way kernel) and
      // stragglers (exercises the scalar fallback).
      const std::size_t len = (rng_u64(rng) % 4 == 0)
                                  ? rng_u64(rng) % 200
                                  : 64 + (round % 3) * 57;
      msgs[i] = rng_bytes(rng, len);
      views[i] = msgs[i];
    }
    std::vector<crypto::Sha256Digest> got(n);
    crypto::sha256_many(views.data(), n, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], crypto::Sha256::digest(views[i])) << "i=" << i;
    }
  }
}

TEST(Sha256MbTest, HmacParityAcrossKeyAndMessageLengths) {
  crypto::HmacDrbg rng(bytes_of("batch-test:hmac-mb"));
  const std::size_t key_lens[] = {0, 1, 32, 63, 64, 65, 100};
  const std::size_t msg_lens[] = {0, 1, 54, 55, 56, 63, 64, 65, 119, 128};
  for (std::size_t klen : key_lens) {
    for (std::size_t mlen : msg_lens) {
      Bytes keys[4], msgs[4];
      BytesView key_views[4], msg_views[4];
      for (int l = 0; l < 4; ++l) {
        keys[l] = rng_bytes(rng, klen);
        msgs[l] = rng_bytes(rng, mlen);
        key_views[l] = keys[l];
        msg_views[l] = msgs[l];
      }
      crypto::Sha256Digest got[4];
      crypto::hmac_sha256_mb4(key_views, msg_views, got);
      for (int l = 0; l < 4; ++l) {
        const Bytes want = crypto::hmac_sha256(keys[l], msgs[l]);
        EXPECT_EQ(Bytes(got[l].begin(), got[l].end()), want)
            << "klen=" << klen << " mlen=" << mlen << " lane=" << l;
      }
    }
  }
}

TEST(Sha256MbTest, HmacManyMatchesScalarContext) {
  crypto::HmacDrbg rng(bytes_of("batch-test:hmac-many"));
  const Bytes key = rng_bytes(rng, 32);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 1 + rng_u64(rng) % 11;
    std::vector<Bytes> msgs(n);
    std::vector<BytesView> views(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len =
          (rng_u64(rng) % 3 == 0) ? rng_u64(rng) % 150 : 80;
      msgs[i] = rng_bytes(rng, len);
      views[i] = msgs[i];
    }
    std::vector<crypto::Sha256Digest> got(n);
    crypto::hmac_sha256_many(key, views.data(), n, got.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bytes(got[i].begin(), got[i].end()),
                crypto::hmac_sha256(key, msgs[i]))
          << "i=" << i;
    }
  }
}

// ---- batch ECDSA -------------------------------------------------------

struct EcdsaFixture {
  std::vector<crypto::EcdsaPrivateKey> keys;
  std::vector<crypto::EcdsaVerifyContext> ctxs;

  explicit EcdsaFixture(std::size_t count, const char* seed) {
    crypto::HmacDrbg rng(bytes_of(seed));
    auto rand = [&rng](std::size_t n) { return rng.generate(n); };
    keys.reserve(count);
    ctxs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(crypto::ecdsa_generate(rand));
      ctxs.emplace_back(keys.back().public_half);
    }
  }
};

TEST(EcdsaBatchTest, ParityOverFuzzedMixes) {
  EcdsaFixture fx(4, "batch-test:ecdsa-parity");
  crypto::HmacDrbg rng(bytes_of("batch-test:ecdsa-fuzz"));
  // An intentionally invalid context (off-curve key): batch must report
  // the same invalid-key failure the single path does.
  crypto::EcdsaPublicKey bad_key = fx.keys[0].public_half;
  bad_key.y[5] ^= 0x01;
  const crypto::EcdsaVerifyContext bad_ctx(bad_key);

  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 1 + rng_u64(rng) % 9;
    std::vector<Bytes> messages(n), signatures(n);
    std::vector<crypto::EcdsaBatchItem> items(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t key_idx = rng_u64(rng) % fx.keys.size();
      messages[i] = rng_bytes(rng, 40 + rng_u64(rng) % 60);
      signatures[i] = crypto::ecdsa_sign(fx.keys[key_idx], messages[i]);
      items[i].ctx = &fx.ctxs[key_idx];
      switch (rng_u64(rng) % 6) {
        case 0:  // valid
          break;
        case 1:  // corrupted signature byte
          signatures[i][rng_u64(rng) % signatures[i].size()] ^= 0x40;
          break;
        case 2:  // corrupted message
          messages[i][rng_u64(rng) % messages[i].size()] ^= 0x01;
          break;
        case 3:  // malformed: truncated signature
          signatures[i].resize(signatures[i].size() / 2);
          break;
        case 4:  // malformed: r = 0
          std::fill(signatures[i].begin(), signatures[i].begin() + 32, 0);
          break;
        case 5:  // invalid public key
          items[i].ctx = &bad_ctx;
          break;
      }
      items[i].message = messages[i];
      items[i].signature = signatures[i];
    }
    const std::vector<Status> got = crypto::ecdsa_verify_batch(items);
    ASSERT_EQ(got.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const Status want = items[i].ctx->verify(messages[i], signatures[i]);
      EXPECT_EQ(got[i].ok(), want.ok()) << "round=" << round << " i=" << i;
      if (!want.ok()) {
        EXPECT_EQ(got[i].error().code, want.error().code)
            << "round=" << round << " i=" << i;
        EXPECT_EQ(got[i].error().message, want.error().message)
            << "round=" << round << " i=" << i;
      }
    }
  }
}

TEST(EcdsaBatchTest, BisectionIsolatesTheOneBadSignature) {
  EcdsaFixture fx(3, "batch-test:ecdsa-isolate");
  crypto::HmacDrbg rng(bytes_of("batch-test:ecdsa-isolate-fuzz"));
  for (std::size_t bad = 0; bad < 16; ++bad) {
    std::vector<Bytes> messages(16), signatures(16);
    std::vector<crypto::EcdsaBatchItem> items(16);
    for (std::size_t i = 0; i < 16; ++i) {
      const std::size_t key_idx = i % fx.keys.size();
      messages[i] = rng_bytes(rng, 72);
      signatures[i] = crypto::ecdsa_sign(fx.keys[key_idx], messages[i]);
      if (i == bad) signatures[i][40] ^= 0x20;  // corrupt s, still in range
      items[i] = {&fx.ctxs[key_idx], messages[i], signatures[i]};
    }
    const std::vector<Status> got = crypto::ecdsa_verify_batch(items);
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(got[i].ok(), i != bad) << "bad=" << bad << " i=" << i;
    }
  }
}

TEST(EcdsaBatchTest, AllValidAndAllInvalidBatches) {
  EcdsaFixture fx(2, "batch-test:ecdsa-ends");
  crypto::HmacDrbg rng(bytes_of("batch-test:ecdsa-ends-fuzz"));
  std::vector<Bytes> messages(8), signatures(8);
  std::vector<crypto::EcdsaBatchItem> items(8);
  for (std::size_t i = 0; i < 8; ++i) {
    messages[i] = rng_bytes(rng, 64);
    signatures[i] = crypto::ecdsa_sign(fx.keys[i % 2], messages[i]);
    items[i] = {&fx.ctxs[i % 2], messages[i], signatures[i]};
  }
  for (const Status& s : crypto::ecdsa_verify_batch(items)) {
    EXPECT_TRUE(s.ok());
  }
  for (std::size_t i = 0; i < 8; ++i) signatures[i][33] ^= 0x10;
  for (std::size_t i = 0; i < 8; ++i) items[i].signature = signatures[i];
  for (const Status& s : crypto::ecdsa_verify_batch(items)) {
    EXPECT_FALSE(s.ok());
  }
}

TEST(EcdsaBatchTest, EmptyBatch) {
  EXPECT_TRUE(crypto::ecdsa_verify_batch({}).empty());
}

// ---- batch RSA ---------------------------------------------------------

struct RsaFixture {
  std::vector<crypto::RsaPrivateKey> keys;
  std::vector<crypto::RsaVerifyContext> ctxs;

  explicit RsaFixture(std::size_t count, const char* seed) {
    crypto::HmacDrbg rng(bytes_of(seed));
    auto rand = [&rng](std::size_t n) { return rng.generate(n); };
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(crypto::rsa_generate(1024, rand));
      ctxs.emplace_back(keys.back().public_key());
    }
  }
};

TEST(RsaBatchTest, ParityOverFuzzedMixes) {
  RsaFixture fx(2, "batch-test:rsa-parity");
  crypto::HmacDrbg rng(bytes_of("batch-test:rsa-fuzz"));
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 1 + rng_u64(rng) % 7;
    std::vector<Bytes> messages(n), signatures(n);
    std::vector<crypto::RsaBatchItem> items(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t key_idx = rng_u64(rng) % fx.keys.size();
      const crypto::HashAlg alg = (rng_u64(rng) % 4 == 0)
                                      ? crypto::HashAlg::kSha1
                                      : crypto::HashAlg::kSha256;
      messages[i] = rng_bytes(rng, 30 + rng_u64(rng) % 80);
      signatures[i] = crypto::rsa_sign(fx.keys[key_idx], alg, messages[i]);
      switch (rng_u64(rng) % 5) {
        case 0:  // valid
        case 1:
          break;
        case 2:  // corrupted signature
          signatures[i][rng_u64(rng) % signatures[i].size()] ^= 0x04;
          break;
        case 3:  // bad length
          signatures[i].push_back(0x00);
          break;
        case 4:  // representative out of range
          std::fill(signatures[i].begin(), signatures[i].end(), 0xff);
          break;
      }
      items[i] = {&fx.ctxs[key_idx], alg, messages[i], signatures[i]};
    }
    const std::vector<Status> got = crypto::rsa_verify_batch(items);
    ASSERT_EQ(got.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const Status want =
          items[i].ctx->verify(items[i].alg, messages[i], signatures[i]);
      EXPECT_EQ(got[i].ok(), want.ok()) << "round=" << round << " i=" << i;
      if (!want.ok()) {
        EXPECT_EQ(got[i].error().code, want.error().code)
            << "round=" << round << " i=" << i;
        EXPECT_EQ(got[i].error().message, want.error().message)
            << "round=" << round << " i=" << i;
      }
    }
  }
}

TEST(RsaBatchTest, OneCorruptedInBatchIsIsolated) {
  RsaFixture fx(1, "batch-test:rsa-isolate");
  crypto::HmacDrbg rng(bytes_of("batch-test:rsa-isolate-fuzz"));
  for (std::size_t bad = 0; bad < 6; ++bad) {
    std::vector<Bytes> messages(6), signatures(6);
    std::vector<crypto::RsaBatchItem> items(6);
    for (std::size_t i = 0; i < 6; ++i) {
      messages[i] = rng_bytes(rng, 48);
      signatures[i] = crypto::rsa_sign(fx.keys[0], crypto::HashAlg::kSha256,
                                       messages[i]);
      if (i == bad) signatures[i][10] ^= 0x80;
      items[i] = {&fx.ctxs[0], crypto::HashAlg::kSha256, messages[i],
                  signatures[i]};
    }
    const std::vector<Status> got = crypto::rsa_verify_batch(items);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(got[i].ok(), i != bad) << "bad=" << bad << " i=" << i;
    }
  }
}

// ---- ring-buffer queue semantics ---------------------------------------

TEST(BoundedQueueTest, RingWrapsAndPreservesFifoOrder) {
  svc::BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  // Cycle enough items through a small ring that head_ wraps several
  // times; FIFO order must survive every wrap.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 5; ++round) {
    while (q.try_push(int{next_in})) ++next_in;
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 3; ++i) {
      auto got = q.try_pop();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, next_out++);
    }
  }
  while (auto got = q.try_pop()) EXPECT_EQ(*got, next_out++);
  EXPECT_EQ(next_out, next_in);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, PopBatchDrainsUpToBoundInOrder) {
  svc::BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_push(int{i}));
  std::vector<int> out{99, 99};  // pop_batch must clear stale contents
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // A bound above the occupancy delivers what is there, without waiting
  // for more.
  EXPECT_EQ(q.pop_batch(out, 16), 6u);
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6, 7, 8, 9}));
  // max_n == 0 is treated as 1, not as "drain nothing forever".
  ASSERT_TRUE(q.try_push(42));
  EXPECT_EQ(q.pop_batch(out, 0), 1u);
  EXPECT_EQ(out, (std::vector<int>{42}));
}

TEST(BoundedQueueTest, PopBatchDrainsAfterCloseThenReportsDone) {
  svc::BoundedQueue<std::unique_ptr<int>> q(8);  // move-only payloads
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(std::make_unique<int>(i)));
  }
  q.close();
  EXPECT_FALSE(q.try_push(std::make_unique<int>(99)));
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(q.pop_batch(out, 8), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*out[i], i);
  // Closed and drained: returns 0 instead of blocking.
  EXPECT_EQ(q.pop_batch(out, 8), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(BoundedQueueTest, PopBatchFreesSlotsForBlockedProducers) {
  svc::BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int{i}));
  std::thread producer([&q] {
    for (int i = 4; i < 8; ++i) ASSERT_TRUE(q.push(int{i}));  // blocks: full
  });
  std::vector<int> seen;
  std::vector<int> out;
  while (seen.size() < 8) {
    ASSERT_GT(q.pop_batch(out, 4), 0u);
    seen.insert(seen.end(), out.begin(), out.end());
  }
  producer.join();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(seen[i], i);
}

// ---- attestation batch dispatch ----------------------------------------

TEST(AttestationBatchTest, MixedFormatsMatchSingleVerify) {
  crypto::HmacDrbg rng(bytes_of("batch-test:att"));
  auto rand = [&rng](std::size_t n) { return rng.generate(n); };
  const crypto::RsaPrivateKey rsa_key = crypto::rsa_generate(1024, rand);
  const crypto::EcdsaPrivateKey ec_key = crypto::ecdsa_generate(rand);
  const tpm::AttestationVerifyContext rsa_ctx(
      tpm::AttestationKey::of(rsa_key.public_key()));
  const tpm::AttestationVerifyContext ec_ctx(
      tpm::AttestationKey::of(ec_key.public_key()));

  std::vector<Bytes> messages(9), signatures(9);
  std::vector<tpm::AttestationBatchItem> items(9);
  for (std::size_t i = 0; i < 9; ++i) {
    messages[i] = rng_bytes(rng, 60);
    if (i % 2 == 0) {
      signatures[i] =
          crypto::rsa_sign(rsa_key, crypto::HashAlg::kSha256, messages[i]);
      items[i].ctx = &rsa_ctx;
    } else {
      signatures[i] = crypto::ecdsa_sign(ec_key, messages[i]);
      items[i].ctx = &ec_ctx;
    }
    if (i % 3 == 0) signatures[i][7] ^= 0x22;  // corrupt a third of them
    items[i].message = messages[i];
    items[i].signature = signatures[i];
  }
  // One item exercising the ECDSA-is-SHA-256-only screen and one with a
  // missing context.
  items[7].alg = crypto::HashAlg::kSha1;
  items[8].ctx = nullptr;

  const std::vector<Status> got = tpm::attestation_verify_batch(items);
  ASSERT_EQ(got.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].ctx == nullptr) {
      EXPECT_FALSE(got[i].ok()) << "i=" << i;
      continue;
    }
    const Status want =
        items[i].ctx->verify(items[i].alg, messages[i], signatures[i]);
    EXPECT_EQ(got[i].ok(), want.ok()) << "i=" << i;
    if (!want.ok()) {
      EXPECT_EQ(got[i].error().message, want.error().message) << "i=" << i;
    }
  }
}

// ---- SP batch frame path ----------------------------------------------

namespace spbatch {

/// Types whatever code the PAL displays (a perfectly obedient user).
class ScriptedCodeAgent : public pal::UserAgent {
 public:
  std::optional<SimDuration> on_prompt(const devices::DisplayContent& screen,
                                       devices::Keyboard& kb) override {
    kb.press_line(devices::KeySource::kPhysical,
                  screen.find_field(devices::kFieldCode));
    return SimDuration::seconds(3);
  }
};

sp::SpConfig sp_config(const tpm::PrivacyCa& ca) {
  sp::SpConfig cfg;
  cfg.golden_pcr17 = core::golden_pcr17();
  cfg.ca_public = ca.public_key();
  cfg.accepted_policies = {
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit),
      core::attestation_policy(drtm::DrtmTechnology::kAmdSkinit, {},
                               tpm::QuoteFormat::kTpm2),
  };
  return cfg;
}

/// A mixed TPM 1.2 / 2.0 member population with real PAL sessions, plus
/// a recorded trace of request frames. The trace mixes valid confirms
/// with every adversarial shape whose handling the batch path must
/// reproduce: corrupted signatures, user rejections, unknown tx ids,
/// client mismatches, reused signatures, and byte-identical
/// retransmissions. Frame generation consults a reference SP so that
/// challenges bind correctly; any twin SP constructed with the same
/// config replays the identical trace (all nonce/tx-id draws are
/// deterministic in frame order).
struct TraceHarness {
  tpm::PrivacyCa ca;
  sp::ServiceProvider reference;
  ScriptedCodeAgent agent;
  struct Member {
    std::string id;
    std::unique_ptr<drtm::Platform> platform;
    std::unique_ptr<pal::SessionDriver> driver;
    Bytes sealed_key;
  };
  std::vector<Member> members;
  std::vector<Bytes> trace;            // request frames, in order
  std::vector<Bytes> want_responses;   // the reference SP's answers

  TraceHarness() : ca(bytes_of("batch-sp-ca"), 1024), reference(sp_config(ca)) {
    const tpm::QuoteFormat backends[] = {tpm::QuoteFormat::kTpm12,
                                         tpm::QuoteFormat::kTpm2};
    for (std::size_t m = 0; m < 2; ++m) {
      Member member;
      member.id = "client-" + std::to_string(m);
      drtm::PlatformConfig pc;
      pc.platform_id = member.id;
      pc.seed = bytes_of("batch-sp-platform-" + std::to_string(m));
      pc.tpm_key_bits = 1024;
      pc.backend = backends[m];
      member.platform = std::make_unique<drtm::Platform>(pc);
      member.driver = std::make_unique<pal::SessionDriver>(*member.platform);
      member.driver->set_user_agent(&agent);
      members.push_back(std::move(member));
    }

    // Enrollment rides the trace too: the challenge nonce a twin SP
    // issues is identical (same seed, same draw order), so the recorded
    // EnrollComplete binds for every replay.
    for (std::size_t m = 0; m < 2; ++m) {
      Member& member = members[m];
      const Bytes begin = core::envelope(
          core::MsgType::kEnrollBegin,
          core::EnrollBegin{member.id}.serialize());
      const Bytes challenge_frame = feed(begin);
      auto opened = core::open_envelope(challenge_frame);
      auto challenge =
          core::EnrollChallenge::deserialize(opened.value().second);

      core::PalEnrollInput in;
      in.nonce = challenge.value().nonce;
      in.key_bits = 1024;
      auto session =
          member.driver->run(core::make_trusted_path_pal(), in.marshal());
      auto out = core::PalEnrollOutput::unmarshal(session.value().output);
      member.sealed_key = out.value().sealed_key;
      core::EnrollComplete complete;
      complete.client_id = member.id;
      complete.format = backends[m];
      complete.confirmation_pubkey = out.value().pubkey;
      complete.quote = out.value().quote;
      if (backends[m] == tpm::QuoteFormat::kTpm2) {
        complete.aik_certificate =
            ca.certify_key(member.id, tpm::AttestationKey::of(
                                          member.platform->tpm2().ak_public()))
                .serialize();
      } else {
        complete.aik_certificate =
            ca.certify(member.id, member.platform->tpm().aik_public())
                .serialize();
      }
      feed(core::envelope(core::MsgType::kEnrollComplete,
                          complete.serialize()));
    }
  }

  /// Appends a request frame to the trace and returns the reference
  /// SP's response (also recorded).
  Bytes feed(Bytes frame) {
    Bytes response = reference.handle_frame(frame);
    trace.push_back(std::move(frame));
    want_responses.push_back(response);
    return response;
  }

  /// Mints one genuine signed confirmation bound to a challenge the
  /// reference SP just issued (the TxSubmit frame joins the trace).
  core::TxConfirm mint(std::uint64_t i) {
    Member& member = members[i % members.size()];
    core::TxSubmit submit{member.id, "pay " + std::to_string(i),
                          Bytes(64, 1)};
    const Bytes challenge_frame = feed(
        core::envelope(core::MsgType::kTxSubmit, submit.serialize()));
    auto opened = core::open_envelope(challenge_frame);
    auto challenge = core::TxChallenge::deserialize(opened.value().second);

    core::PalConfirmInput in;
    in.tx_summary = submit.summary;
    in.tx_digest = submit.digest();
    in.nonce = challenge.value().nonce;
    in.sealed_key = member.sealed_key;
    auto session =
        member.driver->run(core::make_trusted_path_pal(), in.marshal());
    auto out = core::PalConfirmOutput::unmarshal(session.value().output);
    core::TxConfirm confirm;
    confirm.client_id = member.id;
    confirm.tx_id = challenge.value().tx_id;
    confirm.verdict = out.value().verdict;
    confirm.signature = out.value().signature;
    return confirm;
  }

  void feed_confirm(const core::TxConfirm& confirm) {
    feed(core::envelope(core::MsgType::kTxConfirm, confirm.serialize()));
  }
};

void expect_same_stats(const sp::SpStats& got, const sp::SpStats& want) {
  EXPECT_EQ(got.enrolled, want.enrolled);
  EXPECT_EQ(got.enroll_rejected, want.enroll_rejected);
  EXPECT_EQ(got.tx_accepted, want.tx_accepted);
  EXPECT_EQ(got.tx_rejected, want.tx_rejected);
  EXPECT_EQ(got.enrolled_by_format, want.enrolled_by_format);
  EXPECT_EQ(got.tx_accepted_by_format, want.tx_accepted_by_format);
  EXPECT_EQ(got.rejects_by_code, want.rejects_by_code);
}

}  // namespace spbatch

TEST(SpBatchTest, FrameBatchMatchesSequentialFrameHandling) {
  spbatch::TraceHarness harness;

  // A trace interleaving every confirm shape. Valid accepts first (so
  // their signatures land in the replay cache), then the adversarial
  // rounds.
  std::vector<core::TxConfirm> minted;
  for (std::uint64_t i = 0; i < 10; ++i) minted.push_back(harness.mint(i));

  for (std::size_t i = 0; i < minted.size(); ++i) {
    core::TxConfirm confirm = minted[i];
    switch (i % 5) {
      case 0:  // valid
        break;
      case 1:  // corrupted signature
        confirm.signature[12] ^= 0x08;
        break;
      case 2:  // user rejected
        confirm.verdict = core::Verdict::kRejected;
        break;
      case 3:  // unknown tx id
        confirm.tx_id += 100000;
        break;
      case 4:  // client mismatch
        confirm.client_id = harness.members[(i + 1) % 2].id;
        break;
    }
    harness.feed_confirm(confirm);
  }
  // Retransmission of an accepted confirm (idempotent replay), a reused
  // signature on a fresh challenge (replay-cache reject), and a second,
  // different confirm for an already-settled session (retry mismatch).
  harness.feed_confirm(minted[0]);
  core::TxConfirm reused = harness.mint(20);
  reused.signature = minted[5].signature;
  harness.feed_confirm(reused);
  core::TxConfirm mismatch = minted[0];
  mismatch.verdict = core::Verdict::kRejected;
  harness.feed_confirm(mismatch);
  // Frame-level garbage rides along untouched.
  harness.feed(Bytes{0xde, 0xad, 0xbe, 0xef});

  const sp::SpStats want_stats = harness.reference.stats();

  // Replay the identical trace through handle_frame_batch at several
  // chunk sizes (1 degenerates to the sequential path; the full trace
  // exercises every flush rule).
  const std::size_t chunk_sizes[] = {1, 3, 7, 16, harness.trace.size()};
  for (const std::size_t chunk : chunk_sizes) {
    sp::ServiceProvider twin(spbatch::sp_config(harness.ca));
    std::vector<Bytes> got;
    for (std::size_t start = 0; start < harness.trace.size();
         start += chunk) {
      const std::size_t len =
          std::min(chunk, harness.trace.size() - start);
      std::vector<BytesView> frames(len);
      for (std::size_t j = 0; j < len; ++j) {
        frames[j] = harness.trace[start + j];
      }
      std::vector<Bytes> responses = twin.handle_frame_batch(frames);
      for (Bytes& r : responses) got.push_back(std::move(r));
    }
    ASSERT_EQ(got.size(), harness.want_responses.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], harness.want_responses[i])
          << "chunk=" << chunk << " frame=" << i;
    }
    spbatch::expect_same_stats(twin.stats(), want_stats);
    EXPECT_EQ(twin.replay_cache_size(), harness.reference.replay_cache_size())
        << "chunk=" << chunk;
    EXPECT_EQ(twin.session_table_occupancy(),
              harness.reference.session_table_occupancy())
        << "chunk=" << chunk;
  }
}

TEST(SpBatchTest, BatchOfDistinctValidConfirmsAllAccept) {
  spbatch::TraceHarness harness;
  std::vector<core::TxConfirm> minted;
  for (std::uint64_t i = 0; i < 8; ++i) minted.push_back(harness.mint(i));

  sp::ServiceProvider twin(spbatch::sp_config(harness.ca));
  const std::uint64_t before = twin.stats().tx_accepted;
  std::vector<Bytes> frames = harness.trace;  // enrollment + submits
  for (const core::TxConfirm& confirm : minted) {
    frames.push_back(
        core::envelope(core::MsgType::kTxConfirm, confirm.serialize()));
  }
  std::vector<BytesView> views(frames.begin(), frames.end());
  (void)twin.handle_frame_batch(views);
  EXPECT_EQ(twin.stats().tx_accepted - before, minted.size());
  EXPECT_EQ(twin.stats().tx_accepted_format(tpm::QuoteFormat::kTpm12), 4u);
  EXPECT_EQ(twin.stats().tx_accepted_format(tpm::QuoteFormat::kTpm2), 4u);
}

}  // namespace
}  // namespace tp
