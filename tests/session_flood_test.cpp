// Regression test for the enrollment-state flooding bug: before the
// session table, every EnrollBegin inserted into an unbounded map, so an
// attacker spraying begin messages grew SP memory without limit. Now
// enrollment state is keyed by client id in a bounded, preallocated
// table -- a million begins must leave its memory footprint flat.
#include <gtest/gtest.h>

#include <string>

#include "core/trusted_path_pal.h"
#include "sp/service_provider.h"

namespace tp::sp {
namespace {

// The begin paths never touch the CA key or verify anything, so a
// minimal config is enough: no Privacy CA, no platform, no client.
SpConfig flood_config() {
  SpConfig cfg;
  cfg.golden_pcr17 = core::golden_pcr17();
  cfg.seed = bytes_of("flood");
  cfg.enroll_session_capacity = 256;
  cfg.tx_session_capacity = 256;
  return cfg;
}

TEST(SessionFlood, MillionEnrollBeginsFromOneClientStayFlat) {
  // One client re-beginning forever recycles a single slot: no growth,
  // no evictions, memory byte-for-byte constant.
  ServiceProvider sp(flood_config());
  sp.begin_enrollment(core::EnrollBegin{"alice"});
  const std::size_t flat = sp.session_table_memory_bytes();
  ASSERT_GT(flat, 0u);

  for (int i = 0; i < 1'000'000; ++i) {
    sp.begin_enrollment(core::EnrollBegin{"alice"});
    if (i % 65536 == 0) {
      ASSERT_EQ(sp.session_table_memory_bytes(), flat) << "iteration " << i;
    }
  }
  EXPECT_EQ(sp.session_table_memory_bytes(), flat);
  EXPECT_EQ(sp.session_table_occupancy(), 1u);
  EXPECT_EQ(sp.session_evictions(), 0u);
}

TEST(SessionFlood, MillionEnrollBeginsFromDistinctClientsStayBounded) {
  // Distinct forged client ids exercise the eviction path instead of the
  // recycle path: occupancy saturates at capacity and old half-open
  // sessions are shed, still with zero allocation churn.
  ServiceProvider sp(flood_config());
  sp.begin_enrollment(core::EnrollBegin{"probe"});
  const std::size_t flat = sp.session_table_memory_bytes();

  for (int i = 0; i < 1'000'000; ++i) {
    sp.begin_enrollment(core::EnrollBegin{"bot-" + std::to_string(i)});
    if (i % 65536 == 0) {
      ASSERT_EQ(sp.session_table_memory_bytes(), flat) << "iteration " << i;
      ASSERT_LE(sp.session_table_occupancy(), 512u);
    }
  }
  EXPECT_EQ(sp.session_table_memory_bytes(), flat);
  EXPECT_LE(sp.session_table_occupancy(), 512u);
  // 1'000'001 begins into <= 512 slots: almost all were evicted.
  EXPECT_GE(sp.session_evictions(), 999'000u);
}

TEST(SessionFlood, TxSubmitFloodStaysBounded) {
  // The confirmation side has the same shape (tx_id-keyed sessions), so
  // a submit flood must be equally harmless.
  ServiceProvider sp(flood_config());
  sp.begin_transaction(core::TxSubmit{"alice", "pay 0", bytes_of("p")});
  const std::size_t flat = sp.session_table_memory_bytes();

  for (int i = 0; i < 100'000; ++i) {
    sp.begin_transaction(
        core::TxSubmit{"alice", "pay " + std::to_string(i), bytes_of("p")});
    ASSERT_LE(sp.session_table_occupancy(), 512u);
  }
  EXPECT_EQ(sp.session_table_memory_bytes(), flat);
}

}  // namespace
}  // namespace tp::sp
