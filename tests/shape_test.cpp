// Shape-regression tests: the EXPERIMENTS.md claims as assertions.
//
// The benches print tables for humans; these tests pin the *shape* of
// each reproduced result -- who wins, what dominates, how costs scale --
// so a code change that silently breaks the reproduction fails CI
// instead of producing a quietly wrong table.
#include <gtest/gtest.h>

#include "captcha/captcha.h"
#include "core/trusted_path_pal.h"
#include "host/adversary.h"
#include "pal/human_agent.h"
#include "pal/session.h"
#include "sp/deployment.h"
#include "tpm/chip_profile.h"

namespace tp {
namespace {

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

// One confirm session's timing on a given chip (768-bit keys: the shape
// under test is TPM-dominated machine time, which key size barely moves).
pal::SessionTiming confirm_timing(const std::string& chip,
                                  std::size_t payload = 256) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "shape";
  cfg.chip_name = chip;
  cfg.seed = bytes_of("shape:" + chip + std::to_string(payload));
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(1)),
                        "pay");
  world.client().set_user_agent(&agent);
  EXPECT_TRUE(world.client().enroll().ok());
  auto outcome =
      world.client().submit_transaction("pay", Bytes(payload, 1));
  EXPECT_TRUE(outcome.ok() && outcome.value().accepted);
  return outcome.value().timing;
}

// ---- T2 shapes -------------------------------------------------------

TEST(ShapeT2, ConfirmMachineTimeIsTpmDominatedOnEveryChip) {
  for (const auto& chip : tpm::standard_chips()) {
    const auto t = confirm_timing(chip.name);
    EXPECT_GT(t.tpm.ns, t.machine().ns * 9 / 10) << chip.name;
  }
}

TEST(ShapeT2, ConfirmMachineTimeUnderTwoSecondsEverywhere) {
  for (const auto& chip : tpm::standard_chips()) {
    const auto t = confirm_timing(chip.name);
    EXPECT_LT(t.machine().ns, SimDuration::seconds(2.0).ns) << chip.name;
    EXPECT_GT(t.machine().ns, SimDuration::millis(100).ns) << chip.name;
  }
}

TEST(ShapeT2, HumanTimeExceedsMachineTimeOnEveryChip) {
  for (const auto& chip : tpm::standard_chips()) {
    const auto t = confirm_timing(chip.name);
    EXPECT_GT(t.user.ns, t.machine().ns) << chip.name;
  }
}

TEST(ShapeT2, ChipOrderingMatchesUnsealCost) {
  // The chip with the slower Unseal must have the slower confirm.
  const auto broadcom = confirm_timing("Broadcom BCM5752");
  const auto infineon = confirm_timing("Infineon SLB9635");
  EXPECT_GT(broadcom.machine().ns, infineon.machine().ns * 2);
}

TEST(ShapeT3, EnrollmentCostsMoreThanConfirmation) {
  for (const auto& chip : tpm::standard_chips()) {
    sp::DeploymentConfig cfg;
    cfg.client_id = "shape";
    cfg.chip_name = chip.name;
    cfg.seed = bytes_of("shape-t3:" + chip.name);
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    sp::Deployment world(cfg);
    core::PalEnrollInput in;
    in.nonce = Bytes(20, 1);
    in.key_bits = 768;
    pal::SessionDriver driver(world.platform());
    auto enroll = driver.run(core::make_trusted_path_pal(), in.marshal());
    ASSERT_TRUE(enroll.ok());
    EXPECT_GT(enroll.value().timing.machine().ns,
              confirm_timing(chip.name).machine().ns)
        << chip.name;
  }
}

// ---- F1 shape ---------------------------------------------------------

TEST(ShapeF1, MachineTimeFlatAcrossPayloadSizes) {
  const auto small = confirm_timing("Infineon SLB9635", 256);
  const auto large = confirm_timing("Infineon SLB9635", 64 * 1024);
  const double ratio = static_cast<double>(large.machine().ns) /
                       static_cast<double>(small.machine().ns);
  EXPECT_GT(ratio, 0.90);
  EXPECT_LT(ratio, 1.10);
}

// ---- A1 shape ---------------------------------------------------------

TEST(ShapeA1, BatchingAmortizesRoughlyLinearly) {
  auto per_tx = [](std::size_t n) {
    sp::DeploymentConfig cfg;
    cfg.client_id = "shape";
    cfg.seed = bytes_of("shape-a1:" + std::to_string(n));
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    sp::Deployment world(cfg);
    std::vector<core::TrustedPathClient::BatchTx> txs;
    std::vector<core::BatchItem> preview;
    for (std::size_t i = 0; i < n; ++i) {
      txs.emplace_back("t" + std::to_string(i), Bytes{});
      preview.push_back(core::BatchItem{"t" + std::to_string(i), {}, {}});
    }
    pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(2)),
                          core::batch_summary(preview));
    world.client().set_user_agent(&agent);
    EXPECT_TRUE(world.client().enroll().ok());
    auto outcome = world.client().submit_batch(txs);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().accepted_count(), n);
    return outcome.value().timing.machine().ns / static_cast<double>(n);
  };
  const double one = per_tx(1);
  const double eight = per_tx(8);
  EXPECT_LT(eight, one / 4);  // at least 4x amortization by batch 8
}

// ---- F2 shapes ---------------------------------------------------------

TEST(ShapeF2, MechanicalAttacksNeverGetThrough) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "victim";
  cfg.seed = bytes_of("shape-f2");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  sp::Deployment world(cfg);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(3)), "");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());
  host::MalwareKit malware(world.platform(), world.client_endpoint(),
                           "victim", world.client().sealed_key_blob(),
                           SimRng(31337));
  for (int i = 0; i < 5; ++i) {
    const std::string tx = "forged " + std::to_string(i);
    EXPECT_FALSE(malware.forge_signature(tx, {}).sp_accepted);
    EXPECT_FALSE(malware.confirm_without_signature(tx, {}).sp_accepted);
    EXPECT_FALSE(malware.inject_keystrokes(tx, {}).sp_accepted);
    EXPECT_FALSE(malware.run_tampered_pal(tx, {}).sp_accepted);
  }
  EXPECT_EQ(world.sp().stats().tx_accepted, 0u);
}

TEST(ShapeF2, CaptchasLoseToStrongSolversTrustedPathDoesNot) {
  // The arms-race asymmetry in one assertion: at attacker strength 0.95,
  // the captcha admits a large fraction of forgeries even at distortion
  // 0.7; the trusted path (previous test) admits none.
  captcha::CaptchaService service(bytes_of("shape"));
  captcha::OcrAttacker strong(0.95, SimRng(4));
  int through = 0;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    const auto ch = service.issue(0.7);
    if (service.verify(ch.id, strong.attempt(ch)).ok()) ++through;
  }
  EXPECT_GT(through, kTrials / 4);
}

// ---- F4 shape ---------------------------------------------------------

TEST(ShapeF4, ConfirmationCostsLessHumanTimeThanOneEasyCaptcha) {
  devices::HumanParams params;
  devices::HumanModel human(params, SimRng(5));
  // Mean trusted-path time over 200 trials.
  double tp_total = 0;
  for (int i = 0; i < 200; ++i) {
    devices::Keyboard kb;
    tp_total += human
                    .respond_to_confirmation(
                        devices::DisplayContent{{"TX: t", "CODE: abcdef"}},
                        "t", kb)
                    .to_seconds();
  }
  double captcha_total = 0;
  for (int i = 0; i < 200; ++i) {
    captcha_total += human.captcha_time().to_seconds();
  }
  EXPECT_LT(tp_total / 200, captcha_total / 200);
}

// ---- A2 shape ---------------------------------------------------------

TEST(ShapeA2, QuoteDesignCostsAQuotePerTransaction) {
  // The structural fact behind A2: the quote-mode session charges a
  // TPM_Quote, the sealed-mode session charges a TPM_Unseal.
  drtm::PlatformConfig pc;
  pc.seed = bytes_of("shape-a2");
  pc.tpm_key_bits = 768;
  drtm::Platform platform(pc);
  pal::SessionDriver driver(platform);
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(6)),
                        "pay");
  driver.set_user_agent(&agent);

  core::PalQuoteConfirmInput in;
  in.tx_summary = "pay";
  in.tx_digest = Bytes(32, 1);
  in.nonce = Bytes(20, 2);
  const SimTime before = platform.clock().now();
  ASSERT_TRUE(driver.run(core::make_trusted_path_pal(), in.marshal()).ok());
  SimDuration quote_charged{};
  for (const auto& span : platform.clock().spans()) {
    if (span.start >= before && span.label == "tpm:quote") {
      quote_charged = quote_charged + span.duration;
    }
  }
  EXPECT_EQ(quote_charged.ns, tpm::default_chip().quote.ns);
}

}  // namespace
}  // namespace tp
