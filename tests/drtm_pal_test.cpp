// DRTM + PAL runtime tests: measured launch semantics, isolation window,
// PCR capping, session timing breakdown, and the seal-to-PAL flow that the
// whole trusted path is built on.
#include <gtest/gtest.h>

#include "crypto/sha1.h"
#include "drtm/late_launch.h"
#include "drtm/platform.h"
#include "pal/pal.h"
#include "pal/session.h"

namespace tp::pal {
namespace {

using drtm::LateLaunch;
using drtm::Platform;
using drtm::PlatformConfig;
using tpm::Locality;
using tpm::PcrSelection;

PlatformConfig test_config() {
  PlatformConfig cfg;
  cfg.platform_id = "test-client";
  cfg.seed = bytes_of("drtm-pal-test");
  cfg.tpm_key_bits = 768;
  return cfg;
}

PalDescriptor trivial_pal(Status result = Status::ok_status()) {
  PalDescriptor pal;
  pal.name = "trivial";
  pal.image = PalDescriptor::make_image("trivial", 1);
  pal.entry = [result](PalContext& ctx) {
    ctx.set_output(bytes_of("output"));
    return result;
  };
  return pal;
}

// ----------------------------------------------------------- Late launch

TEST(LateLaunch, SetsDrtmPcrsToMeasurement) {
  Platform platform(test_config());
  LateLaunch launcher(platform);
  const Bytes image = PalDescriptor::make_image("p", 1);
  const Bytes input = bytes_of("input");

  auto guard = launcher.launch(image, input);
  ASSERT_TRUE(guard.ok());

  const auto m = LateLaunch::measure(image, input);
  const auto predicted = m.predicted_pcr_values();
  EXPECT_EQ(platform.tpm().pcr_read(17).value(), predicted[0]);
  EXPECT_EQ(platform.tpm().pcr_read(18).value(), predicted[1]);
}

TEST(LateLaunch, DifferentImagesDifferentMeasurements) {
  const Bytes in = bytes_of("i");
  const auto m1 = LateLaunch::measure(PalDescriptor::make_image("a", 1), in);
  const auto m2 = LateLaunch::measure(PalDescriptor::make_image("a", 2), in);
  const auto m3 = LateLaunch::measure(PalDescriptor::make_image("b", 1), in);
  EXPECT_NE(m1.pal_digest, m2.pal_digest);
  EXPECT_NE(m1.pal_digest, m3.pal_digest);
}

TEST(LateLaunch, GuardExitCapsPcrs) {
  Platform platform(test_config());
  LateLaunch launcher(platform);
  const Bytes image = PalDescriptor::make_image("p", 1);
  Bytes pcr17_inside;
  {
    auto guard = launcher.launch(image, bytes_of("in"));
    ASSERT_TRUE(guard.ok());
    pcr17_inside = platform.tpm().pcr_read(17).value();
    auto g = guard.take();
  }
  // After the session, PCR17 was extended with the cap: the OS can no
  // longer present the PAL's PCR state.
  EXPECT_NE(platform.tpm().pcr_read(17).value(), pcr17_inside);
  EXPECT_FALSE(platform.in_pal_session());
}

TEST(LateLaunch, NestedLaunchRejected) {
  Platform platform(test_config());
  LateLaunch launcher(platform);
  auto g1 = launcher.launch(PalDescriptor::make_image("p", 1), {});
  ASSERT_TRUE(g1.ok());
  auto hold = g1.take();
  auto g2 = launcher.launch(PalDescriptor::make_image("q", 1), {});
  EXPECT_EQ(g2.code(), Err::kBadState);
}

TEST(LateLaunch, EmptyImageRejected) {
  Platform platform(test_config());
  LateLaunch launcher(platform);
  EXPECT_EQ(launcher.launch({}, {}).code(), Err::kInvalidArgument);
}

TEST(LateLaunch, AttacksBlockedOnlyDuringSession) {
  Platform platform(test_config());
  // Outside a session the host does what it wants.
  EXPECT_TRUE(platform.attempt_dma_write(bytes_of("x")).ok());
  EXPECT_TRUE(platform.attempt_interrupt_injection().ok());
  EXPECT_TRUE(platform.attempt_pal_memory_read().ok());

  LateLaunch launcher(platform);
  auto guard = launcher.launch(PalDescriptor::make_image("p", 1), {});
  ASSERT_TRUE(guard.ok());
  auto hold = guard.take();
  EXPECT_EQ(platform.attempt_dma_write(bytes_of("x")).code(),
            Err::kIsolationViolation);
  EXPECT_EQ(platform.attempt_interrupt_injection().code(),
            Err::kIsolationViolation);
  EXPECT_EQ(platform.attempt_pal_memory_read().code(),
            Err::kIsolationViolation);
  EXPECT_EQ(platform.blocked_dma_writes(), 1u);
  EXPECT_EQ(platform.blocked_interrupts(), 1u);
  EXPECT_EQ(platform.blocked_memory_reads(), 1u);
}

TEST(LateLaunch, DevicesExclusiveDuringSession) {
  Platform platform(test_config());
  LateLaunch launcher(platform);
  auto guard = launcher.launch(PalDescriptor::make_image("p", 1), {});
  ASSERT_TRUE(guard.ok());
  {
    auto hold = guard.take();
    EXPECT_TRUE(platform.display().exclusive());
    EXPECT_TRUE(platform.keyboard().exclusive());
  }
  EXPECT_FALSE(platform.display().exclusive());
  EXPECT_FALSE(platform.keyboard().exclusive());
}

// --------------------------------------------------------------- Sessions

TEST(SessionDriver, RunsPalAndReturnsOutput) {
  Platform platform(test_config());
  SessionDriver driver(platform);
  auto result = driver.run(trivial_pal(), bytes_of("in"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().status.ok());
  EXPECT_EQ(string_of(result.value().output), "output");
}

TEST(SessionDriver, PalVerdictPropagates) {
  Platform platform(test_config());
  SessionDriver driver(platform);
  auto result =
      driver.run(trivial_pal(Status(Err::kUserRejected, "declined")), {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), Err::kUserRejected);
}

TEST(SessionDriver, MissingEntryRejected) {
  Platform platform(test_config());
  SessionDriver driver(platform);
  PalDescriptor pal;
  pal.name = "no-entry";
  pal.image = PalDescriptor::make_image("no-entry", 1);
  EXPECT_EQ(driver.run(pal, {}).code(), Err::kInvalidArgument);
}

TEST(SessionDriver, TimingBreakdownAccountsForPhases) {
  Platform platform(test_config());
  SessionDriver driver(platform);

  PalDescriptor pal;
  pal.name = "busy";
  pal.image = PalDescriptor::make_image("busy", 1);
  pal.entry = [](PalContext& ctx) {
    ctx.charge_compute("work", SimDuration::millis(5));
    (void)ctx.tpm().get_random(16);
    auto blob = ctx.tpm().seal(ctx.locality(), PcrSelection::drtm(), 0xff,
                               bytes_of("s"));
    return blob.ok() ? Status::ok_status()
                     : Status(blob.error());
  };

  auto result = driver.run(pal, bytes_of("in"));
  ASSERT_TRUE(result.ok());
  const SessionTiming& t = result.value().timing;
  EXPECT_GT(t.suspend.ns, 0);
  EXPECT_GT(t.skinit.ns, 0);
  EXPECT_GT(t.resume.ns, 0);
  EXPECT_EQ(t.pal_compute.ns, SimDuration::millis(5).ns);
  // TPM time: get_random + seal + the launch's own PCR ops + exit caps.
  EXPECT_GT(t.tpm.ns, tpm::default_chip().seal.ns);
  EXPECT_EQ(t.user.ns, 0);
  // Total covers all phases.
  EXPECT_GE(t.total.ns, (t.suspend + t.skinit + t.pal_setup + t.tpm +
                         t.pal_compute + t.resume)
                            .ns);
  EXPECT_EQ(t.machine().ns, t.total.ns);  // no user time here
}

TEST(SessionDriver, SealInsidePalUnsealableOnlyByNextLaunchOfSamePal) {
  Platform platform(test_config());
  SessionDriver driver(platform);

  // PAL run 1: seal a secret to the CURRENT DRTM PCRs (itself).
  Bytes blob;
  PalDescriptor sealer;
  sealer.name = "sealer";
  sealer.image = PalDescriptor::make_image("sealer", 1);
  const Bytes fixed_input = bytes_of("fixed");
  sealer.entry = [&blob](PalContext& ctx) {
    auto b = ctx.tpm().seal(ctx.locality(), PcrSelection::drtm(),
                            static_cast<std::uint8_t>(1u << 2),
                            bytes_of("pal secret"));
    if (!b.ok()) return Status(b.error());
    blob = b.value();
    return Status::ok_status();
  };
  ASSERT_TRUE(driver.run(sealer, fixed_input).ok());
  ASSERT_FALSE(blob.empty());

  // The OS (outside any session) cannot unseal: the blob is released only
  // at locality 2, and even at a permitted locality the capped PCRs would
  // no longer match.
  EXPECT_EQ(platform.tpm().unseal(Locality::kOs, blob).code(),
            Err::kIsolationViolation);
  EXPECT_EQ(platform.tpm().unseal(Locality::kPal, blob).code(),
            Err::kPcrMismatch);

  // A DIFFERENT PAL cannot unseal (different measurement).
  PalDescriptor thief;
  thief.name = "thief";
  thief.image = PalDescriptor::make_image("thief", 1);
  Err thief_result = Err::kNone;
  thief.entry = [&blob, &thief_result](PalContext& ctx) {
    thief_result = ctx.tpm().unseal(ctx.locality(), blob).code();
    return Status::ok_status();
  };
  ASSERT_TRUE(driver.run(thief, fixed_input).ok());
  EXPECT_EQ(thief_result, Err::kPcrMismatch);

  // The SAME PAL with the SAME input unseals fine.
  PalDescriptor reader = sealer;
  Bytes recovered;
  reader.entry = [&blob, &recovered](PalContext& ctx) {
    auto r = ctx.tpm().unseal(ctx.locality(), blob);
    if (!r.ok()) return Status(r.error());
    recovered = r.value();
    return Status::ok_status();
  };
  auto rr = driver.run(reader, fixed_input);
  ASSERT_TRUE(rr.ok());
  EXPECT_TRUE(rr.value().status.ok());
  EXPECT_EQ(string_of(recovered), "pal secret");
}

TEST(SessionDriver, UserAgentPromptFlow) {
  Platform platform(test_config());
  SessionDriver driver(platform);

  // A scripted agent that types a fixed answer in 2 seconds.
  class ScriptedAgent : public UserAgent {
   public:
    std::optional<SimDuration> on_prompt(
        const devices::DisplayContent& screen,
        devices::Keyboard& keyboard) override {
      last_screen = screen;
      keyboard.press_line(devices::KeySource::kPhysical, "typed-answer");
      return SimDuration::seconds(2.0);
    }
    devices::DisplayContent last_screen;
  };
  ScriptedAgent agent;
  driver.set_user_agent(&agent);

  PalDescriptor pal;
  pal.name = "prompter";
  pal.image = PalDescriptor::make_image("prompter", 1);
  std::string answer;
  pal.entry = [&answer](PalContext& ctx) {
    auto line = ctx.show_and_read_line(
        devices::DisplayContent{{"CODE: abc"}}, SimDuration::seconds(30));
    if (!line.has_value()) return Status(Err::kTimeout, "no user");
    answer = *line;
    return Status::ok_status();
  };
  auto result = driver.run(pal, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().status.ok());
  EXPECT_EQ(answer, "typed-answer");
  EXPECT_EQ(agent.last_screen.find_field("CODE: "), "abc");
  EXPECT_EQ(result.value().timing.user.ns, SimDuration::seconds(2.0).ns);
  EXPECT_EQ(result.value().timing.machine().ns,
            (result.value().timing.total - SimDuration::seconds(2.0)).ns);
}

TEST(SessionDriver, UnattendedPromptTimesOut) {
  Platform platform(test_config());
  SessionDriver driver(platform);  // no agent
  PalDescriptor pal;
  pal.name = "prompter";
  pal.image = PalDescriptor::make_image("prompter", 1);
  pal.entry = [](PalContext& ctx) {
    auto line = ctx.show_and_read_line(devices::DisplayContent{{"CODE: x"}},
                                       SimDuration::seconds(30));
    return line.has_value() ? Status::ok_status()
                            : Status(Err::kTimeout, "no user");
  };
  auto result = driver.run(pal, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), Err::kTimeout);
  EXPECT_EQ(result.value().timing.user.ns, SimDuration::seconds(30).ns);
}

TEST(SessionDriver, SlowAgentTreatedAsTimeout) {
  Platform platform(test_config());
  SessionDriver driver(platform);
  class SlowAgent : public UserAgent {
   public:
    std::optional<SimDuration> on_prompt(const devices::DisplayContent&,
                                         devices::Keyboard& kb) override {
      kb.press_line(devices::KeySource::kPhysical, "late");
      return SimDuration::seconds(120);
    }
  };
  SlowAgent agent;
  driver.set_user_agent(&agent);
  PalDescriptor pal;
  pal.name = "prompter";
  pal.image = PalDescriptor::make_image("prompter", 1);
  pal.entry = [](PalContext& ctx) {
    auto line = ctx.show_and_read_line(devices::DisplayContent{{"CODE: x"}},
                                       SimDuration::seconds(30));
    return line.has_value() ? Status::ok_status()
                            : Status(Err::kTimeout, "no user");
  };
  auto result = driver.run(pal, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status.code(), Err::kTimeout);
  // Late keystrokes were discarded, not left for the host.
  EXPECT_TRUE(platform.keyboard().empty());
}

TEST(SessionDriver, InjectedKeystrokesNeverReachPal) {
  // THE input-side trusted-path property, end to end: malware that types
  // the confirmation code cannot satisfy the PAL.
  Platform platform(test_config());
  SessionDriver driver(platform);
  class MalwareAgent : public UserAgent {
   public:
    std::optional<SimDuration> on_prompt(
        const devices::DisplayContent& screen,
        devices::Keyboard& kb) override {
      // Malware reads the code off the screen buffer and "types" it.
      kb.press_line(devices::KeySource::kInjected,
                    screen.find_field("CODE: "));
      return SimDuration::millis(1);  // much faster than any human
    }
  };
  MalwareAgent agent;
  driver.set_user_agent(&agent);
  PalDescriptor pal;
  pal.name = "prompter";
  pal.image = PalDescriptor::make_image("prompter", 1);
  std::string got;
  pal.entry = [&got](PalContext& ctx) {
    auto line = ctx.show_and_read_line(
        devices::DisplayContent{{"CODE: s3cret"}}, SimDuration::seconds(30));
    got = line.value_or("");
    return Status::ok_status();
  };
  ASSERT_TRUE(driver.run(pal, {}).ok());
  EXPECT_EQ(got, "");  // the injected line was dropped by the hardware path
  EXPECT_GT(platform.keyboard().blocked_injections(), 0u);
}

}  // namespace
}  // namespace tp::pal
