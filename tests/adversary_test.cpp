// Adversary tests: every attack strategy in the threat model must die at
// the documented defence layer -- these are the paper's security claims
// as executable assertions.
#include <gtest/gtest.h>

#include "host/adversary.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

namespace tp::host {
namespace {

using core::Verdict;

devices::HumanParams perfect_human() {
  devices::HumanParams p;
  p.typo_prob = 0.0;
  p.attention = 1.0;
  return p;
}

class AdversaryTest : public ::testing::Test {
 protected:
  AdversaryTest() : world_(make_config()) {
    // Benign enrollment first: the victim set up the trusted path.
    pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(5)),
                          "");
    world_.client().set_user_agent(&agent);
    EXPECT_TRUE(world_.client().enroll().ok());
    // The malware lifts the victim's sealed key from disk and knows the
    // victim id: the threat model grants both.
    malware_ = std::make_unique<MalwareKit>(
        world_.platform(), world_.client_endpoint(), "victim",
        world_.client().sealed_key_blob(), SimRng(666));
  }

  static sp::DeploymentConfig make_config() {
    sp::DeploymentConfig cfg;
    cfg.client_id = "victim";
    cfg.seed = bytes_of("adversary-test");
    cfg.tpm_key_bits = 768;
    cfg.client_key_bits = 768;
    return cfg;
  }

  sp::Deployment world_;
  std::unique_ptr<MalwareKit> malware_;
};

TEST_F(AdversaryTest, ForgedSignatureRejectedBySp) {
  const auto outcome =
      malware_->forge_signature("pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_FALSE(outcome.sp_accepted);
  EXPECT_EQ(outcome.stage, "sp-signature-check");
  EXPECT_EQ(world_.sp().stats().tx_accepted, 0u);
}

TEST_F(AdversaryTest, EmptySignatureRejectedBySp) {
  const auto outcome = malware_->confirm_without_signature(
      "pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_FALSE(outcome.sp_accepted);
}

TEST_F(AdversaryTest, KeystrokeInjectionDiesAtKeyboardExclusivity) {
  const auto outcome =
      malware_->inject_keystrokes("pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_FALSE(outcome.sp_accepted);
  EXPECT_EQ(outcome.stage, "keyboard-exclusivity");
  EXPECT_GT(world_.platform().keyboard().blocked_injections(), 0u);
}

TEST_F(AdversaryTest, TamperedPalDiesAtSealedStorage) {
  const auto outcome =
      malware_->run_tampered_pal("pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_FALSE(outcome.sp_accepted);
  EXPECT_EQ(outcome.stage, "sealed-storage-pcr-binding");
  // The root cause was the PCR policy, not a parse error.
  EXPECT_NE(outcome.detail.find("pcr_mismatch"), std::string::npos)
      << outcome.detail;
}

TEST_F(AdversaryTest, ReplayDiesAtNonceFreshness) {
  // First observe a LEGITIMATE confirmation.
  pal::HumanAgent agent(devices::HumanModel(perfect_human(), SimRng(6)),
                        "pay 10 EUR to bob");
  world_.client().set_user_agent(&agent);
  auto legit =
      world_.client().submit_transaction("pay 10 EUR to bob", bytes_of("p"));
  ASSERT_TRUE(legit.ok());
  ASSERT_TRUE(legit.value().accepted);

  // Malware cannot see the PAL's signature in transit here (it could on a
  // real host); reconstruct the strongest replay: reuse the exact message.
  // We model the observed TxConfirm via a fresh benign confirmation run
  // through the malware's own channel observation: use the signature from
  // a second legit confirmation that we intercept at the API level.
  auto legit2 =
      world_.client().submit_transaction("pay 10 EUR to bob", bytes_of("p"));
  ASSERT_TRUE(legit2.ok());

  // Craft the observed message equivalent: verdict confirmed + stale sig.
  // Any stale signature is equivalent for the defence being probed: the
  // SP verifies against a FRESH nonce, so even a perfectly valid old
  // signature cannot verify.
  core::TxConfirm observed;
  observed.client_id = "victim";
  observed.verdict = Verdict::kConfirmed;
  observed.signature = Bytes(96, 0x42);
  const auto outcome = malware_->replay_confirmation(
      observed, "pay 10 EUR to bob", bytes_of("p"));
  EXPECT_FALSE(outcome.sp_accepted);
  EXPECT_EQ(outcome.stage, "nonce-freshness");
}

TEST_F(AdversaryTest, SubstitutionBlockedByAttentiveHuman) {
  pal::HumanAgent victim(devices::HumanModel(perfect_human(), SimRng(7)),
                         "pay 10 EUR to bob");  // what the user intends
  const auto outcome = malware_->substitute_transaction(
      victim, "pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_FALSE(outcome.sp_accepted);
  EXPECT_EQ(outcome.stage, "human-attention");
}

TEST_F(AdversaryTest, SubstitutionSucceedsAgainstCarelessHuman) {
  // The documented residual risk: the trusted display SHOWS the forgery,
  // but a user who never reads it will confirm anyway. Uni-directional
  // means the SP learns "a human confirmed THIS (forged) transaction" --
  // which is true.
  devices::HumanParams careless = perfect_human();
  careless.attention = 0.0;
  pal::HumanAgent victim(devices::HumanModel(careless, SimRng(8)),
                         "pay 10 EUR to bob");
  const auto outcome = malware_->substitute_transaction(
      victim, "pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_TRUE(outcome.sp_accepted);
  EXPECT_EQ(outcome.stage, "accepted");
}

TEST_F(AdversaryTest, SpoofedScreenBeforeSessionDoesNotForgeConfirmation) {
  // Malware can draw anything outside a session -- but drawing a fake
  // confirmation screen produces no signature, so the SP is unmoved.
  auto spoof = world_.platform().display().render(
      devices::DeviceAccess::kHost,
      devices::DisplayContent{{"TX: pay 5000 EUR", "CODE: fake"}});
  EXPECT_TRUE(spoof.ok());  // the spoof lands on screen...
  const auto outcome =
      malware_->forge_signature("pay 5000 EUR to mallory", bytes_of("f"));
  EXPECT_FALSE(outcome.sp_accepted);  // ...and buys the attacker nothing
}

TEST_F(AdversaryTest, TamperedPalCannotEnrollEither) {
  // Closing the loop: even enrolling fresh keys from a tampered PAL
  // fails, because the quote carries the wrong PCR17 (tested at SP level
  // in sp_test; here via the full malware flow).
  pal::SessionDriver driver(world_.platform());
  core::PalEnrollInput in;
  in.nonce = Bytes(20, 2);
  in.key_bits = 768;
  auto session = driver.run(make_tampered_pal(), in.marshal());
  ASSERT_TRUE(session.ok());
  // The tampered PAL only implements CONFIRM; a fancier one could enroll,
  // but its quote would carry its own measurement -- rejected by the SP
  // (ServiceProviderTest.RejectsQuoteFromTamperedPal).
  EXPECT_FALSE(session.value().status.ok());
}

TEST_F(AdversaryTest, DmaAndInterruptAttacksBlockedDuringSession) {
  pal::SessionDriver driver(world_.platform());
  pal::PalDescriptor probe;
  probe.name = "probe";
  probe.image = pal::PalDescriptor::make_image("probe", 1);
  drtm::Platform* platform = &world_.platform();
  probe.entry = [platform](pal::PalContext&) {
    EXPECT_FALSE(platform->attempt_dma_write(bytes_of("rootkit")).ok());
    EXPECT_FALSE(platform->attempt_interrupt_injection().ok());
    return Status::ok_status();
  };
  ASSERT_TRUE(driver.run(probe, {}).ok());
  EXPECT_GE(platform->blocked_dma_writes(), 1u);
}

// ---- the same attacks against the symbolic core -------------------------
//
// Every network-level MalwareKit strategy has a rendition as a
// model::Action script (host/adversary.h). Running those scripts through
// the protocol core must agree with the real-stack outcomes above: all
// defeated, no invariant tripped. And when a seeded bug re-opens the
// weakness a strategy probes, the SAME script must get through -- the
// scripted adversary and the model checker speak one vocabulary.

TEST(ModelAdversary, AllStrategiesDefeatedBySoundCore) {
  for (std::size_t i = 0; i < kAttackStrategyCount; ++i) {
    const auto strategy = static_cast<AttackStrategy>(i);
    const ModelAttackOutcome out = run_attack_in_model(strategy);
    EXPECT_FALSE(out.sp_accepted) << attack_strategy_name(strategy);
    EXPECT_EQ(out.violated, model::Invariant::kNone)
        << attack_strategy_name(strategy);
  }
}

TEST(ModelAdversary, ForgeryGetsThroughWhenVerificationSkipped) {
  model::SeededBugs bugs;
  bugs.skip_crypto_verify = true;
  const ModelAttackOutcome forged =
      run_attack_in_model(AttackStrategy::kForgeConfirmation, bugs);
  EXPECT_TRUE(forged.sp_accepted);
  EXPECT_EQ(forged.violated, model::Invariant::kNoForgedConfirm);
  const ModelAttackOutcome enrolled =
      run_attack_in_model(AttackStrategy::kGarbageEnrollment, bugs);
  EXPECT_TRUE(enrolled.sp_accepted);
  EXPECT_EQ(enrolled.violated, model::Invariant::kNoUnattestedEnroll);
}

TEST(ModelAdversary, ReplayAfterResubmitDiesOnChallengeFreshness) {
  // replay_confirmation submits AFRESH and re-sends the observed
  // confirmation. The fresh submission recycles the session to a new
  // challenge, so the old signature fails the binding check -- even
  // with the replay cache AND the settle write both sabotaged. The
  // one-shot challenge is a third independent layer, and it alone
  // defeats this strategy (same reason the real-stack run dies at
  // "confirm" with kBadSignature in the F2 table).
  model::SeededBugs both;
  both.skip_replay_screen = true;
  both.drop_settle_apply = true;
  const ModelAttackOutcome out =
      run_attack_in_model(AttackStrategy::kReplayConfirmation, both);
  EXPECT_FALSE(out.sp_accepted);
  EXPECT_EQ(out.violated, model::Invariant::kNone);
}

TEST(ModelAdversary, DuplicateConfirmNeedsBothLayersDown) {
  // The variant that CAN double-settle skips the resubmission and
  // duplicates the confirm into the still-open session -- the exact
  // shape of the checker's minimal counterexample
  // (ModelChecker.DoubleSettleNeedsBothLayersDown). Expressed in the
  // same action vocabulary: the replay script minus the fresh submit,
  // plus a second delivery of the observed confirm.
  std::vector<model::Action> script =
      attack_script(AttackStrategy::kReplayConfirmation);
  script.resize(script.size() - 2);  // drop the resubmit + replayed confirm
  script.push_back(
      {model::ActionKind::kDeliverToSp, model::tx_confirm_frame(0, 0)});

  const auto run = [&script](const model::SeededBugs& bugs) {
    model::World world = model::initial_world();
    model::Invariant violated = model::Invariant::kNone;
    for (const model::Action& action : script) {
      const model::StepOutcome step = model::step_world(world, action, bugs);
      world = step.next;
      if (step.violated != model::Invariant::kNone &&
          violated == model::Invariant::kNone) {
        violated = step.violated;
      }
    }
    return violated;
  };

  EXPECT_EQ(run(model::SeededBugs{}), model::Invariant::kNone);
  model::SeededBugs one;
  one.skip_replay_screen = true;
  EXPECT_EQ(run(one), model::Invariant::kNone);
  model::SeededBugs other;
  other.drop_settle_apply = true;
  EXPECT_EQ(run(other), model::Invariant::kNone);
  model::SeededBugs both;
  both.skip_replay_screen = true;
  both.drop_settle_apply = true;
  EXPECT_EQ(run(both), model::Invariant::kTxExactlyOnce);
}

}  // namespace
}  // namespace tp::host
