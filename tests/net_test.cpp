// Simulated-network tests: delivery, ordering, latency accounting, loss.
#include <gtest/gtest.h>

#include "net/channel.h"

namespace tp::net {
namespace {

TEST(Link, DeliversBothDirections) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(1));
  link.a().send(bytes_of("hello sp"));
  auto at_b = link.b().receive();
  ASSERT_TRUE(at_b.ok());
  EXPECT_EQ(string_of(at_b.value()), "hello sp");

  link.b().send(bytes_of("hello client"));
  auto at_a = link.a().receive();
  ASSERT_TRUE(at_a.ok());
  EXPECT_EQ(string_of(at_a.value()), "hello client");
}

TEST(Link, FifoOrderPreserved) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(2));
  link.a().send(bytes_of("1"));
  link.a().send(bytes_of("2"));
  link.a().send(bytes_of("3"));
  EXPECT_EQ(string_of(link.b().receive().value()), "1");
  EXPECT_EQ(string_of(link.b().receive().value()), "2");
  EXPECT_EQ(string_of(link.b().receive().value()), "3");
}

TEST(Link, ReceiveAdvancesClockByLatency) {
  SimClock clock;
  NetParams params;
  params.latency_mean_ms = 40;
  params.latency_jitter_ms = 0.001;  // effectively fixed
  Link link(params, clock, SimRng(3));
  link.a().send(bytes_of("x"));
  ASSERT_TRUE(link.b().receive().ok());
  EXPECT_NEAR(clock.now().ns / 1e6, 40.0, 1.0);
}

TEST(Link, EmptyQueueIsTimeout) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(4));
  EXPECT_EQ(link.b().receive().code(), Err::kTimeout);
}

TEST(Link, LossDropsMessages) {
  SimClock clock;
  NetParams params;
  params.loss_prob = 1.0;
  Link link(params, clock, SimRng(5));
  link.a().send(bytes_of("doomed"));
  EXPECT_EQ(link.b().receive().code(), Err::kTimeout);
  EXPECT_EQ(link.messages_sent(), 1u);
  EXPECT_EQ(link.messages_lost(), 1u);
}

TEST(Link, LossRateApproximatelyHonoured) {
  SimClock clock;
  NetParams params;
  params.loss_prob = 0.3;
  Link link(params, clock, SimRng(6));
  for (int i = 0; i < 2000; ++i) link.a().send(bytes_of("m"));
  EXPECT_NEAR(static_cast<double>(link.messages_lost()) / 2000.0, 0.3, 0.04);
}

TEST(Link, RoundTripAccumulatesBothLegs) {
  SimClock clock;
  NetParams params;
  params.latency_mean_ms = 25;
  params.latency_jitter_ms = 0.001;
  Link link(params, clock, SimRng(7));
  link.a().send(bytes_of("req"));
  ASSERT_TRUE(link.b().receive().ok());
  link.b().send(bytes_of("resp"));
  ASSERT_TRUE(link.a().receive().ok());
  EXPECT_NEAR(clock.now().ns / 1e6, 50.0, 2.0);
}

TEST(Link, LargeAndEmptyPayloads) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(8));
  const Bytes big(1 << 16, 0xaa);
  link.a().send(big);
  link.a().send(Bytes{});
  EXPECT_EQ(link.b().receive().value(), big);
  EXPECT_TRUE(link.b().receive().value().empty());
}

}  // namespace
}  // namespace tp::net
