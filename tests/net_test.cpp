// Simulated-network tests: delivery, ordering, latency accounting, loss.
#include <gtest/gtest.h>

#include "net/channel.h"

namespace tp::net {
namespace {

TEST(Link, DeliversBothDirections) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(1));
  link.a().send(bytes_of("hello sp"));
  auto at_b = link.b().receive();
  ASSERT_TRUE(at_b.ok());
  EXPECT_EQ(string_of(at_b.value()), "hello sp");

  link.b().send(bytes_of("hello client"));
  auto at_a = link.a().receive();
  ASSERT_TRUE(at_a.ok());
  EXPECT_EQ(string_of(at_a.value()), "hello client");
}

TEST(Link, FifoOrderPreserved) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(2));
  link.a().send(bytes_of("1"));
  link.a().send(bytes_of("2"));
  link.a().send(bytes_of("3"));
  EXPECT_EQ(string_of(link.b().receive().value()), "1");
  EXPECT_EQ(string_of(link.b().receive().value()), "2");
  EXPECT_EQ(string_of(link.b().receive().value()), "3");
}

TEST(Link, ReceiveAdvancesClockByLatency) {
  SimClock clock;
  NetParams params;
  params.latency_mean_ms = 40;
  params.latency_jitter_ms = 0.001;  // effectively fixed
  Link link(params, clock, SimRng(3));
  link.a().send(bytes_of("x"));
  ASSERT_TRUE(link.b().receive().ok());
  EXPECT_NEAR(clock.now().ns / 1e6, 40.0, 1.0);
}

TEST(Link, EmptyQueueIsTimeout) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(4));
  EXPECT_EQ(link.b().receive().code(), Err::kTimeout);
}

TEST(Link, LossDropsMessages) {
  SimClock clock;
  NetParams params;
  params.loss_prob = 1.0;
  Link link(params, clock, SimRng(5));
  link.a().send(bytes_of("doomed"));
  EXPECT_EQ(link.b().receive().code(), Err::kTimeout);
  EXPECT_EQ(link.messages_sent(), 1u);
  EXPECT_EQ(link.messages_lost(), 1u);
}

TEST(Link, LossRateApproximatelyHonoured) {
  SimClock clock;
  NetParams params;
  params.loss_prob = 0.3;
  Link link(params, clock, SimRng(6));
  for (int i = 0; i < 2000; ++i) link.a().send(bytes_of("m"));
  EXPECT_NEAR(static_cast<double>(link.messages_lost()) / 2000.0, 0.3, 0.04);
}

TEST(Link, RoundTripAccumulatesBothLegs) {
  SimClock clock;
  NetParams params;
  params.latency_mean_ms = 25;
  params.latency_jitter_ms = 0.001;
  Link link(params, clock, SimRng(7));
  link.a().send(bytes_of("req"));
  ASSERT_TRUE(link.b().receive().ok());
  link.b().send(bytes_of("resp"));
  ASSERT_TRUE(link.a().receive().ok());
  EXPECT_NEAR(clock.now().ns / 1e6, 50.0, 2.0);
}

TEST(Link, LargeAndEmptyPayloads) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(8));
  const Bytes big(1 << 16, 0xaa);
  link.a().send(big);
  link.a().send(Bytes{});
  EXPECT_EQ(link.b().receive().value(), big);
  EXPECT_TRUE(link.b().receive().value().empty());
}

// Regression: with jitter comparable to the mean, the sampled latency
// must clamp at zero -- a negative draw would deliver a message before
// it was sent and the clock charge would move time backwards.
TEST(Link, LatencySamplingNeverGoesNegative) {
  SimClock clock;
  NetParams params;
  params.latency_mean_ms = 1.0;
  params.latency_jitter_ms = 50.0;  // most normal draws are negative
  Link link(params, clock, SimRng(9));
  for (int i = 0; i < 200; ++i) {
    const SimTime before = clock.now();
    link.a().send(bytes_of("n"));
    auto got = link.b().receive();
    ASSERT_TRUE(got.ok());
    EXPECT_GE(clock.now().ns, before.ns);
  }
}

// A receive that times out because the message was dropped must be
// distinguishable from one where nothing was ever sent.
TEST(Link, LostAndIdleTimeoutsAreDistinguishable) {
  SimClock clock;
  NetParams params;
  params.loss_prob = 1.0;
  Link link(params, clock, SimRng(10));

  auto idle = link.b().receive();
  EXPECT_EQ(idle.code(), Err::kTimeout);
  EXPECT_NE(idle.error().message.find("no message pending"),
            std::string::npos);
  EXPECT_EQ(link.b().lost_since_last_receive(), 0u);

  link.a().send(bytes_of("doomed"));
  EXPECT_EQ(link.b().lost_since_last_receive(), 1u);
  auto lost = link.b().receive();
  EXPECT_EQ(lost.code(), Err::kTimeout);
  EXPECT_NE(lost.error().message.find("lost in transit"),
            std::string::npos);
  // The counter is a "since last receive" window: consumed by the call.
  EXPECT_EQ(link.b().lost_since_last_receive(), 0u);
  EXPECT_EQ(link.b().lost_in_transit(), 1u);
  // The other side saw none of this.
  EXPECT_EQ(link.a().lost_in_transit(), 0u);
}

TEST(Fault, ScriptedDropsAreCountedAndDeterministic) {
  FaultPlan plan;
  plan.seed = 77;
  plan.to_sp.drop_prob = 0.5;

  auto run = [&plan]() {
    SimClock clock;
    NetParams params;
    params.fault = plan;
    Link link(params, clock, SimRng(11));
    std::uint64_t delivered = 0;
    for (int i = 0; i < 400; ++i) {
      link.a().send(bytes_of("m"));
      if (link.b().receive().ok()) ++delivered;
    }
    return std::pair<std::uint64_t, std::uint64_t>(
        delivered, link.faults()->trace_fingerprint());
  };

  const auto [delivered1, trace1] = run();
  const auto [delivered2, trace2] = run();
  EXPECT_EQ(delivered1, delivered2);
  EXPECT_EQ(trace1, trace2);  // same seed -> identical fault trace
  EXPECT_NEAR(static_cast<double>(delivered1) / 400.0, 0.5, 0.08);
}

TEST(Fault, DuplicationDeliversSamePayloadTwice) {
  SimClock clock;
  NetParams params;
  params.fault.seed = 21;
  params.fault.to_sp.dup_prob = 1.0;
  Link link(params, clock, SimRng(12));
  link.a().send(bytes_of("twin"));
  EXPECT_EQ(string_of(link.b().receive().value()), "twin");
  EXPECT_EQ(string_of(link.b().receive().value()), "twin");
  EXPECT_EQ(link.faults()->injected(FaultKind::kDuplicate), 1u);
}

TEST(Fault, CorruptionFlipsExactlyOneByte) {
  SimClock clock;
  NetParams params;
  params.fault.seed = 22;
  params.fault.to_sp.corrupt_prob = 1.0;
  Link link(params, clock, SimRng(13));
  const Bytes sent = bytes_of("pristine payload");
  link.a().send(sent);
  auto got = link.b().receive();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), sent.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    differing += got.value()[i] != sent[i] ? 1 : 0;
  }
  EXPECT_EQ(differing, 1u);
}

TEST(Fault, PartitionWindowDropsThenHeals) {
  SimClock clock;
  NetParams params;
  params.latency_jitter_ms = 0.001;
  params.fault.partitions.push_back(
      PartitionWindow{SimTime{0}, SimTime{SimDuration::seconds(1).ns}});
  Link link(params, clock, SimRng(14));

  link.a().send(bytes_of("during"));
  EXPECT_EQ(link.b().receive().code(), Err::kTimeout);
  EXPECT_EQ(link.faults()->injected(FaultKind::kPartitionDrop), 1u);

  clock.charge("test:wait-out-partition", SimDuration::seconds(2));
  link.a().send(bytes_of("after"));
  EXPECT_EQ(string_of(link.b().receive().value()), "after");
  EXPECT_EQ(link.faults()->injected(FaultKind::kPartitionDrop), 1u);
}

TEST(Fault, AsymmetricPlanOnlyAffectsConfiguredDirection) {
  SimClock clock;
  NetParams params;
  params.fault.seed = 23;
  params.fault.to_client.drop_prob = 1.0;  // only SP -> client faulty
  Link link(params, clock, SimRng(15));
  link.a().send(bytes_of("up"));
  EXPECT_TRUE(link.b().receive().ok());
  link.b().send(bytes_of("down"));
  EXPECT_EQ(link.a().receive().code(), Err::kTimeout);
  EXPECT_EQ(link.a().lost_in_transit(), 1u);
  EXPECT_EQ(link.b().lost_in_transit(), 0u);
}

}  // namespace
}  // namespace tp::net
