// Concurrent verifier service: queue, router, sharded serving runtime.
//
// These tests are labelled `concurrency` in CTest; run them under TSan via
//   cmake -B build-tsan -DTP_SANITIZE=thread && cmake --build build-tsan
//   ctest --test-dir build-tsan -L concurrency
#include "svc/verifier_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/messages.h"
#include "svc/bounded_queue.h"
#include "svc/shard_router.h"

namespace tp::svc {
namespace {

using core::EnrollBegin;
using core::MsgType;
using core::TxChallenge;
using core::TxConfirm;
using core::TxSubmit;
using core::Verdict;

Bytes tx_submit_frame(const std::string& client_id, std::uint64_t i) {
  TxSubmit submit{client_id, "pay " + std::to_string(i), Bytes(32, 7)};
  return core::envelope(MsgType::kTxSubmit, submit.serialize());
}

// ---- BoundedQueue ------------------------------------------------------

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, PushBlocksUntilCapacityFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still parked on the full queue
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseRejectsPushesAndDrainsPops) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.pop().value(), 1);   // drain continues after close
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and empty
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, MpmcStressNoLossNoDuplication) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 4000;  // 16k items through a depth-64 queue
  BoundedQueue<int> q(64);

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &received, c] {
      while (auto item = q.pop()) received[c].push_back(*item);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);  // none lost, none twice
  }
}

// ---- ShardRouter -------------------------------------------------------

TEST(ShardRouter, StableInRangeAndSpreads) {
  ShardRouter router(4);
  std::set<std::size_t> used;
  for (int i = 0; i < 64; ++i) {
    const std::string id = "client-" + std::to_string(i);
    const std::size_t shard = router.shard_for(id);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, router.shard_for(id));  // deterministic
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u);  // 64 ids reach every shard
}

TEST(ShardRouter, ZeroShardsClampsToOne) {
  ShardRouter router(0);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.shard_for("anyone"), 0u);
}

TEST(ShardRouter, PeeksClientIdOutOfFrames) {
  const auto submit = tx_submit_frame("alice", 1);
  ASSERT_TRUE(ShardRouter::client_id_of(submit).ok());
  EXPECT_EQ(ShardRouter::client_id_of(submit).value(), "alice");

  const auto enroll =
      core::envelope(MsgType::kEnrollBegin, EnrollBegin{"bob"}.serialize());
  EXPECT_EQ(ShardRouter::client_id_of(enroll).value(), "bob");

  const Bytes garbage{0xff, 0x00, 0x01};
  EXPECT_FALSE(ShardRouter::client_id_of(garbage).ok());
  const auto challenge =
      core::envelope(MsgType::kTxChallenge, TxChallenge{1, {}}.serialize());
  EXPECT_FALSE(ShardRouter::client_id_of(challenge).ok());
}

// ---- VerifierService ---------------------------------------------------

SvcConfig small_config(std::size_t workers, std::size_t depth = 64) {
  SvcConfig config;
  config.num_workers = workers;
  config.queue_depth = depth;
  return config;
}

TEST(VerifierService, RejectsUnusableConfigAtConstruction) {
  // "No workers" and "no queue" are bugs in the caller's config, not
  // values to silently repair: the constructor must throw, before any
  // thread or queue exists.
  EXPECT_THROW(VerifierService{small_config(0)}, std::invalid_argument);
  EXPECT_THROW(VerifierService{small_config(2, 0)}, std::invalid_argument);
  try {
    VerifierService service(small_config(0));
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("num_workers"), std::string::npos);
  }
  try {
    VerifierService service(small_config(2, 0));
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("queue_depth"), std::string::npos);
  }
}

TEST(VerifierService, ServesFramesOnAllShards) {
  VerifierService service(small_config(4));
  service.start();
  for (int i = 0; i < 32; ++i) {
    const std::string id = "client-" + std::to_string(i);
    const SvcResponse response =
        service.call(id, tx_submit_frame(id, static_cast<std::uint64_t>(i)));
    ASSERT_EQ(response.status, SvcStatus::kOk);
    auto opened = core::open_envelope(response.frame);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened.value().first, MsgType::kTxChallenge);
  }
  service.drain();
  EXPECT_EQ(service.metrics().counter("svc.requests_completed").value(), 32u);
}

TEST(VerifierService, NotStartedRespondsShutdownInsteadOfDeadlocking) {
  VerifierService service(small_config(2));
  EXPECT_EQ(service.call("alice", tx_submit_frame("alice", 1)).status,
            SvcStatus::kShutdown);
}

// The ISSUE's router/shard stress: >= 4 producer threads, >= 10k requests,
// every request answered exactly once with a shard-consistent challenge.
TEST(VerifierService, MultiProducerStressNoLostOrDuplicatedResponses) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;  // 10k total
  constexpr std::size_t kShards = 4;
  VerifierService service(small_config(kShards, /*depth=*/128));
  service.start();

  std::mutex mu;
  std::set<std::pair<std::size_t, std::uint64_t>> challenge_ids;
  std::atomic<std::uint64_t> ok_count{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Each producer talks for a disjoint set of clients, but all
      // clients of all producers share the same four shards.
      std::vector<std::future<SvcResponse>> pending;
      pending.reserve(kPerProducer);
      std::vector<std::string> ids;
      for (int i = 0; i < kPerProducer; ++i) {
        const std::string id =
            "stress-" + std::to_string(p) + "-" + std::to_string(i % 8);
        ids.push_back(id);
        pending.push_back(service.submit(
            id, tx_submit_frame(id, static_cast<std::uint64_t>(i))));
      }
      for (std::size_t i = 0; i < pending.size(); ++i) {
        SvcResponse response = pending[i].get();
        ASSERT_EQ(response.status, SvcStatus::kOk);
        auto opened = core::open_envelope(response.frame);
        ASSERT_TRUE(opened.ok());
        auto challenge = TxChallenge::deserialize(opened.value().second);
        ASSERT_TRUE(challenge.ok());
        ok_count.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        // (shard, tx_id) is unique iff no request was double-served.
        const bool inserted =
            challenge_ids
                .emplace(service.shard_for(ids[i]),
                         challenge.value().tx_id)
                .second;
        ASSERT_TRUE(inserted);
      }
    });
  }
  for (auto& t : producers) t.join();
  service.drain();

  const auto total = static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(ok_count.load(), total);
  EXPECT_EQ(challenge_ids.size(), total);
  EXPECT_EQ(service.metrics().counter("svc.requests_completed").value(),
            total);
  EXPECT_EQ(service.metrics().counter("svc.requests_submitted").value(),
            total);
}

TEST(VerifierService, ExpiredDeadlineIsRejectedWithoutServing) {
  VerifierService service(small_config(1));
  service.start();
  auto expired = service.submit(
      "alice", tx_submit_frame("alice", 1),
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5));
  EXPECT_EQ(expired.get().status, SvcStatus::kDeadlineExpired);

  auto alive = service.submit(
      "alice", tx_submit_frame("alice", 2),
      std::chrono::steady_clock::now() + std::chrono::seconds(30));
  EXPECT_EQ(alive.get().status, SvcStatus::kOk);
  service.drain();
  EXPECT_EQ(service.metrics().counter("svc.deadline_expired").value(), 1u);
  EXPECT_EQ(service.metrics().counter("svc.requests_completed").value(), 1u);
}

TEST(VerifierService, DefaultDeadlineAppliesToSubmit) {
  SvcConfig config = small_config(1, /*depth=*/4);
  config.default_deadline = std::chrono::milliseconds(1);
  VerifierService service(std::move(config));
  service.start();
  // Saturate the single worker so later requests out-wait the 1ms budget.
  std::vector<std::future<SvcResponse>> pending;
  for (int i = 0; i < 200; ++i) {
    pending.push_back(
        service.submit("one-client",
                       tx_submit_frame("one-client",
                                       static_cast<std::uint64_t>(i))));
  }
  std::size_t expired = 0;
  for (auto& f : pending) {
    if (f.get().status == SvcStatus::kDeadlineExpired) ++expired;
  }
  service.drain();
  EXPECT_EQ(service.metrics().counter("svc.deadline_expired").value(),
            expired);
}

TEST(VerifierService, TrySubmitReportsQueueFull) {
  VerifierService service(small_config(1, /*depth=*/2));
  // Workers not started: the queue can only fill up.
  service.start();
  // Stall the worker with a burst, then try_submit until one bounces.
  bool saw_full = false;
  std::vector<std::future<SvcResponse>> pending;
  for (int i = 0; i < 5000 && !saw_full; ++i) {
    auto f = service.try_submit(
        "alice", tx_submit_frame("alice", static_cast<std::uint64_t>(i)));
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      auto response = f.get();
      if (response.status == SvcStatus::kQueueFull) saw_full = true;
    } else {
      pending.push_back(std::move(f));
    }
  }
  for (auto& f : pending) f.get();
  service.drain();
  EXPECT_TRUE(saw_full);
  EXPECT_GE(service.metrics().counter("svc.rejected_queue_full").value(), 1u);
}

// Drain under fire: every submitted request's future must resolve exactly
// once, as either a served response or an explicit shutdown rejection.
TEST(VerifierService, DrainDuringLoadResolvesEveryRequest) {
  constexpr int kProducers = 4;
  VerifierService service(small_config(2, /*depth=*/32));
  service.start();

  std::atomic<std::uint64_t> ok{0}, shutdown{0}, other{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string id = "drain-" + std::to_string(p);
        auto future = service.submit(id, tx_submit_frame(id, i++));
        submitted.fetch_add(1);
        switch (future.get().status) {
          case SvcStatus::kOk: ok.fetch_add(1); break;
          case SvcStatus::kShutdown: shutdown.fetch_add(1); break;
          default: other.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.drain();  // while producers are still submitting
  stop.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();

  EXPECT_EQ(ok.load() + shutdown.load(), submitted.load());
  EXPECT_EQ(other.load(), 0u);
  EXPECT_GT(ok.load(), 0u);        // it served real traffic before the drain
  EXPECT_GT(shutdown.load(), 0u);  // and rejected cleanly after it
  EXPECT_EQ(service.metrics().counter("svc.requests_completed").value(),
            ok.load());
}

TEST(VerifierService, ShutdownNowFailsQueuedWorkButResolvesFutures) {
  VerifierService service(small_config(1, /*depth=*/512));
  service.start();
  std::vector<std::future<SvcResponse>> pending;
  for (int i = 0; i < 300; ++i) {
    pending.push_back(service.submit(
        "burst", tx_submit_frame("burst", static_cast<std::uint64_t>(i))));
  }
  service.shutdown_now();
  std::uint64_t resolved = 0;
  for (auto& f : pending) {
    const SvcStatus status = f.get().status;
    EXPECT_TRUE(status == SvcStatus::kOk || status == SvcStatus::kShutdown);
    ++resolved;
  }
  EXPECT_EQ(resolved, 300u);
}

TEST(VerifierService, AggregatesProtocolStatsAcrossShards) {
  VerifierService service(small_config(4));
  service.start();
  // Confirmations for transactions nobody submitted: every shard rejects.
  for (int i = 0; i < 20; ++i) {
    const std::string id = "ghost-" + std::to_string(i);
    TxConfirm confirm;
    confirm.client_id = id;
    confirm.tx_id = 9000 + static_cast<std::uint64_t>(i);
    confirm.verdict = Verdict::kConfirmed;
    const SvcResponse response = service.call(
        id, core::envelope(MsgType::kTxConfirm, confirm.serialize()));
    ASSERT_EQ(response.status, SvcStatus::kOk);
  }
  service.drain();
  const sp::SpStats stats = service.stats();
  EXPECT_EQ(stats.tx_rejected, 20u);
  EXPECT_EQ(stats.tx_accepted, 0u);
  EXPECT_EQ(stats.rejects(proto::RejectCode::kUnknownTx), 20u);
  // More than one shard actually saw traffic.
  std::size_t shards_with_traffic = 0;
  for (std::size_t i = 0; i < service.num_shards(); ++i) {
    if (service.shard_sp(i).stats_snapshot().tx_rejected > 0) {
      ++shards_with_traffic;
    }
  }
  EXPECT_GT(shards_with_traffic, 1u);
}

}  // namespace
}  // namespace tp::svc
