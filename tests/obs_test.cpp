// Metrics layer: counters, histograms, registry, scoped timers.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace tp::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  Counter c;
  c.inc(kMax - 1);
  c.inc(5);  // would wrap to 3
  EXPECT_EQ(c.value(), kMax);
  c.inc();
  EXPECT_EQ(c.value(), kMax);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddAndReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);  // gauges move both ways
  EXPECT_EQ(g.value(), -8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Gauge, ConcurrentAddsAllLand) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      // Half the threads add, half subtract: the race-free net is known.
      for (int i = 0; i < kPerThread; ++i) g.add(t % 2 == 0 ? 2 : -1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), kThreads / 2 * kPerThread * (2 - 1));
}

TEST(Histogram, AggregatesAndPercentiles) {
  Histogram h;
  // 1..100 us in nanoseconds: p50 ~ 50us, p99 ~ 99us.
  for (std::uint64_t us = 1; us <= 100; ++us) h.record(us * 1000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 100'000u);
  EXPECT_NEAR(s.mean(), 50'500.0, 1.0);
  // Geometric buckets (ratio 1.25): estimates within ~30%.
  EXPECT_NEAR(static_cast<double>(s.p50()), 50'000.0, 16'000.0);
  EXPECT_NEAR(static_cast<double>(s.p99()), 99'000.0, 30'000.0);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
}

TEST(Histogram, OutOfRangeValuesStayCounted) {
  Histogram h(Histogram::Options{.lowest = 1000, .highest = 10'000});
  h.record(0);
  h.record(1'000'000'000);  // above `highest` -> +inf bucket
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1'000'000'000u);
  EXPECT_EQ(s.buckets.back(), 1u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5000);
  h.reset();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.percentile(0.5), 0u);
}

TEST(Registry, SameNameSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.inc();
  EXPECT_EQ(reg.counter("x").value(), 1u);
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
  Histogram& h = reg.histogram("lat");
  h.record(123);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
}

TEST(Registry, PrefixTotalsAndReset) {
  Registry reg;
  reg.counter("sp.reject.bad_sig").inc(3);
  reg.counter("sp.reject.replay").inc(2);
  reg.counter("svc.completed").inc(7);
  EXPECT_EQ(reg.counter_total("sp.reject."), 5u);
  EXPECT_EQ(reg.counter_total(""), 12u);
  reg.reset("sp.");
  EXPECT_EQ(reg.counter_total("sp.reject."), 0u);
  EXPECT_EQ(reg.counter("svc.completed").value(), 7u);
}

TEST(Registry, GaugesAreNamedSharedAndPrefixReset) {
  Registry reg;
  Gauge& g = reg.gauge("sp.enroll_sessions");
  g.set(17);
  EXPECT_EQ(reg.gauge("sp.enroll_sessions").value(), 17);  // same instrument
  EXPECT_NE(&reg.gauge("sp.enroll_sessions"), &reg.gauge("sp.tx_sessions"));
  reg.gauge("svc.queue_depth").set(9);

  const auto samples = reg.gauges();
  ASSERT_EQ(samples.size(), 3u);  // map order: name-sorted
  EXPECT_EQ(samples[0].name, "sp.enroll_sessions");
  EXPECT_EQ(samples[0].value, 17);

  reg.reset("sp.");
  EXPECT_EQ(reg.gauge("sp.enroll_sessions").value(), 0);
  EXPECT_EQ(reg.gauge("svc.queue_depth").value(), 9);  // other prefix kept
}

TEST(Registry, JsonDumpContainsInstruments) {
  Registry reg;
  reg.counter("svc.requests").inc(3);
  reg.histogram("svc.request_ns").record(42'000);
  reg.gauge("svc.queue_depth").set(-2);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"svc.requests\":3"), std::string::npos);
  EXPECT_NE(json.find("\"svc.request_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"svc.queue_depth\":-2}"),
            std::string::npos);
}

TEST(ScopedTimer, RecordsElapsed) {
  Registry reg;
  Histogram& h = reg.histogram("t");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace tp::obs
