// Secure-transport tests: handshake, record protection (confidentiality,
// integrity, replay), and the full protocol running over the channel.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/drbg.h"
#include "net/secure_channel.h"
#include "pal/human_agent.h"
#include "sp/deployment.h"

namespace tp::net {
namespace {

crypto::RsaPrivateKey server_key() {
  static const crypto::RsaPrivateKey key = [] {
    auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("sc-server"));
    return crypto::rsa_generate(
        768, [drbg](std::size_t n) { return drbg->generate(n); });
  }();
  return key;
}

struct Harness {
  Harness()
      : link(NetParams{}, clock, SimRng(1)),
        server(server_key(),
               [this](BytesView req) {
                 last_server_request.assign(req.begin(), req.end());
                 Bytes resp = bytes_of("resp:");
                 append(resp, req);
                 return resp;
               }),
        client(link.a(), server_key().public_key(), bytes_of("seed")) {
    link.b().set_service(
        [this](BytesView frame) { return server.handle(frame); });
  }

  SimClock clock;
  Link link;
  SecureServerTransport server;
  SecureClientTransport client;
  Bytes last_server_request;
};

TEST(SecureChannel, ExchangeRoundTrip) {
  Harness h;
  auto reply = h.client.exchange(bytes_of("hello"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "resp:hello");
  EXPECT_TRUE(h.client.handshaken());
  EXPECT_EQ(string_of(h.last_server_request), "hello");
}

TEST(SecureChannel, MultipleExchangesAdvanceSequences) {
  Harness h;
  for (int i = 0; i < 10; ++i) {
    auto reply = h.client.exchange(bytes_of("m" + std::to_string(i)));
    ASSERT_TRUE(reply.ok()) << i;
    EXPECT_EQ(string_of(reply.value()), "resp:m" + std::to_string(i));
  }
  EXPECT_EQ(h.server.records_rejected(), 0u);
}

TEST(SecureChannel, PlaintextNeverOnTheWire) {
  // Intercept what actually crosses the link: neither the request nor the
  // response plaintext may appear in any frame.
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(2));
  SecureServerTransport server(server_key(), [](BytesView) {
    return bytes_of("TOP-SECRET-RESPONSE");
  });
  std::vector<Bytes> wire;
  link.b().set_service([&](BytesView frame) {
    wire.emplace_back(frame.begin(), frame.end());
    Bytes out = server.handle(frame);
    wire.push_back(out);
    return out;
  });
  SecureClientTransport client(link.a(), server_key().public_key(),
                               bytes_of("seed2"));
  auto reply = client.exchange(bytes_of("TOP-SECRET-REQUEST"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "TOP-SECRET-RESPONSE");

  auto contains = [](const Bytes& haystack, const std::string& needle) {
    return std::search(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end()) != haystack.end();
  };
  ASSERT_FALSE(wire.empty());
  for (const Bytes& frame : wire) {
    EXPECT_FALSE(contains(frame, "TOP-SECRET-REQUEST"));
    EXPECT_FALSE(contains(frame, "TOP-SECRET-RESPONSE"));
  }
}

TEST(SecureChannel, TamperedRecordRejectedWithoutStateDamage) {
  Harness h;
  ASSERT_TRUE(h.client.exchange(bytes_of("warmup")).ok());

  // Craft a tampered record by intercepting: easiest via direct server
  // call with junk.
  const Bytes junk(64, 0xaa);
  EXPECT_EQ(string_of(h.server.handle(junk)), "!rejected");
  EXPECT_EQ(h.server.records_rejected(), 1u);

  // The session continues to work: rejection did not desynchronize it.
  auto reply = h.client.exchange(bytes_of("after"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "resp:after");
}

TEST(SecureChannel, ReplayedRecordRejected) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(3));
  SecureServerTransport server(server_key(),
                               [](BytesView) { return bytes_of("ok"); });
  Bytes captured;
  link.b().set_service([&](BytesView frame) {
    captured.assign(frame.begin(), frame.end());  // the attacker records
    return server.handle(frame);
  });
  SecureClientTransport client(link.a(), server_key().public_key(),
                               bytes_of("seed3"));
  ASSERT_TRUE(client.exchange(bytes_of("original")).ok());

  // Replay the captured client record straight into the server.
  const std::uint64_t rejected_before = server.records_rejected();
  EXPECT_EQ(string_of(server.handle(captured)), "!rejected");
  EXPECT_EQ(server.records_rejected(), rejected_before + 1);
}

TEST(SecureChannel, BitFlippedCiphertextRejected) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(6));
  SecureServerTransport server(server_key(),
                               [](BytesView) { return bytes_of("ok"); });
  bool tamper = false;
  std::uint64_t rejections_seen = 0;
  link.b().set_service([&](BytesView frame) {
    if (tamper && !frame.empty()) {
      // Flip one bit of the first ciphertext byte (record header is
      // type:u8 | seq:u64 | ct_len:u32 = 13 bytes) and deliver the
      // forgery first; the MAC must catch it without desynchronizing.
      Bytes flipped(frame.begin(), frame.end());
      flipped[13] ^= 0x01;
      EXPECT_EQ(string_of(server.handle(flipped)), "!rejected");
      rejections_seen = server.records_rejected();
    }
    return server.handle(frame);
  });
  SecureClientTransport client(link.a(), server_key().public_key(),
                               bytes_of("seed6"));
  ASSERT_TRUE(client.exchange(bytes_of("warmup")).ok());
  tamper = true;
  // The genuine record, carrying the same sequence number as the bounced
  // forgery, still goes through: rejection left the receive state intact.
  auto reply = client.exchange(bytes_of("after-forgery"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "ok");
  EXPECT_GE(rejections_seen, 1u);
}

TEST(SecureChannel, TruncatedRecordRejected) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(7));
  SecureServerTransport server(server_key(),
                               [](BytesView) { return bytes_of("ok"); });
  Bytes captured;
  link.b().set_service([&](BytesView frame) {
    captured.assign(frame.begin(), frame.end());
    return server.handle(frame);
  });
  SecureClientTransport client(link.a(), server_key().public_key(),
                               bytes_of("seed7"));
  ASSERT_TRUE(client.exchange(bytes_of("original")).ok());
  ASSERT_GT(captured.size(), 45u);  // header + ct + 32-byte MAC

  // Cut the record at various points: inside the MAC, just after the
  // header, mid-header, and down to a bare type byte.
  for (std::size_t keep :
       {captured.size() - 1, captured.size() - 33, std::size_t{13},
        std::size_t{9}, std::size_t{1}}) {
    const Bytes truncated(captured.begin(),
                          captured.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_EQ(string_of(server.handle(truncated)), "!rejected")
        << "keep=" << keep;
  }
  // Parse failures must not disturb the session either.
  auto reply = client.exchange(bytes_of("after"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "ok");
}

TEST(SecureChannel, SwappedDirectionRecordRejected) {
  // A client record reflected straight back at the client carries the
  // right sequence number but the wrong direction label and keys; the
  // per-direction key separation must reject it.
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(8));
  SecureServerTransport server(server_key(),
                               [](BytesView) { return bytes_of("ok"); });
  bool echo = false;
  link.b().set_service([&](BytesView frame) {
    if (echo) return Bytes(frame.begin(), frame.end());
    return server.handle(frame);
  });
  SecureClientTransport client(link.a(), server_key().public_key(),
                               bytes_of("seed8"));
  ASSERT_TRUE(client.exchange(bytes_of("warmup")).ok());
  echo = true;
  auto reply = client.exchange(bytes_of("boomerang"));
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(client.handshaken());
}

TEST(SecureChannel, WrongServerKeyFailsHandshake) {
  SimClock clock;
  Link link(NetParams{}, clock, SimRng(4));
  SecureServerTransport server(server_key(),
                               [](BytesView) { return bytes_of("ok"); });
  link.b().set_service(
      [&](BytesView frame) { return server.handle(frame); });

  // Client trusts a DIFFERENT key (e.g., a phishing endpoint's).
  auto drbg = std::make_shared<crypto::HmacDrbg>(bytes_of("other"));
  const auto other = crypto::rsa_generate(
      768, [drbg](std::size_t n) { return drbg->generate(n); });
  SecureClientTransport client(link.a(), other.public_key(),
                               bytes_of("seed4"));
  auto reply = client.exchange(bytes_of("hello"));
  EXPECT_FALSE(reply.ok());
  EXPECT_FALSE(client.handshaken());
}

TEST(SecureChannel, RecordBeforeHandshakeRejected) {
  SecureServerTransport server(server_key(),
                               [](BytesView) { return bytes_of("ok"); });
  Bytes fake_record{0x02, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(string_of(server.handle(fake_record)), "!rejected");
  EXPECT_EQ(string_of(server.handle({})), "!rejected");
}

// ------------------------------ full protocol over the secure channel

TEST(SecureChannel, TrustedPathRunsOverSecureTransport) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "tls-client";
  cfg.seed = bytes_of("tls-deploy");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.secure_transport = true;
  sp::Deployment world(cfg);

  devices::HumanParams hp;
  hp.typo_prob = 0.0;
  pal::HumanAgent agent(devices::HumanModel(hp, SimRng(5)),
                        "pay 10 EUR to bob");
  world.client().set_user_agent(&agent);
  ASSERT_TRUE(world.client().enroll().ok());
  auto outcome =
      world.client().submit_transaction("pay 10 EUR to bob", bytes_of("p"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().accepted);
  ASSERT_NE(world.secure_server(), nullptr);
  EXPECT_EQ(world.secure_server()->records_rejected(), 0u);
}

TEST(SecureChannel, PlaintextFramesBounceOffSecureSp) {
  sp::DeploymentConfig cfg;
  cfg.client_id = "tls-client";
  cfg.seed = bytes_of("tls-deploy-2");
  cfg.tpm_key_bits = 768;
  cfg.client_key_bits = 768;
  cfg.secure_transport = true;
  sp::Deployment world(cfg);

  // A naive attacker speaks the plaintext protocol at a secure SP.
  world.client_endpoint().send(core::envelope(
      core::MsgType::kEnrollBegin,
      core::EnrollBegin{"mallory"}.serialize()));
  auto reply = world.client_endpoint().receive();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(string_of(reply.value()), "!rejected");
  EXPECT_GT(world.secure_server()->records_rejected(), 0u);
}

}  // namespace
}  // namespace tp::net
